// Sanity coverage of the optimizer-scaling tree scenario (bench_util):
// feasibility shape, topology counts, and end-to-end execution.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using bench_util::MakeChainScenario;

TEST(ChainScenarioTest, TreeDependenciesAreFeasible) {
  SECO_ASSERT_OK_AND_ASSIGN(bench_util::ChainScenario scenario,
                            MakeChainScenario(5));
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario.registry));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(query));
  ASSERT_TRUE(report.feasible) << report.reason;
  // Tree: S1,S2 depend on S0; S3,S4 on S1.
  EXPECT_TRUE(report.atoms[0].depends_on.empty());
  EXPECT_EQ(report.atoms[1].depends_on, (std::vector<int>{0}));
  EXPECT_EQ(report.atoms[2].depends_on, (std::vector<int>{0}));
  EXPECT_EQ(report.atoms[3].depends_on, (std::vector<int>{1}));
  EXPECT_EQ(report.atoms[4].depends_on, (std::vector<int>{1}));
}

TEST(ChainScenarioTest, TopologySpaceGrowsWithSize) {
  int prev = 0;
  for (int n : {3, 5, 6}) {
    SECO_ASSERT_OK_AND_ASSIGN(bench_util::ChainScenario scenario,
                              MakeChainScenario(n));
    SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                              ParseQuery(scenario.query_text));
    SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                              BindQuery(parsed, *scenario.registry));
    OptimizerOptions options;
    options.k = 10;
    options.metric = CostMetricKind::kCallCount;
    Optimizer optimizer(options);
    SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result,
                              optimizer.Optimize(query));
    int explored = result.topologies_tried + result.branches_pruned;
    EXPECT_GT(explored, prev) << "n=" << n;
    prev = explored;
  }
}

TEST(ChainScenarioTest, OptimizedTreeExecutes) {
  SECO_ASSERT_OK_AND_ASSIGN(bench_util::ChainScenario scenario,
                            MakeChainScenario(4));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  QuerySession session(scenario.registry, options);
  SECO_ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                            session.Run(scenario.query_text, {}));
  ASSERT_FALSE(outcome.execution.combinations.empty());
  // Every combination satisfies the tree joins: A0.Next=A1.Key, A0.Next=
  // A2.Key, A1.Next=A3.Key.
  for (const Combination& combo : outcome.execution.combinations) {
    EXPECT_EQ(combo.components[0].AtomicAt(1).AsInt(),
              combo.components[1].AtomicAt(0).AsInt());
    EXPECT_EQ(combo.components[0].AtomicAt(1).AsInt(),
              combo.components[2].AtomicAt(0).AsInt());
    EXPECT_EQ(combo.components[1].AtomicAt(1).AsInt(),
              combo.components[3].AtomicAt(0).AsInt());
  }
}

}  // namespace
}  // namespace seco
