#include <gtest/gtest.h>

#include "service/access_pattern.h"

namespace seco {
namespace {

ServiceSchema TestSchema() {
  return ServiceSchema(
      "Svc", {AttributeDef::Atomic("A", ValueType::kString),
              AttributeDef::Atomic("B", ValueType::kInt),
              AttributeDef::Atomic("Score", ValueType::kDouble),
              AttributeDef::RepeatingGroup("G", {{"X", ValueType::kString},
                                                 {"Y", ValueType::kInt}})});
}

TEST(AccessPatternTest, CreateAndQuery) {
  ServiceSchema schema = TestSchema();
  Result<AccessPattern> p = AccessPattern::Create(
      schema, {{"A", Adornment::kInput},
               {"B", Adornment::kOutput},
               {"Score", Adornment::kRanked},
               {"G.X", Adornment::kInput},
               {"G.Y", Adornment::kOutput}});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->num_inputs(), 2);
  EXPECT_EQ(p->output_paths().size(), 3u);  // B, Score, G.Y
  EXPECT_EQ(p->ranked_paths().size(), 1u);
  EXPECT_EQ(p->At(*schema.Resolve("A")), Adornment::kInput);
  EXPECT_EQ(p->At(*schema.Resolve("Score")), Adornment::kRanked);
  EXPECT_EQ(p->At(*schema.Resolve("G.Y")), Adornment::kOutput);
}

TEST(AccessPatternTest, InputOrderIsDeclarationOrder) {
  ServiceSchema schema = TestSchema();
  Result<AccessPattern> p = AccessPattern::Create(
      schema, {{"G.X", Adornment::kInput},
               {"A", Adornment::kInput},
               {"B", Adornment::kOutput},
               {"Score", Adornment::kOutput},
               {"G.Y", Adornment::kOutput}});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->input_paths().size(), 2u);
  EXPECT_TRUE(p->input_paths()[0].is_sub_attribute());  // G.X first
  EXPECT_EQ(p->input_paths()[1].attr_index, 0);         // then A
}

TEST(AccessPatternTest, IncompleteCoverageFails) {
  ServiceSchema schema = TestSchema();
  Result<AccessPattern> p =
      AccessPattern::Create(schema, {{"A", Adornment::kInput}});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(AccessPatternTest, DuplicateAdornmentFails) {
  ServiceSchema schema = TestSchema();
  Result<AccessPattern> p = AccessPattern::Create(
      schema, {{"A", Adornment::kInput},
               {"A", Adornment::kOutput},
               {"B", Adornment::kOutput},
               {"Score", Adornment::kOutput},
               {"G.X", Adornment::kOutput},
               {"G.Y", Adornment::kOutput}});
  EXPECT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("duplicate"), std::string::npos);
}

TEST(AccessPatternTest, UnknownAttributeFails) {
  ServiceSchema schema = TestSchema();
  Result<AccessPattern> p = AccessPattern::Create(
      schema, {{"Nope", Adornment::kInput}});
  EXPECT_FALSE(p.ok());
}

TEST(AccessPatternTest, AdornmentNames) {
  EXPECT_STREQ(AdornmentToString(Adornment::kInput), "I");
  EXPECT_STREQ(AdornmentToString(Adornment::kOutput), "O");
  EXPECT_STREQ(AdornmentToString(Adornment::kRanked), "R");
}

TEST(AccessPatternTest, RankedCountsAsOutput) {
  ServiceSchema schema = TestSchema();
  Result<AccessPattern> p = AccessPattern::Create(
      schema, {{"A", Adornment::kOutput},
               {"B", Adornment::kOutput},
               {"Score", Adornment::kRanked},
               {"G.X", Adornment::kOutput},
               {"G.Y", Adornment::kOutput}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_inputs(), 0);
  EXPECT_EQ(p->output_paths().size(), 5u);
}

}  // namespace
}  // namespace seco
