#include <gtest/gtest.h>

#include "join/strategy_select.h"
#include "optimizer/calibration.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

TEST(CalibrationTest, RecoversLinearDecay) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc,
      MakeKeyedSearchService("Lin", 200, 10, 500, ScoreDecay::kLinear));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceProfile profile,
                            ProfileService(svc.interface, {}));
  EXPECT_EQ(profile.decay, ScoreDecay::kLinear);
  EXPECT_GT(profile.fit_r2, 0.99);
  EXPECT_DOUBLE_EQ(profile.avg_chunk_size, 10.0);
  EXPECT_GT(profile.avg_latency_ms, 0.0);
}

TEST(CalibrationTest, RecoversQuadraticDecay) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc,
      MakeKeyedSearchService("Quad", 200, 10, 500, ScoreDecay::kQuadratic));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceProfile profile,
                            ProfileService(svc.interface, {}));
  EXPECT_EQ(profile.decay, ScoreDecay::kQuadratic);
  EXPECT_GT(profile.fit_r2, 0.99);
}

class StepRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(StepRecoveryTest, RecoversStepAndH) {
  int h = GetParam();
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc,
      MakeKeyedSearchService("Step", 200, 10, 500, ScoreDecay::kStep,
                             /*key_is_input=*/false, /*step_h=*/h));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceProfile profile,
                            ProfileService(svc.interface, {}));
  EXPECT_EQ(profile.decay, ScoreDecay::kStep);
  EXPECT_EQ(profile.step_h, h);
}

INSTANTIATE_TEST_SUITE_P(Hs, StepRecoveryTest, ::testing::Values(1, 2, 3, 5));

TEST(CalibrationTest, ExhaustionDuringProbe) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("Small", 12, 10, 500));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceProfile profile,
                            ProfileService(svc.interface, {}, /*max_probes=*/8));
  EXPECT_TRUE(profile.exhausted);
  EXPECT_EQ(profile.probes, 2);  // the 2nd chunk already reports exhaustion
  EXPECT_EQ(profile.decay, ScoreDecay::kLinear);
}

TEST(CalibrationTest, UnrankedServiceRejected) {
  SimServiceBuilder builder("Exact");
  builder
      .Schema({AttributeDef::Atomic("K", ValueType::kInt)})
      .Pattern({{"K", Adornment::kOutput}})
      .Kind(ServiceKind::kExact);
  ServiceStats stats;
  stats.chunked = true;
  stats.chunk_size = 5;
  builder.Stats(stats);
  for (int i = 0; i < 20; ++i) builder.AddRow(Tuple({Value(i)}));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, builder.Build());
  Result<ServiceProfile> profile = ProfileService(svc.interface, {});
  EXPECT_FALSE(profile.ok());
  EXPECT_EQ(profile.status().code(), StatusCode::kInvalidArgument);
}

TEST(CalibrationTest, ProfileFeedsStrategyChoice) {
  // End-to-end: a service declared opaque is probed, classified as step,
  // and the corrected stats drive ChooseStrategy to nested-loop.
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService hidden_step,
      MakeKeyedSearchService("Hidden", 200, 10, 500, ScoreDecay::kStep,
                             /*key_is_input=*/false, /*step_h=*/2));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceProfile profile,
                            ProfileService(hidden_step.interface, {}));
  ASSERT_EQ(profile.decay, ScoreDecay::kStep);
  ServiceStats corrected = hidden_step.interface->stats();
  corrected.decay = profile.decay;
  corrected.step_h = profile.step_h;
  ServiceInterface corrected_iface(
      "HiddenCorrected", hidden_step.interface->schema_ptr(),
      hidden_step.interface->pattern(), ServiceKind::kSearch, corrected,
      hidden_step.backend);
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService linear, MakeKeyedSearchService("Lin2", 100, 10, 500));
  JoinStrategy strategy = ChooseStrategy(corrected_iface, *linear.interface);
  EXPECT_EQ(strategy.invocation, JoinInvocation::kNestedLoop);
}

}  // namespace
}  // namespace seco
