#include <gtest/gtest.h>

#include <set>

#include "exec/resumable.h"
#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

TEST(CachingHandlerTest, MemoizesByInputsAndChunk) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc,
      MakeKeyedSearchService("S", 30, 5, 3, ScoreDecay::kLinear,
                             /*key_is_input=*/true));
  CachingHandler cache(svc.backend);
  ServiceRequest req;
  req.inputs = {Value(1)};
  req.chunk_index = 0;
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse first, cache.Call(req));
  EXPECT_GT(first.latency_ms, 0.0);
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse again, cache.Call(req));
  EXPECT_DOUBLE_EQ(again.latency_ms, 0.0);  // cache hit is free
  EXPECT_EQ(again.tuples.size(), first.tuples.size());
  EXPECT_EQ(cache.novel_calls(), 1);
  EXPECT_EQ(cache.cache_hits(), 1);

  req.chunk_index = 1;  // different chunk -> new call
  SECO_ASSERT_OK(cache.Call(req).status());
  req.inputs = {Value(2)};  // different binding -> new call
  req.chunk_index = 0;
  SECO_ASSERT_OK(cache.Call(req).status());
  EXPECT_EQ(cache.novel_calls(), 3);
}

class ResumableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ServiceRegistry>();
    Result<BuiltService> outer =
        MakeKeyedSearchService("Outer", 60, 5, 4, ScoreDecay::kLinear);
    ASSERT_TRUE(outer.ok());
    outer_ = std::move(outer).value();
    Result<BuiltService> inner = MakeKeyedSearchService(
        "Inner", 80, 5, 4, ScoreDecay::kLinear, /*key_is_input=*/true);
    ASSERT_TRUE(inner.ok());
    inner_ = std::move(inner).value();
    ASSERT_TRUE(registry_->RegisterInterface(outer_.interface).ok());
    ASSERT_TRUE(registry_->RegisterInterface(inner_.interface).ok());

    Result<ParsedQuery> parsed =
        ParseQuery("select Outer as O, Inner as I where O.Key = I.Key");
    ASSERT_TRUE(parsed.ok());
    Result<BoundQuery> bound = BindQuery(*parsed, *registry_);
    ASSERT_TRUE(bound.ok());
    Result<QueryPlan> plan = BuildDefaultPlan(*bound);
    ASSERT_TRUE(plan.ok());
    plan_ = std::move(plan).value();
    ASSERT_TRUE(AnnotatePlan(&plan_).ok());
  }

  std::shared_ptr<ServiceRegistry> registry_;
  BuiltService outer_;
  BuiltService inner_;
  QueryPlan plan_;
};

TEST_F(ResumableTest, BatchesAreDisjointAndComplete) {
  ResumableExecution resumable(plan_, ExecutionOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch first, resumable.FetchMore(5));
  EXPECT_EQ(first.combinations.size(), 5u);
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch second, resumable.FetchMore(5));
  EXPECT_EQ(second.combinations.size(), 5u);
  EXPECT_EQ(resumable.total_returned(), 10);

  std::set<std::string> seen;
  for (const std::vector<Combination>* batch :
       {&first.combinations, &second.combinations}) {
    for (const Combination& combo : *batch) {
      std::string key = combo.components[0].AtomicAt(1).AsString() + "|" +
                        combo.components[1].AtomicAt(1).AsString();
      EXPECT_TRUE(seen.insert(key).second) << "duplicate " << key;
    }
  }
}

TEST_F(ResumableTest, LaterBatchesOnlyPayIncrement) {
  ResumableExecution resumable(plan_, ExecutionOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch first, resumable.FetchMore(5));
  int64_t first_calls = first.novel_calls;
  EXPECT_GT(first_calls, 0);
  // A second batch from the already-fetched region costs few or no calls.
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch second, resumable.FetchMore(3));
  EXPECT_EQ(second.combinations.size(), 3u);
  EXPECT_LT(second.novel_calls, first_calls);
}

TEST_F(ResumableTest, DrainsToExhaustion) {
  ResumableExecution resumable(plan_, ExecutionOptions{});
  int total = 0;
  for (int round = 0; round < 50; ++round) {
    SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch batch, resumable.FetchMore(40));
    total += static_cast<int>(batch.combinations.size());
    if (!batch.may_have_more) break;
  }
  // Ground truth: 60 outer x 80 inner over 4 keys = 60 * 20 matches.
  EXPECT_EQ(total, 60 * 20);
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch after, resumable.FetchMore(10));
  EXPECT_TRUE(after.combinations.empty());
  EXPECT_FALSE(after.may_have_more);
}

TEST_F(ResumableTest, BatchesComeInScoreOrderWithinBatch) {
  ResumableExecution resumable(plan_, ExecutionOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch batch, resumable.FetchMore(10));
  for (size_t i = 1; i < batch.combinations.size(); ++i) {
    EXPECT_LE(batch.combinations[i].combined_score,
              batch.combinations[i - 1].combined_score + 1e-12);
  }
}

TEST_F(ResumableTest, ZeroCountIsANoOp) {
  ResumableExecution resumable(plan_, ExecutionOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch batch, resumable.FetchMore(0));
  EXPECT_TRUE(batch.combinations.empty());
  EXPECT_EQ(batch.novel_calls, 0);
  EXPECT_TRUE(batch.may_have_more);
  EXPECT_EQ(resumable.rounds(), 0);
}

TEST(ResumableScenarioTest, MovieScenarioMoreResults) {
  // The §3.2 user interaction: take 10 answers, then ask for 10 more.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario.registry));
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());

  ExecutionOptions options;
  options.input_bindings = scenario.inputs;
  options.max_calls = 100000;
  ResumableExecution resumable(plan, options);
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch first, resumable.FetchMore(10));
  EXPECT_EQ(first.combinations.size(), 10u);
  SECO_ASSERT_OK_AND_ASSIGN(ResumeBatch more, resumable.FetchMore(10));
  EXPECT_GT(more.combinations.size(), 0u);
  // The continuation must not repeat any combination.
  std::set<std::string> keys;
  for (const std::vector<Combination>* batch :
       {&first.combinations, &more.combinations}) {
    for (const Combination& combo : *batch) {
      std::string key;
      for (const Tuple& t : combo.components) {
        key += t.AtomicAt(0).ToString() + "|";
      }
      EXPECT_TRUE(keys.insert(key).second);
    }
  }
}

}  // namespace
}  // namespace seco
