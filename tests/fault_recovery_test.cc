// End-to-end acceptance tests of the reliability layer (docs/RELIABILITY.md):
// with transient faults and retries, every scenario recovers answers, charged
// calls, and the simulated clock *bit-identical* to the fault-free run at any
// {num_threads, prefetch_depth}; a permanent single-service outage degrades to
// partial, flagged results instead of an error; the shared call cache is never
// poisoned by faulted or retried requests.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

constexpr double kFaultRate = 0.08;

template <typename Backends>
void InjectTransientFaults(Backends* backends, double rate, int attempts,
                           uint64_t seed = 0) {
  for (auto& [name, backend] : *backends) {
    FaultProfile profile;
    profile.transient_rate = rate;
    profile.transient_attempts = attempts;
    profile.seed = seed;
    backend->set_fault_profile(profile);
  }
}

ReliabilityPolicy RetryPolicyOf(int max_retries) {
  ReliabilityPolicy policy;
  policy.retry.max_retries = max_retries;
  return policy;
}

StreamingOptions BaseStreamOptions(const std::map<std::string, Value>& inputs,
                                   int num_threads, int prefetch_depth) {
  StreamingOptions options;
  options.k = 10;
  options.input_bindings = inputs;
  options.max_calls = 10000;
  options.num_threads = num_threads;
  options.prefetch_depth = prefetch_depth;
  options.collect_trace = true;
  return options;
}

// The determinism contract: everything the simulated world can observe —
// answers, charged calls, per-node stats, the chronological call log, the
// simulated clock — matches the fault-free baseline. Reliability overhead
// lives only in `reliability` / `overhead_ms`, which are deliberately NOT
// compared here.
void ExpectIdenticalAnswers(const StreamingResult& baseline,
                            const StreamingResult& recovered) {
  EXPECT_EQ(recovered.total_calls, baseline.total_calls);
  EXPECT_DOUBLE_EQ(recovered.total_latency_ms, baseline.total_latency_ms);
  EXPECT_EQ(recovered.exhausted, baseline.exhausted);
  EXPECT_TRUE(recovered.complete);

  ASSERT_EQ(recovered.combinations.size(), baseline.combinations.size());
  for (size_t i = 0; i < baseline.combinations.size(); ++i) {
    const Combination& a = baseline.combinations[i];
    const Combination& b = recovered.combinations[i];
    EXPECT_DOUBLE_EQ(b.combined_score, a.combined_score);
    ASSERT_EQ(b.components.size(), a.components.size());
    for (size_t c = 0; c < a.components.size(); ++c) {
      EXPECT_TRUE(b.components[c] == a.components[c]);
    }
  }

  ASSERT_EQ(recovered.node_stats.size(), baseline.node_stats.size());
  for (const auto& [node_id, stats] : baseline.node_stats) {
    auto it = recovered.node_stats.find(node_id);
    ASSERT_NE(it, recovered.node_stats.end());
    EXPECT_EQ(it->second.calls, stats.calls);
    EXPECT_EQ(it->second.tuples_out, stats.tuples_out);
    EXPECT_DOUBLE_EQ(it->second.latency_ms, stats.latency_ms);
  }

  ASSERT_EQ(recovered.trace.size(), baseline.trace.size());
  for (size_t i = 0; i < baseline.trace.size(); ++i) {
    EXPECT_EQ(recovered.trace[i].node, baseline.trace[i].node);
    EXPECT_EQ(recovered.trace[i].binding_key, baseline.trace[i].binding_key);
    EXPECT_EQ(recovered.trace[i].chunk_index, baseline.trace[i].chunk_index);
    EXPECT_DOUBLE_EQ(recovered.trace[i].latency_ms,
                     baseline.trace[i].latency_ms);
  }
}

/// Fault-free baseline first, then the faulted run with retries at every
/// {num_threads} x {prefetch_depth} — the speculation threads race retried
/// and faulted requests, which must stay invisible.
template <typename Backends>
void ExpectFaultedRunsRecoverExactly(const QueryPlan& plan,
                                     const std::map<std::string, Value>& inputs,
                                     Backends* backends,
                                     double rate = kFaultRate) {
  StreamingEngine baseline_engine(BaseStreamOptions(inputs, 1, 0));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult baseline,
                            baseline_engine.Execute(plan));
  EXPECT_FALSE(baseline.combinations.empty());

  InjectTransientFaults(backends, rate, /*attempts=*/2);
  bool saw_retry = false;
  for (int num_threads : {1, 8}) {
    for (int prefetch_depth : {0, 1, 4}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " prefetch_depth=" + std::to_string(prefetch_depth));
      StreamingOptions options =
          BaseStreamOptions(inputs, num_threads, prefetch_depth);
      options.reliability = RetryPolicyOf(3);
      StreamingEngine engine(options);
      SECO_ASSERT_OK_AND_ASSIGN(StreamingResult run, engine.Execute(plan));
      ExpectIdenticalAnswers(baseline, run);
      if (run.reliability.retries > 0) saw_retry = true;
    }
  }
  // Over the whole sweep at least one request must actually have been
  // stricken — otherwise this test exercised nothing. (Chain uses a higher
  // rate: its plan issues few enough requests that 8% can draw no strikes.)
  EXPECT_TRUE(saw_retry);
}

Result<QueryPlan> OptimizeScenario(std::shared_ptr<ServiceRegistry> registry,
                                   const std::string& query_text) {
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(std::move(registry), optimizer_options);
  SECO_ASSIGN_OR_RETURN(BoundQuery bound, session.Prepare(query_text));
  SECO_ASSIGN_OR_RETURN(OptimizationResult optimized, session.Optimize(bound));
  return std::move(optimized.plan);
}

TEST(FaultRecoveryTest, ConferenceScenarioRecoversBitIdentically) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));
  ExpectFaultedRunsRecoverExactly(plan, scenario.inputs, &scenario.backends);
}

TEST(FaultRecoveryTest, DoctorScenarioRecoversBitIdentically) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeDoctorScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));
  ExpectFaultedRunsRecoverExactly(plan, scenario.inputs, &scenario.backends);
}

TEST(FaultRecoveryTest, ChainScenarioRecoversBitIdentically) {
  SECO_ASSERT_OK_AND_ASSIGN(bench_util::ChainScenario scenario,
                            bench_util::MakeChainScenario(4));
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));
  ExpectFaultedRunsRecoverExactly(plan, {}, &scenario.backends,
                                  /*rate=*/0.35);
}

TEST(FaultRecoveryTest, MaterializingEngineRecoversBitIdentically) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = scenario.inputs;
  ExecutionEngine baseline_engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult baseline,
                            baseline_engine.Execute(plan));
  EXPECT_FALSE(baseline.combinations.empty());

  InjectTransientFaults(&scenario.backends, kFaultRate, /*attempts=*/2);
  options.reliability = RetryPolicyOf(3);
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult recovered, engine.Execute(plan));
  EXPECT_EQ(recovered.total_calls, baseline.total_calls);
  EXPECT_DOUBLE_EQ(recovered.elapsed_ms, baseline.elapsed_ms);
  EXPECT_TRUE(recovered.complete);
  ASSERT_EQ(recovered.combinations.size(), baseline.combinations.size());
  for (size_t i = 0; i < baseline.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(recovered.combinations[i].combined_score,
                     baseline.combinations[i].combined_score);
  }
  EXPECT_GT(recovered.reliability.retries, 0);
  EXPECT_GT(recovered.reliability.overhead_ms, 0.0);
}

// --- Latency spikes + per-call deadlines -----------------------------------

TEST(FaultRecoveryTest, CallDeadlineRecoversFromLatencySpikes) {
  auto registry = std::make_shared<ServiceRegistry>();
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService outer,
      MakeKeyedSearchService("Outer", 60, 5, 4, ScoreDecay::kLinear));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService inner,
      MakeKeyedSearchService("Inner", 80, 5, 4, ScoreDecay::kLinear,
                             /*key_is_input=*/true));
  SECO_ASSERT_OK(registry->RegisterInterface(outer.interface));
  SECO_ASSERT_OK(registry->RegisterInterface(inner.interface));
  SECO_ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseQuery("select Outer as O, Inner as I where O.Key = I.Key"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query, BindQuery(parsed, *registry));
  TopologySpec spec;
  spec.stages = {{0}, {1}};
  spec.atom_settings[0].fetch_factor = 12;
  spec.atom_settings[1].fetch_factor = 16;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());

  StreamingEngine baseline_engine(BaseStreamOptions({}, 1, 0));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult baseline,
                            baseline_engine.Execute(plan));

  // Every request's first attempt is spiked to 8x the ~100ms base latency.
  // A 300ms per-call deadline converts the spiked attempt into a fault; the
  // retry (attempt 1, unspiked) returns the clean response, so the answers
  // and simulated clock recover exactly.
  for (auto* service : {&outer, &inner}) {
    FaultProfile profile;
    profile.spike_rate = 1.0;
    profile.spike_attempts = 1;
    profile.spike_factor = 8.0;
    service->backend->set_fault_profile(profile);
  }
  StreamingOptions options = BaseStreamOptions({}, 1, 0);
  options.reliability = RetryPolicyOf(2);
  options.reliability.call_deadline_ms = 300.0;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult recovered, engine.Execute(plan));
  ExpectIdenticalAnswers(baseline, recovered);
  EXPECT_GT(recovered.reliability.deadline_hits, 0);
  EXPECT_GT(recovered.reliability.overhead_ms, 0.0);
}

// --- Graceful degradation under permanent outage ---------------------------

TEST(FaultRecoveryTest, PermanentOutageDegradesToPartialResults) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  FaultProfile outage;
  outage.permanent_outage = true;
  scenario.backends.at("Hotel1")->set_fault_profile(outage);

  ReliabilityPolicy policy = RetryPolicyOf(1);
  policy.degrade = true;

  // Streaming engine: partial answers with the Hotel component missing.
  StreamingOptions stream_options = BaseStreamOptions(scenario.inputs, 1, 0);
  stream_options.reliability = policy;
  StreamingEngine stream_engine(stream_options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult stream,
                            stream_engine.Execute(plan));
  EXPECT_FALSE(stream.complete);
  ASSERT_FALSE(stream.degraded.empty());
  EXPECT_EQ(stream.degraded[0].service, "Hotel1");
  EXPECT_GT(stream.degraded[0].failed_bindings, 0);
  ASSERT_FALSE(stream.combinations.empty());
  bool saw_missing = false;
  for (const Combination& combo : stream.combinations) {
    if (!combo.missing_atoms.empty()) saw_missing = true;
  }
  EXPECT_TRUE(saw_missing);

  // Materializing engine: same contract.
  ExecutionOptions exec_options;
  exec_options.k = 10;
  exec_options.input_bindings = scenario.inputs;
  exec_options.reliability = policy;
  ExecutionEngine engine(exec_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  EXPECT_FALSE(result.complete);
  ASSERT_FALSE(result.degraded.empty());
  EXPECT_EQ(result.degraded[0].service, "Hotel1");
  EXPECT_FALSE(result.combinations.empty());

  // Without `degrade` the outage is a hard error.
  exec_options.reliability.degrade = false;
  ExecutionEngine strict(exec_options);
  Result<ExecutionResult> failed = strict.Execute(plan);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
}

TEST(FaultRecoveryTest, OutageCascadesThroughPipedChain) {
  // Chain tree: S0 -> {S1, S2}, S1 -> S3. Killing S1 starves S3's piped
  // input: S3 must degrade too ("input unavailable"), not abort the query.
  SECO_ASSERT_OK_AND_ASSIGN(bench_util::ChainScenario scenario,
                            bench_util::MakeChainScenario(4));
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  FaultProfile outage;
  outage.permanent_outage = true;
  scenario.backends.at("S1")->set_fault_profile(outage);

  ReliabilityPolicy policy = RetryPolicyOf(1);
  policy.degrade = true;
  StreamingOptions options = BaseStreamOptions({}, 1, 0);
  options.reliability = policy;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult result, engine.Execute(plan));
  EXPECT_FALSE(result.complete);
  std::set<std::string> degraded_services;
  for (const DegradedStatus& d : result.degraded) {
    degraded_services.insert(d.service);
  }
  EXPECT_TRUE(degraded_services.count("S1")) << "origin of the outage";
  EXPECT_TRUE(degraded_services.count("S3")) << "starved downstream service";
  EXPECT_FALSE(result.combinations.empty());

  ExecutionOptions exec_options;
  exec_options.k = 10;
  exec_options.reliability = policy;
  ExecutionEngine materializing(exec_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult exec_result,
                            materializing.Execute(plan));
  EXPECT_FALSE(exec_result.complete);
  EXPECT_FALSE(exec_result.combinations.empty());
}

// --- Cache purity ----------------------------------------------------------

TEST(FaultRecoveryTest, FaultsNeverPoisonTheSharedCache) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));
  InjectTransientFaults(&scenario.backends, 0.3, /*attempts=*/1);

  ServiceCallCache cache;
  StreamingOptions options = BaseStreamOptions(scenario.inputs, 8, 4);
  options.cache = &cache;
  options.reliability = RetryPolicyOf(3);

  StreamingEngine first(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult cold, first.Execute(plan));
  EXPECT_FALSE(cold.combinations.empty());
  EXPECT_TRUE(cold.complete);

  // The warm run must be served entirely from the cache: no real calls (so
  // no chance to be stricken), no retries, and — because responses are
  // stored overhead-stripped and errors are never stored — zero replayed
  // reliability overhead.
  int64_t calls_after_cold = 0;
  for (const auto& [name, backend] : scenario.backends) {
    calls_after_cold += backend->call_count();
  }
  StreamingEngine second(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult warm, second.Execute(plan));
  int64_t calls_after_warm = 0;
  for (const auto& [name, backend] : scenario.backends) {
    calls_after_warm += backend->call_count();
  }
  EXPECT_EQ(calls_after_warm, calls_after_cold);
  EXPECT_EQ(warm.total_calls, 0);
  EXPECT_EQ(warm.reliability.retries, 0);
  EXPECT_DOUBLE_EQ(warm.reliability.overhead_ms, 0.0);
  ASSERT_EQ(warm.combinations.size(), cold.combinations.size());
  for (size_t i = 0; i < cold.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm.combinations[i].combined_score,
                     cold.combinations[i].combined_score);
  }
}

// --- Query deadline --------------------------------------------------------

TEST(FaultRecoveryTest, QueryDeadlineErrorsOrDegrades) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  StreamingOptions options = BaseStreamOptions(scenario.inputs, 1, 0);
  options.reliability = RetryPolicyOf(0);
  options.reliability.query_deadline_ms = 1.0;  // expires after the 1st call

  StreamingEngine strict(options);
  Result<StreamingResult> failed = strict.Execute(plan);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDeadlineExceeded);

  options.reliability.degrade = true;
  StreamingEngine lenient(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult partial, lenient.Execute(plan));
  EXPECT_FALSE(partial.complete);
  EXPECT_FALSE(partial.degraded.empty());
}

// --- Hedging ---------------------------------------------------------------

TEST(FaultRecoveryTest, HedgingDoesNotChangeAnswers) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  StreamingEngine baseline_engine(
      BaseStreamOptions(scenario.inputs, 1, 0));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult baseline,
                            baseline_engine.Execute(plan));

  // A hedge only launches when the primary is still in flight after
  // hedge_delay_ms of *wall* time, so make the backends genuinely slow (a
  // few real ms per call); the interrupt flag keeps losers and abandoned
  // speculations from blocking teardown.
  auto interrupt = std::make_shared<InterruptFlag>();
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.05);
    backend->set_interrupt(interrupt);
  }
  StreamingOptions options = BaseStreamOptions(scenario.inputs, 8, 2);
  options.interrupt = interrupt;
  options.reliability = RetryPolicyOf(1);
  options.reliability.hedge_delay_ms = 0.0;  // hedge every call immediately
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult hedged, engine.Execute(plan));
  ExpectIdenticalAnswers(baseline, hedged);
  // Hedge counters are wall-clock-class diagnostics (how many races were
  // launched/won depends on the schedule), but launches must have happened:
  // every primary sleeps for real, so the zero-delay hedge always fires.
  EXPECT_GT(hedged.reliability.hedges_launched, 0);
}

// --- Fault-model edge cases ------------------------------------------------

TEST(FaultRecoveryTest, OutageOnTheVeryFirstRequestDegradesCleanly) {
  // The root service dies before producing a single tuple: nothing can be
  // assembled, but under a degrade policy the run must still end OK, flag the
  // root as a *direct* (non-cascaded) loss, and cascade its starved
  // downstream services rather than erroring or hanging.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  FaultProfile outage;
  outage.permanent_outage = true;
  scenario.backends.at("Conference1")->set_fault_profile(outage);

  ReliabilityPolicy policy = RetryPolicyOf(1);
  policy.degrade = true;
  for (int num_threads : {1, 8}) {
    for (int prefetch_depth : {0, 4}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " prefetch_depth=" + std::to_string(prefetch_depth));
      StreamingOptions options =
          BaseStreamOptions(scenario.inputs, num_threads, prefetch_depth);
      options.reliability = policy;
      StreamingEngine engine(options);
      SECO_ASSERT_OK_AND_ASSIGN(StreamingResult result, engine.Execute(plan));
      EXPECT_FALSE(result.complete);
      // Nothing was ever fetched, so at most empty-shell combinations (every
      // atom flagged missing) can come out — and nothing was charged.
      for (const Combination& combo : result.combinations) {
        EXPECT_EQ(combo.missing_atoms.size(), combo.components.size());
      }
      EXPECT_EQ(result.total_calls, 0);
      bool saw_direct_root_loss = false;
      for (const DegradedStatus& d : result.degraded) {
        if (d.service == "Conference1") {
          saw_direct_root_loss = !d.cascaded;
        } else {
          EXPECT_TRUE(d.cascaded) << d.service << " starved by the root";
        }
      }
      EXPECT_TRUE(saw_direct_root_loss);
    }
  }
}

TEST(FaultRecoveryTest, ZeroCallDeadlineMeansNoDeadline) {
  // call_deadline_ms == 0 is the documented "off" value; even with every
  // request's latency spiked 8x it must never convert a slow response into a
  // fault — the spiked latencies are simply consumed.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  StreamingEngine baseline_engine(BaseStreamOptions(scenario.inputs, 1, 0));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult baseline,
                            baseline_engine.Execute(plan));

  for (auto& [name, backend] : scenario.backends) {
    FaultProfile profile;
    profile.spike_rate = 1.0;
    profile.spike_attempts = 1;
    profile.spike_factor = 8.0;
    backend->set_fault_profile(profile);
  }
  StreamingOptions options = BaseStreamOptions(scenario.inputs, 1, 0);
  options.reliability = RetryPolicyOf(2);
  options.reliability.call_deadline_ms = 0.0;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult slow, engine.Execute(plan));
  EXPECT_TRUE(slow.complete);
  EXPECT_EQ(slow.reliability.deadline_hits, 0);
  EXPECT_EQ(slow.reliability.retries, 0);
  EXPECT_EQ(slow.total_calls, baseline.total_calls);
  // Same answers, slower simulated clock: the spikes really happened.
  ASSERT_EQ(slow.combinations.size(), baseline.combinations.size());
  for (size_t i = 0; i < baseline.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(slow.combinations[i].combined_score,
                     baseline.combinations[i].combined_score);
  }
  EXPECT_GT(slow.total_latency_ms, baseline.total_latency_ms);
}

TEST(FaultRecoveryTest, SpikeAndTransientCollidingOnOneRequestRecover) {
  // Every request draws *both* fault populations: attempt 0 fails
  // transiently (and would also have spiked), the retry is clean because
  // both strikes cover only the first attempt. Answers, charged calls, and
  // the simulated clock recover bit-identically; no deadline machinery is
  // involved.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan,
      OptimizeScenario(scenario.registry, scenario.query_text));

  StreamingEngine baseline_engine(BaseStreamOptions(scenario.inputs, 1, 0));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult baseline,
                            baseline_engine.Execute(plan));

  for (auto& [name, backend] : scenario.backends) {
    FaultProfile profile;
    profile.transient_rate = 1.0;
    profile.transient_attempts = 1;
    profile.spike_rate = 1.0;
    profile.spike_attempts = 1;
    profile.spike_factor = 8.0;
    backend->set_fault_profile(profile);
  }
  for (int num_threads : {1, 8}) {
    for (int prefetch_depth : {0, 4}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " prefetch_depth=" + std::to_string(prefetch_depth));
      StreamingOptions options =
          BaseStreamOptions(scenario.inputs, num_threads, prefetch_depth);
      options.reliability = RetryPolicyOf(2);
      StreamingEngine engine(options);
      SECO_ASSERT_OK_AND_ASSIGN(StreamingResult recovered,
                                engine.Execute(plan));
      ExpectIdenticalAnswers(baseline, recovered);
      EXPECT_GT(recovered.reliability.retries, 0);
      EXPECT_EQ(recovered.reliability.deadline_hits, 0);
    }
  }
}

}  // namespace
}  // namespace seco
