// Robustness fuzzing of the query parser: pseudo-random token soups and
// mutations of valid queries must either parse or fail with a clean
// kParseError — never crash, hang, or return a malformed AST.

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/parser.h"
#include "query/printer.h"

namespace seco {
namespace {

const char* kFragments[] = {
    "select", "where",  "and",   "as",     "rank",   "by",   "like", "Svc",
    "A",      "B",      "x",     "M.Title", "T.Movie.Title",  "INPUT1",
    "'str'",  "\"dq\"", "12",    "-3.5",   "(",      ")",    ",",    ".",
    "=",      "!=",     "<",     "<=",     ">",      ">=",   "true", "false",
    "Shows",  "%",      "'unterminated",
};

TEST(ParserRobustnessTest, RandomTokenSoupsNeverCrash) {
  SplitMix64 rng(20090704);
  int parsed_ok = 0;
  const int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string text;
    int len = 1 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < len; ++i) {
      text += kFragments[rng.Uniform(std::size(kFragments))];
      text += ' ';
    }
    Result<ParsedQuery> result = ParseQuery(text);
    if (result.ok()) {
      ++parsed_ok;
      // A successful parse must yield a well-formed AST: at least one atom
      // and round-trippable text.
      EXPECT_FALSE(result->atoms.empty()) << text;
      Result<ParsedQuery> reparsed = ParseQuery(ToQueryText(*result));
      EXPECT_TRUE(reparsed.ok()) << "round-trip failed for: " << text;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << text;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Virtually no uniform soup forms a valid query; all that matters is that
  // none of them crashed and every rejection was a clean parse error.
  EXPECT_LT(parsed_ok, kTrials);
}

TEST(ParserRobustnessTest, MutatedValidQueriesNeverCrash) {
  const std::string base =
      "select Movie11 as M, Theatre11 as T where Shows(M, T) and "
      "M.Genres.Genre = INPUT1 and T.UCity = 'Milano' rank by (0.5, 0.5)";
  SplitMix64 rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text = base;
    int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(text.size());
      switch (rng.Uniform(3)) {
        case 0:  // delete a span
          text.erase(pos, 1 + rng.Uniform(5));
          break;
        case 1:  // duplicate a char
          text.insert(pos, 1, text[pos]);
          break;
        default:  // replace with a random printable char
          text[pos] = static_cast<char>(' ' + rng.Uniform(95));
      }
      if (text.empty()) text = "x";
    }
    Result<ParsedQuery> result = ParseQuery(text);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(ParserRobustnessTest, PathologicalInputs) {
  // Long identifier / deep chains must not blow up.
  std::string long_ident(10000, 'a');
  EXPECT_FALSE(ParseQuery(long_ident).ok());
  std::string many_conds = "select S where S.A = 1";
  for (int i = 0; i < 2000; ++i) many_conds += " and S.A = 1";
  Result<ParsedQuery> big = ParseQuery(many_conds);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->predicates.size(), 2001u);
  EXPECT_FALSE(ParseQuery(std::string(5000, '(')).ok());
  EXPECT_FALSE(ParseQuery("\x01\x02\x7f").ok());
}

TEST(ParserTest, BooleanLiterals) {
  Result<ParsedQuery> q =
      ParseQuery("select S where S.A = true and S.B != FALSE");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(std::get<Value>(q->predicates[0].rhs).AsBool());
  EXPECT_FALSE(std::get<Value>(q->predicates[1].rhs).AsBool());
}

TEST(ParserTest, TrueAsAliasPrefixStillResolves) {
  // `true.Attr` must be an attribute reference, not a literal.
  Result<ParsedQuery> q = ParseQuery("select S as true where S.A = true.B");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const AttrRef& ref = std::get<AttrRef>(q->predicates[0].rhs);
  EXPECT_EQ(ref.alias, "true");
  EXPECT_EQ(ref.path, "B");
}

}  // namespace
}  // namespace seco
