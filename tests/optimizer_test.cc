#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/wsms_baseline.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> movie = MakeMovieScenario();
    ASSERT_TRUE(movie.ok()) << movie.status().ToString();
    movie_ = std::move(movie).value();
    Result<Scenario> conf = MakeConferenceScenario();
    ASSERT_TRUE(conf.ok()) << conf.status().ToString();
    conf_ = std::move(conf).value();
  }

  Result<BoundQuery> Bind(const Scenario& scenario) {
    SECO_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(scenario.query_text));
    return BindQuery(parsed, *scenario.registry);
  }

  Scenario movie_;
  Scenario conf_;
};

TEST_F(OptimizerTest, FindsPlanForRunningExample) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  SECO_ASSERT_OK(result.plan.Validate());
  EXPECT_GE(result.estimated_answers, 10.0);
  EXPECT_GT(result.plans_costed, 0);
  EXPECT_GT(result.topologies_tried, 1);
  EXPECT_TRUE(result.search_exhausted);
  EXPECT_GT(result.cost, 0.0);
}

TEST_F(OptimizerTest, FindsPlanForConferenceExample) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(conf_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  SECO_ASSERT_OK(result.plan.Validate());
  EXPECT_GE(result.estimated_answers, 10.0);
}

TEST_F(OptimizerTest, HeuristicsAgreeOnOptimumWhenExhaustive) {
  // With the full space explored, all heuristic orderings must converge to
  // the same optimal cost (§5.2: heuristics only steer the branch order).
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  double reference = -1.0;
  for (TopologyHeuristic topo : {TopologyHeuristic::kSelectiveFirst,
                                 TopologyHeuristic::kParallelIsBetter}) {
    for (FetchHeuristic fetch :
         {FetchHeuristic::kGreedy, FetchHeuristic::kSquareIsBetter}) {
      OptimizerOptions options;
      options.k = 10;
      options.metric = CostMetricKind::kCallCount;
      options.topology_heuristic = topo;
      options.fetch_heuristic = fetch;
      Optimizer optimizer(options);
      SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result,
                                optimizer.Optimize(q));
      ASSERT_TRUE(result.search_exhausted);
      if (reference < 0) {
        reference = result.cost;
      } else {
        // Phase-3 heuristics are greedy, not exhaustive, so allow a small
        // difference in the fetch assignment but not in topology choice.
        EXPECT_NEAR(result.cost, reference, reference * 0.5)
            << TopologyHeuristicToString(topo) << "/"
            << FetchHeuristicToString(fetch);
      }
    }
  }
}

TEST_F(OptimizerTest, PruningOccursOnCostlyBranches) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  EXPECT_GT(result.branches_pruned, 0);
}

TEST_F(OptimizerTest, AnytimeBudgetReturnsValidPlan) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  options.max_plans = 1;  // stop after the first complete plan
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  SECO_ASSERT_OK(result.plan.Validate());
  EXPECT_FALSE(result.search_exhausted);
  EXPECT_EQ(result.plans_costed, 1);
}

TEST_F(OptimizerTest, AnytimeCostNeverBelowExhaustive) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  Optimizer exhaustive(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult best, exhaustive.Optimize(q));
  options.max_plans = 1;
  Optimizer budgeted(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult quick, budgeted.Optimize(q));
  EXPECT_GE(quick.cost, best.cost - 1e-9);
}

TEST_F(OptimizerTest, InfeasibleQueryReported) {
  // Theatre without its user-position bindings is unreachable.
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery("select Theatre11 as T where "
                                       "T.TCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindQuery(parsed, *movie_.registry));
  Optimizer optimizer(OptimizerOptions{});
  Result<OptimizationResult> result = optimizer.Optimize(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST_F(OptimizerTest, MartLevelQueryGetsInterfaceSelected) {
  // Phase 1: query over marts instead of interfaces.
  SECO_ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseQuery("select Movie as M where M.Genres.Genre = INPUT1 and "
                 "M.Openings.Country = INPUT2"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindQuery(parsed, *movie_.registry));
  ASSERT_EQ(q.atoms[0].iface, nullptr);
  OptimizerOptions options;
  options.k = 5;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  // The chosen plan's service node carries the selected interface.
  int node = result.plan.NodeOfAtom(0);
  ASSERT_NE(node, -1);
  EXPECT_EQ(result.plan.node(node).iface->name(), "Movie11");
}

TEST_F(OptimizerTest, FetchFactorsGrowToReachK) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  OptimizerOptions options;
  options.k = 40;  // forces more fetching than the K=10 default
  options.metric = CostMetricKind::kCallCount;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  // k=40 is beyond what the bounded result lists can yield (the per-binding
  // depth caps the estimate); the optimizer must still have grown the
  // fetching factors far beyond the all-ones assignment (0.26 answers).
  EXPECT_GE(result.estimated_answers, 25.0);
  int total_fetches = 0;
  for (const PlanNode& n : result.plan.nodes()) {
    if (n.kind == PlanNodeKind::kServiceCall) total_fetches += n.fetch_factor;
  }
  EXPECT_GT(total_fetches, 3);  // grew beyond the all-ones assignment
}

TEST_F(OptimizerTest, AutoStrategySelectsMergeScanForProgressive) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(conf_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  options.topology_heuristic = TopologyHeuristic::kParallelIsBetter;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  for (const PlanNode& n : result.plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) {
      // Flight (quadratic) and Hotel (linear) are progressive services.
      EXPECT_EQ(n.strategy.invocation, JoinInvocation::kMergeScan);
      EXPECT_EQ(n.strategy.completion, JoinCompletion::kTriangular);
    }
  }
}

TEST_F(OptimizerTest, ExecutionTimePrefersParallelism) {
  // Under the execution-time metric, some parallel section should beat the
  // all-serial chain for the conference query (Flight/Hotel overlap).
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(conf_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(q));
  bool has_parallel_join = false;
  for (const PlanNode& n : result.plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) has_parallel_join = true;
  }
  EXPECT_TRUE(has_parallel_join);
}

TEST_F(OptimizerTest, WsmsBaselineBuildsMaximallyParallelPlan) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(conf_));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, WsmsOptimize(q, 10));
  SECO_ASSERT_OK(result.plan.Validate());
  // Conference, Flight and Hotel have no interdependency in WSMS terms...
  // Conference must precede nothing? Flight and Hotel need City from
  // Conference, Weather needs Conference: stage 1 = {Conference},
  // stage 2 = {Weather, Flight, Hotel} -> one parallel join of 3 branches.
  int parallel_nodes = 0;
  for (const PlanNode& n : result.plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) {
      ++parallel_nodes;
      EXPECT_EQ(n.inputs.size(), 3u);
    }
  }
  EXPECT_EQ(parallel_nodes, 1);
  EXPECT_GT(result.cost, 0.0);  // bottleneck cost
}

TEST_F(OptimizerTest, WsmsIgnoresChunkingSeCoDoesNot) {
  // WSMS keeps F=1 everywhere; SeCo grows fetch factors to reach k. On the
  // movie query (k=10 needs 5x20 movies) SeCo must fetch more.
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult wsms, WsmsOptimize(q, 10));
  for (const PlanNode& n : wsms.plan.nodes()) {
    if (n.kind == PlanNodeKind::kServiceCall) {
      EXPECT_EQ(n.fetch_factor, 1);
    }
  }
  OptimizerOptions options;
  options.k = 10;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult seco, optimizer.Optimize(q));
  EXPECT_GT(seco.estimated_answers, wsms.estimated_answers);
}

TEST_F(OptimizerTest, AccessHeuristicsProduceSamePlanWhenSingleCandidate) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(movie_));
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  options.access_heuristic = AccessHeuristic::kBoundIsBetter;
  Optimizer bound_better(options);
  options.access_heuristic = AccessHeuristic::kUnboundIsEasier;
  Optimizer unbound_easier(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult a, bound_better.Optimize(q));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult b, unbound_easier.Optimize(q));
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace seco
