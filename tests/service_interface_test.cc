#include <gtest/gtest.h>

#include "query/bound_query.h"
#include "query/parser.h"
#include "service/service_interface.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

TEST(ServiceInterfaceTest, SearchServicesAreAlwaysChunked) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("S", 10, 5, 2));
  EXPECT_TRUE(svc.interface->is_search());
  EXPECT_TRUE(svc.interface->is_chunked());
  EXPECT_TRUE(svc.interface->is_ranked());
  EXPECT_TRUE(svc.interface->is_proliferative());
}

TEST(ServiceInterfaceTest, SelectiveExactClassification) {
  SimServiceBuilder builder("Lookup");
  builder.Schema({AttributeDef::Atomic("K", ValueType::kInt)})
      .Pattern({{"K", Adornment::kOutput}})
      .Kind(ServiceKind::kExact);
  ServiceStats stats;
  stats.avg_tuples_per_call = 0.3;  // fewer outputs than inputs: selective
  builder.Stats(stats);
  builder.AddRow(Tuple({Value(1)}));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, builder.Build());
  EXPECT_TRUE(svc.interface->is_selective());
  EXPECT_FALSE(svc.interface->is_proliferative());
  EXPECT_FALSE(svc.interface->is_ranked());
}

TEST(ServiceInterfaceTest, ExpectedChunkScoreShapes) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService linear,
      MakeKeyedSearchService("L", 100, 10, 2, ScoreDecay::kLinear));
  // Linear: decreasing, first chunk at 1.0.
  EXPECT_DOUBLE_EQ(linear.interface->ExpectedChunkScore(0, 10), 1.0);
  EXPECT_GT(linear.interface->ExpectedChunkScore(2, 10),
            linear.interface->ExpectedChunkScore(7, 10));

  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService quad,
      MakeKeyedSearchService("Q", 100, 10, 2, ScoreDecay::kQuadratic));
  for (int c = 1; c < 10; ++c) {
    EXPECT_LE(quad.interface->ExpectedChunkScore(c, 10),
              linear.interface->ExpectedChunkScore(c, 10) + 1e-12);
  }

  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService step,
      MakeKeyedSearchService("St", 100, 10, 2, ScoreDecay::kStep,
                             /*key_is_input=*/false, /*step_h=*/3));
  EXPECT_DOUBLE_EQ(step.interface->ExpectedChunkScore(2, 10), 0.95);
  EXPECT_DOUBLE_EQ(step.interface->ExpectedChunkScore(3, 10), 0.05);
}

TEST(ServiceInterfaceTest, EnumNames) {
  EXPECT_STREQ(ServiceKindToString(ServiceKind::kExact), "exact");
  EXPECT_STREQ(ServiceKindToString(ServiceKind::kSearch), "search");
  EXPECT_STREQ(ScoreDecayToString(ScoreDecay::kStep), "step");
  EXPECT_STREQ(ScoreDecayToString(ScoreDecay::kOpaque), "opaque");
}

TEST(BindOptionsTest, CustomSelectivitiesApplied) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseQuery("select Movie11 as M, Theatre11 as T where "
                 "M.Year = 2009 and M.Openings.Date > INPUT3 and "
                 "M.Director like 'D%' and M.Title = T.Name"));
  BindOptions options;
  options.eq_selectivity = 0.01;
  options.range_selectivity = 0.5;
  options.like_selectivity = 0.25;
  options.join_eq_selectivity = 0.002;
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            BindQuery(parsed, *scenario.registry, options));
  ASSERT_EQ(q.selections.size(), 3u);
  EXPECT_DOUBLE_EQ(q.selections[0].selectivity, 0.01);  // equality
  EXPECT_DOUBLE_EQ(q.selections[1].selectivity, 0.5);   // range
  EXPECT_DOUBLE_EQ(q.selections[2].selectivity, 0.25);  // like
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_DOUBLE_EQ(q.joins[0].selectivity, 0.002);
}

TEST(StatsDefaultsTest, SensibleOutOfTheBox) {
  ServiceStats stats;
  EXPECT_DOUBLE_EQ(stats.avg_tuples_per_call, 1.0);
  EXPECT_EQ(stats.chunk_size, 10);
  EXPECT_FALSE(stats.chunked);
  EXPECT_EQ(stats.decay, ScoreDecay::kNone);
  EXPECT_DOUBLE_EQ(stats.avg_matches_per_binding, 0.0);  // unknown
}

}  // namespace
}  // namespace seco
