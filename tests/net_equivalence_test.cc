// The byte-identical oracle (docs/NETWORK.md): a deterministic in-process
// serial load run is the reference; the same schedule driven (a) through
// the TCP front end, (b) over remote backends, and (c) through both hops
// at once must produce answer bodies that are byte-for-byte identical to
// the in-process `EncodeAnswerBody` bytes — for every scenario, for both
// engines, and under injected backend faults with retries.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/backend_server.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/remote_handler.h"
#include "server/server.h"
#include "sim/fault_model.h"
#include "sim/fixtures.h"
#include "sim/load_generator.h"

namespace seco {
namespace {

LoadProfile SerialProfile(bool streaming) {
  LoadProfile profile = LoadProfileByName("serial").value();
  profile.num_queries = 8;  // keep the matrix fast; determinism is per-query
  profile.streaming = streaming;
  return profile;
}

ServerOptions ByteExactOptions() {
  ServerOptions options;
  options.ladder.enabled = false;  // level 0 always: bit-identical answers
  return options;
}

std::vector<std::string> OracleBodies(const LoadReport& report) {
  std::vector<std::string> bodies;
  bodies.reserve(report.responses.size());
  for (const QueryResponse& response : report.responses) {
    bodies.push_back(EncodeAnswerBody(response));
  }
  return bodies;
}

void ExpectSameBodies(const std::vector<std::string>& got,
                      const std::vector<std::string>& want,
                      const std::string& leg) {
  ASSERT_EQ(got.size(), want.size()) << leg;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(AnswerBodyHex(got[i]), AnswerBodyHex(want[i]))
        << leg << ": query " << i << " diverged";
  }
}

/// Runs the full topology matrix for one scenario/engine combination:
/// in-process oracle, front end only, remote backends only, and both.
void RunMatrix(const Scenario& scenario, bool streaming,
               const std::string& tag) {
  LoadProfile profile = SerialProfile(streaming);
  LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
  std::vector<LoadItem> schedule = generator.Schedule();

  // Oracle: plain in-process serving.
  std::vector<std::string> oracle;
  {
    QueryServer server(scenario.registry, ByteExactOptions());
    LoadReport report = DriveLoad(&server, schedule, profile);
    for (const QueryResponse& r : report.responses) {
      ASSERT_NE(r.outcome, ServedOutcome::kShed) << tag;
      ASSERT_NE(r.outcome, ServedOutcome::kFailed)
          << tag << ": " << r.status.ToString();
    }
    oracle = OracleBodies(report);
  }

  // Leg 1: TCP front end over the in-process substrate.
  {
    QueryServer server(scenario.registry, ByteExactOptions());
    NetServer net(&server);
    ASSERT_TRUE(net.Start().ok());
    WireLoadReport report =
        DriveLoadOverWire("127.0.0.1", net.port(), schedule, profile);
    ExpectSameBodies(report.bodies, oracle, tag + "/front-end");
    net.Stop();
  }

  // Leg 2: in-process front end over remote backends.
  {
    BackendServer backend;
    backend.ExposeRegistry(*scenario.registry);
    ASSERT_TRUE(backend.Start().ok());
    Result<std::shared_ptr<ServiceRegistry>> remote = MakeRemoteRegistry(
        *scenario.registry, "127.0.0.1", backend.port());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    QueryServer server(remote.value(), ByteExactOptions());
    LoadReport report = DriveLoad(&server, schedule, profile);
    ExpectSameBodies(OracleBodies(report), oracle, tag + "/backend");
    backend.Stop();
  }

  // Leg 3: both hops — the full daemon topology.
  {
    BackendServer backend;
    backend.ExposeRegistry(*scenario.registry);
    ASSERT_TRUE(backend.Start().ok());
    Result<std::shared_ptr<ServiceRegistry>> remote = MakeRemoteRegistry(
        *scenario.registry, "127.0.0.1", backend.port());
    ASSERT_TRUE(remote.ok());
    QueryServer server(remote.value(), ByteExactOptions());
    NetServer net(&server);
    ASSERT_TRUE(net.Start().ok());
    WireLoadReport report =
        DriveLoadOverWire("127.0.0.1", net.port(), schedule, profile);
    ExpectSameBodies(report.bodies, oracle, tag + "/both");
    net.Stop();
    backend.Stop();
  }
}

TEST(NetEquivalenceTest, MovieScenarioMaterialized) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  RunMatrix(scenario.value(), /*streaming=*/false, "movie/materialized");
}

TEST(NetEquivalenceTest, MovieScenarioStreaming) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  RunMatrix(scenario.value(), /*streaming=*/true, "movie/streaming");
}

TEST(NetEquivalenceTest, ConferenceScenarioBothHops) {
  Result<Scenario> scenario = MakeConferenceScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  RunMatrix(scenario.value(), /*streaming=*/false, "conference");
}

TEST(NetEquivalenceTest, DoctorScenarioBothHops) {
  Result<Scenario> scenario = MakeDoctorScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  RunMatrix(scenario.value(), /*streaming=*/true, "doctor");
}

/// Builds a twin of `local` in which `faulty_name`'s handler is wrapped in
/// a `FaultInjectingHandler` — the in-process reference for the faulty leg.
std::shared_ptr<ServiceRegistry> WrapWithFaults(
    const ServiceRegistry& local, const std::string& faulty_name,
    const FaultProfile& profile) {
  auto twin = std::make_shared<ServiceRegistry>();
  for (const std::string& name : local.mart_names()) {
    EXPECT_TRUE(twin->RegisterMart(local.FindMart(name).value()).ok());
  }
  for (const std::string& name : local.interface_names()) {
    auto iface = local.FindInterface(name).value();
    std::shared_ptr<ServiceCallHandler> handler = iface->handler_ptr();
    if (name == faulty_name) {
      handler = std::make_shared<FaultInjectingHandler>(handler, profile);
    }
    auto copy = std::make_shared<ServiceInterface>(
        iface->name(), iface->schema_ptr(), iface->pattern(), iface->kind(),
        iface->stats(), std::move(handler));
    EXPECT_TRUE(
        twin->RegisterInterface(copy, local.MartOfInterface(name)).ok());
  }
  for (const std::string& name : local.pattern_names()) {
    EXPECT_TRUE(
        twin->RegisterConnectionPattern(local.FindConnectionPattern(name).value())
            .ok());
  }
  return twin;
}

TEST(NetEquivalenceTest, FaultyBackendWithRetriesStaysByteIdentical) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());

  // 30% of Theatre11's logical requests fail their first attempt; one
  // retry always recovers them. The FaultModel keys on (identity, attempt),
  // so the recovered answers — and their reliability telemetry — are
  // deterministic on both sides of the wire.
  FaultProfile flaky;
  flaky.transient_rate = 0.3;
  flaky.transient_attempts = 1;
  flaky.seed = 11;
  std::shared_ptr<ServiceRegistry> faulty =
      WrapWithFaults(*scenario.value().registry, "Theatre11", flaky);

  ServerOptions options = ByteExactOptions();
  options.reliability.retry.max_retries = 2;

  LoadProfile profile = SerialProfile(/*streaming=*/false);
  LoadGenerator generator(profile, scenario.value().query_text,
                          scenario.value().inputs);
  std::vector<LoadItem> schedule = generator.Schedule();

  std::vector<std::string> oracle;
  {
    QueryServer server(faulty, options);
    LoadReport report = DriveLoad(&server, schedule, profile);
    for (const QueryResponse& r : report.responses) {
      ASSERT_NE(r.outcome, ServedOutcome::kFailed) << r.status.ToString();
    }
    oracle = OracleBodies(report);
    // The faults actually happened: at least one response paid overhead.
    bool any_retries = false;
    for (const QueryResponse& r : report.responses) {
      if (r.execution.reliability.retries > 0) any_retries = true;
    }
    EXPECT_TRUE(any_retries);
  }

  // Full daemon topology over the *same* faulty substrate: the
  // FaultModel's failures now cross the wire before the reliability layer
  // sees them, and the recovered answers must not move by one byte.
  BackendServer backend;
  backend.ExposeRegistry(*faulty);
  ASSERT_TRUE(backend.Start().ok());
  Result<std::shared_ptr<ServiceRegistry>> remote =
      MakeRemoteRegistry(*faulty, "127.0.0.1", backend.port());
  ASSERT_TRUE(remote.ok());
  QueryServer server(remote.value(), options);
  NetServer net(&server);
  ASSERT_TRUE(net.Start().ok());
  WireLoadReport report =
      DriveLoadOverWire("127.0.0.1", net.port(), schedule, profile);
  ExpectSameBodies(report.bodies, oracle, "movie/faulty-both");
  net.Stop();
  backend.Stop();
}

}  // namespace
}  // namespace seco
