// Integration coverage of the third domain fixture — the ICDE'09 vision
// question "who is the best doctor to cure insomnia in a nearby hospital?" —
// exercising a parallel join of two keyed search services, a piped exact
// lookup, a boolean selection, and both execution engines.

#include <gtest/gtest.h>

#include <set>

#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class DoctorScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeDoctorScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
  }
  Scenario scenario_;
};

TEST_F(DoctorScenarioTest, QueryParsesBindsAndIsFeasible) {
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario_.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario_.registry));
  ASSERT_EQ(query.atoms.size(), 3u);
  // The Covered = true literal binds as a boolean constant.
  bool found_bool = false;
  for (const BoundSelection& sel : query.selections) {
    if (sel.input_var.empty() && sel.constant.type() == ValueType::kBool) {
      EXPECT_TRUE(sel.constant.AsBool());
      found_bool = true;
    }
  }
  EXPECT_TRUE(found_bool);
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(query));
  EXPECT_TRUE(report.feasible) << report.reason;
  // Insurance depends on Hospital (its name is piped).
  int insurance = query.AtomIndex("I");
  EXPECT_EQ(report.atoms[insurance].depends_on,
            (std::vector<int>{query.AtomIndex("H")}));
}

TEST_F(DoctorScenarioTest, EndToEndAnswersRespectAllPredicates) {
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  options.topology_heuristic = TopologyHeuristic::kParallelIsBetter;
  QuerySession session(scenario_.registry, options);
  SECO_ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                            session.Run(scenario_.query_text, scenario_.inputs));
  ASSERT_FALSE(outcome.execution.combinations.empty());
  for (const Combination& combo : outcome.execution.combinations) {
    const Tuple& doctor = combo.components[0];
    const Tuple& hospital = combo.components[1];
    const Tuple& insurance = combo.components[2];
    EXPECT_EQ(doctor.AtomicAt(0).AsString(), "insomnia");
    // WorksAt: the doctor's hospital is the joined hospital.
    EXPECT_EQ(doctor.AtomicAt(2).AsString(), hospital.AtomicAt(1).AsString());
    // CoveredBy + Covered=true: only insured hospitals survive.
    EXPECT_EQ(insurance.AtomicAt(0).AsString(), hospital.AtomicAt(1).AsString());
    EXPECT_TRUE(insurance.AtomicAt(2).AsBool());
  }
  // Ranked: 60% doctor rating + 40% hospital quality, non-increasing.
  for (size_t i = 1; i < outcome.execution.combinations.size(); ++i) {
    EXPECT_LE(outcome.execution.combinations[i].combined_score,
              outcome.execution.combinations[i - 1].combined_score + 1e-12);
  }
}

TEST_F(DoctorScenarioTest, ParallelJoinOfTwoKeyedSearchServices) {
  // Doctor and Hospital both bind from user inputs: a genuine parallel join
  // (WorksAt has no pipe direction), with Insurance piped afterwards.
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario_.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario_.registry));
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.atom_settings[0].fetch_factor = 4;
  spec.atom_settings[1].fetch_factor = 3;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  ApplyAutoStrategies(&plan);
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  bool has_join = false;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) {
      has_join = true;
      ASSERT_EQ(n.join_groups.size(), 1u);
      EXPECT_EQ(plan.query().joins[n.join_groups[0]].pattern_name, "WorksAt");
      // Doctor is linear, Hospital quadratic: both progressive -> merge-scan.
      EXPECT_EQ(n.strategy.invocation, JoinInvocation::kMergeScan);
    }
  }
  EXPECT_TRUE(has_join);
  int insurance_node = plan.NodeOfAtom(2);
  EXPECT_FALSE(plan.node(insurance_node).pipe_groups.empty());
}

TEST_F(DoctorScenarioTest, StreamingEngineAgreesWithMaterializing) {
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario_.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario_.registry));
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 12;
  spec.atom_settings[1].fetch_factor = 3;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());

  ExecutionOptions mat_options;
  mat_options.k = 1000000;
  mat_options.truncate_to_k = false;
  mat_options.input_bindings = scenario_.inputs;
  mat_options.max_calls = 100000;
  ExecutionEngine materializing(mat_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult mat, materializing.Execute(plan));

  StreamingOptions stream_options;
  stream_options.k = 1000000;
  stream_options.input_bindings = scenario_.inputs;
  stream_options.max_calls = 100000;
  StreamingEngine streaming(stream_options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult stream, streaming.Execute(plan));
  EXPECT_TRUE(stream.exhausted);

  auto key_of = [](const Combination& c) {
    return c.components[0].AtomicAt(1).AsString() + "|" +
           c.components[1].AtomicAt(1).AsString();
  };
  std::multiset<std::string> mat_keys, stream_keys;
  for (const Combination& c : mat.combinations) mat_keys.insert(key_of(c));
  for (const Combination& c : stream.combinations) stream_keys.insert(key_of(c));
  EXPECT_EQ(mat_keys, stream_keys);
  EXPECT_FALSE(mat_keys.empty());
}

TEST_F(DoctorScenarioTest, InsuranceSelectiveInContext) {
  // ~half the hospitals are covered: the Covered=true selection shrinks the
  // stream, making the exact Insurance service selective in context (§3.2).
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario_.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario_.registry));
  TopologySpec spec;
  spec.stages = {{0}, {1}, {2}};
  spec.atom_settings[0].fetch_factor = 6;  // enough doctors/hospitals for
  spec.atom_settings[1].fetch_factor = 3;  // the 1/15 WorksAt join to hit
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 1000;
  options.truncate_to_k = false;
  options.input_bindings = scenario_.inputs;
  options.max_calls = 100000;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  int insurance_node = plan.NodeOfAtom(query.AtomIndex("I"));
  const NodeRuntimeStats& stats = result.node_stats[insurance_node];
  // Downstream selection removed uncovered hospitals.
  EXPECT_LT(result.total_combinations_produced, stats.tuples_out);
  EXPECT_GT(result.total_combinations_produced, 0);
}

}  // namespace
}  // namespace seco
