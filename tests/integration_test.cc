#include <gtest/gtest.h>

#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

TEST(IntegrationTest, MovieScenarioEndToEnd) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  QuerySession session(scenario.registry, options);
  SECO_ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                            session.Run(scenario.query_text, scenario.inputs));
  EXPECT_EQ(outcome.bound.atoms.size(), 3u);
  EXPECT_FALSE(outcome.execution.combinations.empty());
  EXPECT_LE(outcome.execution.combinations.size(), 10u);
  // Every combination satisfies the join conditions end to end.
  for (const Combination& combo : outcome.execution.combinations) {
    const Tuple& movie = combo.components[0];
    const Tuple& theatre = combo.components[1];
    const Tuple& restaurant = combo.components[2];
    // Shows: M.Title appears among T.Movie.Title instances.
    bool shows = false;
    for (const Value& title : theatre.CandidateValuesAt(AttrPath{9, 0})) {
      if (title.AsString() == movie.AtomicAt(0).AsString()) shows = true;
    }
    EXPECT_TRUE(shows);
    // DinnerPlace: restaurant reached through the theatre's address.
    EXPECT_EQ(restaurant.AtomicAt(1).AsString(),
              theatre.AtomicAt(4).AsString());
  }
  // Results arrive ranked.
  for (size_t i = 1; i < outcome.execution.combinations.size(); ++i) {
    EXPECT_LE(outcome.execution.combinations[i].combined_score,
              outcome.execution.combinations[i - 1].combined_score + 1e-12);
  }
}

TEST(IntegrationTest, ConferenceScenarioEndToEnd) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  QuerySession session(scenario.registry, options);
  SECO_ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                            session.Run(scenario.query_text, scenario.inputs));
  EXPECT_FALSE(outcome.execution.combinations.empty());
  for (const Combination& combo : outcome.execution.combinations) {
    const Tuple& conf = combo.components[0];
    const Tuple& weather = combo.components[1];
    const Tuple& flight = combo.components[2];
    const Tuple& hotel = combo.components[3];
    // Weather joined on (city, date) and above the 26C threshold.
    EXPECT_EQ(weather.AtomicAt(0).AsString(), conf.AtomicAt(2).AsString());
    EXPECT_GT(weather.AtomicAt(2).AsDouble(), 26.0);
    // Flight and hotel serve the conference city.
    EXPECT_EQ(flight.AtomicAt(0).AsString(), conf.AtomicAt(2).AsString());
    EXPECT_EQ(hotel.AtomicAt(0).AsString(), conf.AtomicAt(2).AsString());
  }
}

TEST(IntegrationTest, PrepareExposesFeasibility) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  QuerySession session(scenario.registry);
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_TRUE(report.feasible);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario s1, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(Scenario s2, MakeMovieScenario());
  OptimizerOptions options;
  options.k = 5;
  QuerySession a(s1.registry, options);
  QuerySession b(s2.registry, options);
  SECO_ASSERT_OK_AND_ASSIGN(QueryOutcome oa, a.Run(s1.query_text, s1.inputs));
  SECO_ASSERT_OK_AND_ASSIGN(QueryOutcome ob, b.Run(s2.query_text, s2.inputs));
  ASSERT_EQ(oa.execution.combinations.size(), ob.execution.combinations.size());
  for (size_t i = 0; i < oa.execution.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(oa.execution.combinations[i].combined_score,
                     ob.execution.combinations[i].combined_score);
  }
  EXPECT_EQ(oa.execution.total_calls, ob.execution.total_calls);
  EXPECT_DOUBLE_EQ(oa.optimization.cost, ob.optimization.cost);
}

TEST(IntegrationTest, WsmsThreeBranchPlanExecutes) {
  // The WSMS baseline produces a 3-branch parallel join for the conference
  // query (Weather || Flight || Hotel); the engine must combine all three
  // branches per conference tuple.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  QuerySession session(scenario.registry);
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult wsms, WsmsOptimize(q, 10));
  int three_branch_joins = 0;
  for (const PlanNode& n : wsms.plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin && n.inputs.size() == 3) {
      ++three_branch_joins;
    }
  }
  ASSERT_EQ(three_branch_joins, 1);
  ExecutionOptions options;
  options.k = 50;
  options.truncate_to_k = false;
  options.input_bindings = scenario.inputs;
  options.max_calls = 100000;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(wsms.plan));
  ASSERT_FALSE(result.combinations.empty());
  for (const Combination& combo : result.combinations) {
    const Tuple& conf = combo.components[0];
    EXPECT_EQ(combo.components[1].AtomicAt(0).AsString(),
              conf.AtomicAt(2).AsString());  // weather city
    EXPECT_EQ(combo.components[2].AtomicAt(0).AsString(),
              conf.AtomicAt(2).AsString());  // flight city
    EXPECT_EQ(combo.components[3].AtomicAt(0).AsString(),
              conf.AtomicAt(2).AsString());  // hotel city
    EXPECT_GT(combo.components[1].AtomicAt(2).AsDouble(), 26.0);
  }
}

TEST(IntegrationTest, BadQueryTextSurfacesParseError) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  QuerySession session(scenario.registry);
  Result<QueryOutcome> outcome = session.Run("select", {});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kParseError);
}

TEST(IntegrationTest, EstimatesTrackActualsWithinFactor) {
  // The optimizer's call estimate and the engine's actual calls should be
  // within an order of magnitude (the call cache makes actuals cheaper).
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  QuerySession session(scenario.registry, options);
  SECO_ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                            session.Run(scenario.query_text, scenario.inputs));
  double estimated = outcome.optimization.cost;  // call count metric
  double actual = outcome.execution.total_calls;
  EXPECT_GT(actual, 0);
  EXPECT_LT(actual, estimated * 10 + 10);
  EXPECT_GT(actual * 10 + 10, estimated);
}

}  // namespace
}  // namespace seco
