#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/printer.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

/// Structural equality of parsed queries (enough for round-trip checks).
void ExpectSameQuery(const ParsedQuery& a, const ParsedQuery& b) {
  ASSERT_EQ(a.atoms.size(), b.atoms.size());
  for (size_t i = 0; i < a.atoms.size(); ++i) {
    EXPECT_EQ(a.atoms[i].service_name, b.atoms[i].service_name);
    EXPECT_EQ(a.atoms[i].alias, b.atoms[i].alias);
  }
  ASSERT_EQ(a.connections.size(), b.connections.size());
  for (size_t i = 0; i < a.connections.size(); ++i) {
    EXPECT_EQ(a.connections[i].pattern_name, b.connections[i].pattern_name);
    EXPECT_EQ(a.connections[i].from_alias, b.connections[i].from_alias);
    EXPECT_EQ(a.connections[i].to_alias, b.connections[i].to_alias);
  }
  ASSERT_EQ(a.predicates.size(), b.predicates.size());
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    EXPECT_EQ(a.predicates[i].lhs.alias, b.predicates[i].lhs.alias);
    EXPECT_EQ(a.predicates[i].lhs.path, b.predicates[i].lhs.path);
    EXPECT_EQ(a.predicates[i].op, b.predicates[i].op);
    EXPECT_EQ(a.predicates[i].rhs.index(), b.predicates[i].rhs.index());
  }
  ASSERT_EQ(a.ranking_weights.size(), b.ranking_weights.size());
  for (size_t i = 0; i < a.ranking_weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ranking_weights[i], b.ranking_weights[i]);
  }
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery original, ParseQuery(GetParam()));
  std::string printed = ToQueryText(original);
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery reparsed, ParseQuery(printed));
  ExpectSameQuery(original, reparsed);
  // Printing is a fixed point: print(parse(print(q))) == print(q).
  EXPECT_EQ(ToQueryText(reparsed), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "select S where S.A = 1",
        "select S as X where X.A != 'text'",
        "select A, B where A.K = B.K",
        "select A as L, B as R where Links(L, R) and L.X like 'pat%'",
        "select M, T where M.G.Sub >= 2.5 and T.Y < M.Z",
        "select A, B, C where A.X = INPUT1 and B.Y = A.X and C.Z <= 7 "
        "rank by (0.25, 0.5, 0.25)",
        "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
        "where Shows(M, T) and DinnerPlace(T, R) and M.Genres.Genre = INPUT1 "
        "and M.Openings.Date > INPUT3 rank by (0.3, 0.5, 0.2)"));

TEST(PrinterTest, BoundQueryDebugString) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            BindQuery(parsed, *scenario.registry));
  std::string text = BoundQueryDebugString(bound);
  EXPECT_NE(text.find("M -> Movie11"), std::string::npos);
  EXPECT_NE(text.find("Shows"), std::string::npos);
  EXPECT_NE(text.find("DinnerPlace"), std::string::npos);
  EXPECT_NE(text.find("INPUT1"), std::string::npos);
  EXPECT_NE(text.find("sel 0.02"), std::string::npos);
}

TEST(PrinterTest, MartLevelAtomRendered) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery("select Movie as M where M.Title = 'x'"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            BindQuery(parsed, *scenario.registry));
  std::string text = BoundQueryDebugString(bound);
  EXPECT_NE(text.find("<mart:Movie>"), std::string::npos);
}

}  // namespace
}  // namespace seco
