#include <gtest/gtest.h>

#include "exec/engine.h"
#include "optimizer/augmentation.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

/// Fixture: a Theatre-like service whose UAddress input is NOT bound by the
/// query, plus an off-query GeoCoder service that outputs UAddress given a
/// UCity (which the query does bind by constant).
class AugmentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ServiceRegistry>();

    SimServiceBuilder theatre("Theatres");
    theatre
        .Schema({AttributeDef::Atomic("Name", ValueType::kString),
                 AttributeDef::Atomic("UAddress", ValueType::kString),
                 AttributeDef::Atomic("UCity", ValueType::kString),
                 AttributeDef::Atomic("Distance", ValueType::kDouble)})
        .Pattern({{"Name", Adornment::kOutput},
                  {"UAddress", Adornment::kInput},
                  {"UCity", Adornment::kInput},
                  {"Distance", Adornment::kRanked}})
        .Kind(ServiceKind::kSearch);
    theatre.AddRow(Tuple({Value("T1"), Value("Addr1"), Value("Milano"),
                          Value(0.5)}),
                   0.5);
    ASSERT_TRUE(theatre.BuildInto(*registry_).ok());

    SimServiceBuilder geocoder("GeoCoder");
    geocoder
        .Schema({AttributeDef::Atomic("UCity", ValueType::kString),
                 AttributeDef::Atomic("UAddress", ValueType::kString)})
        .Pattern({{"UCity", Adornment::kInput},
                  {"UAddress", Adornment::kOutput}})
        .Kind(ServiceKind::kExact);
    geocoder.AddRow(Tuple({Value("Milano"), Value("Addr1")}));
    ASSERT_TRUE(geocoder.BuildInto(*registry_).ok());

    // A red herring: outputs an attribute with the right name but wrong type.
    SimServiceBuilder wrong_type("WrongType");
    wrong_type
        .Schema({AttributeDef::Atomic("UAddress", ValueType::kInt)})
        .Pattern({{"UAddress", Adornment::kOutput}})
        .Kind(ServiceKind::kExact);
    wrong_type.AddRow(Tuple({Value(42)}));
    ASSERT_TRUE(wrong_type.BuildInto(*registry_).ok());

    // A provider whose own inputs the query cannot bind.
    SimServiceBuilder needy("NeedyProvider");
    needy
        .Schema({AttributeDef::Atomic("Zip", ValueType::kString),
                 AttributeDef::Atomic("UAddress", ValueType::kString)})
        .Pattern({{"Zip", Adornment::kInput},
                  {"UAddress", Adornment::kOutput}})
        .Kind(ServiceKind::kExact);
    needy.AddRow(Tuple({Value("20133"), Value("Addr1")}));
    ASSERT_TRUE(needy.BuildInto(*registry_).ok());
  }

  Result<BoundQuery> Bind(const std::string& text) {
    SECO_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
    return BindQuery(parsed, *registry_);
  }

  std::shared_ptr<ServiceRegistry> registry_;
};

TEST_F(AugmentationTest, FeasibleQueryYieldsNoSuggestions) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Theatres as T where T.UAddress = 'Addr1' and "
           "T.UCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<AugmentationSuggestion> suggestions,
                            SuggestAugmentations(q, *registry_));
  EXPECT_TRUE(suggestions.empty());
}

TEST_F(AugmentationTest, SuggestsOffQueryProvider) {
  // UAddress unbound -> infeasible; GeoCoder can supply it from UCity.
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Theatres as T where T.UCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<AugmentationSuggestion> suggestions,
                            SuggestAugmentations(q, *registry_));
  ASSERT_FALSE(suggestions.empty());
  const AugmentationSuggestion& best = suggestions.front();
  EXPECT_EQ(best.provider_interface, "GeoCoder");
  EXPECT_EQ(best.input_name, "UAddress");
  EXPECT_EQ(best.provider_output, "UAddress");
  EXPECT_TRUE(best.provider_invocable);
  ASSERT_EQ(best.provider_input_bindings.size(), 1u);
  EXPECT_GE(best.provider_input_bindings[0], 0);  // bound by T.UCity='Milano'
}

TEST_F(AugmentationTest, TypeMismatchExcluded) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Theatres as T where T.UCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<AugmentationSuggestion> suggestions,
                            SuggestAugmentations(q, *registry_));
  for (const AugmentationSuggestion& s : suggestions) {
    EXPECT_NE(s.provider_interface, "WrongType");
  }
}

TEST_F(AugmentationTest, NonInvocableProviderRankedLast) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Theatres as T where T.UCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<AugmentationSuggestion> suggestions,
                            SuggestAugmentations(q, *registry_));
  // NeedyProvider (Zip unbound) must appear, flagged non-invocable, after
  // the invocable GeoCoder.
  bool found_needy = false;
  bool invocable_region = true;
  for (const AugmentationSuggestion& s : suggestions) {
    if (!s.provider_invocable) invocable_region = false;
    if (s.provider_interface == "NeedyProvider") {
      found_needy = true;
      EXPECT_FALSE(s.provider_invocable);
      EXPECT_FALSE(invocable_region);
    }
  }
  EXPECT_TRUE(found_needy);
}

TEST_F(AugmentationTest, ApplyMakesQueryFeasibleAndExecutable) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Theatres as T where T.UCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<AugmentationSuggestion> suggestions,
                            SuggestAugmentations(q, *registry_));
  ASSERT_FALSE(suggestions.empty());
  ASSERT_TRUE(suggestions.front().provider_invocable);
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery augmented,
      ApplyAugmentation(q, *registry_, suggestions.front()));
  ASSERT_EQ(augmented.atoms.size(), 2u);
  EXPECT_EQ(augmented.atoms[1].iface->name(), "GeoCoder");

  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report,
                            CheckFeasibility(augmented));
  EXPECT_TRUE(report.feasible) << report.reason;

  // End-to-end: the augmented query actually runs and produces the theatre
  // reached through the geocoded address.
  Optimizer optimizer(OptimizerOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult plan, optimizer.Optimize(augmented));
  ExecutionOptions exec_options;
  exec_options.k = 5;
  ExecutionEngine engine(exec_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan.plan));
  ASSERT_EQ(result.combinations.size(), 1u);
  EXPECT_EQ(result.combinations[0].components[0].AtomicAt(0).AsString(), "T1");
}

TEST_F(AugmentationTest, ApplyRejectsNonInvocableProvider) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Theatres as T where T.UCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<AugmentationSuggestion> suggestions,
                            SuggestAugmentations(q, *registry_));
  const AugmentationSuggestion* needy = nullptr;
  for (const AugmentationSuggestion& s : suggestions) {
    if (s.provider_interface == "NeedyProvider") needy = &s;
  }
  ASSERT_NE(needy, nullptr);
  Result<BoundQuery> augmented = ApplyAugmentation(q, *registry_, *needy);
  EXPECT_FALSE(augmented.ok());
  EXPECT_EQ(augmented.status().code(), StatusCode::kUnsupported);
}

TEST_F(AugmentationTest, NoProviderNoSuggestions) {
  // Unbound input with a leaf name nothing provides.
  SimServiceBuilder lonely("Lonely");
  lonely
      .Schema({AttributeDef::Atomic("Out", ValueType::kString),
               AttributeDef::Atomic("Frobnicator", ValueType::kString)})
      .Pattern({{"Out", Adornment::kOutput},
                {"Frobnicator", Adornment::kInput}})
      .Kind(ServiceKind::kExact);
  lonely.AddRow(Tuple({Value("x"), Value("y")}));
  ASSERT_TRUE(lonely.BuildInto(*registry_).ok());
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Lonely as L where L.Out = 'x'"));
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<AugmentationSuggestion> suggestions,
                            SuggestAugmentations(q, *registry_));
  EXPECT_TRUE(suggestions.empty());
}

}  // namespace
}  // namespace seco
