// The TCP front end (docs/NETWORK.md): framed queries in, chunked answer
// bodies out, keep-alive pipelining in submission order, shed responses
// carrying their retry-after hint on the wire, malformed payloads failing
// the request (not the connection), hostile framing dropping the
// connection, and graceful drain refusing new connections with a
// structured retry-after while in-flight queries finish.

#include "net/net_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/client.h"
#include "net/wire.h"
#include "server/server.h"
#include "sim/fixtures.h"

namespace seco {
namespace {

/// Scenario + server + front end on an ephemeral loopback port. The ladder
/// is disabled so every admitted query runs at level 0 and answers are
/// byte-reproducible.
struct Harness {
  Scenario scenario;
  std::unique_ptr<QueryServer> server;
  std::unique_ptr<NetServer> net;

  QueryRequest Request(int k = 5) const {
    QueryRequest request;
    request.query_text = scenario.query_text;
    request.input_bindings = scenario.inputs;
    request.k = k;
    return request;
  }
};

Harness MakeHarness(ServerOptions options = {}) {
  Harness h;
  Result<Scenario> scenario = MakeMovieScenario();
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  h.scenario = scenario.value();
  options.ladder.enabled = false;
  h.server = std::make_unique<QueryServer>(h.scenario.registry, options);
  h.net = std::make_unique<NetServer>(h.server.get());
  EXPECT_TRUE(h.net->Start().ok());
  return h;
}

/// Dials the front end and completes the query-client hello by hand, for
/// tests that need to send raw (malformed) frames afterwards.
Socket RawHello(uint16_t port, FrameDecoder* decoder) {
  Result<Socket> conn = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  WireWriter hello;
  hello.U32(kWireMagic);
  hello.U16(kWireVersion);
  hello.U8(static_cast<uint8_t>(WireRole::kQueryClient));
  EXPECT_TRUE(SendFrame(&conn.value(), FrameType::kHello, hello.Take()).ok());
  Result<Frame> ack = RecvFrame(&conn.value(), decoder);
  EXPECT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().type, FrameType::kHelloAck);
  return std::move(conn.value());
}

TEST(NetServerTest, WireAnswerIsByteIdenticalToInProcessSubmission) {
  Harness h = MakeHarness();
  QueryRequest request = h.Request();

  // The oracle: the same request submitted in-process on a *separate*
  // server over the same substrate. (A repeat on the same server is
  // legitimately different: the per-server call cache makes repeated
  // service calls free, which zeroes the timing telemetry.)
  QueryResponse in_process;
  {
    ServerOptions options;
    options.ladder.enabled = false;
    QueryServer oracle(h.scenario.registry, options);
    in_process = oracle.Submit(request).get();
  }
  ASSERT_EQ(in_process.outcome, ServedOutcome::kCompleted);

  // ...and over the wire must produce the same answer-body bytes.
  Result<NetClient> client = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<WireResponse> wire = client.value().Roundtrip(1, request);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire.value().request_id, 1u);
  EXPECT_EQ(wire.value().status, WireStatus::kOk);
  EXPECT_EQ(wire.value().body, EncodeAnswerBody(in_process));

  client.value().Goodbye();
  h.net->Stop();
}

TEST(NetServerTest, KeepAliveConnectionServesManyQueries) {
  Harness h = MakeHarness();
  Result<NetClient> client = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_TRUE(client.ok());
  std::string warm_body;
  for (uint64_t id = 1; id <= 3; ++id) {
    Result<WireResponse> wire =
        client.value().Roundtrip(id, h.Request());
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(wire.value().request_id, id);
    EXPECT_EQ(wire.value().status, WireStatus::kOk);
    // Warm repeats are deterministic. (The first run is the cold one: the
    // call cache makes repeated service calls free, so its timing
    // telemetry differs from the warm runs'.)
    if (id == 2) {
      warm_body = wire.value().body;
    } else if (id == 3) {
      EXPECT_EQ(wire.value().body, warm_body);
    }
  }
  EXPECT_TRUE(client.value().Ping(0xC0FFEE).ok());
  client.value().Goodbye();
  h.net->Stop();
  EXPECT_EQ(h.net->queries_served(), 3);
  EXPECT_EQ(h.net->connections_accepted(), 1);
  EXPECT_EQ(h.net->protocol_errors(), 0);
}

TEST(NetServerTest, PipelinedResponsesComeBackInSubmissionOrder) {
  Harness h = MakeHarness();
  Result<NetClient> client = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_TRUE(client.ok());
  const uint64_t ids[] = {7, 3, 99, 12};
  for (uint64_t id : ids) {
    // Vary k so the responses differ — order must come from submission
    // order, not from response equality.
    ASSERT_TRUE(
        client.value().Submit(id, h.Request(3 + (id % 4))).ok());
  }
  for (uint64_t id : ids) {
    Result<WireResponse> wire = client.value().Receive();
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(wire.value().request_id, id);
    EXPECT_EQ(wire.value().status, WireStatus::kOk);
  }
  client.value().Goodbye();
  h.net->Stop();
}

TEST(NetServerTest, ShedQueriesCarryRetryAfterOnTheWire) {
  ServerOptions options;
  options.admission.max_in_flight = 1;
  // One slot deep: the first submission is admitted, the burst behind it
  // overflows. (Capacity 0 would shed even the first — Submit always lands
  // in the class queue before a runner picks it up.)
  options.admission.interactive.queue_capacity = 1;
  options.runner_threads = 1;
  Harness h = MakeHarness(options);

  Result<NetClient> client = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_TRUE(client.ok());
  const int n = 8;
  for (uint64_t id = 1; id <= n; ++id) {
    ASSERT_TRUE(client.value().Submit(id, h.Request()).ok());
  }
  int shed = 0, served = 0;
  for (int i = 0; i < n; ++i) {
    Result<WireResponse> wire = client.value().Receive();
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    if (wire.value().status == WireStatus::kShed) {
      ++shed;
      // The header's retry-after matches the body's structured hint.
      EXPECT_GT(wire.value().retry_after_ms, 0.0);
      Result<QueryResponse> decoded = DecodeAnswerBody(wire.value().body);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded.value().outcome, ServedOutcome::kShed);
      EXPECT_EQ(decoded.value().status.code(), StatusCode::kRejected);
      EXPECT_EQ(decoded.value().retry_after_ms, wire.value().retry_after_ms);
    } else {
      ++served;
      EXPECT_EQ(wire.value().status, WireStatus::kOk);
    }
  }
  // A one-deep queue with one in-flight slot must shed some of eight
  // back-to-back submissions, and must serve at least the first.
  EXPECT_GT(shed, 0);
  EXPECT_GT(served, 0);
  client.value().Goodbye();
  h.net->Stop();
}

TEST(NetServerTest, MalformedQueryPayloadFailsTheRequestNotTheConnection) {
  Harness h = MakeHarness();
  FrameDecoder decoder;
  Socket conn = RawHello(h.net->port(), &decoder);

  // A kQuery frame whose payload is an id plus garbage: the front end must
  // answer it kFailed and keep serving the connection.
  WireWriter bad;
  bad.U64(41);
  bad.Bytes("this is not a query request", 27);
  ASSERT_TRUE(SendFrame(&conn, FrameType::kQuery, bad.Take()).ok());

  Result<Frame> header = RecvFrame(&conn, &decoder);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  ASSERT_EQ(header.value().type, FrameType::kResultHeader);
  {
    WireReader r(header.value().payload);
    EXPECT_EQ(r.U64().value(), 41u);
    EXPECT_EQ(r.U8().value(), static_cast<uint8_t>(WireStatus::kFailed));
  }
  // Drain the body + end frames of the failure response.
  while (true) {
    Result<Frame> f = RecvFrame(&conn, &decoder);
    ASSERT_TRUE(f.ok());
    if (f.value().type == FrameType::kResultEnd) break;
    ASSERT_EQ(f.value().type, FrameType::kResultBody);
  }

  // The connection survived: a ping still pongs.
  WireWriter ping;
  ping.U64(5);
  ASSERT_TRUE(SendFrame(&conn, FrameType::kPing, ping.Take()).ok());
  Result<Frame> pong = RecvFrame(&conn, &decoder);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().type, FrameType::kPong);
  h.net->Stop();
  EXPECT_EQ(h.net->protocol_errors(), 0);
}

TEST(NetServerTest, PingBehindPipelinedQueriesNeverInterleavesMidResponse) {
  // Queries and a ping sent in one burst: the ping arrives at the server's
  // reader while the writer is still streaming result frames. The pong must
  // ride the reply FIFO — behind the two complete responses — never between
  // a result header and its body chunks (which would corrupt the stream).
  Harness h = MakeHarness();
  FrameDecoder decoder;
  Socket conn = RawHello(h.net->port(), &decoder);

  std::string burst;
  for (uint64_t id = 1; id <= 2; ++id) {
    WireWriter q;
    q.U64(id);
    std::string encoded = EncodeQueryRequest(h.Request());
    q.Bytes(encoded.data(), encoded.size());
    burst += EncodeFrame(FrameType::kQuery, q.Take());
  }
  WireWriter ping;
  ping.U64(0xFEED);
  burst += EncodeFrame(FrameType::kPing, ping.Take());
  ASSERT_TRUE(conn.SendAll(burst).ok());

  for (uint64_t id = 1; id <= 2; ++id) {
    Result<Frame> header = RecvFrame(&conn, &decoder);
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    ASSERT_EQ(header.value().type, FrameType::kResultHeader);
    EXPECT_EQ(WireReader(header.value().payload).U64().value(), id);
    // Until kResultEnd, ONLY body chunks for this id may appear.
    while (true) {
      Result<Frame> f = RecvFrame(&conn, &decoder);
      ASSERT_TRUE(f.ok()) << f.status().ToString();
      if (f.value().type == FrameType::kResultEnd) break;
      ASSERT_EQ(f.value().type, FrameType::kResultBody);
      EXPECT_EQ(WireReader(f.value().payload).U64().value(), id);
    }
  }
  Result<Frame> pong = RecvFrame(&conn, &decoder);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.value().type, FrameType::kPong);
  EXPECT_EQ(WireReader(pong.value().payload).U64().value(), 0xFEEDu);
  h.net->Stop();
  EXPECT_EQ(h.net->queries_served(), 2);
}

TEST(NetServerTest, ManyShortLivedConnectionsThenCleanStop) {
  // Connection churn: finished serving threads are reaped as new
  // connections arrive (rather than accumulating until Stop), and Stop
  // still joins whatever is live.
  Harness h = MakeHarness();
  for (int i = 0; i < 20; ++i) {
    Result<NetClient> client = NetClient::Connect("127.0.0.1", h.net->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client.value().Ping(static_cast<uint64_t>(i)).ok());
    client.value().Goodbye();
  }
  h.net->Stop();
  EXPECT_EQ(h.net->connections_accepted(), 20);
  EXPECT_EQ(h.net->protocol_errors(), 0);
}

TEST(NetServerTest, GarbageFramingDropsTheConnection) {
  Harness h = MakeHarness();
  FrameDecoder decoder;
  Socket conn = RawHello(h.net->port(), &decoder);

  // An oversized length prefix with a garbage type: the server answers with
  // kError and hangs up.
  ASSERT_TRUE(conn.SendAll(std::string(64, '\xEE')).ok());
  Result<Frame> error = RecvFrame(&conn, &decoder);
  ASSERT_TRUE(error.ok()) << error.status().ToString();
  EXPECT_EQ(error.value().type, FrameType::kError);
  // Then EOF.
  Result<Frame> eof = RecvFrame(&conn, &decoder);
  EXPECT_FALSE(eof.ok());
  h.net->Stop();
  EXPECT_EQ(h.net->protocol_errors(), 1);
}

TEST(NetServerTest, BackendRoleHelloIsRefused) {
  Harness h = MakeHarness();
  Result<Socket> conn = ConnectTcp("127.0.0.1", h.net->port());
  ASSERT_TRUE(conn.ok());
  WireWriter hello;
  hello.U32(kWireMagic);
  hello.U16(kWireVersion);
  hello.U8(static_cast<uint8_t>(WireRole::kBackendClient));
  ASSERT_TRUE(
      SendFrame(&conn.value(), FrameType::kHello, hello.Take()).ok());
  FrameDecoder decoder;
  Result<Frame> reply = RecvFrame(&conn.value(), &decoder);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, FrameType::kError);
  h.net->Stop();
}

TEST(NetServerTest, DrainRefusesNewConnectionsAndFlagsLateQueries) {
  Harness h = MakeHarness();

  // A connection opened before the drain keeps its pipeline...
  Result<NetClient> veteran = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_TRUE(veteran.ok());

  h.net->BeginDrain();
  EXPECT_TRUE(h.net->draining());
  EXPECT_TRUE(h.server->draining());

  // ...but its post-drain submissions come back kDraining with a
  // retry-after, and decode as shed-by-drain.
  Result<WireResponse> late = veteran.value().Roundtrip(1, h.Request());
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late.value().status, WireStatus::kDraining);
  EXPECT_GT(late.value().retry_after_ms, 0.0);
  Result<QueryResponse> decoded = DecodeAnswerBody(late.value().body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().outcome, ServedOutcome::kShed);
  EXPECT_NE(decoded.value().status.message().find("draining"),
            std::string::npos);

  // New connections are refused at hello with the structured rejection.
  Result<NetClient> refused = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kRejected);

  veteran.value().Goodbye();
  h.net->Stop();
  EXPECT_FALSE(h.net->running());
}

TEST(NetServerTest, StopIsIdempotentAndStartRebindsAfterStop) {
  Harness h = MakeHarness();
  uint16_t port = h.net->port();
  EXPECT_GT(port, 0);
  h.net->Stop();
  h.net->Stop();  // idempotent
  EXPECT_FALSE(h.net->running());
  // The QueryServer behind a stopped front end has been drained, and the
  // drain is irreversible: a fresh front end on a fresh server still works.
  QueryServer fresh(h.scenario.registry, h.server->options());
  NetServer net2(&fresh);
  ASSERT_TRUE(net2.Start().ok());
  Result<NetClient> client = NetClient::Connect("127.0.0.1", net2.port());
  ASSERT_TRUE(client.ok());
  Result<WireResponse> wire = client.value().Roundtrip(1, h.Request());
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire.value().status, WireStatus::kOk);
  net2.Stop();
}

}  // namespace
}  // namespace seco
