// Metric-specific optimizer behaviour and golden regressions: the optimizer
// must react to the chosen metric, and the §5.6 numbers must stay pinned.

#include <gtest/gtest.h>

#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class OptimizerMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeDoctorScenario();
    ASSERT_TRUE(scenario.ok());
    doctor_ = std::move(scenario).value();
    Result<Scenario> movie = MakeMovieScenario();
    ASSERT_TRUE(movie.ok());
    movie_ = std::move(movie).value();
  }

  Result<OptimizationResult> OptimizeWith(const Scenario& scenario,
                                          CostMetricKind metric, int k = 10) {
    SECO_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(scenario.query_text));
    SECO_ASSIGN_OR_RETURN(BoundQuery query,
                          BindQuery(parsed, *scenario.registry));
    OptimizerOptions options;
    options.k = k;
    options.metric = metric;
    Optimizer optimizer(options);
    return optimizer.Optimize(query);
  }

  Scenario doctor_;
  Scenario movie_;
};

TEST_F(OptimizerMetricsTest, EveryMetricProducesAValidPlan) {
  for (CostMetricKind metric :
       {CostMetricKind::kExecutionTime, CostMetricKind::kSumCost,
        CostMetricKind::kRequestResponse, CostMetricKind::kCallCount,
        CostMetricKind::kBottleneck, CostMetricKind::kTimeToScreen}) {
    SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result,
                              OptimizeWith(doctor_, metric));
    SECO_ASSERT_OK(result.plan.Validate());
    EXPECT_GT(result.cost, 0.0) << CostMetricKindToString(metric);
    // The reported cost must equal re-pricing the returned plan.
    SECO_ASSERT_OK_AND_ASSIGN(double repriced, PlanCost(result.plan, metric));
    EXPECT_DOUBLE_EQ(result.cost, repriced) << CostMetricKindToString(metric);
  }
}

TEST_F(OptimizerMetricsTest, TimeToScreenNeverWorseThanExecutionTimePlan) {
  SECO_ASSERT_OK_AND_ASSIGN(
      OptimizationResult tts_opt,
      OptimizeWith(doctor_, CostMetricKind::kTimeToScreen));
  SECO_ASSERT_OK_AND_ASSIGN(
      OptimizationResult exec_opt,
      OptimizeWith(doctor_, CostMetricKind::kExecutionTime));
  SECO_ASSERT_OK_AND_ASSIGN(
      double tts_of_tts, PlanCost(tts_opt.plan, CostMetricKind::kTimeToScreen));
  SECO_ASSERT_OK_AND_ASSIGN(
      double tts_of_exec,
      PlanCost(exec_opt.plan, CostMetricKind::kTimeToScreen));
  EXPECT_LE(tts_of_tts, tts_of_exec + 1e-9);
}

TEST_F(OptimizerMetricsTest, CallCountOptimizerNeverWorseOnCalls) {
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult calls_opt,
                            OptimizeWith(movie_, CostMetricKind::kCallCount));
  SECO_ASSERT_OK_AND_ASSIGN(
      OptimizationResult time_opt,
      OptimizeWith(movie_, CostMetricKind::kExecutionTime));
  SECO_ASSERT_OK_AND_ASSIGN(double calls_of_calls,
                            PlanCost(calls_opt.plan, CostMetricKind::kCallCount));
  SECO_ASSERT_OK_AND_ASSIGN(double calls_of_time,
                            PlanCost(time_opt.plan, CostMetricKind::kCallCount));
  EXPECT_LE(calls_of_calls, calls_of_time + 1e-9);
}

TEST_F(OptimizerMetricsTest, GoldenFig10AnnotationsInJson) {
  // Golden regression of the §5.6 arithmetic through the JSON exporter.
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(movie_.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *movie_.registry));
  for (BoundSelection& sel : query.selections) {
    if (sel.op == Comparator::kGt) sel.selectivity = 1.0;
  }
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kTriangular;
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  spec.atom_settings[2].keep_per_input = 1;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  AnnotationParams params;
  params.k = 10;
  SECO_ASSERT_OK(AnnotatePlan(&plan, params).status());
  std::string json = PlanToJson(plan);
  // The six §5.6 quantities, pinned.
  EXPECT_NE(json.find("\"service\":\"Movie11\",\"service_kind\":\"search\","
                      "\"chunked\":true,\"fetch_factor\":5,\"est_calls\":5,"
                      "\"t_in\":1,\"t_out\":100"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"t_in\":1250,\"t_out\":25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"keep_per_input\":1"), std::string::npos);
  EXPECT_NE(json.find("\"t_in\":25,\"t_out\":10"), std::string::npos) << json;
}

TEST_F(OptimizerMetricsTest, ExecutionTraceRecordsCalls) {
  SECO_ASSERT_OK_AND_ASSIGN(
      OptimizationResult result,
      OptimizeWith(doctor_, CostMetricKind::kCallCount, /*k=*/5));
  ExecutionOptions options;
  options.k = 5;
  options.input_bindings = doctor_.inputs;
  options.max_calls = 100000;
  options.collect_trace = true;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult exec, engine.Execute(result.plan));
  ASSERT_EQ(static_cast<int>(exec.trace.size()), exec.total_calls);
  // Chunk indexes per (service, binding) are strictly increasing (no
  // repeated call thanks to the engine's cache).
  std::map<std::string, int> last_chunk;
  for (const CallEvent& event : exec.trace) {
    std::string key = event.service + "|" + event.binding_key;
    auto it = last_chunk.find(key);
    if (it != last_chunk.end()) {
      EXPECT_GT(event.chunk_index, it->second) << key;
    }
    last_chunk[key] = event.chunk_index;
    EXPECT_GT(event.latency_ms, 0.0);
    EXPECT_GE(event.node, 0);
  }
}

TEST_F(OptimizerMetricsTest, TraceDisabledByDefault) {
  SECO_ASSERT_OK_AND_ASSIGN(
      OptimizationResult result,
      OptimizeWith(doctor_, CostMetricKind::kCallCount, /*k=*/5));
  ExecutionOptions options;
  options.k = 5;
  options.input_bindings = doctor_.inputs;
  options.max_calls = 100000;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult exec, engine.Execute(result.plan));
  EXPECT_TRUE(exec.trace.empty());
  EXPECT_GT(exec.total_calls, 0);
}

}  // namespace
}  // namespace seco
