#include <gtest/gtest.h>

#include "exec/engine.h"
#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "query/semantics.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

/// Small two-service world: outer search service (no inputs) and keyed inner
/// service, joined on Key.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ServiceRegistry>();
    Result<BuiltService> outer =
        MakeKeyedSearchService("Outer", 20, 5, 4, ScoreDecay::kLinear);
    ASSERT_TRUE(outer.ok());
    outer_ = std::move(outer).value();
    Result<BuiltService> inner = MakeKeyedSearchService(
        "Inner", 40, 5, 4, ScoreDecay::kLinear, /*key_is_input=*/true);
    ASSERT_TRUE(inner.ok());
    inner_ = std::move(inner).value();
    ASSERT_TRUE(registry_->RegisterInterface(outer_.interface).ok());
    ASSERT_TRUE(registry_->RegisterInterface(inner_.interface).ok());
  }

  Result<BoundQuery> Bind(const std::string& text) {
    SECO_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
    return BindQuery(parsed, *registry_);
  }

  std::shared_ptr<ServiceRegistry> registry_;
  BuiltService outer_;
  BuiltService inner_;
};

TEST_F(EngineTest, PipeJoinExecutes) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key"));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 5;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  ASSERT_EQ(result.combinations.size(), 5u);
  for (const Combination& combo : result.combinations) {
    EXPECT_EQ(combo.components[0].AtomicAt(0).AsInt(),
              combo.components[1].AtomicAt(0).AsInt());
  }
  EXPECT_GT(result.total_calls, 0);
  EXPECT_GT(result.elapsed_ms, 0.0);
  EXPECT_LE(result.elapsed_ms, result.total_latency_ms + 1e-9);
}

TEST_F(EngineTest, ResultsSortedByCombinedScore) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key "
           "rank by (0.5, 0.5)"));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 20;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  for (size_t i = 1; i < result.combinations.size(); ++i) {
    EXPECT_LE(result.combinations[i].combined_score,
              result.combinations[i - 1].combined_score + 1e-12);
  }
}

TEST_F(EngineTest, CallCacheDeduplicatesBindings) {
  // 20 outer tuples share only 4 distinct keys: the keyed inner service
  // must be called once per distinct key, not once per tuple.
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key"));
  TopologySpec spec;
  spec.stages = {{0}, {1}};
  spec.atom_settings[0].fetch_factor = 4;  // all 20 outer tuples
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(q, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  inner_.backend->ResetCallCount();
  ExecutionOptions options;
  options.k = 1000;
  options.truncate_to_k = false;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  EXPECT_EQ(inner_.backend->call_count(), 4);  // one per distinct key
  EXPECT_GT(result.combinations.size(), 20u);
}

TEST_F(EngineTest, KeepPerInputLimitsPerBinding) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key"));
  TopologySpec spec;
  spec.stages = {{0}, {1}};
  spec.atom_settings[1].keep_per_input = 1;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(q, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 100;
  options.truncate_to_k = false;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  // 5 outer tuples (chunk 5, F=1), each keeps exactly 1 inner partner.
  EXPECT_EQ(result.combinations.size(), 5u);
}

TEST_F(EngineTest, MissingInputBindingFails) {
  registry_ = std::make_shared<ServiceRegistry>();
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService keyed,
      MakeKeyedSearchService("Keyed", 10, 5, 4, ScoreDecay::kLinear, true));
  SECO_ASSERT_OK(registry_->RegisterInterface(keyed.interface));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Keyed as K where K.Key = INPUT1"));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;  // INPUT1 not bound
  ExecutionEngine engine(options);
  Result<ExecutionResult> result = engine.Execute(plan);
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineTest, CallBudgetEnforced) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key"));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.max_calls = 1;
  ExecutionEngine engine(options);
  Result<ExecutionResult> result = engine.Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineTest, RetriesRecoverFromFlakyService) {
  // Wrap the inner service in a handler that fails the first two delivery
  // attempts of every request (identity-keyed, schedule-independent).
  FaultProfile profile;
  profile.transient_rate = 1.0;
  profile.transient_attempts = 2;
  profile.seed = 11;
  auto flaky = std::make_shared<FaultInjectingHandler>(inner_.backend, profile);
  auto iface = std::make_shared<ServiceInterface>(
      "FlakyInner", inner_.interface->schema_ptr(), inner_.interface->pattern(),
      ServiceKind::kSearch, inner_.interface->stats(), flaky);
  auto registry = std::make_shared<ServiceRegistry>();
  SECO_ASSERT_OK(registry->RegisterInterface(outer_.interface));
  SECO_ASSERT_OK(registry->RegisterInterface(iface));
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery("select Outer as O, FlakyInner as I "
                                       "where O.Key = I.Key"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindQuery(parsed, *registry));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());

  ExecutionOptions no_retries;
  no_retries.k = 5;
  ExecutionEngine fragile(no_retries);
  EXPECT_FALSE(fragile.Execute(plan).ok());

  ExecutionOptions with_retries;
  with_retries.k = 5;
  with_retries.call_retries = 2;
  ExecutionEngine robust(with_retries);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, robust.Execute(plan));
  EXPECT_EQ(result.combinations.size(), 5u);
}

TEST_F(EngineTest, NodeStatsArepopulated) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key"));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionEngine engine(ExecutionOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  int service_nodes_with_calls = 0;
  for (const auto& [node_id, stats] : result.node_stats) {
    if (plan.node(node_id).kind == PlanNodeKind::kServiceCall) {
      EXPECT_GT(stats.calls, 0);
      EXPECT_GT(stats.latency_ms, 0.0);
      ++service_nodes_with_calls;
    }
  }
  EXPECT_EQ(service_nodes_with_calls, 2);
}

// ---- Engine vs. oracle equivalence (the key correctness property) -------

TEST_F(EngineTest, MatchesOracleOnJoinQuery) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key and "
           "O.Relevance >= 0.5"));
  // Execute with enough fetches to materialize everything.
  TopologySpec spec;
  spec.stages = {{0}, {1}};
  spec.atom_settings[0].fetch_factor = 10;
  spec.atom_settings[1].fetch_factor = 10;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(q, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.truncate_to_k = false;
  options.k = 100000;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult exec, engine.Execute(plan));

  // Oracle over the full materialized relations.
  OracleInput oracle_input;
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse all_outer,
                            outer_.backend->FullScan({}));
  oracle_input.tuples.push_back(all_outer.tuples);
  oracle_input.scores.push_back(all_outer.scores);
  // Inner is keyed; enumerate raw rows (scores assigned per binding at call
  // time — for the oracle use score 0, weights only affect ordering).
  oracle_input.tuples.push_back(inner_.backend->rows());
  oracle_input.scores.emplace_back();
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> oracle,
                            EvaluateOracle(q, oracle_input, {}));

  EXPECT_EQ(exec.combinations.size(), oracle.size());
  // Same multiset of (outer val, inner val) pairs.
  auto key_of = [](const Combination& c) {
    return c.components[0].AtomicAt(1).AsString() + "|" +
           c.components[1].AtomicAt(1).AsString();
  };
  std::multiset<std::string> exec_keys, oracle_keys;
  for (const Combination& c : exec.combinations) exec_keys.insert(key_of(c));
  for (const Combination& c : oracle) oracle_keys.insert(key_of(c));
  EXPECT_EQ(exec_keys, oracle_keys);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Outer as O, Inner as I where O.Key = I.Key"));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 10;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult a, engine.Execute(plan));
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult b, engine.Execute(plan));
  ASSERT_EQ(a.combinations.size(), b.combinations.size());
  for (size_t i = 0; i < a.combinations.size(); ++i) {
    EXPECT_TRUE(a.combinations[i].components[0] == b.combinations[i].components[0]);
    EXPECT_TRUE(a.combinations[i].components[1] == b.combinations[i].components[1]);
  }
  EXPECT_EQ(a.total_calls, b.total_calls);
}

}  // namespace
}  // namespace seco
