// Canonical plan/query signatures (src/cache/signature.h): commuted join
// conjuncts and renamed aliases hash equal; anything that changes which
// answers come back — atom order, k, call budget, degradation level,
// bindings — hashes different.

#include <gtest/gtest.h>

#include "cache/answer_cache.h"
#include "cache/signature.h"
#include "query/bound_query.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class PlanSignatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
  }

  BoundQuery Bind(const std::string& text) {
    Result<ParsedQuery> parsed = ParseQuery(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    Result<BoundQuery> bound = BindQuery(parsed.value(), *scenario_.registry);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(bound).value();
  }

  Scenario scenario_;
};

constexpr const char* kBaseQuery =
    "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
    "where Shows(M, T) and DinnerPlace(T, R) "
    "and M.Genres.Genre = INPUT1 and T.UCity = INPUT5 "
    "rank by (0.3, 0.5, 0.2)";

TEST(PlanSignatureBasics, EmptyBuilderIsNonZeroAndStable) {
  Signature a = SignatureBuilder(1).Finish();
  Signature b = SignatureBuilder(1).Finish();
  Signature c = SignatureBuilder(2).Finish();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a.IsZero());
}

TEST(PlanSignatureBasics, CommutativeAccumulatorIsOrderFree) {
  CommutativeAccumulator x;
  x.Add(Signature{1, 2});
  x.Add(Signature{3, 4});
  CommutativeAccumulator y;
  y.Add(Signature{3, 4});
  y.Add(Signature{1, 2});
  EXPECT_EQ(x.Finish(), y.Finish());
  // Remove undoes Add exactly.
  y.Add(Signature{5, 6});
  y.Remove(Signature{5, 6});
  EXPECT_EQ(x.Finish(), y.Finish());
}

TEST_F(PlanSignatureTest, CommutedJoinConjunctsHashEqual) {
  BoundQuery a = Bind(kBaseQuery);
  BoundQuery b = Bind(
      "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
      "where DinnerPlace(T, R) and Shows(M, T) "
      "and M.Genres.Genre = INPUT1 and T.UCity = INPUT5 "
      "rank by (0.3, 0.5, 0.2)");
  EXPECT_EQ(QueryAnswerSignature(a), QueryAnswerSignature(b));
}

TEST_F(PlanSignatureTest, RenamedAliasesHashEqual) {
  BoundQuery a = Bind(kBaseQuery);
  BoundQuery b = Bind(
      "select Movie11 as X, Theatre11 as Y, Restaurant11 as Z "
      "where Shows(X, Y) and DinnerPlace(Y, Z) "
      "and X.Genres.Genre = INPUT1 and Y.UCity = INPUT5 "
      "rank by (0.3, 0.5, 0.2)");
  EXPECT_EQ(QueryAnswerSignature(a), QueryAnswerSignature(b));
  // The alias-free content signature agrees too; the alias-inclusive exact
  // tag (which gates optimizer plan reuse) distinguishes them.
  EXPECT_EQ(QueryContentSignature(a, /*include_aliases=*/false),
            QueryContentSignature(b, /*include_aliases=*/false));
  EXPECT_NE(ExactContentTag(a), ExactContentTag(b));
}

TEST_F(PlanSignatureTest, ReorderedAtomsHashDifferent) {
  BoundQuery a = Bind(kBaseQuery);
  // Atom positions are semantic: rank weights and join endpoints are
  // positional, so a different atom order is a different query.
  BoundQuery b = Bind(
      "select Theatre11 as T, Movie11 as M, Restaurant11 as R "
      "where Shows(M, T) and DinnerPlace(T, R) "
      "and M.Genres.Genre = INPUT1 and T.UCity = INPUT5 "
      "rank by (0.3, 0.5, 0.2)");
  EXPECT_FALSE(QueryAnswerSignature(a) == QueryAnswerSignature(b));
}

TEST_F(PlanSignatureTest, DifferentSelectionsHashDifferent) {
  BoundQuery a = Bind(kBaseQuery);
  BoundQuery b = Bind(
      "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
      "where Shows(M, T) and DinnerPlace(T, R) "
      "and M.Genres.Genre = INPUT1 and T.UCountry = INPUT2 "
      "rank by (0.3, 0.5, 0.2)");
  EXPECT_FALSE(QueryAnswerSignature(a) == QueryAnswerSignature(b));
}

TEST_F(PlanSignatureTest, DifferentRankWeightsHashDifferent) {
  BoundQuery a = Bind(kBaseQuery);
  BoundQuery b = Bind(
      "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
      "where Shows(M, T) and DinnerPlace(T, R) "
      "and M.Genres.Genre = INPUT1 and T.UCity = INPUT5 "
      "rank by (0.5, 0.3, 0.2)");
  EXPECT_FALSE(QueryAnswerSignature(a) == QueryAnswerSignature(b));
}

TEST_F(PlanSignatureTest, MartVsInterfaceAtomHashDifferent) {
  BoundQuery a = Bind("select Movie11 as M where M.Title = 'x'");
  // The mart atom leaves interface selection to the optimizer (two
  // candidates), so its answer identity differs from the pinned interface.
  BoundQuery b = Bind("select Movie as M where M.Title = 'x'");
  EXPECT_FALSE(QueryAnswerSignature(a) == QueryAnswerSignature(b));
}

TEST_F(PlanSignatureTest, AnswerKeyDistinguishesExecutionKnobs) {
  BoundQuery q = Bind(kBaseQuery);
  AnswerKey base;
  base.query = QueryAnswerSignature(q);

  std::map<std::string, Value> bindings = scenario_.inputs;
  Signature s0 = AnswerSignature(base, bindings);

  AnswerKey k_changed = base;
  k_changed.k = base.k + 1;
  EXPECT_FALSE(AnswerSignature(k_changed, bindings) == s0);

  AnswerKey calls_changed = base;
  calls_changed.max_calls = base.max_calls + 1;
  EXPECT_FALSE(AnswerSignature(calls_changed, bindings) == s0);

  AnswerKey level_changed = base;
  level_changed.degradation_level = 2;
  EXPECT_FALSE(AnswerSignature(level_changed, bindings) == s0);

  AnswerKey stream_changed = base;
  stream_changed.streaming = true;
  EXPECT_FALSE(AnswerSignature(stream_changed, bindings) == s0);

  AnswerKey fp_changed = base;
  fp_changed.reliability_fp = 123;
  EXPECT_FALSE(AnswerSignature(fp_changed, bindings) == s0);

  std::map<std::string, Value> other_bindings = bindings;
  other_bindings["INPUT1"] = Value(std::string("Comedy"));
  EXPECT_FALSE(AnswerSignature(base, other_bindings) == s0);

  // And it is a pure function: same inputs, same signature.
  EXPECT_EQ(AnswerSignature(base, bindings), s0);
}

TEST_F(PlanSignatureTest, ReliabilityFingerprintCoversPolicy) {
  ReliabilityPolicy a;
  ReliabilityPolicy b = a;
  EXPECT_EQ(ReliabilityFingerprint(a), ReliabilityFingerprint(b));
  b.retry.max_retries = 3;
  EXPECT_NE(ReliabilityFingerprint(a), ReliabilityFingerprint(b));
  ReliabilityPolicy c = a;
  c.hedge_delay_ms = 5.0;
  EXPECT_NE(ReliabilityFingerprint(a), ReliabilityFingerprint(c));
}

TEST_F(PlanSignatureTest, OptimizerFingerprintIgnoresAnytimeBudgetAndMemo) {
  OptimizerOptions a;
  OptimizerOptions b = a;
  b.max_plans = a.max_plans * 2;  // traversal budget, not answer identity
  PlanMemo memo(1 << 16);
  b.memo = &memo;
  EXPECT_EQ(OptimizerFingerprint(a), OptimizerFingerprint(b));
  OptimizerOptions c = a;
  c.k = a.k + 1;
  EXPECT_NE(OptimizerFingerprint(a), OptimizerFingerprint(c));
  OptimizerOptions d = a;
  d.metric = CostMetricKind::kSumCost == a.metric
                 ? CostMetricKind::kExecutionTime
                 : CostMetricKind::kSumCost;
  EXPECT_NE(OptimizerFingerprint(a), OptimizerFingerprint(d));
}

}  // namespace
}  // namespace seco
