#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "exec/engine.h"
#include "exec/estimate_report.h"
#include "join/chunk_source.h"
#include "optimizer/optimizer.h"
#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

// ---- Pipe joins fed from a repeating group -------------------------------

class RepeatingGroupPipeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
  }
  Scenario scenario_;
};

TEST_F(RepeatingGroupPipeTest, TheatreTitlesDriveMovieLookups) {
  // Theatre11's Movie.Title repeating group pipes into Movie12 (title
  // lookup): the engine must issue one lookup per *candidate title* of each
  // theatre tuple and verify the join on the composed rows.
  SECO_ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseQuery("select Theatre11 as T, Movie12 as M "
                 "where T.UAddress = INPUT4 and T.UCity = INPUT5 and "
                 "T.UCountry = INPUT2 and T.Movie.Title = M.Title"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario_.registry));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(query));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  // Movie12 is the piped side.
  int movie_node = plan.NodeOfAtom(query.AtomIndex("M"));
  ASSERT_NE(movie_node, -1);
  EXPECT_FALSE(plan.node(movie_node).pipe_groups.empty());

  ExecutionOptions options;
  options.k = 100;
  options.truncate_to_k = false;
  options.input_bindings = scenario_.inputs;
  options.max_calls = 10000;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));

  // One theatre chunk (5 theatres) x 8 shown titles, all titles exist:
  // every theatre contributes one combination per shown movie.
  ASSERT_FALSE(result.combinations.empty());
  for (const Combination& combo : result.combinations) {
    const Tuple& theatre = combo.components[0];
    const Tuple& movie = combo.components[1];
    bool shown = false;
    for (const Value& title : theatre.CandidateValuesAt(AttrPath{9, 0})) {
      if (title.AsString() == movie.AtomicAt(0).AsString()) shown = true;
    }
    EXPECT_TRUE(shown);
  }
  // 5 theatres x 8 distinct titles each.
  EXPECT_EQ(result.combinations.size(), 40u);
}

TEST_F(RepeatingGroupPipeTest, OptimizerPicksLookupInterfaceForMartQuery) {
  // Mart-level query binding only Title: only Movie12 (title lookup) makes
  // it feasible; Phase 1 must select it.
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery("select Movie as M where M.Title = "
                                       "'Movie7'"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario_.registry));
  OptimizerOptions options;
  options.k = 1;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(query));
  int node = result.plan.NodeOfAtom(0);
  ASSERT_NE(node, -1);
  EXPECT_EQ(result.plan.node(node).iface->name(), "Movie12");
}

TEST_F(RepeatingGroupPipeTest, Phase1ExploresBothFeasibleInterfaces) {
  // Both Movie interfaces are feasible when genre+country AND title are
  // bound. The cheap lookup (Movie12) can only promise ~0.01 answers under
  // the cautious residual-selectivity estimates, so the optimizer rightly
  // keeps the search interface (Movie11), which reaches k — but Phase 1
  // must have explored both assignments.
  SECO_ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseQuery("select Movie as M where M.Title = 'Movie7' and "
                 "M.Genres.Genre = 'action' and M.Openings.Country = 'Italy'"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario_.registry));
  OptimizerOptions options;
  options.k = 1;
  options.metric = CostMetricKind::kExecutionTime;
  Optimizer optimizer(options);
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult result, optimizer.Optimize(query));
  EXPECT_GE(result.topologies_tried, 2);  // one per interface assignment
  int node = result.plan.NodeOfAtom(0);
  EXPECT_EQ(result.plan.node(node).iface->name(), "Movie11");
  EXPECT_GE(result.estimated_answers, 1.0);
}

// ---- Opaque score synthesis ----------------------------------------------

TEST(OpaqueScoreTest, ChunkSourceSynthesizesFromPosition) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc,
      MakeKeyedSearchService("Opaque", 25, 10, 100, ScoreDecay::kOpaque));
  svc.backend->set_hide_scores(true);

  ChunkSource source(svc.interface, {});
  SECO_ASSERT_OK_AND_ASSIGN(bool got1, source.FetchNext());
  ASSERT_TRUE(got1);
  SECO_ASSERT_OK_AND_ASSIGN(bool got2, source.FetchNext());
  ASSERT_TRUE(got2);
  EXPECT_TRUE(source.scores_synthesized());
  // Synthesized scores are in (0,1], strictly decreasing across the whole
  // stream, and continuous across the chunk boundary.
  double prev = 1.1;
  for (int c = 0; c < source.num_chunks(); ++c) {
    const Chunk& chunk = source.chunk(c);
    ASSERT_EQ(chunk.scores.size(), chunk.tuples.size());
    for (double s : chunk.scores) {
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, 1.0);
      EXPECT_LT(s, prev);
      prev = s;
    }
  }
}

TEST(OpaqueScoreTest, RankedServiceWithScoresNotTouched) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("Scored", 25, 10, 100));
  ChunkSource source(svc.interface, {});
  SECO_ASSERT_OK(source.FetchNext().status());
  EXPECT_FALSE(source.scores_synthesized());
}

// ---- Estimate-vs-actual reporting ----------------------------------------

TEST(EstimateReportTest, ReportsPerNodeDeltas) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario.registry));
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = scenario.inputs;
  options.max_calls = 100000;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));

  EstimateReport report = CompareEstimates(plan, result);
  EXPECT_FALSE(report.nodes.empty());
  EXPECT_GE(report.max_cardinality_qerror, 1.0);
  // The independence-assumption estimates should be within one order of
  // magnitude on this well-calibrated fixture.
  EXPECT_LT(report.max_cardinality_qerror, 10.0);
  EXPECT_LT(report.max_call_qerror, 10.0);
  std::string text = report.ToString();
  EXPECT_NE(text.find("Movie11"), std::string::npos);
  EXPECT_NE(text.find("max q-error"), std::string::npos);
}

TEST(EstimateReportTest, QErrorSemantics) {
  NodeEstimateDelta d;
  d.est_t_out = 10;
  d.actual_t_out = 5;
  EXPECT_DOUBLE_EQ(d.CardinalityQError(), 2.0);
  d.actual_t_out = 20;
  EXPECT_DOUBLE_EQ(d.CardinalityQError(), 2.0);
  d.actual_t_out = 0;
  EXPECT_TRUE(std::isinf(d.CardinalityQError()));
  d.est_t_out = 0;
  EXPECT_DOUBLE_EQ(d.CardinalityQError(), 1.0);
}

// ---- Exact chunked services ----------------------------------------------

TEST(ExactChunkedTest, EngineFetchesConfiguredChunks) {
  SimServiceBuilder builder("Paged");
  builder
      .Schema({AttributeDef::Atomic("Id", ValueType::kInt),
               AttributeDef::Atomic("Payload", ValueType::kString)})
      .Pattern({{"Id", Adornment::kOutput}, {"Payload", Adornment::kOutput}})
      .Kind(ServiceKind::kExact);
  ServiceStats stats;
  stats.chunked = true;
  stats.chunk_size = 4;
  stats.avg_tuples_per_call = 4;
  builder.Stats(stats);
  for (int i = 0; i < 20; ++i) {
    builder.AddRow(Tuple({Value(i), Value("p" + std::to_string(i))}));
  }
  auto registry = std::make_shared<ServiceRegistry>();
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, builder.Build());
  SECO_ASSERT_OK(registry->RegisterInterface(svc.interface));

  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery("select Paged as P where P.Id >= 0"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query, BindQuery(parsed, *registry));
  TopologySpec spec;
  spec.stages = {{0}};
  spec.atom_settings[0].fetch_factor = 3;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 100;
  options.truncate_to_k = false;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  // 3 fetches x 4 rows = 12 tuples, unranked (score 0).
  EXPECT_EQ(result.combinations.size(), 12u);
  EXPECT_EQ(result.total_calls, 3);
  for (const Combination& combo : result.combinations) {
    EXPECT_DOUBLE_EQ(combo.combined_score, 0.0);
  }
}

}  // namespace
}  // namespace seco
