#include <gtest/gtest.h>

#include "service/registry.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

std::shared_ptr<ServiceMart> MakeMart(const std::string& name) {
  auto schema = std::make_shared<ServiceSchema>(
      name, std::vector<AttributeDef>{
                AttributeDef::Atomic("Key", ValueType::kInt),
                AttributeDef::Atomic("Val", ValueType::kString),
                AttributeDef::Atomic("Relevance", ValueType::kDouble)});
  return std::make_shared<ServiceMart>(name, schema);
}

TEST(RegistryTest, RegisterAndFindMart) {
  ServiceRegistry reg;
  SECO_ASSERT_OK(reg.RegisterMart(MakeMart("M")));
  Result<std::shared_ptr<ServiceMart>> found = reg.FindMart("M");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name(), "M");
  EXPECT_EQ(reg.FindMart("X").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, DuplicateMartRejected) {
  ServiceRegistry reg;
  SECO_ASSERT_OK(reg.RegisterMart(MakeMart("M")));
  EXPECT_EQ(reg.RegisterMart(MakeMart("M")).code(), StatusCode::kAlreadyExists);
}

TEST(RegistryTest, RegisterInterfaceUnderMart) {
  ServiceRegistry reg;
  SECO_ASSERT_OK(reg.RegisterMart(MakeMart("M")));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("S1", 10, 5, 3));
  SECO_ASSERT_OK(reg.RegisterInterface(svc.interface, "M"));
  EXPECT_EQ(reg.MartOfInterface("S1"), "M");
  auto of_mart = reg.InterfacesOfMart("M");
  ASSERT_EQ(of_mart.size(), 1u);
  EXPECT_EQ(of_mart[0]->name(), "S1");
}

TEST(RegistryTest, InterfaceWithoutMart) {
  ServiceRegistry reg;
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("S1", 10, 5, 3));
  SECO_ASSERT_OK(reg.RegisterInterface(svc.interface));
  EXPECT_EQ(reg.MartOfInterface("S1"), "");
  ASSERT_TRUE(reg.FindInterface("S1").ok());
}

TEST(RegistryTest, UnknownMartRejected) {
  ServiceRegistry reg;
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("S1", 10, 5, 3));
  EXPECT_EQ(reg.RegisterInterface(svc.interface, "Nope").code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, DuplicateInterfaceRejected) {
  ServiceRegistry reg;
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService a,
                            MakeKeyedSearchService("S1", 10, 5, 3));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService b,
                            MakeKeyedSearchService("S1", 10, 5, 3));
  SECO_ASSERT_OK(reg.RegisterInterface(a.interface));
  EXPECT_EQ(reg.RegisterInterface(b.interface).code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, ConnectionPatterns) {
  ServiceRegistry reg;
  auto pattern = std::make_shared<ConnectionPattern>(
      "Links", "A", "B",
      std::vector<ConnectionClause>{{"Key", Comparator::kEq, "Key"}});
  pattern->set_selectivity(0.25);
  SECO_ASSERT_OK(reg.RegisterConnectionPattern(pattern));
  Result<std::shared_ptr<ConnectionPattern>> found =
      reg.FindConnectionPattern("Links");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->source_mart(), "A");
  EXPECT_DOUBLE_EQ((*found)->selectivity(), 0.25);
  EXPECT_EQ(reg.RegisterConnectionPattern(pattern).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(reg.FindConnectionPattern("Nope").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, NameListings) {
  ServiceRegistry reg;
  SECO_ASSERT_OK(reg.RegisterMart(MakeMart("M1")));
  SECO_ASSERT_OK(reg.RegisterMart(MakeMart("M2")));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("S1", 10, 5, 3));
  SECO_ASSERT_OK(reg.RegisterInterface(svc.interface, "M1"));
  EXPECT_EQ(reg.mart_names(), (std::vector<std::string>{"M1", "M2"}));
  EXPECT_EQ(reg.interface_names(), (std::vector<std::string>{"S1"}));
}

}  // namespace
}  // namespace seco
