// Wire codec and framing (docs/NETWORK.md): primitive and composite
// round-trips are bit-exact (doubles travel as IEEE-754 bit patterns), the
// answer-body codec re-encodes to identical bytes (the foundation of the
// wire-vs-in-process oracle), and the frame decoder survives hostile input
// — truncation, oversized length prefixes (rejected before any allocation),
// garbage, and arbitrary fragmentation across recv boundaries.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace seco {
namespace {

// --- Primitives ------------------------------------------------------------

TEST(WirePrimitivesTest, IntegerRoundTripsAreExact) {
  WireWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(std::numeric_limits<int64_t>::min());
  w.Bool(true);
  w.Str("hello");

  WireReader r(w.buffer());
  EXPECT_EQ(r.U8().value(), 0xAB);
  EXPECT_EQ(r.U16().value(), 0xBEEF);
  EXPECT_EQ(r.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32().value(), -42);
  EXPECT_EQ(r.I64().value(), std::numeric_limits<int64_t>::min());
  EXPECT_TRUE(r.Bool().value());
  EXPECT_EQ(r.Str().value(), "hello");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WirePrimitivesTest, DoublesRoundTripBitExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -12345.6789e-300};
  for (double v : cases) {
    WireWriter w;
    w.F64(v);
    WireReader r(w.buffer());
    double back = r.F64().value();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof(v)), 0);
  }
  // NaN payload bits survive too.
  double nan = std::nan("0x5ec0");
  WireWriter w;
  w.F64(nan);
  WireReader r(w.buffer());
  double back = r.F64().value();
  EXPECT_EQ(std::memcmp(&nan, &back, sizeof(nan)), 0);
}

TEST(WirePrimitivesTest, TruncatedReadsFailInsteadOfOverReading) {
  WireWriter w;
  w.U16(7);
  WireReader r(w.buffer());
  EXPECT_FALSE(r.U32().ok());
  // A string length beyond the remaining payload is rejected up front.
  WireWriter w2;
  w2.U32(1000);  // claims 1000 bytes, none follow
  WireReader r2(w2.buffer());
  EXPECT_FALSE(r2.Str().ok());
}

TEST(WirePrimitivesTest, TrailingBytesAreAProtocolError) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  WireReader r(w.buffer());
  ASSERT_TRUE(r.U8().ok());
  EXPECT_FALSE(r.ExpectEnd().ok());
}

// --- Value / tuple / status codecs ----------------------------------------

TEST(WireCodecTest, ValueRoundTripsAllTypes) {
  const Value values[] = {Value(), Value(true), Value(int64_t{-7}),
                          Value(2.5), Value(std::string("seco"))};
  for (const Value& v : values) {
    WireWriter w;
    EncodeValue(v, &w);
    WireReader r(w.buffer());
    Result<Value> back = DecodeValue(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(v == back.value()) << v.ToString();
  }
}

TEST(WireCodecTest, TupleWithRepeatingGroupRoundTrips) {
  std::vector<TupleSlot> slots;
  slots.emplace_back(Value("movie"));
  RepeatingGroupValue genres;
  genres.push_back({Value("drama"), Value(int64_t{1})});
  genres.push_back({Value("comedy"), Value(int64_t{2})});
  slots.emplace_back(genres);
  slots.emplace_back(Value(4.5));
  Tuple tuple(std::move(slots));

  WireWriter w;
  EncodeTuple(tuple, &w);
  WireReader r(w.buffer());
  Result<Tuple> back = DecodeTuple(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(tuple == back.value());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireCodecTest, StatusRoundTripsCodeAndMessageVerbatim) {
  const Status cases[] = {
      Status::OK(),
      Status::Unavailable("transient fault on attempt 2"),
      Status::DeadlineExceeded("call deadline 50 ms"),
      Status::Rejected("interactive admission queue full"),
      Status::NotFound("no handler registered for 'Movie11'")};
  for (const Status& s : cases) {
    WireWriter w;
    EncodeStatus(s, &w);
    WireReader r(w.buffer());
    Status back = Status::OK();
    ASSERT_TRUE(DecodeStatus(&r, &back).ok());
    EXPECT_EQ(back.code(), s.code());
    EXPECT_EQ(back.message(), s.message());
  }
}

TEST(WireCodecTest, ServiceRequestAndResponseRoundTrip) {
  ServiceRequest request;
  request.inputs = {Value("Roma"), Value(int64_t{3})};
  request.chunk_index = 2;
  request.attempt = 1;
  request.deadline_ms = 87.5;
  WireWriter w;
  EncodeServiceRequest(request, &w);
  WireReader r(w.buffer());
  Result<ServiceRequest> req_back = DecodeServiceRequest(&r);
  ASSERT_TRUE(req_back.ok());
  EXPECT_EQ(req_back.value().inputs, request.inputs);
  EXPECT_EQ(req_back.value().chunk_index, 2);
  EXPECT_EQ(req_back.value().attempt, 1);
  EXPECT_EQ(req_back.value().deadline_ms, 87.5);

  // The deadline is delivery metadata like `attempt`: two requests that
  // differ only in transported budget are the SAME logical request (same
  // retry schedule, same cache identity).
  ServiceRequest no_deadline = request;
  no_deadline.deadline_ms = -1.0;
  EXPECT_EQ(RequestOrdinal(request), RequestOrdinal(no_deadline));

  ServiceResponse response;
  response.tuples.push_back(Tuple({TupleSlot(Value("Up"))}));
  response.scores = {0.9, 0.7};
  response.exhausted = true;
  response.latency_ms = 120.5;
  response.fault_overhead_ms = 3.25;
  WireWriter w2;
  EncodeServiceResponse(response, &w2);
  WireReader r2(w2.buffer());
  Result<ServiceResponse> resp_back = DecodeServiceResponse(&r2);
  ASSERT_TRUE(resp_back.ok());
  EXPECT_EQ(resp_back.value().tuples.size(), 1u);
  EXPECT_EQ(resp_back.value().scores, response.scores);
  EXPECT_TRUE(resp_back.value().exhausted);
  EXPECT_EQ(resp_back.value().latency_ms, 120.5);
  EXPECT_EQ(resp_back.value().fault_overhead_ms, 3.25);
}

TEST(WireCodecTest, QueryRequestRoundTripsTransportedFields) {
  QueryRequest request;
  request.query_text = "SELECT ...";
  request.priority = PriorityClass::kBatch;
  request.deadline_ms = 75.5;
  request.k = 7;
  request.max_calls = 123;
  request.streaming = true;
  request.input_bindings.emplace("City", Value("Roma"));
  request.input_bindings.emplace("Count", Value(int64_t{4}));

  Result<QueryRequest> back = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().query_text, request.query_text);
  EXPECT_EQ(back.value().priority, PriorityClass::kBatch);
  EXPECT_EQ(back.value().deadline_ms, 75.5);
  EXPECT_EQ(back.value().k, 7);
  EXPECT_EQ(back.value().max_calls, 123);
  EXPECT_TRUE(back.value().streaming);
  EXPECT_EQ(back.value().input_bindings, request.input_bindings);
  // The re-encoded request is byte-identical (deterministic encoding).
  EXPECT_EQ(EncodeQueryRequest(back.value()), EncodeQueryRequest(request));
}

// --- Answer body -----------------------------------------------------------

QueryResponse SampleExecutionResponse() {
  QueryResponse response;
  response.outcome = ServedOutcome::kDegraded;
  response.degradation_level = 2;
  response.priority = PriorityClass::kInteractive;
  response.answer_cache_hit = true;

  ExecutionResult& e = response.execution;
  Combination combo;
  combo.components.push_back(Tuple({TupleSlot(Value("Up"))}));
  combo.component_scores = {0.9};
  combo.combined_score = 0.9;
  combo.missing_atoms = {1};
  e.combinations.push_back(combo);
  e.total_calls = 11;
  e.elapsed_ms = 350.25;
  e.total_latency_ms = 780.5;
  e.total_combinations_produced = 40;
  e.cache_hits = 3;
  e.cache_misses = 8;
  e.wall_clock_ms = 123.0;  // excluded from the body
  e.node_stats[2] = NodeRuntimeStats{4, 210.0, 12, 340.0, 1};
  e.degraded.push_back(
      DegradedStatus{3, "Theatre11", 2, "service is down", false, false});
  e.open_breakers = {"Theatre11"};
  e.reliability.attempts = 15;
  e.reliability.retries = 4;
  e.reliability.transient_failures = 4;
  e.reliability.backoff_ms = 12.5;
  e.reliability.breakers.push_back(
      CircuitBreakerState{"Theatre11", BreakerPhase::kOpen, 1, 3, 5});
  e.reliability.services_lost.push_back(
      ServiceLostEvent{"Theatre11", 42, "retries exhausted", true});
  e.repair.events = 1;
  e.repair.replans = 1;
  e.repair.replan_ms = 9.5;  // wall clock: excluded from the body
  e.repair.salvaged_calls = 6;
  e.repair.abandoned_ms = 44.0;
  e.repair.log.push_back(RepairEvent{"Theatre11", "Theatre12", "failover"});
  e.complete = false;
  e.degradation_level = 2;
  return response;
}

TEST(AnswerBodyTest, ExecutionResponseRoundTripsAndReEncodesIdentically) {
  QueryResponse response = SampleExecutionResponse();
  std::string body = EncodeAnswerBody(response);
  Result<QueryResponse> back = DecodeAnswerBody(body);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back.value().outcome, ServedOutcome::kDegraded);
  EXPECT_EQ(back.value().degradation_level, 2);
  EXPECT_TRUE(back.value().answer_cache_hit);
  const ExecutionResult& e = back.value().execution;
  EXPECT_EQ(e.combinations.size(), 1u);
  EXPECT_EQ(e.combinations[0].missing_atoms, std::vector<int>{1});
  EXPECT_EQ(e.total_calls, 11);
  EXPECT_EQ(e.elapsed_ms, 350.25);
  EXPECT_EQ(e.node_stats.at(2).calls, 4);
  EXPECT_EQ(e.reliability.retries, 4);
  EXPECT_EQ(e.reliability.breakers[0].phase, BreakerPhase::kOpen);
  EXPECT_EQ(e.repair.log[0].replacement, "Theatre12");
  EXPECT_FALSE(e.complete);

  // Decode(Encode(x)) re-encodes to the same bytes: the codec is a
  // bijection on its transported fields.
  EXPECT_EQ(EncodeAnswerBody(back.value()), body);
}

TEST(AnswerBodyTest, WallClockFieldsDoNotAffectTheBody) {
  QueryResponse a = SampleExecutionResponse();
  QueryResponse b = SampleExecutionResponse();
  b.execution.wall_clock_ms = 9999.0;
  b.execution.repair.replan_ms = 777.0;
  b.queue_wait_ms = 55.0;
  EXPECT_EQ(EncodeAnswerBody(a), EncodeAnswerBody(b));
}

TEST(AnswerBodyTest, StreamingResponseRoundTrips) {
  QueryResponse response;
  response.outcome = ServedOutcome::kCompleted;
  response.streamed = true;
  StreamingResult& s = response.streaming;
  Combination combo;
  combo.components.push_back(Tuple({TupleSlot(Value(int64_t{5}))}));
  combo.component_scores = {0.4};
  combo.combined_score = 0.4;
  s.combinations.push_back(combo);
  s.total_calls = 6;
  s.total_latency_ms = 99.75;
  s.exhausted = true;
  s.cache_hits = 2;
  s.cache_misses = 4;
  s.speculative_calls = 3;
  s.speculative_wasted = 1;
  s.node_stats[0] = NodeRuntimeStats{6, 99.75, 10, 99.75, 2};

  std::string body = EncodeAnswerBody(response);
  Result<QueryResponse> back = DecodeAnswerBody(body);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().streamed);
  EXPECT_EQ(back.value().streaming.total_calls, 6);
  EXPECT_TRUE(back.value().streaming.exhausted);
  EXPECT_EQ(back.value().streaming.speculative_calls, 3);
  EXPECT_EQ(EncodeAnswerBody(back.value()), body);
}

TEST(AnswerBodyTest, ShedResponseCarriesNoResultPayload) {
  QueryResponse response;
  response.outcome = ServedOutcome::kShed;
  response.status = Status::Rejected("queue full; retry after 60 ms");
  response.retry_after_ms = 60.0;
  std::string body = EncodeAnswerBody(response);
  Result<QueryResponse> back = DecodeAnswerBody(body);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().outcome, ServedOutcome::kShed);
  EXPECT_EQ(back.value().status.code(), StatusCode::kRejected);
  EXPECT_EQ(back.value().retry_after_ms, 60.0);
  EXPECT_TRUE(back.value().execution.combinations.empty());
}

TEST(AnswerBodyTest, DecodeRejectsTruncatedAndGarbageBodies) {
  std::string body = EncodeAnswerBody(SampleExecutionResponse());
  for (size_t cut : {size_t{0}, size_t{1}, body.size() / 2, body.size() - 1}) {
    EXPECT_FALSE(DecodeAnswerBody(body.substr(0, cut)).ok()) << cut;
  }
  EXPECT_FALSE(DecodeAnswerBody(body + "x").ok());
  std::string garbage = body;
  garbage[0] = char(0xFF);  // bad version byte
  EXPECT_FALSE(DecodeAnswerBody(garbage).ok());
}

TEST(AnswerBodyTest, HexRenderingIsStable) {
  EXPECT_EQ(AnswerBodyHex(std::string("\x00\x7f\xff", 3)), "007fff");
}

// --- Wire status mapping ---------------------------------------------------

TEST(WireStatusTest, OutcomesMapOneToOneAndDrainingFoldsToShed) {
  for (ServedOutcome outcome :
       {ServedOutcome::kCompleted, ServedOutcome::kDegraded,
        ServedOutcome::kShed, ServedOutcome::kDeadlineExpired,
        ServedOutcome::kFailed}) {
    QueryResponse response;
    response.outcome = outcome;
    EXPECT_EQ(OutcomeOfWireStatus(WireStatusOf(response)), outcome);
  }
  EXPECT_EQ(OutcomeOfWireStatus(WireStatus::kDraining), ServedOutcome::kShed);
}

// --- Frame decoder robustness (satellite) ----------------------------------

TEST(FrameDecoderTest, WholeFrameRoundTrips) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "payload");
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(encoded).ok());
  Frame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, CorruptedPayloadFailsItsChecksumAndPoisons) {
  // Flip each payload byte in turn: every single-bit-of-damage variant must
  // be caught by the frame checksum — silent corruption is the one failure
  // mode a length-prefixed stream cannot otherwise see.
  std::string encoded = EncodeFrame(FrameType::kQuery, "payload-bytes");
  for (size_t i = kFrameHeaderBytes; i < encoded.size(); ++i) {
    std::string damaged = encoded;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    FrameDecoder decoder;
    // Feed succeeds: header length/type are plausible, the damage is in
    // the payload and only detectable at pop time.
    ASSERT_TRUE(decoder.Feed(damaged).ok()) << i;
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame)) << i;
    EXPECT_TRUE(decoder.poisoned()) << i;
  }
}

TEST(FrameDecoderTest, CorruptedChecksumFieldAlsoPoisons) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "payload");
  for (size_t i = 5; i < kFrameHeaderBytes; ++i) {  // the 4 checksum bytes
    std::string damaged = encoded;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(damaged).ok()) << i;
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame)) << i;
    EXPECT_TRUE(decoder.poisoned()) << i;
  }
}

TEST(FrameDecoderTest, TruncatedFramesNeverPop) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "0123456789");
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(encoded.substr(0, cut)).ok()) << cut;
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame)) << cut;
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(FrameDecoderTest, OversizedLengthPrefixIsRejectedBeforeBuffering) {
  // 0xFFFFFFFF-byte frame announcement: must fail the moment the header is
  // complete, without ever allocating for the payload.
  std::string header(4, char(0xFF));
  header.push_back(static_cast<char>(FrameType::kQuery));
  FrameDecoder decoder;
  Status fed = decoder.Feed(header);
  EXPECT_FALSE(fed.ok());
  EXPECT_TRUE(decoder.poisoned());
  // Only the 5 header bytes were ever accepted.
  EXPECT_LE(decoder.pending_bytes(), 5u);
  // A poisoned decoder rejects everything from then on.
  EXPECT_FALSE(decoder.Feed("more").ok());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
}

TEST(FrameDecoderTest, JustOverTheCapFailsJustUnderPasses) {
  {
    std::string header;
    WireWriter w;
    w.U32(kMaxFramePayload + 1);
    w.U8(static_cast<uint8_t>(FrameType::kResultBody));
    FrameDecoder decoder;
    EXPECT_FALSE(decoder.Feed(w.buffer()).ok());
  }
  {
    WireWriter w;
    w.U32(kMaxFramePayload);
    w.U8(static_cast<uint8_t>(FrameType::kResultBody));
    FrameDecoder decoder;
    EXPECT_TRUE(decoder.Feed(w.buffer()).ok());
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(FrameDecoderTest, OversizedHeaderBehindAPipelinedFrameIsRejected) {
  // A pipelined burst: a valid frame and the next frame's oversized header
  // arriving in ONE Feed chunk. The second header never lands alone at the
  // buffer tail, but it must be validated (and rejected) all the same —
  // otherwise the decoder would buffer everything fed while waiting for a
  // ~4 GiB payload that never completes.
  std::string chunk = EncodeFrame(FrameType::kPing, "cookie99");
  WireWriter bad;
  bad.U32(0xFFFFFFFF);
  bad.U8(static_cast<uint8_t>(FrameType::kQuery));
  chunk += bad.Take();

  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(chunk).ok());
  EXPECT_TRUE(decoder.poisoned());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
}

TEST(FrameDecoderTest, UnknownTypeBehindAPipelinedFrameIsRejected) {
  std::string chunk = EncodeFrame(FrameType::kQuery, "q1") +
                      EncodeFrame(FrameType::kQuery, "q2");
  WireWriter bad;
  bad.U32(3);
  bad.U8(0xEE);  // not a FrameType
  chunk += bad.Take();
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(chunk).ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameDecoderTest, ManyFramesInOneChunkAllPop) {
  // The happy-path counterpart: header validation across a batched chunk
  // must not reject or skip legitimate pipelined frames.
  std::string chunk;
  for (int i = 0; i < 10; ++i) {
    chunk += EncodeFrame(FrameType::kQuery, std::string(i * 17, 'x'));
  }
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(chunk).ok());
  Frame frame;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(decoder.Next(&frame)) << i;
    EXPECT_EQ(frame.type, FrameType::kQuery);
    EXPECT_EQ(frame.payload.size(), static_cast<size_t>(i * 17));
  }
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, GarbageFrameTypeIsRejected) {
  WireWriter w;
  w.U32(3);
  w.U8(0xEE);  // not a FrameType
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(w.buffer()).ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameDecoderTest, ByteAtATimeFeedReassemblesInterleavedFrames) {
  // Three frames of different sizes, delivered one byte per Feed — the
  // harshest recv fragmentation.
  std::string stream = EncodeFrame(FrameType::kHello, "") +
                       EncodeFrame(FrameType::kQuery, std::string(1000, 'q')) +
                       EncodeFrame(FrameType::kGoodbye, "bye");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : stream) {
    ASSERT_TRUE(decoder.Feed(&c, 1).ok());
    Frame frame;
    while (decoder.Next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_TRUE(frames[0].payload.empty());
  EXPECT_EQ(frames[1].type, FrameType::kQuery);
  EXPECT_EQ(frames[1].payload, std::string(1000, 'q'));
  EXPECT_EQ(frames[2].type, FrameType::kGoodbye);
  EXPECT_EQ(frames[2].payload, "bye");
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, LongLivedConnectionBufferStaysBounded) {
  // Pump many frames through one decoder; the consumed prefix must be
  // compacted away rather than growing forever.
  FrameDecoder decoder;
  std::string frame = EncodeFrame(FrameType::kPing, std::string(512, 'p'));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(decoder.Feed(frame).ok());
    Frame out;
    ASSERT_TRUE(decoder.Next(&out));
  }
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

}  // namespace
}  // namespace seco
