#include <gtest/gtest.h>

#include "query/bound_query.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class BoundQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
  }

  Result<BoundQuery> Bind(const std::string& text) {
    SECO_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
    return BindQuery(parsed, *scenario_.registry);
  }

  Scenario scenario_;
};

TEST_F(BoundQueryTest, BindsInterfaceAtoms) {
  Result<BoundQuery> q = Bind("select Movie11 as M where M.Title = 'x'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->atoms.size(), 1u);
  EXPECT_EQ(q->atoms[0].alias, "M");
  ASSERT_NE(q->atoms[0].iface, nullptr);
  EXPECT_EQ(q->atoms[0].iface->name(), "Movie11");
  EXPECT_EQ(q->atoms[0].mart_name, "Movie");
}

TEST_F(BoundQueryTest, BindsMartAtomsWithCandidates) {
  Result<BoundQuery> q = Bind("select Movie as M where M.Title = 'x'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms[0].iface, nullptr);
  // The Movie mart registers two interfaces: the genre+country search
  // (Movie11) and the title lookup (Movie12).
  ASSERT_EQ(q->atoms[0].candidates.size(), 2u);
  EXPECT_EQ(q->atoms[0].candidates[0]->name(), "Movie11");
  EXPECT_EQ(q->atoms[0].candidates[1]->name(), "Movie12");
}

TEST_F(BoundQueryTest, UnknownServiceFails) {
  Result<BoundQuery> q = Bind("select Nope as N where N.A = 1");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(BoundQueryTest, ExpandsConnectionPattern) {
  Result<BoundQuery> q = Bind(
      "select Movie11 as M, Theatre11 as T where Shows(M, T) and "
      "M.Genres.Genre = INPUT1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].pattern_name, "Shows");
  EXPECT_DOUBLE_EQ(q->joins[0].selectivity, 0.02);
  ASSERT_EQ(q->joins[0].clauses.size(), 1u);
  const JoinClause& clause = q->joins[0].clauses[0];
  EXPECT_EQ(clause.from_atom, 0);
  EXPECT_EQ(clause.to_atom, 1);
  EXPECT_FALSE(clause.from_path.is_sub_attribute());  // M.Title
  EXPECT_TRUE(clause.to_path.is_sub_attribute());     // T.Movie.Title
}

TEST_F(BoundQueryTest, ConnectionMartMismatchFails) {
  // DinnerPlace expects Theatre -> Restaurant.
  Result<BoundQuery> q =
      Bind("select Movie11 as M, Theatre11 as T where DinnerPlace(M, T)");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BoundQueryTest, UnknownConnectionFails) {
  Result<BoundQuery> q =
      Bind("select Movie11 as M, Theatre11 as T where Nope(M, T)");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(BoundQueryTest, SelectionsAndInputVarsCollected) {
  Result<BoundQuery> q = Bind(
      "select Movie11 as M where M.Genres.Genre = INPUT1 and "
      "M.Openings.Date > INPUT3 and M.Year = 2009");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->selections.size(), 3u);
  EXPECT_EQ(q->selections[0].input_var, "INPUT1");
  EXPECT_EQ(q->selections[1].input_var, "INPUT3");
  EXPECT_EQ(q->selections[1].op, Comparator::kGt);
  EXPECT_TRUE(q->selections[2].input_var.empty());
  EXPECT_EQ(q->selections[2].constant.AsInt(), 2009);
  EXPECT_EQ(q->input_vars, (std::vector<std::string>{"INPUT1", "INPUT3"}));
}

TEST_F(BoundQueryTest, AdHocJoinPredicateBecomesGroup) {
  Result<BoundQuery> q = Bind(
      "select Theatre11 as T, Restaurant11 as R where T.TCity = R.RCity");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_TRUE(q->joins[0].pattern_name.empty());
  EXPECT_EQ(q->joins[0].clauses[0].op, Comparator::kEq);
}

TEST_F(BoundQueryTest, SelfComparisonUnsupported) {
  Result<BoundQuery> q = Bind("select Movie11 as M where M.Title = M.Director");
  EXPECT_EQ(q.status().code(), StatusCode::kUnsupported);
}

TEST_F(BoundQueryTest, UnknownAliasInPredicateFails) {
  Result<BoundQuery> q = Bind("select Movie11 as M where X.Title = 'a'");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BoundQueryTest, EffectiveWeightsDefault) {
  // All three services in the scenario are ranked search services.
  Result<BoundQuery> q = Bind(
      "select Movie11 as M, Theatre11 as T where Shows(M, T) and "
      "M.Title = 'x'");
  ASSERT_TRUE(q.ok());
  std::vector<double> w = q->EffectiveWeights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST_F(BoundQueryTest, ExplicitWeightsWin) {
  Result<BoundQuery> q = Bind(
      "select Movie11 as M, Theatre11 as T where Shows(M, T) and M.Title = 'x' "
      "rank by (0.9, 0.1)");
  ASSERT_TRUE(q.ok());
  std::vector<double> w = q->EffectiveWeights();
  EXPECT_DOUBLE_EQ(w[0], 0.9);
  EXPECT_DOUBLE_EQ(w[1], 0.1);
}

TEST_F(BoundQueryTest, ResolveSelectionValue) {
  Result<BoundQuery> q = Bind("select Movie11 as M where M.Title = INPUT1");
  ASSERT_TRUE(q.ok());
  Result<Value> v =
      q->ResolveSelectionValue(q->selections[0], {{"INPUT1", Value("Up")}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "Up");
  Result<Value> missing = q->ResolveSelectionValue(q->selections[0], {});
  EXPECT_FALSE(missing.ok());
}

TEST_F(BoundQueryTest, AtomIndexLookup) {
  Result<BoundQuery> q = Bind(
      "select Movie11 as M, Theatre11 as T where Shows(M, T) and M.Title='x'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->AtomIndex("M"), 0);
  EXPECT_EQ(q->AtomIndex("T"), 1);
  EXPECT_EQ(q->AtomIndex("Z"), -1);
}

TEST_F(BoundQueryTest, RunningExampleBinds) {
  Result<BoundQuery> q = Bind(scenario_.query_text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms.size(), 3u);
  EXPECT_EQ(q->joins.size(), 2u);       // Shows + DinnerPlace
  EXPECT_EQ(q->selections.size(), 7u);  // 7 selection predicates
  EXPECT_EQ(q->input_vars.size(), 6u);
  ASSERT_EQ(q->joins[1].clauses.size(), 3u);  // DinnerPlace: 3 clauses
}

}  // namespace
}  // namespace seco
