// Scalar-vs-SIMD equivalence for the columnar data plane (docs/DATA_PLANE.md).
//
// Three layers of checks:
//   1. Kernel fuzz: every SIMD variant compiled into this binary produces
//      BITWISE-identical output to the scalar reference on random inputs
//      with ties, duplicates, -0.0, and lengths chosen to exercise vector
//      tails (0, 1, lane-1, lane, lane+1, odd).
//   2. Canonicalization fallbacks: nulls, dictionary overflow, huge ints
//      next to doubles, mixed families — every case the kernels must NOT
//      claim routes to KeyFamily::kFallback / nullopt, never to a wrong
//      comparison.
//   3. End-to-end: the parallel / pipe / top-k executors and the streaming
//      engine return bit-identical answers with the columnar plane on or
//      off, under every kernel override.
//
// CI runs this binary twice: once as-is and once with SECO_SIMD=off, so the
// dispatch override path itself is covered (scripts in .github/workflows).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/seco.h"
#include "data/column_chunk.h"
#include "data/kernels.h"
#include "join/pipe_join.h"
#include "join/topk_join.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

/// The kernels this binary can actually dispatch to (kScalar always; others
/// only when compiled in AND supported by this CPU — SetKernelOverride
/// degrades unsupported requests, which would silently test scalar twice).
std::vector<simd::Kernel> AvailableKernels() {
  std::vector<simd::Kernel> out;
  for (simd::Kernel k :
       {simd::Kernel::kScalar, simd::Kernel::kSse2, simd::Kernel::kAvx2}) {
    simd::SetKernelOverride(k);
    if (simd::ActiveKernel() == k) out.push_back(k);
  }
  simd::SetKernelOverride(std::nullopt);
  return out;
}

/// RAII: restore automatic kernel detection when a test scope ends, so test
/// order never leaks an override into another test.
struct KernelOverrideGuard {
  ~KernelOverrideGuard() { simd::SetKernelOverride(std::nullopt); }
};

bool BitwiseEq(double a, double b) {
  int64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

// Lengths that hit every tail case of 2-lane (SSE2 i64), 4-lane (AVX2 i64 /
// SSE2 f32x4-style u32) and 8-lane (AVX2 u32) kernels.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100};

TEST(KernelFuzz, MatchEqPairsI64BitwiseAcrossKernels) {
  KernelOverrideGuard guard;
  SplitMix64 rng(1);
  for (size_t na : kLengths) {
    for (size_t nb : {size_t{0}, size_t{5}, size_t{17}, size_t{64}}) {
      std::vector<int64_t> a(na), b(nb);
      // Small domain: lots of ties and duplicates, including negatives.
      for (auto& v : a) v = static_cast<int64_t>(rng.Uniform(7)) - 3;
      for (auto& v : b) v = static_cast<int64_t>(rng.Uniform(7)) - 3;

      simd::SetKernelOverride(simd::Kernel::kScalar);
      std::vector<simd::RowPair> ref;
      simd::MatchEqPairsI64(a.data(), na, b.data(), nb, &ref);

      for (simd::Kernel k : AvailableKernels()) {
        simd::SetKernelOverride(k);
        std::vector<simd::RowPair> got;
        size_t n = simd::MatchEqPairsI64(a.data(), na, b.data(), nb, &got);
        ASSERT_EQ(n, ref.size()) << simd::KernelName(k);
        ASSERT_EQ(got.size(), ref.size()) << simd::KernelName(k);
        for (size_t i = 0; i < ref.size(); ++i) {
          EXPECT_EQ(got[i].a, ref[i].a) << simd::KernelName(k) << " @" << i;
          EXPECT_EQ(got[i].b, ref[i].b) << simd::KernelName(k) << " @" << i;
        }
      }
    }
  }
}

TEST(KernelFuzz, MatchEqPairsU32BitwiseAcrossKernels) {
  KernelOverrideGuard guard;
  SplitMix64 rng(2);
  for (size_t na : kLengths) {
    std::vector<uint32_t> a(na), b(33);
    for (auto& v : a) v = static_cast<uint32_t>(rng.Uniform(5));
    for (auto& v : b) v = static_cast<uint32_t>(rng.Uniform(5));

    simd::SetKernelOverride(simd::Kernel::kScalar);
    std::vector<simd::RowPair> ref;
    simd::MatchEqPairsU32(a.data(), na, b.data(), b.size(), &ref);

    for (simd::Kernel k : AvailableKernels()) {
      simd::SetKernelOverride(k);
      std::vector<simd::RowPair> got;
      simd::MatchEqPairsU32(a.data(), na, b.data(), b.size(), &got);
      ASSERT_EQ(got.size(), ref.size()) << simd::KernelName(k);
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i].a, ref[i].a) << simd::KernelName(k);
        EXPECT_EQ(got[i].b, ref[i].b) << simd::KernelName(k);
      }
    }
  }
}

TEST(KernelFuzz, MatchKeyBitwiseAcrossKernels) {
  KernelOverrideGuard guard;
  SplitMix64 rng(3);
  for (size_t nb : kLengths) {
    std::vector<int64_t> b64(nb);
    std::vector<uint32_t> b32(nb);
    for (auto& v : b64) v = static_cast<int64_t>(rng.Uniform(4));
    for (auto& v : b32) v = static_cast<uint32_t>(rng.Uniform(4));
    for (int64_t key : {int64_t{0}, int64_t{3}, int64_t{-1}}) {
      simd::SetKernelOverride(simd::Kernel::kScalar);
      std::vector<int32_t> ref64, ref32;
      simd::MatchKeyI64(key, b64.data(), nb, &ref64);
      simd::MatchKeyU32(static_cast<uint32_t>(key < 0 ? 0 : key), b32.data(),
                        nb, &ref32);
      for (simd::Kernel k : AvailableKernels()) {
        simd::SetKernelOverride(k);
        std::vector<int32_t> got64, got32;
        simd::MatchKeyI64(key, b64.data(), nb, &got64);
        simd::MatchKeyU32(static_cast<uint32_t>(key < 0 ? 0 : key), b32.data(),
                          nb, &got32);
        EXPECT_EQ(got64, ref64) << simd::KernelName(k) << " key=" << key;
        EXPECT_EQ(got32, ref32) << simd::KernelName(k) << " key=" << key;
      }
    }
  }
}

TEST(KernelFuzz, EqualMaskBitwiseAcrossKernels) {
  KernelOverrideGuard guard;
  SplitMix64 rng(4);
  for (size_t n : kLengths) {
    std::vector<int64_t> a64(n), b64(n);
    std::vector<uint32_t> a32(n), b32(n);
    for (size_t i = 0; i < n; ++i) {
      a64[i] = static_cast<int64_t>(rng.Uniform(3));
      b64[i] = static_cast<int64_t>(rng.Uniform(3));
      a32[i] = static_cast<uint32_t>(rng.Uniform(3));
      b32[i] = static_cast<uint32_t>(rng.Uniform(3));
    }
    simd::SetKernelOverride(simd::Kernel::kScalar);
    std::vector<uint8_t> ref64(n), ref32(n);
    simd::EqualMaskI64(a64.data(), b64.data(), n, ref64.data());
    simd::EqualMaskU32(a32.data(), b32.data(), n, ref32.data());
    for (simd::Kernel k : AvailableKernels()) {
      simd::SetKernelOverride(k);
      std::vector<uint8_t> got64(n, 0xCC), got32(n, 0xCC);
      simd::EqualMaskI64(a64.data(), b64.data(), n, got64.data());
      simd::EqualMaskU32(a32.data(), b32.data(), n, got32.data());
      EXPECT_EQ(got64, ref64) << simd::KernelName(k);
      EXPECT_EQ(got32, ref32) << simd::KernelName(k);
    }
  }
}

TEST(KernelFuzz, CombineScoresBitwiseAcrossKernels) {
  KernelOverrideGuard guard;
  SplitMix64 rng(5);
  for (size_t n : kLengths) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<double>(rng.Uniform(1000)) / 997.0;
      b[i] = static_cast<double>(rng.Uniform(1000)) / 997.0;
    }
    // Edge values the executors can legitimately see: exact zeros, negative
    // zero (canonicalization), scores at the 2^53 precision boundary.
    if (n >= 4) {
      a[0] = 0.0;
      b[0] = -0.0;
      a[1] = -0.0;
      b[1] = -0.0;
      a[2] = 9007199254740992.0;  // 2^53
      b[3] = 9007199254740993.0;  // 2^53 + 1 rounds; still must match scalar
    }
    for (auto [wa, wb] : {std::pair<double, double>{0.5, 0.5},
                          {0.25, 0.75},
                          {1.0, 0.0},
                          {1.0 / 3.0, 2.0 / 3.0}}) {
      simd::SetKernelOverride(simd::Kernel::kScalar);
      std::vector<double> ref(n), ref1(n);
      simd::CombineScores(wa, a.data(), wb, b.data(), n, ref.data());
      double broadcast = n > 0 ? a[0] : 0.0;
      simd::CombineScores1(wa, broadcast, wb, b.data(), n, ref1.data());
      // The scalar reference itself must be the executors' expression.
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(BitwiseEq(ref[i], wa * a[i] + wb * b[i]));
        ASSERT_TRUE(BitwiseEq(ref1[i], wa * broadcast + wb * b[i]));
      }
      for (simd::Kernel k : AvailableKernels()) {
        simd::SetKernelOverride(k);
        std::vector<double> got(n), got1(n);
        simd::CombineScores(wa, a.data(), wb, b.data(), n, got.data());
        simd::CombineScores1(wa, broadcast, wb, b.data(), n, got1.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_TRUE(BitwiseEq(got[i], ref[i]))
              << simd::KernelName(k) << " @" << i << ": " << got[i]
              << " != " << ref[i];
          EXPECT_TRUE(BitwiseEq(got1[i], ref1[i]))
              << simd::KernelName(k) << " @" << i;
        }
      }
    }
  }
}

TEST(CanonicalKeyTest, NullAndOverflowFallBack) {
  // Null is never kernel-encodable.
  KeyDictionary dict;
  EXPECT_FALSE(CanonicalScalarKey(Value(), &dict).has_value());

  // A tiny dictionary overflows on the third distinct string; the overflowed
  // key must decline (scalar path), not alias an existing code.
  KeyDictionary tiny(2);
  auto k1 = CanonicalScalarKey(Value("alpha"), &tiny);
  auto k2 = CanonicalScalarKey(Value("beta"), &tiny);
  auto k3 = CanonicalScalarKey(Value("gamma"), &tiny);
  ASSERT_TRUE(k1.has_value());
  ASSERT_TRUE(k2.has_value());
  EXPECT_FALSE(k3.has_value());
  EXPECT_TRUE(tiny.overflowed());
  EXPECT_NE(k1->code, k2->code);
  // Re-interning a seen string still succeeds after overflow.
  auto again = CanonicalScalarKey(Value("alpha"), &tiny);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->code, k1->code);

  // String keys without a dictionary cannot be encoded.
  EXPECT_FALSE(CanonicalScalarKey(Value("alpha"), nullptr).has_value());
}

TEST(CanonicalKeyTest, HugeIntsRefuseTheDoubleRepresentation) {
  KeyDictionary dict;
  const int64_t huge = (int64_t{1} << 53) + 1;  // not exactly a double
  auto hk = CanonicalScalarKey(Value(huge), &dict);
  ASSERT_TRUE(hk.has_value());
  EXPECT_EQ(hk->family, KeyFamily::kInt);
  EXPECT_FALSE(hk->f64_valid);

  // A batch of {huge int, double} forces the numeric family but loses the
  // f64 representation -> no comparable mode against a double key, because
  // 2^53+1 == 9007199254740992.0 would be TRUE under doubles and FALSE
  // under Value::Compare.
  ScalarKeyBatch batch;
  batch.Add(hk);
  batch.Add(CanonicalScalarKey(Value(9007199254740992.0), &dict));
  KeyColumn col = batch.View();
  auto dkey = CanonicalScalarKey(Value(1.5), &dict);
  ASSERT_TRUE(dkey.has_value());
  EXPECT_FALSE(ComparableScalarMode(*dkey, col).has_value());

  // All-int batches keep the exact i64 representation and stay comparable.
  ScalarKeyBatch ints;
  ints.Add(CanonicalScalarKey(Value(huge), &dict));
  ints.Add(CanonicalScalarKey(Value(huge + 1), &dict));
  auto ikey = CanonicalScalarKey(Value(huge), &dict);
  ASSERT_TRUE(ikey.has_value());
  auto mode = ComparableScalarMode(*ikey, ints.View());
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(*mode, PairMode::kI64);
}

TEST(CanonicalKeyTest, MixedFamilyBatchPoisons) {
  KeyDictionary dict;
  ScalarKeyBatch batch;
  batch.Add(CanonicalScalarKey(Value(int64_t{7}), &dict));
  batch.Add(CanonicalScalarKey(Value("seven"), &dict));
  EXPECT_EQ(batch.View().family, KeyFamily::kFallback);

  ScalarKeyBatch with_null;
  with_null.Add(CanonicalScalarKey(Value(int64_t{7}), &dict));
  with_null.Add(CanonicalScalarKey(Value(), &dict));  // null poisons
  EXPECT_EQ(with_null.View().family, KeyFamily::kFallback);

  // Empty batch: nothing to compare -> fallback, not a zero-length kernel.
  ScalarKeyBatch empty;
  EXPECT_EQ(empty.View().family, KeyFamily::kFallback);
}

TEST(ColumnChunkTest, DecodeFallbacksNeverLie) {
  KeyDictionary dict;
  AttrPath key_path;
  key_path.attr_index = 0;

  // Null key in one row -> whole chunk's key column falls back, but scores
  // and row ids are still materialized (the executors always use those).
  std::vector<Tuple> tuples;
  tuples.push_back(Tuple({Value(int64_t{1}), Value("a")}));
  tuples.push_back(Tuple({Value(), Value("b")}));
  tuples.push_back(Tuple({Value(int64_t{3}), Value("c")}));
  std::vector<double> scores = {0.9, 0.8};  // shorter than tuples: pad 0.0
  ColumnChunk chunk = ColumnChunk::Decode(tuples, scores, key_path, &dict);
  EXPECT_TRUE(chunk.key_fallback());
  ASSERT_EQ(chunk.num_rows(), 3u);
  EXPECT_TRUE(BitwiseEq(chunk.scores()[0], 0.9));
  EXPECT_TRUE(BitwiseEq(chunk.scores()[1], 0.8));
  EXPECT_TRUE(BitwiseEq(chunk.scores()[2], 0.0));  // executor padding rule
  EXPECT_EQ(chunk.row_ids()[0], 0);
  EXPECT_EQ(chunk.row_ids()[2], 2);

  // A clean int chunk decodes to kInt with exact keys.
  std::vector<Tuple> clean;
  clean.push_back(Tuple({Value(int64_t{5})}));
  clean.push_back(Tuple({Value(int64_t{-5})}));
  ColumnChunk ok = ColumnChunk::Decode(clean, {1.0, 0.5}, key_path, &dict);
  EXPECT_FALSE(ok.key_fallback());
  EXPECT_EQ(ok.key().family, KeyFamily::kInt);
  EXPECT_EQ(ok.key().i64[0], 5);
  EXPECT_EQ(ok.key().i64[1], -5);

  // Dictionary overflow mid-chunk -> fallback.
  KeyDictionary tiny(1);
  std::vector<Tuple> strings;
  strings.push_back(Tuple({Value("x")}));
  strings.push_back(Tuple({Value("y")}));
  ColumnChunk over = ColumnChunk::Decode(strings, {1.0, 0.5}, key_path, &tiny);
  EXPECT_TRUE(over.key_fallback());

  // An out-of-range key path cannot be decoded.
  AttrPath bad;
  bad.attr_index = 9;
  ColumnChunk miss = ColumnChunk::Decode(clean, {1.0, 0.5}, bad, &dict);
  EXPECT_TRUE(miss.key_fallback());
}

/// Two executions are bit-identical: same tuples in the same order with the
/// same (bitwise) scores.
void ExpectIdenticalResults(const std::vector<JoinResultTuple>& got,
                            const std::vector<JoinResultTuple>& ref,
                            const char* label) {
  ASSERT_EQ(got.size(), ref.size()) << label;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].x.AtomicAt(0).AsInt(), ref[i].x.AtomicAt(0).AsInt())
        << label << " @" << i;
    EXPECT_EQ(got[i].y.AtomicAt(0).AsInt(), ref[i].y.AtomicAt(0).AsInt())
        << label << " @" << i;
    EXPECT_TRUE(BitwiseEq(got[i].score_x, ref[i].score_x)) << label << " @" << i;
    EXPECT_TRUE(BitwiseEq(got[i].score_y, ref[i].score_y)) << label << " @" << i;
    EXPECT_TRUE(BitwiseEq(got[i].combined, ref[i].combined))
        << label << " @" << i << ": " << got[i].combined
        << " != " << ref[i].combined;
  }
}

ColumnJoinSpec FirstAttrBothSides() {
  ColumnJoinSpec spec;
  spec.x.attr_index = 0;
  spec.y.attr_index = 0;
  return spec;
}

TEST(ColumnarEndToEnd, ParallelJoinBitIdenticalAcrossKernels) {
  KernelOverrideGuard guard;
  SyntheticPairParams params;
  params.rows_x = 150;
  params.rows_y = 150;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 12;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));

  auto run = [&](bool columnar) -> Result<JoinExecution> {
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    ParallelJoinConfig config;
    config.strategy.invocation = JoinInvocation::kMergeScan;
    config.strategy.completion = JoinCompletion::kRectangular;
    config.k = 25;
    config.max_calls = 200;
    config.weight_x = 0.25;
    config.weight_y = 0.75;
    if (columnar) config.columns = FirstAttrBothSides();
    ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
    return executor.Run();
  };

  simd::SetKernelOverride(simd::Kernel::kScalar);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution ref, run(/*columnar=*/false));
  ASSERT_GE(ref.results.size(), 25u);

  for (simd::Kernel k : AvailableKernels()) {
    simd::SetKernelOverride(k);
    SECO_ASSERT_OK_AND_ASSIGN(JoinExecution col, run(/*columnar=*/true));
    ExpectIdenticalResults(col.results, ref.results, simd::KernelName(k));
    EXPECT_GT(col.columnar.chunks_decoded, 0) << simd::KernelName(k);
    EXPECT_GT(col.columnar.kernel_batches, 0) << simd::KernelName(k);
    EXPECT_EQ(col.columnar.decode_fallbacks, 0) << simd::KernelName(k);
    EXPECT_EQ(col.calls_x, ref.calls_x);
    EXPECT_EQ(col.calls_y, ref.calls_y);
  }
}

TEST(ColumnarEndToEnd, PipeJoinBitIdenticalAcrossKernels) {
  KernelOverrideGuard guard;
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService outer,
                            MakeKeyedSearchService("O", 40, 5, 6));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService inner,
      MakeKeyedSearchService("I", 80, 5, 6, ScoreDecay::kLinear,
                             /*key_is_input=*/true));

  auto run = [&](bool columnar) -> Result<JoinExecution> {
    ChunkSource outer_source(outer.interface, {});
    PipeJoinConfig config;
    config.k = 20;
    config.max_calls = 300;
    config.weight_outer = 0.4;
    config.weight_inner = 0.6;
    if (columnar) config.columns = FirstAttrBothSides();
    return RunPipeJoin(&outer_source, inner.interface,
                       [](const Tuple& t) {
                         return std::vector<Value>{t.AtomicAt(0)};
                       },
                       KeyEquals(), config);
  };

  simd::SetKernelOverride(simd::Kernel::kScalar);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution ref, run(/*columnar=*/false));
  ASSERT_GE(ref.results.size(), 10u);

  for (simd::Kernel k : AvailableKernels()) {
    simd::SetKernelOverride(k);
    SECO_ASSERT_OK_AND_ASSIGN(JoinExecution col, run(/*columnar=*/true));
    ExpectIdenticalResults(col.results, ref.results, simd::KernelName(k));
    EXPECT_GT(col.columnar.kernel_batches, 0) << simd::KernelName(k);
  }
}

TEST(ColumnarEndToEnd, TopKJoinBitIdenticalAcrossKernels) {
  KernelOverrideGuard guard;
  SyntheticPairParams params;
  params.rows_x = 120;
  params.rows_y = 120;
  params.chunk_x = 8;
  params.chunk_y = 8;
  params.key_domain = 10;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));

  auto run = [&](bool columnar) -> Result<TopKJoinExecution> {
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    TopKJoinConfig config;
    config.k = 15;
    config.max_calls = 300;
    config.weight_x = 2.0 / 3.0;  // asymmetric, non-terminating binary
    config.weight_y = 1.0 / 3.0;
    if (columnar) config.columns = FirstAttrBothSides();
    TopKJoinExecutor executor(&x, &y, KeyEquals(), config);
    return executor.Run();
  };

  simd::SetKernelOverride(simd::Kernel::kScalar);
  SECO_ASSERT_OK_AND_ASSIGN(TopKJoinExecution ref, run(/*columnar=*/false));
  ASSERT_GE(ref.results.size(), 15u);

  for (simd::Kernel k : AvailableKernels()) {
    simd::SetKernelOverride(k);
    SECO_ASSERT_OK_AND_ASSIGN(TopKJoinExecution col, run(/*columnar=*/true));
    ExpectIdenticalResults(col.results, ref.results, simd::KernelName(k));
    EXPECT_EQ(col.guaranteed, ref.guaranteed);
    EXPECT_TRUE(BitwiseEq(col.final_threshold, ref.final_threshold));
    EXPECT_GT(col.columnar.kernel_batches, 0) << simd::KernelName(k);
    EXPECT_GT(col.columnar.chunks_decoded, 0) << simd::KernelName(k);
  }
}

TEST(ColumnarEndToEnd, StreamingDoctorScenarioIdenticalAcrossKernels) {
  KernelOverrideGuard guard;
  // The doctor WorksAt join (Doctor.HospitalName == Hospital.Name) is an
  // atomic string equality — the streaming gate engages the kDict kernel.
  DoctorScenarioParams params;
  params.num_hospitals = 12;
  params.doctors_per_specialty = 50;
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeDoctorScenario(params));
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario.registry));
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 6;
  spec.atom_settings[1].fetch_factor = 6;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());

  auto run = [&]() -> Result<StreamingResult> {
    StreamingOptions options;
    options.k = 20;
    options.input_bindings = scenario.inputs;
    options.max_calls = 100000;
    StreamingEngine engine(options);
    return engine.Execute(plan);
  };

  simd::SetKernelOverride(simd::Kernel::kScalar);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult ref, run());
  ASSERT_FALSE(ref.combinations.empty());
  EXPECT_GT(ref.columnar.kernel_batches, 0);
  EXPECT_EQ(ref.columnar.scalar_batches, 0);

  for (simd::Kernel k : AvailableKernels()) {
    simd::SetKernelOverride(k);
    SECO_ASSERT_OK_AND_ASSIGN(StreamingResult got, run());
    ASSERT_EQ(got.combinations.size(), ref.combinations.size())
        << simd::KernelName(k);
    for (size_t i = 0; i < ref.combinations.size(); ++i) {
      EXPECT_TRUE(BitwiseEq(got.combinations[i].combined_score,
                            ref.combinations[i].combined_score))
          << simd::KernelName(k) << " @" << i;
    }
    EXPECT_EQ(got.total_calls, ref.total_calls) << simd::KernelName(k);
  }
}

TEST(ColumnarEndToEnd, ExhaustiveDrainStaysIdentical) {
  KernelOverrideGuard guard;
  // k larger than every joinable pair: both runs drain the sources fully,
  // so the comparison covers every emitted tuple, not just a top-k prefix.
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService outer,
                            MakeKeyedSearchService("O2", 30, 5, 4));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService inner,
      MakeKeyedSearchService("I2", 60, 5, 4, ScoreDecay::kLinear,
                             /*key_is_input=*/true));
  auto run = [&](bool columnar) -> Result<JoinExecution> {
    ChunkSource outer_source(outer.interface, {});
    PipeJoinConfig config;
    config.k = 1000;
    config.max_calls = 500;
    if (columnar) config.columns = FirstAttrBothSides();
    return RunPipeJoin(&outer_source, inner.interface,
                       [](const Tuple& t) {
                         return std::vector<Value>{t.AtomicAt(0)};
                       },
                       KeyEquals(), config);
  };
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution ref, run(false));
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution col, run(true));
  ExpectIdenticalResults(col.results, ref.results, "exhaustive pipe");
}

}  // namespace
}  // namespace seco
