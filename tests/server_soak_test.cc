// Soak test: the server is hit with an open-loop burst several times its
// capacity while backends inject transient faults. The overload-safety
// invariants (docs/SERVER.md) must hold throughout:
//   - every submitted query terminates with an explicit outcome,
//   - in-flight work and queue depths stay within their configured bounds,
//   - shedding absorbs the excess (mostly in the batch class),
//   - interactive queue waits stay within a generous bound.
// The run is sized to stay fast enough for a TSan build (scripts/soak.sh).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "core/seco.h"

namespace seco {
namespace {

TEST(ServerSoakTest, OverloadBurstWithFaultsKeepsEveryInvariant) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  // Transient faults on every backend; the server-wide retry policy must
  // absorb them so overload — not fault leakage — decides the outcomes.
  FaultProfile faults;
  faults.transient_rate = 0.1;
  faults.transient_attempts = 1;
  faults.seed = 7;
  for (auto& [name, backend] : scenario->backends) {
    backend->set_fault_profile(faults);
    backend->set_realtime_factor(0.002);  // queries occupy slots for real ms
  }

  ServerOptions options;
  options.admission.max_in_flight = 2;
  options.admission.interactive.queue_capacity = 6;
  options.admission.batch.queue_capacity = 6;
  options.ladder.enabled = true;
  options.reliability.retry.max_retries = 2;
  options.num_threads = 2;
  QueryServer server(scenario->registry, options);

  // Open loop at zero interarrival: 48 queries against a capacity of
  // 2 in flight + 12 queued — a 3x+ overload by construction.
  LoadProfile profile;
  profile.seed = 11;
  profile.num_queries = 48;
  profile.closed_loop_width = 0;
  profile.mean_interarrival_ms = 0.0;
  profile.interactive_fraction = 0.5;
  profile.k_min = 3;
  profile.k_max = 8;
  LoadGenerator generator(profile, scenario->query_text, scenario->inputs);
  LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
  server.Drain();

  ASSERT_EQ(report.responses.size(), 48u);
  ServerStats stats = server.stats();

  // Ledger closure: submissions equal terminal outcomes, per class.
  EXPECT_EQ(stats.interactive.submitted + stats.batch.submitted, 48);
  EXPECT_EQ(stats.interactive.finished(), stats.interactive.submitted);
  EXPECT_EQ(stats.batch.finished(), stats.batch.submitted);

  // Every response carries an explicit outcome and a status consistent
  // with it — no silent drops, no successes reported as failures.
  std::array<int, 5> outcome_counts{};
  for (const QueryResponse& response : report.responses) {
    outcome_counts[static_cast<int>(response.outcome)]++;
    switch (response.outcome) {
      case ServedOutcome::kCompleted:
      case ServedOutcome::kDegraded:
        EXPECT_TRUE(response.status.ok()) << response.status.ToString();
        break;
      case ServedOutcome::kShed:
        EXPECT_EQ(response.status.code(), StatusCode::kRejected);
        EXPECT_GT(response.retry_after_ms, 0.0);
        break;
      case ServedOutcome::kDeadlineExpired:
        EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
        break;
      case ServedOutcome::kFailed:
        EXPECT_FALSE(response.status.ok());
        break;
    }
  }
  int total = 0;
  for (int count : outcome_counts) total += count;
  EXPECT_EQ(total, 48);

  // Bounded structures: the admission window and per-class queues never
  // overshoot their configured capacities.
  EXPECT_LE(stats.peak_in_flight, 2);
  EXPECT_LE(stats.interactive.peak_queue_depth, 6);
  EXPECT_LE(stats.batch.peak_queue_depth, 6);

  // A 3x overload must shed; nothing may fail outright (faults are
  // transient and within the retry budget).
  EXPECT_GT(stats.interactive.shed + stats.batch.shed, 0);
  EXPECT_EQ(stats.interactive.failed + stats.batch.failed, 0);

  // Some queries still complete or degrade — the server keeps serving
  // under overload rather than collapsing.
  int64_t served = stats.interactive.completed + stats.interactive.degraded +
                   stats.batch.completed + stats.batch.degraded;
  EXPECT_GT(served, 0);

  // Queue waits are bounded by construction: with a finite queue and a
  // single-digit service time, the worst admitted query waits roughly
  // (queue depth x service time). The generous real-time bound below is
  // ~20x that, so it only fires on true unboundedness.
  if (!stats.interactive.queue_wait_ms.empty()) {
    double p95 = Percentile(stats.interactive.queue_wait_ms, 95.0);
    EXPECT_LT(p95, 10000.0);
  }

  // Retries actually ran against the injected faults.
  int64_t attempts = 0;
  for (const QueryResponse& response : report.responses) {
    attempts += response.streamed
                    ? response.streaming.reliability.attempts
                    : response.execution.reliability.attempts;
  }
  EXPECT_GT(attempts, 0);
}

TEST(ServerSoakTest, RepeatedBurstsStayStableAcrossEpochs) {
  // Three consecutive bursts against one server instance: the ledger keeps
  // closing and bounds keep holding as state (cache, breakers, stats)
  // accumulates across epochs.
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  for (auto& [name, backend] : scenario->backends) {
    backend->set_realtime_factor(0.002);
  }

  ServerOptions options;
  options.admission.max_in_flight = 2;
  options.admission.interactive.queue_capacity = 4;
  options.admission.batch.queue_capacity = 4;
  options.ladder.enabled = true;
  options.num_threads = 2;
  QueryServer server(scenario->registry, options);

  int64_t expected_submitted = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    LoadProfile profile;
    profile.seed = 100 + epoch;
    profile.num_queries = 20;
    profile.closed_loop_width = 0;
    profile.mean_interarrival_ms = 0.0;
    profile.k_min = 3;
    profile.k_max = 6;
    LoadGenerator generator(profile, scenario->query_text, scenario->inputs);
    LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
    server.Drain();
    expected_submitted += 20;

    ASSERT_EQ(report.responses.size(), 20u);
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.interactive.submitted + stats.batch.submitted,
              expected_submitted);
    EXPECT_EQ(stats.interactive.finished() + stats.batch.finished(),
              expected_submitted);
    EXPECT_LE(stats.peak_in_flight, 2);
  }
  // The shared cache stayed within budget through all epochs.
  CallCacheStats cache = server.cache().stats();
  int64_t budget = static_cast<int64_t>(server.cache().byte_budget());
  EXPECT_LE(cache.bytes, budget);
  EXPECT_LE(cache.bytes_high_water, budget);
}

}  // namespace
}  // namespace seco
