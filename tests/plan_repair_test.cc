// Acceptance tests of mid-query plan repair (docs/RELIABILITY.md, "Failover
// & plan repair"): a permanent outage of a service with a registered replica
// triggers re-optimization onto the replica and returns *complete* answers
// identical to planning against the replica from the start; the prefix
// materialized before the outage is salvaged through the shared call cache;
// the whole loop is bit-deterministic at any {num_threads, prefetch_depth};
// without a replica the policy matrix decides between erroring and degrading.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

/// Seed salt for injected fault profiles; `scripts/chaos.sh` sweeps it so the
/// same binaries exercise different stricken-request populations.
uint64_t ChaosSeed() {
  const char* env = std::getenv("SECO_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 0) : 0;
}

std::string WithService(std::string text, const std::string& from,
                        const std::string& to) {
  size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from << " not in: " << text;
  text.replace(pos, from.size(), to);
  return text;
}

Result<QueryPlan> OptimizeScenario(std::shared_ptr<ServiceRegistry> registry,
                                   const std::string& query_text) {
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(std::move(registry), optimizer_options);
  SECO_ASSIGN_OR_RETURN(BoundQuery bound, session.Prepare(query_text));
  SECO_ASSIGN_OR_RETURN(OptimizationResult optimized, session.Optimize(bound));
  return std::move(optimized.plan);
}

void KillBackend(Scenario* scenario, const std::string& name) {
  FaultProfile outage;
  outage.permanent_outage = true;
  scenario->backends.at(name)->set_fault_profile(outage);
}

StreamingOptions StreamOptions(const Scenario& scenario, int num_threads = 1,
                               int prefetch_depth = 0) {
  StreamingOptions options;
  options.k = 10;
  options.input_bindings = scenario.inputs;
  options.num_threads = num_threads;
  options.prefetch_depth = prefetch_depth;
  return options;
}

RepairOptions FailoverOptions(const Scenario& scenario,
                              RepairPolicy policy = RepairPolicy::kFailover) {
  RepairOptions repair;
  repair.policy = policy;
  repair.registry = scenario.registry.get();
  repair.optimizer.k = 10;
  return repair;
}

void ExpectSameCombinations(const std::vector<Combination>& expected,
                            const std::vector<Combination>& actual) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("combination " + std::to_string(i));
    EXPECT_DOUBLE_EQ(actual[i].combined_score, expected[i].combined_score);
    EXPECT_TRUE(actual[i].missing_atoms.empty());
    ASSERT_EQ(actual[i].components.size(), expected[i].components.size());
    for (size_t c = 0; c < expected[i].components.size(); ++c) {
      EXPECT_TRUE(actual[i].components[c] == expected[i].components[c]);
    }
  }
}

// --- Replica registry ------------------------------------------------------

TEST(PlanRepairTest, RegistryListsReplicaAlternatives) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService replica,
                            AddReplica(&scenario, "Hotel1", "Hotel2"));
  EXPECT_EQ(replica.interface->name(), "Hotel2");

  auto alts = scenario.registry->AlternativesFor("Hotel1");
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0]->name(), "Hotel2");
  // Symmetric, never includes self.
  auto back = scenario.registry->AlternativesFor("Hotel2");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0]->name(), "Hotel1");
  // No compatible sibling / unknown interface -> empty.
  EXPECT_TRUE(scenario.registry->AlternativesFor("Conference1").empty());
  EXPECT_TRUE(scenario.registry->AlternativesFor("NoSuchService").empty());
}

TEST(PlanRepairTest, MovieMartInterfacesAreNaturalReplicas) {
  // Movie11 (search by genre+country) and Movie12 (lookup by title) share the
  // Movie mart and schema but differ in access pattern — exactly the kind of
  // sibling the repairer must re-optimize around, not patch in place.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  auto alts = scenario.registry->AlternativesFor("Movie11");
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0]->name(), "Movie12");
}

// --- Failover returns complete, reference-identical answers ----------------

TEST(PlanRepairTest, StreamingFailoverMatchesPlanningAgainstReplica) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK(AddReplica(&scenario, "Hotel1", "Hotel2").status());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan replica_plan,
      OptimizeScenario(scenario.registry,
                       WithService(scenario.query_text, "Hotel1", "Hotel2")));

  // Reference: the replica was the plan's hotel service from the start.
  StreamingEngine reference_engine(StreamOptions(scenario));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult reference,
                            reference_engine.Execute(replica_plan));
  ASSERT_FALSE(reference.combinations.empty());
  ASSERT_TRUE(reference.complete);

  KillBackend(&scenario, "Hotel1");
  StreamingOptions options = StreamOptions(scenario);
  options.repair = FailoverOptions(scenario);
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult repaired, engine.Execute(plan));

  EXPECT_TRUE(repaired.complete);
  EXPECT_TRUE(repaired.degraded.empty());
  ExpectSameCombinations(reference.combinations, repaired.combinations);

  EXPECT_EQ(repaired.repair.events, 1);
  EXPECT_EQ(repaired.repair.replans, 1);
  ASSERT_EQ(repaired.repair.log.size(), 1u);
  EXPECT_EQ(repaired.repair.log[0].lost, "Hotel1");
  EXPECT_EQ(repaired.repair.log[0].replacement, "Hotel2");
  EXPECT_EQ(repaired.repair.log[0].reason, "failover");
  EXPECT_GE(repaired.repair.replan_ms, 0.0);
  EXPECT_GT(repaired.repair.abandoned_ms, 0.0);
  // Replanning is optimizer work and never inflates the simulated clock;
  // the salvaged prefix replays as free cache hits (call_cache.h), so the
  // repaired round can only be cheaper than the reference, never dearer.
  EXPECT_GT(repaired.total_latency_ms, 0.0);
  EXPECT_LE(repaired.total_latency_ms, reference.total_latency_ms);
}

TEST(PlanRepairTest, MaterializingEngineFailsOver) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK(AddReplica(&scenario, "Hotel1", "Hotel2").status());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan replica_plan,
      OptimizeScenario(scenario.registry,
                       WithService(scenario.query_text, "Hotel1", "Hotel2")));

  ExecutionOptions reference_options;
  reference_options.k = 10;
  reference_options.input_bindings = scenario.inputs;
  ExecutionEngine reference_engine(reference_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult reference,
                            reference_engine.Execute(replica_plan));
  ASSERT_FALSE(reference.combinations.empty());

  KillBackend(&scenario, "Hotel1");
  ExecutionOptions options = reference_options;
  options.repair = FailoverOptions(scenario);
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult repaired, engine.Execute(plan));

  EXPECT_TRUE(repaired.complete);
  ExpectSameCombinations(reference.combinations, repaired.combinations);
  EXPECT_EQ(repaired.repair.replans, 1);
  ASSERT_EQ(repaired.repair.log.size(), 1u);
  EXPECT_EQ(repaired.repair.log[0].replacement, "Hotel2");
  // Salvaged cache hits are free on the simulated clock, so repair can only
  // come in at or under the reference; replanning never inflates it.
  EXPECT_GT(repaired.elapsed_ms, 0.0);
  EXPECT_LE(repaired.elapsed_ms, reference.elapsed_ms);
}

TEST(PlanRepairTest, FailoverAcrossAccessPatternsReplansTopology) {
  // Movie11 dies; the only replica, Movie12, is keyed by Title — the repaired
  // plan cannot keep Movie as the root search service and must re-derive the
  // topology (Theatre-rooted, Movie piped), which a full re-optimization does.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan replica_plan,
      OptimizeScenario(scenario.registry,
                       WithService(scenario.query_text, "Movie11", "Movie12")));

  StreamingEngine reference_engine(StreamOptions(scenario));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult reference,
                            reference_engine.Execute(replica_plan));
  ASSERT_TRUE(reference.complete);

  KillBackend(&scenario, "Movie11");
  StreamingOptions options = StreamOptions(scenario);
  options.repair = FailoverOptions(scenario);
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult repaired, engine.Execute(plan));

  EXPECT_TRUE(repaired.complete);
  ASSERT_EQ(repaired.repair.log.size(), 1u);
  EXPECT_EQ(repaired.repair.log[0].lost, "Movie11");
  EXPECT_EQ(repaired.repair.log[0].replacement, "Movie12");
  ExpectSameCombinations(reference.combinations, repaired.combinations);
}

// --- Salvaged prefix -------------------------------------------------------

TEST(PlanRepairTest, AbandonedPrefixIsSalvagedThroughTheSharedCache) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK(AddReplica(&scenario, "Hotel1", "Hotel2").status());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));

  // A from-scratch run on an identical fresh scenario tells us how many real
  // calls the root service costs when nothing is salvaged.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario fresh, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan fresh_plan, OptimizeScenario(fresh.registry, fresh.query_text));
  StreamingEngine fresh_engine(StreamOptions(fresh));
  SECO_ASSERT_OK(fresh_engine.Execute(fresh_plan).status());
  const int64_t fresh_conference_calls =
      fresh.backends.at("Conference1")->call_count();

  KillBackend(&scenario, "Hotel1");
  StreamingOptions options = StreamOptions(scenario);
  options.repair = FailoverOptions(scenario);
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult repaired, engine.Execute(plan));

  // The replanned round replays the abandoned round's chunks as cache hits:
  // salvage is visible in the counters, and the root service paid no more
  // real calls across *both* rounds than the from-scratch run paid in one.
  EXPECT_GT(repaired.repair.salvaged_calls, 0);
  EXPECT_EQ(repaired.repair.salvaged_calls, repaired.cache_hits);
  EXPECT_EQ(scenario.backends.at("Conference1")->call_count(),
            fresh_conference_calls);
}

// --- Determinism -----------------------------------------------------------

TEST(PlanRepairTest, RepairIsDeterministicAcrossThreadsAndPrefetch) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK(AddReplica(&scenario, "Hotel1", "Hotel2").status());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  KillBackend(&scenario, "Hotel1");

  // Wasted speculation of abandoned rounds can pre-warm each run's private
  // repair cache differently across configurations, so call/hit counts are
  // wall-clock-class here; the *answers* and the repair decisions must match.
  StreamingResult baseline;
  bool have_baseline = false;
  for (int num_threads : {1, 4}) {
    for (int prefetch_depth : {0, 4}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " prefetch_depth=" + std::to_string(prefetch_depth));
      StreamingOptions options =
          StreamOptions(scenario, num_threads, prefetch_depth);
      options.repair = FailoverOptions(scenario);
      StreamingEngine engine(options);
      SECO_ASSERT_OK_AND_ASSIGN(StreamingResult run, engine.Execute(plan));
      EXPECT_TRUE(run.complete);
      if (!have_baseline) {
        baseline = run;
        have_baseline = true;
        ASSERT_FALSE(baseline.combinations.empty());
        continue;
      }
      ExpectSameCombinations(baseline.combinations, run.combinations);
      EXPECT_EQ(run.total_calls, baseline.total_calls);
      EXPECT_DOUBLE_EQ(run.total_latency_ms, baseline.total_latency_ms);
      EXPECT_EQ(run.repair.events, baseline.repair.events);
      EXPECT_EQ(run.repair.replans, baseline.repair.replans);
      ASSERT_EQ(run.repair.log.size(), baseline.repair.log.size());
      for (size_t i = 0; i < baseline.repair.log.size(); ++i) {
        EXPECT_EQ(run.repair.log[i].lost, baseline.repair.log[i].lost);
        EXPECT_EQ(run.repair.log[i].replacement,
                  baseline.repair.log[i].replacement);
        EXPECT_EQ(run.repair.log[i].reason, baseline.repair.log[i].reason);
      }
    }
  }
}

TEST(PlanRepairTest, FailoverRecoversUnderTransientNoise) {
  // Chaos-style combination: transient faults everywhere (seed swept by
  // scripts/chaos.sh via SECO_FAULT_SEED) plus a permanent outage with a
  // replica. Retries absorb the noise, failover absorbs the outage; answers
  // still match the clean reference against the replica.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK(AddReplica(&scenario, "Hotel1", "Hotel2").status());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan replica_plan,
      OptimizeScenario(scenario.registry,
                       WithService(scenario.query_text, "Hotel1", "Hotel2")));

  StreamingEngine reference_engine(StreamOptions(scenario));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult reference,
                            reference_engine.Execute(replica_plan));

  for (auto& [name, backend] : scenario.backends) {
    FaultProfile profile;
    profile.transient_rate = 0.15;
    profile.transient_attempts = 2;
    profile.seed = ChaosSeed();
    if (name == "Hotel1") profile.permanent_outage = true;
    backend->set_fault_profile(profile);
  }

  for (int num_threads : {1, 4}) {
    for (int prefetch_depth : {0, 4}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " prefetch_depth=" + std::to_string(prefetch_depth));
      StreamingOptions options =
          StreamOptions(scenario, num_threads, prefetch_depth);
      options.reliability.retry.max_retries = 3;
      options.repair = FailoverOptions(scenario);
      StreamingEngine engine(options);
      SECO_ASSERT_OK_AND_ASSIGN(StreamingResult repaired, engine.Execute(plan));
      EXPECT_TRUE(repaired.complete);
      EXPECT_EQ(repaired.repair.replans, 1);
      ExpectSameCombinations(reference.combinations, repaired.combinations);
    }
  }
}

// --- Policy matrix without a replica ---------------------------------------

TEST(PlanRepairTest, PolicyMatrixWithoutReplica) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  KillBackend(&scenario, "Hotel1");

  // failover: no replica -> the query fails with the repairer's verdict.
  {
    StreamingOptions options = StreamOptions(scenario);
    options.repair = FailoverOptions(scenario, RepairPolicy::kFailover);
    StreamingEngine engine(options);
    Result<StreamingResult> failed = engine.Execute(plan);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kNotFound);
  }

  // failover_then_degrade: the degraded round is kept, with the reason logged.
  {
    StreamingOptions options = StreamOptions(scenario);
    options.repair =
        FailoverOptions(scenario, RepairPolicy::kFailoverThenDegrade);
    StreamingEngine engine(options);
    SECO_ASSERT_OK_AND_ASSIGN(StreamingResult partial, engine.Execute(plan));
    EXPECT_FALSE(partial.complete);
    EXPECT_FALSE(partial.degraded.empty());
    EXPECT_EQ(partial.repair.events, 1);
    EXPECT_EQ(partial.repair.replans, 0);
    ASSERT_EQ(partial.repair.log.size(), 1u);
    EXPECT_EQ(partial.repair.log[0].lost, "Hotel1");
    EXPECT_TRUE(partial.repair.log[0].replacement.empty());
  }

  // degrade: plain partial answers, no repair machinery engaged.
  {
    StreamingOptions options = StreamOptions(scenario);
    options.repair.policy = RepairPolicy::kDegrade;
    StreamingEngine engine(options);
    SECO_ASSERT_OK_AND_ASSIGN(StreamingResult partial, engine.Execute(plan));
    EXPECT_FALSE(partial.complete);
    EXPECT_FALSE(partial.degraded.empty());
    EXPECT_FALSE(partial.repair.any());
  }

  // off + strict reliability: the outage stays a hard error.
  {
    StreamingOptions options = StreamOptions(scenario);
    StreamingEngine engine(options);
    Result<StreamingResult> failed = engine.Execute(plan);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  }
}

TEST(PlanRepairTest, FailoverPoliciesRequireARegistry) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  StreamingOptions options = StreamOptions(scenario);
  options.repair.policy = RepairPolicy::kFailover;  // registry left null
  StreamingEngine engine(options);
  Result<StreamingResult> failed = engine.Execute(plan);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanRepairTest, RepairPolicyParsesAndPrints) {
  for (RepairPolicy policy :
       {RepairPolicy::kOff, RepairPolicy::kDegrade, RepairPolicy::kFailover,
        RepairPolicy::kFailoverThenDegrade}) {
    SECO_ASSERT_OK_AND_ASSIGN(RepairPolicy parsed,
                              ParseRepairPolicy(RepairPolicyToString(policy)));
    EXPECT_EQ(parsed, policy);
  }
  EXPECT_FALSE(ParseRepairPolicy("self-heal").ok());
}

// --- Breaker telemetry (satellite: per-interface breaker state) ------------

TEST(PlanRepairTest, BreakerStateIsReportedPerInterface) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, OptimizeScenario(scenario.registry, scenario.query_text));
  KillBackend(&scenario, "Hotel1");

  StreamingOptions options = StreamOptions(scenario);
  options.reliability.degrade = true;
  options.reliability.breaker_failure_threshold = 2;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult result, engine.Execute(plan));

  ASSERT_FALSE(result.reliability.breakers.empty());
  bool saw_hotel = false;
  for (const CircuitBreakerState& state : result.reliability.breakers) {
    if (state.interface_name != "Hotel1") {
      EXPECT_EQ(state.phase, BreakerPhase::kClosed) << state.interface_name;
      continue;
    }
    saw_hotel = true;
    EXPECT_EQ(state.phase, BreakerPhase::kOpen);
    EXPECT_GE(state.trips, 1);
    EXPECT_GE(state.consecutive_failures, 2);
  }
  EXPECT_TRUE(saw_hotel);

  ASSERT_FALSE(result.reliability.services_lost.empty());
  EXPECT_EQ(result.reliability.services_lost[0].interface_name, "Hotel1");
}

}  // namespace
}  // namespace seco
