#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace seco {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("service 'X'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "service 'X'");
  EXPECT_EQ(s.ToString(), "not found: service 'X'");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::ParseError("bad token");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kParseError);
  EXPECT_EQ(copy.message(), "bad token");
  // Original unaffected.
  EXPECT_EQ(s.message(), "bad token");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::Internal("boom");
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kInternal);
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::ParseError("").code(),
      Status::Infeasible("").code(),      Status::TypeError("").code(),
      Status::Internal("").code(),        Status::Unsupported("").code(),
      Status::ResourceExhausted("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    SECO_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::Internal("bad");
  };
  auto outer = [&](bool ok) -> Result<int> {
    SECO_ASSIGN_OR_RETURN(int v, inner(ok));
    return v + 1;
  };
  EXPECT_EQ(*outer(true), 8);
  EXPECT_EQ(outer(false).status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Random --

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64Test, UniformRangeInclusive) {
  SplitMix64 rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(SplitMix64Test, ForkIsIndependentAndStable) {
  SplitMix64 parent(42);
  SplitMix64 c1 = parent.Fork(1);
  SplitMix64 c2 = parent.Fork(1);
  EXPECT_EQ(c1.Next(), c2.Next());  // same tag -> same stream
  SplitMix64 c3 = parent.Fork(2);
  EXPECT_NE(c1.Next(), c3.Next());
}

TEST(ZipfSamplerTest, SkewConcentratesMass) {
  SplitMix64 rng(7);
  ZipfSampler zipf(100, 1.2);
  int low_rank = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) ++low_rank;
  }
  // With skew 1.2, the top 10 of 100 ranks should dominate.
  EXPECT_GT(low_rank, n / 2);
}

TEST(ZipfSamplerTest, ZeroSkewIsUniformish) {
  SplitMix64 rng(8);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfSamplerTest, SamplesInRange) {
  SplitMix64 rng(9);
  ZipfSampler zipf(5, 2.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 5u);
  }
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, StrSplitBasic) {
  EXPECT_EQ(StrSplit("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, StrJoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToLower("123_ABC"), "123_abc");
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool expected;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.expected)
      << "'" << c.text << "' like '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatchTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true}, LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true}, LikeCase{"hello", "h__lo", true},
        LikeCase{"hello", "", false}, LikeCase{"", "", true},
        LikeCase{"", "%", true}, LikeCase{"hello", "hell", false},
        LikeCase{"hello", "helloo", false}, LikeCase{"hello", "%x%", false},
        LikeCase{"aaa", "a%a", true}, LikeCase{"ab", "a%b%", true},
        LikeCase{"Milano", "Mil%", true}, LikeCase{"Milano", "mil%", false},
        LikeCase{"abc", "___", true}, LikeCase{"abc", "____", false},
        LikeCase{"abcabc", "%abc", true}, LikeCase{"abcabc", "abc%abc", true}));

}  // namespace
}  // namespace seco
