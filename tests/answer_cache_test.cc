// AnswerCache payload roundtrip and single-flight semantics, plus the
// optimizer plan memo's bit-identity contract: with a memo attached the
// search returns exactly the same OptimizationResult — including the search
// statistics — and the second run is served from the memo.

#include "cache/answer_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cache/plan_memo.h"
#include "cache/signature.h"
#include "optimizer/optimizer.h"
#include "plan/plan_json.h"
#include "query/bound_query.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

CachedAnswer MakeAnswer(double score) {
  CachedAnswer answer;
  answer.streamed = false;
  Combination combo;
  combo.combined_score = score;
  answer.execution.combinations.push_back(combo);
  answer.execution.elapsed_ms = 12.5;
  answer.execution.complete = true;
  return answer;
}

TEST(AnswerCacheTest, InsertProbeRoundtrip) {
  AnswerCache cache(1 << 20);
  Signature sig{0xAA, 0xBB};
  EXPECT_EQ(cache.Probe(sig), nullptr);
  cache.Insert(sig, MakeAnswer(0.75));
  std::shared_ptr<const CachedAnswer> hit = cache.Probe(sig);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->execution.combinations.size(), 1u);
  EXPECT_DOUBLE_EQ(hit->execution.combinations[0].combined_score, 0.75);
  EXPECT_DOUBLE_EQ(hit->execution.elapsed_ms, 12.5);
}

TEST(AnswerCacheTest, GenerationBumpInvalidates) {
  AnswerCache cache(1 << 20);
  Signature sig{0xAA, 0xBB};
  cache.Insert(sig, MakeAnswer(0.5));
  ASSERT_NE(cache.Probe(sig), nullptr);
  cache.BumpGeneration();
  EXPECT_EQ(cache.Probe(sig), nullptr);
}

TEST(AnswerCacheTest, SingleFlightLeaderThenFollowersReuse) {
  AnswerCache cache(1 << 20);
  Signature sig{0x11, 0x22};

  AnswerCache::Flight lead = cache.JoinOrLead(sig);
  ASSERT_TRUE(lead.leader);
  EXPECT_EQ(lead.cached, nullptr);

  AnswerCache::Flight follow = cache.JoinOrLead(sig);
  EXPECT_FALSE(follow.leader);
  EXPECT_EQ(follow.cached, nullptr);
  ASSERT_TRUE(follow.wait.valid());

  auto answer = std::make_shared<CachedAnswer>(MakeAnswer(0.9));
  cache.CompleteFlight(sig, answer);

  std::shared_ptr<const CachedAnswer> from_wait = follow.wait.get();
  ASSERT_NE(from_wait, nullptr);
  EXPECT_DOUBLE_EQ(from_wait->execution.combinations[0].combined_score, 0.9);

  // The answer is now warm: later arrivals hit without a flight.
  AnswerCache::Flight warm = cache.JoinOrLead(sig);
  ASSERT_NE(warm.cached, nullptr);
  EXPECT_FALSE(warm.leader);
  EXPECT_EQ(cache.flights_led(), 1);
  EXPECT_EQ(cache.flights_followed(), 1);
}

TEST(AnswerCacheTest, UncacheableFlightReleasesFollowersWithNull) {
  AnswerCache cache(1 << 20);
  Signature sig{0x33, 0x44};
  AnswerCache::Flight lead = cache.JoinOrLead(sig);
  ASSERT_TRUE(lead.leader);
  AnswerCache::Flight follow = cache.JoinOrLead(sig);
  ASSERT_FALSE(follow.leader);

  cache.CompleteFlight(sig, nullptr);  // leader's run was uncacheable
  EXPECT_EQ(follow.wait.get(), nullptr);
  EXPECT_EQ(cache.Probe(sig), nullptr);
  // The flight is gone: the next cold arrival leads a fresh one.
  AnswerCache::Flight relead = cache.JoinOrLead(sig);
  EXPECT_TRUE(relead.leader);
  cache.CompleteFlight(sig, nullptr);
}

TEST(AnswerCacheTest, ConcurrentIdenticalColdQueriesLeadOnce) {
  AnswerCache cache(1 << 20);
  Signature sig{0x55, 0x66};
  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      AnswerCache::Flight flight = cache.JoinOrLead(sig);
      if (flight.cached) {
        served.fetch_add(1);
        return;
      }
      if (flight.leader) {
        leaders.fetch_add(1);
        cache.CompleteFlight(sig,
                             std::make_shared<CachedAnswer>(MakeAnswer(1.0)));
        served.fetch_add(1);
      } else if (flight.wait.get() != nullptr) {
        served.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(served.load(), kThreads);
}

class PlanMemoOptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
    Result<ParsedQuery> parsed = ParseQuery(scenario_.query_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    Result<BoundQuery> bound = BindQuery(parsed.value(), *scenario_.registry);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    bound_ = std::move(bound).value();
  }

  OptimizationResult Optimize(PlanMemo* memo) {
    OptimizerOptions options;
    options.k = 5;
    options.memo = memo;
    Optimizer optimizer(options);
    Result<OptimizationResult> result = optimizer.Optimize(bound_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  Scenario scenario_;
  BoundQuery bound_;
};

TEST_F(PlanMemoOptimizerTest, MemoizedSearchIsBitIdentical) {
  OptimizationResult fresh = Optimize(nullptr);

  PlanMemo memo(1 << 20);
  OptimizationResult cold = Optimize(&memo);   // populates the memo
  OptimizationResult warm = Optimize(&memo);   // replays from it

  for (const OptimizationResult* result : {&cold, &warm}) {
    // Bit-identity, not tolerance: a memo hit replays the same pure
    // floating-point computation.
    EXPECT_EQ(result->cost, fresh.cost);
    EXPECT_EQ(result->estimated_answers, fresh.estimated_answers);
    EXPECT_EQ(result->plans_costed, fresh.plans_costed);
    EXPECT_EQ(result->branches_pruned, fresh.branches_pruned);
    EXPECT_EQ(result->topologies_tried, fresh.topologies_tried);
    EXPECT_EQ(result->search_exhausted, fresh.search_exhausted);
    EXPECT_EQ(PlanToJson(result->plan), PlanToJson(fresh.plan));
    EXPECT_EQ(PlanSignature(result->plan), PlanSignature(fresh.plan));
  }

  PlanMemoStats stats = memo.stats();
  EXPECT_GT(stats.probes(), 0);
  EXPECT_GT(stats.hits(), 0) << "second run should be served from the memo";
}

TEST_F(PlanMemoOptimizerTest, GenerationBumpForcesRecompute) {
  PlanMemo memo(1 << 20);
  OptimizationResult first = Optimize(&memo);
  memo.BumpGeneration();
  int64_t hits_before = memo.stats().hits();
  OptimizationResult second = Optimize(&memo);
  EXPECT_EQ(second.cost, first.cost);
  EXPECT_EQ(PlanToJson(second.plan), PlanToJson(first.plan));
  // The bump emptied the memo logically; the rerun rebuilt it rather than
  // hitting stale entries. (Feasibility/bound/plan probes may still hit
  // entries re-inserted during the same run.)
  EXPECT_GE(memo.stats().probes(), hits_before);
}

}  // namespace
}  // namespace seco
