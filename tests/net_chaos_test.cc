// The chaos headline invariant (docs/NETWORK.md, "Failure model & chaos
// testing"): under ANY chaos seed, every query that completes returns an
// answer byte-identical to the fault-free oracle, and every query that does
// not complete degrades through a structured status — never a hang, crash,
// or silently corrupted answer. Plus the self-healing pool contracts: same
// seed => same fault schedule, dial cap bounds concurrency (not reuse),
// poisoned connections are never reused, stale replies are never
// misattributed, deadline budgets travel with calls, and a dead replica is
// evicted and failed over via ServiceLostEvent -> PlanRepairer over the
// wire with answers identical to planning against the replica from the
// start.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

// --- Shared fixtures -------------------------------------------------------

SyntheticPair MakePair() {
  Result<SyntheticPair> pair = MakeSyntheticPair();
  EXPECT_TRUE(pair.ok()) << pair.status().ToString();
  return pair.value();
}

void ExpectSameResponse(const ServiceResponse& got,
                        const ServiceResponse& want) {
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    EXPECT_TRUE(got.tuples[i] == want.tuples[i]) << "tuple " << i;
  }
  EXPECT_EQ(got.scores, want.scores);
  EXPECT_EQ(got.exhausted, want.exhausted);
  EXPECT_EQ(got.latency_ms, want.latency_ms);
  EXPECT_EQ(got.fault_overhead_ms, want.fault_overhead_ms);
}

/// Echoes the chunk index back as one tuple after a real-time delay —
/// a backend that is *slow on the wall clock*, for timeout/deadline tests.
class SlowEchoHandler : public ServiceCallHandler {
 public:
  explicit SlowEchoHandler(int sleep_ms, int slow_calls = 1 << 30)
      : sleep_ms_(sleep_ms), slow_calls_(slow_calls) {}

  Result<ServiceResponse> Call(const ServiceRequest& request) override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) < slow_calls_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    ServiceResponse response;
    response.tuples.push_back(
        Tuple({Value(static_cast<int64_t>(request.chunk_index))}));
    response.scores.push_back(1.0);
    response.exhausted = true;
    return response;
  }

 private:
  const int sleep_ms_;
  const int slow_calls_;  ///< Only the first N calls sleep.
  std::atomic<int> calls_{0};
};

LoadProfile SerialProfile() {
  LoadProfile profile = LoadProfileByName("serial").value();
  profile.num_queries = 8;
  return profile;
}

ServerOptions ByteExactOptions() {
  ServerOptions options;
  options.ladder.enabled = false;
  return options;
}

ChaosOptions MatrixChaos(uint64_t seed) {
  ChaosOptions chaos;
  chaos.seed = seed;
  chaos.refuse_rate = 0.10;
  chaos.reset_rate = 0.25;
  chaos.corrupt_rate = 0.25;
  chaos.truncate_rate = 0.25;
  chaos.stall_rate = 0.30;
  chaos.blackhole_rate = 0.15;
  chaos.stall_ms = 2.0;
  // Small window so fault offsets land inside the short serial exchanges.
  chaos.fault_window_bytes = 768;
  return chaos;
}

/// Re-encodes an answer body with its *server-history telemetry* zeroed:
/// call-cache hit counts, simulated latency, and per-node call stats depend
/// on which OTHER queries of the run reached the server — state chaos
/// legitimately perturbs by killing earlier queries on the wire. Everything
/// user-visible (outcome, status, degradation, combinations with scores and
/// tuples, completeness) survives and must match the oracle byte for byte.
std::string CanonicalAnswer(QueryResponse r) {
  r.answer_cache_hit = false;
  r.retry_after_ms = 0.0;
  auto scrub = [](auto* result) {
    result->total_calls = 0;
    result->total_latency_ms = 0.0;
    result->cache_hits = 0;
    result->cache_misses = 0;
    result->node_stats.clear();
    result->open_breakers.clear();
    result->reliability = ReliabilityStats();
    result->repair = RepairStats();
  };
  scrub(&r.execution);
  r.execution.elapsed_ms = 0.0;
  r.execution.total_combinations_produced = 0;
  scrub(&r.streaming);
  r.streaming.speculative_calls = 0;
  r.streaming.speculative_wasted = 0;
  return EncodeAnswerBody(r);
}

std::string CanonicalAnswer(const std::string& body) {
  Result<QueryResponse> decoded = DecodeAnswerBody(body);
  if (!decoded.ok()) return "undecodable: " + decoded.status().ToString();
  return CanonicalAnswer(std::move(decoded.value()));
}

/// Fault-free oracle bodies for one scenario under the serial profile.
std::vector<std::string> Oracle(const Scenario& scenario,
                                const std::vector<LoadItem>& schedule,
                                const LoadProfile& profile) {
  QueryServer server(scenario.registry, ByteExactOptions());
  LoadReport report = DriveLoad(&server, schedule, profile);
  std::vector<std::string> bodies;
  for (const QueryResponse& r : report.responses) {
    EXPECT_NE(r.outcome, ServedOutcome::kFailed) << r.status.ToString();
    bodies.push_back(CanonicalAnswer(r));
  }
  return bodies;
}

/// The invariant, applied to one in-process report: completed answers are
/// byte-identical to the oracle, everything else carries a structured
/// (non-OK) status.
int ExpectByteIdenticalOrStructured(const LoadReport& report,
                                    const std::vector<std::string>& oracle,
                                    const std::string& leg) {
  int completed = 0;
  EXPECT_EQ(report.responses.size(), oracle.size()) << leg;
  for (size_t i = 0; i < report.responses.size(); ++i) {
    const QueryResponse& r = report.responses[i];
    if (r.outcome == ServedOutcome::kFailed ||
        r.outcome == ServedOutcome::kDeadlineExpired) {
      EXPECT_FALSE(r.status.ok()) << leg << ": query " << i
                                  << " failed without a structured status";
      continue;
    }
    EXPECT_EQ(AnswerBodyHex(CanonicalAnswer(r)), AnswerBodyHex(oracle[i]))
        << leg << ": completed query " << i << " diverged from the oracle";
    ++completed;
  }
  return completed;
}

/// Same invariant for a wire-mode report, where transport faults surface as
/// kFailed slots with empty bodies.
int ExpectWireByteIdenticalOrStructured(
    const WireLoadReport& report, const std::vector<std::string>& oracle,
    const std::string& leg) {
  int completed = 0;
  EXPECT_EQ(report.responses.size(), oracle.size()) << leg;
  for (size_t i = 0; i < report.responses.size(); ++i) {
    const QueryResponse& r = report.responses[i];
    if (r.outcome == ServedOutcome::kFailed ||
        r.outcome == ServedOutcome::kDeadlineExpired) {
      EXPECT_FALSE(r.status.ok()) << leg << ": query " << i
                                  << " failed without a structured status";
      continue;
    }
    EXPECT_EQ(AnswerBodyHex(CanonicalAnswer(report.bodies[i])),
              AnswerBodyHex(oracle[i]))
        << leg << ": completed query " << i << " diverged from the oracle";
    ++completed;
  }
  return completed;
}

// --- The equivalence matrix: seeds x topologies ----------------------------

TEST(NetChaosTest, FrontEndChaosNeverCorruptsCompletedAnswers) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  LoadProfile profile = SerialProfile();
  LoadGenerator generator(profile, scenario.value().query_text,
                          scenario.value().inputs);
  std::vector<LoadItem> schedule = generator.Schedule();
  std::vector<std::string> oracle = Oracle(scenario.value(), schedule, profile);

  int64_t total_faults = 0;
  for (uint64_t seed : {3u, 5u, 9u}) {
    QueryServer server(scenario.value().registry, ByteExactOptions());
    NetServerOptions net_options;
    net_options.chaos = MatrixChaos(seed);
    net_options.write_timeout_ms = 2000;
    NetServer net(&server, net_options);
    ASSERT_TRUE(net.Start().ok());
    WireLoadReport report =
        DriveLoadOverWire("127.0.0.1", net.port(), schedule, profile);
    ExpectWireByteIdenticalOrStructured(
        report, oracle, "front-end/seed" + std::to_string(seed));
    net.Stop();
    total_faults += net.chaos_stats().total_faults();
    EXPECT_GT(net.chaos_stats().connections_planned, 0)
        << "seed " << seed << ": chaos engine never saw a connection";
  }
  // The matrix actually exercised faults somewhere, or it proves nothing.
  EXPECT_GT(total_faults, 0);
}

TEST(NetChaosTest, BackendChaosHealsOrFailsStructurally) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  LoadProfile profile = SerialProfile();
  LoadGenerator generator(profile, scenario.value().query_text,
                          scenario.value().inputs);
  std::vector<LoadItem> schedule = generator.Schedule();
  std::vector<std::string> oracle = Oracle(scenario.value(), schedule, profile);

  int64_t total_faults = 0;
  int completed = 0;
  for (uint64_t seed : {3u, 5u, 9u}) {
    BackendServerOptions backend_options;
    backend_options.chaos = MatrixChaos(seed);
    BackendServer backend(backend_options);
    backend.ExposeRegistry(*scenario.value().registry);
    ASSERT_TRUE(backend.Start().ok());

    RemoteBackendOptions remote_options;
    remote_options.timeout_ms = 2000;  // bounds every read under chaos
    remote_options.wire_retries = 3;   // transport faults heal transparently
    remote_options.reconnect.backoff_base_ms = 1.0;
    remote_options.reconnect.backoff_cap_ms = 4.0;
    Result<std::shared_ptr<ServiceRegistry>> remote =
        MakeRemoteRegistry(*scenario.value().registry, "127.0.0.1",
                           backend.port(), remote_options);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();

    QueryServer server(remote.value(), ByteExactOptions());
    LoadReport report = DriveLoad(&server, schedule, profile);
    completed += ExpectByteIdenticalOrStructured(
        report, oracle, "backend/seed" + std::to_string(seed));
    backend.Stop();
    total_faults += backend.chaos_stats().total_faults();
  }
  EXPECT_GT(total_faults, 0);
  // Wire retries heal transport faults: most of the matrix completes.
  EXPECT_GT(completed, 0);
}

TEST(NetChaosTest, ClientSideChaosHealsOrFailsStructurally) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  LoadProfile profile = SerialProfile();
  LoadGenerator generator(profile, scenario.value().query_text,
                          scenario.value().inputs);
  std::vector<LoadItem> schedule = generator.Schedule();
  std::vector<std::string> oracle = Oracle(scenario.value(), schedule, profile);

  int64_t total_faults = 0;
  for (uint64_t seed : {3u, 5u, 9u}) {
    BackendServer backend;
    backend.ExposeRegistry(*scenario.value().registry);
    ASSERT_TRUE(backend.Start().ok());

    RemoteBackendOptions remote_options;
    remote_options.timeout_ms = 2000;
    remote_options.wire_retries = 3;
    remote_options.reconnect.backoff_base_ms = 1.0;
    remote_options.reconnect.backoff_cap_ms = 4.0;
    remote_options.chaos = MatrixChaos(seed);
    std::shared_ptr<RemoteBackendClient> client;
    Result<std::shared_ptr<ServiceRegistry>> remote =
        MakeRemoteRegistry(*scenario.value().registry, "127.0.0.1",
                           backend.port(), remote_options, &client);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();

    QueryServer server(remote.value(), ByteExactOptions());
    LoadReport report = DriveLoad(&server, schedule, profile);
    ExpectByteIdenticalOrStructured(report, oracle,
                                    "client/seed" + std::to_string(seed));
    backend.Stop();
    total_faults += client->chaos_stats().total_faults();
  }
  EXPECT_GT(total_faults, 0);
}

TEST(NetChaosTest, ChaosProxyPreservesCompletedAnswers) {
  Result<Scenario> scenario = MakeConferenceScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  LoadProfile profile = SerialProfile();
  LoadGenerator generator(profile, scenario.value().query_text,
                          scenario.value().inputs);
  std::vector<LoadItem> schedule = generator.Schedule();
  std::vector<std::string> oracle = Oracle(scenario.value(), schedule, profile);

  QueryServer server(scenario.value().registry, ByteExactOptions());
  NetServer net(&server);
  ASSERT_TRUE(net.Start().ok());
  ChaosProxy proxy("127.0.0.1", net.port(), MatrixChaos(7));
  ASSERT_TRUE(proxy.Start().ok());

  WireLoadReport report =
      DriveLoadOverWire("127.0.0.1", proxy.port(), schedule, profile);
  ExpectWireByteIdenticalOrStructured(report, oracle, "proxy/seed7");
  EXPECT_GT(proxy.stats().connections_planned, 0);
  proxy.Stop();
  net.Stop();
}

// --- Determinism: same seed, same schedule ---------------------------------

ChaosStats RunSeededBackendTraffic(uint64_t seed,
                                   std::shared_ptr<ServiceCallHandler> sx) {
  ChaosOptions chaos;
  chaos.seed = seed;
  chaos.refuse_rate = 0.2;
  chaos.reset_rate = 0.25;
  chaos.corrupt_rate = 0.25;
  chaos.truncate_rate = 0.25;
  chaos.stall_rate = 0.25;
  chaos.stall_ms = 1.0;
  chaos.blackhole_rate = 0.2;

  BackendServerOptions options;
  options.chaos = chaos;
  BackendServer server(options);
  server.RegisterHandler("SX", std::move(sx));
  EXPECT_TRUE(server.Start().ok());

  RemoteBackendOptions remote;
  remote.timeout_ms = 500;
  remote.wire_retries = 3;
  remote.reconnect.backoff_base_ms = 1.0;
  remote.reconnect.backoff_cap_ms = 2.0;
  remote.eviction_threshold = 1 << 20;  // keep dial order purely serial
  RemoteBackendClient client("127.0.0.1", server.port(), remote);
  for (int i = 0; i < 24; ++i) {
    ServiceRequest request;
    request.chunk_index = i % 4;
    (void)client.Call("SX", request);  // failures are part of the schedule
  }
  server.Stop();
  return server.chaos_stats();
}

TEST(NetChaosTest, SameSeedReproducesTheExactFaultSchedule) {
  SyntheticPair pair = MakePair();
  ChaosStats first = RunSeededBackendTraffic(41, pair.x.backend);
  ChaosStats second = RunSeededBackendTraffic(41, pair.x.backend);
  EXPECT_TRUE(first == second)
      << "same seed, same serial traffic, different fault schedule";
  EXPECT_GT(first.connections_planned, 0);
  EXPECT_GT(first.total_faults(), 0);

  ChaosStats other = RunSeededBackendTraffic(42, pair.x.backend);
  EXPECT_TRUE(first != other) << "seed is not reaching the fault planner";
}

// --- Dial cap & pool semantics ---------------------------------------------

TEST(NetChaosTest, DialCapQueuesThenFailsUnavailableNeverUnbounded) {
  // A peer that accepts and then never handshakes: every dial burns its
  // handshake timeout while holding a dial slot.
  Listener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  std::vector<Socket> held;
  std::thread acceptor([&] {
    while (true) {
      Result<Socket> conn = listener.Accept();
      if (!conn.ok()) return;  // listener closed
      held.push_back(std::move(conn.value()));
    }
  });

  RemoteBackendOptions options;
  options.handshake_timeout_ms = 300;
  options.max_dials = 2;
  options.dial_wait_ms = 0;  // overflow immediately instead of queueing
  options.wire_retries = 0;
  options.eviction_threshold = 1 << 20;
  RemoteBackendClient client("127.0.0.1", listener.port(), options);

  std::vector<std::thread> callers;
  std::vector<Status> statuses(8, Status::OK());
  for (int t = 0; t < 8; ++t) {
    callers.emplace_back([&, t] {
      statuses[t] = client.Call("SX", ServiceRequest{}).status();
    });
  }
  for (std::thread& t : callers) t.join();

  for (int t = 0; t < 8; ++t) {
    EXPECT_FALSE(statuses[t].ok()) << "caller " << t;
    EXPECT_EQ(statuses[t].code(), StatusCode::kUnavailable) << "caller " << t;
  }
  RemotePoolStats stats = client.stats();
  EXPECT_GT(stats.dial_overflows, 0)
      << "8 concurrent dials against a cap of 2 never overflowed";
  // The cap bounds sockets, not just latency: at most max_dials connections
  // ever reached the rogue listener per overflow-free wave; with 8 callers
  // and 2 slots the rogue saw well under 8 simultaneous sockets.
  EXPECT_LE(stats.connections_opened, 8);

  listener.Close();
  acceptor.join();
  for (Socket& s : held) s.Close();
}

TEST(NetChaosTest, MaxPoolBoundsIdleReuseNotConcurrentDials) {
  BackendServer server;
  server.RegisterHandler("Slow", std::make_shared<SlowEchoHandler>(80));
  ASSERT_TRUE(server.Start().ok());

  RemoteBackendOptions options;
  options.max_pool = 1;  // one *idle* connection kept...
  options.max_dials = 8; // ...but concurrency dials freely (the regression)
  auto client = std::make_shared<RemoteBackendClient>("127.0.0.1",
                                                      server.port(), options);

  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      ServiceRequest request;
      request.chunk_index = t;
      if (!client->Call("Slow", request).ok()) ++failures;
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Concurrent callers were never serialized onto max_pool connections.
  int64_t opened = client->connections_opened();
  EXPECT_GE(opened, 2);

  // ... but idle reuse is bounded: exactly one connection survived.
  EXPECT_EQ(client->stats().connections_discarded, opened - 1);
  ASSERT_TRUE(client->Call("Slow", ServiceRequest{}).ok());
  EXPECT_EQ(client->connections_opened(), opened);  // reused, no redial
  EXPECT_GE(client->stats().connections_reused, 1);
  server.Stop();
}

// --- Poisoned connections --------------------------------------------------

TEST(NetChaosTest, HalfWrittenReplyThenCloseHealsOnAFreshConnection) {
  SyntheticPair pair = MakePair();
  BackendServer real;
  real.RegisterHandler("SX", pair.x.backend);
  ASSERT_TRUE(real.Start().ok());

  // A rogue primary that handshakes, then cuts its reply mid-frame.
  Listener rogue_listener;
  ASSERT_TRUE(rogue_listener.Listen(0).ok());
  std::thread rogue([&] {
    Result<Socket> conn = rogue_listener.Accept();
    if (!conn.ok()) return;
    FrameDecoder decoder;
    if (!RecvFrame(&conn.value(), &decoder).ok()) return;  // hello
    WireWriter ack;
    ack.U16(kWireVersion);
    (void)SendFrame(&conn.value(), FrameType::kHelloAck, ack.Take());
    Result<Frame> call = RecvFrame(&conn.value(), &decoder);
    if (!call.ok()) return;
    WireReader r(call.value().payload);
    uint64_t id = r.U64().value();
    WireWriter w;
    w.U64(id);
    w.Bool(true);
    EncodeServiceResponse(ServiceResponse{}, &w);
    std::string frame = EncodeFrame(FrameType::kCallReply, w.Take());
    (void)conn.value().SendAll(frame.substr(0, frame.size() / 2));
    conn.value().Close();
  });

  std::vector<RemoteEndpoint> endpoints = {
      {"127.0.0.1", rogue_listener.port()}, {"127.0.0.1", real.port()}};
  RemoteBackendOptions options;
  options.wire_retries = 2;
  options.eviction_threshold = 1;
  options.reconnect.backoff_base_ms = 1.0;
  options.reconnect.backoff_cap_ms = 2.0;
  options.reprobe_ms = 1e9;  // the rogue stays out for the whole test
  RemoteBackendClient client(endpoints, options);

  ServiceRequest request;
  Result<ServiceResponse> got = client.Call("SX", request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<ServiceResponse> direct = pair.x.backend->Call(request);
  ASSERT_TRUE(direct.ok());
  ExpectSameResponse(got.value(), direct.value());

  RemotePoolStats stats = client.stats();
  EXPECT_GE(stats.reconnect_attempts, 1);
  EXPECT_GE(stats.connections_discarded, 1);  // the poisoned stream
  ASSERT_EQ(stats.endpoints.size(), 2u);
  EXPECT_TRUE(stats.endpoints[0].evicted);
  EXPECT_FALSE(stats.endpoints[1].evicted);

  rogue.join();
  rogue_listener.Close();
  real.Stop();
}

TEST(NetChaosTest, StaleReplyIdIsDiscardedNeverMisattributed) {
  SyntheticPair pair = MakePair();
  BackendServer real;
  real.RegisterHandler("SX", pair.x.backend);
  ASSERT_TRUE(real.Start().ok());

  // A rogue that answers the call with a *different* call id — a stale or
  // crossed reply. The client must treat it as transport poison, not as
  // the answer.
  Listener rogue_listener;
  ASSERT_TRUE(rogue_listener.Listen(0).ok());
  std::thread rogue([&] {
    Result<Socket> conn = rogue_listener.Accept();
    if (!conn.ok()) return;
    FrameDecoder decoder;
    if (!RecvFrame(&conn.value(), &decoder).ok()) return;  // hello
    WireWriter ack;
    ack.U16(kWireVersion);
    (void)SendFrame(&conn.value(), FrameType::kHelloAck, ack.Take());
    Result<Frame> call = RecvFrame(&conn.value(), &decoder);
    if (!call.ok()) return;
    WireReader r(call.value().payload);
    uint64_t id = r.U64().value();
    // A decodable, plausible — and wrong — reply under a stale id.
    ServiceResponse bogus;
    bogus.tuples.push_back(Tuple({Value(static_cast<int64_t>(666))}));
    bogus.scores.push_back(0.5);
    WireWriter w;
    w.U64(id + 1);
    w.Bool(true);
    EncodeServiceResponse(bogus, &w);
    (void)SendFrame(&conn.value(), FrameType::kCallReply, w.Take());
    // Hold the connection open so the failure is the id mismatch, not EOF.
    std::string sink;
    while (true) {
      Result<size_t> n = conn.value().RecvSome(&sink, 4096);
      if (!n.ok() || n.value() == 0) break;
    }
  });

  std::vector<RemoteEndpoint> endpoints = {
      {"127.0.0.1", rogue_listener.port()}, {"127.0.0.1", real.port()}};
  RemoteBackendOptions options;
  options.wire_retries = 2;
  options.eviction_threshold = 1;
  options.reconnect.backoff_base_ms = 1.0;
  options.reconnect.backoff_cap_ms = 2.0;
  options.reprobe_ms = 1e9;
  RemoteBackendClient client(endpoints, options);

  ServiceRequest request;
  Result<ServiceResponse> got = client.Call("SX", request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<ServiceResponse> direct = pair.x.backend->Call(request);
  ASSERT_TRUE(direct.ok());
  ExpectSameResponse(got.value(), direct.value());  // not the bogus tuple

  EXPECT_GE(client.stats().connections_discarded, 1);
  EXPECT_TRUE(client.stats().endpoints[0].evicted);

  rogue_listener.Close();
  rogue.join();
  real.Stop();
}

TEST(NetChaosTest, TimedOutConnectionIsNeverPooledForTheNextCall) {
  // The first call times out while its (late) reply is still in flight; the
  // second call must dial fresh — reading the stale reply off the pooled
  // socket would misattribute call N's answer to call N+1.
  BackendServer server;
  server.RegisterHandler("Slow",
                         std::make_shared<SlowEchoHandler>(400,
                                                           /*slow_calls=*/1));
  ASSERT_TRUE(server.Start().ok());

  RemoteBackendOptions options;
  options.timeout_ms = 100;
  RemoteBackendClient client("127.0.0.1", server.port(), options);

  ServiceRequest first;
  first.chunk_index = 0;
  Result<ServiceResponse> timed_out = client.Call("Slow", first);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  ServiceRequest second;
  second.chunk_index = 1;
  Result<ServiceResponse> got = client.Call("Slow", second);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().tuples.size(), 1u);
  // Chunk 1's echo, not the stale chunk-0 reply from the first connection.
  EXPECT_TRUE(got.value().tuples[0] ==
              Tuple({Value(static_cast<int64_t>(1))}));
  EXPECT_EQ(client.connections_opened(), 2);  // the poisoned conn was dropped
  server.Stop();
}

TEST(NetChaosTest, CheckoutCheckinHammerStaysCorrectUnderConcurrency) {
  SyntheticPair pair = MakePair();
  BackendServer server;
  server.RegisterHandler("SX", pair.x.backend);
  ASSERT_TRUE(server.Start().ok());

  // Direct references per chunk, computed once up front.
  std::vector<ServiceResponse> want;
  for (int chunk = 0; chunk < 4; ++chunk) {
    ServiceRequest request;
    request.chunk_index = chunk;
    Result<ServiceResponse> direct = pair.x.backend->Call(request);
    ASSERT_TRUE(direct.ok());
    want.push_back(direct.value());
  }

  RemoteBackendOptions options;
  options.max_pool = 4;
  options.ping_on_checkout = true;  // health gate on every checkout
  options.wire_retries = 2;
  auto client = std::make_shared<RemoteBackendClient>("127.0.0.1",
                                                      server.port(), options);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        int chunk = (t + i) % 4;
        ServiceRequest request;
        request.chunk_index = chunk;
        Result<ServiceResponse> got = client->Call("SX", request);
        if (!got.ok() || got.value().scores != want[chunk].scores ||
            got.value().tuples.size() != want[chunk].tuples.size()) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.calls_served(), kThreads * kCallsPerThread);
  RemotePoolStats stats = client->stats();
  EXPECT_GT(stats.pings_sent, 0);
  EXPECT_EQ(stats.endpoints_evicted, 0);
  server.Stop();
}

// --- Deadline propagation --------------------------------------------------

TEST(NetChaosTest, TransportedDeadlineRejectsCallsThatQueuedPastTheirBudget) {
  BackendServer server;
  server.RegisterHandler("Slow", std::make_shared<SlowEchoHandler>(150));
  ASSERT_TRUE(server.Start().ok());

  // A hand-rolled backend client that pipelines two calls down one
  // connection: the second frame queues behind the first's 150 ms handler
  // and arrives at the executor with its 10 ms budget already spent.
  Result<Socket> sock = ConnectTcp("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  FrameDecoder decoder;
  WireWriter hello;
  hello.U32(kWireMagic);
  hello.U16(kWireVersion);
  hello.U8(static_cast<uint8_t>(WireRole::kBackendClient));
  ASSERT_TRUE(SendFrame(&sock.value(), FrameType::kHello, hello.Take()).ok());
  Result<Frame> ack = RecvFrame(&sock.value(), &decoder, 1000);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack.value().type, FrameType::kHelloAck);

  auto encode_call = [](uint64_t id, double deadline_ms) {
    ServiceRequest request;
    request.chunk_index = static_cast<int>(id);
    request.deadline_ms = deadline_ms;
    WireWriter w;
    w.U64(id);
    w.Str("Slow");
    EncodeServiceRequest(request, &w);
    return w.Take();
  };
  // One send, two frames: the pipelined burst a real client under load
  // produces. Call 2 sits behind call 1's 150 ms handler.
  ASSERT_TRUE(sock.value()
                  .SendAll(EncodeFrame(FrameType::kCall, encode_call(1, -1.0)) +
                           EncodeFrame(FrameType::kCall, encode_call(2, 10.0)))
                  .ok());

  // First reply: served normally.
  Result<Frame> reply1 = RecvFrame(&sock.value(), &decoder, 2000);
  ASSERT_TRUE(reply1.ok()) << reply1.status().ToString();
  {
    WireReader r(reply1.value().payload);
    EXPECT_EQ(r.U64().value(), 1u);
    EXPECT_TRUE(r.Bool().value());  // ok: the handler ran
  }
  // Second reply: rejected without running the handler — its queue wait
  // exceeded the transported budget.
  Result<Frame> reply2 = RecvFrame(&sock.value(), &decoder, 2000);
  ASSERT_TRUE(reply2.ok()) << reply2.status().ToString();
  {
    WireReader r(reply2.value().payload);
    EXPECT_EQ(r.U64().value(), 2u);
    EXPECT_FALSE(r.Bool().value());
    Status remote = Status::OK();
    ASSERT_TRUE(DecodeStatus(&r, &remote).ok());
    EXPECT_EQ(remote.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(server.deadline_rejections(), 1);
  EXPECT_EQ(server.calls_served(), 1);  // the handler never saw call 2
  sock.value().Close();
  server.Stop();
}

// --- Slow-loris defense ----------------------------------------------------

TEST(NetChaosTest, WriteTimeoutBoundsASendToAStalledPeer) {
  Listener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  std::atomic<bool> release{false};
  std::thread stalled_peer([&] {
    Result<Socket> conn = listener.Accept();
    while (!release.load()) {  // accepted, never reads
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (conn.ok()) conn.value().Close();
  });

  Result<Socket> sock = ConnectTcp("127.0.0.1", listener.port(), 1000);
  ASSERT_TRUE(sock.ok());
  int send_buf = 4096;  // shrink so the kernel can't absorb the payload
  setsockopt(sock.value().fd(), SOL_SOCKET, SO_SNDBUF, &send_buf,
             sizeof(send_buf));
  sock.value().SetWriteTimeout(100);

  auto start = std::chrono::steady_clock::now();
  Status sent = sock.value().SendAll(std::string(4u << 20, 'x'));
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed_ms, 5000.0);  // bounded, not a slow-loris hostage

  release.store(true);
  stalled_peer.join();
  listener.Close();
  sock.value().Close();
}

// --- Over-the-wire failover (the acceptance scenario) ----------------------

std::string WithService(std::string text, const std::string& from,
                        const std::string& to) {
  size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from << " not in: " << text;
  text.replace(pos, from.size(), to);
  return text;
}

Result<QueryPlan> OptimizePlan(std::shared_ptr<ServiceRegistry> registry,
                               const std::string& query_text) {
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(std::move(registry), optimizer_options);
  SECO_ASSIGN_OR_RETURN(BoundQuery bound, session.Prepare(query_text));
  SECO_ASSIGN_OR_RETURN(OptimizationResult optimized, session.Optimize(bound));
  return std::move(optimized.plan);
}

void ExpectSameCombinations(const std::vector<Combination>& expected,
                            const std::vector<Combination>& actual) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("combination " + std::to_string(i));
    EXPECT_DOUBLE_EQ(actual[i].combined_score, expected[i].combined_score);
    EXPECT_TRUE(actual[i].missing_atoms.empty());
    ASSERT_EQ(actual[i].components.size(), expected[i].components.size());
    for (size_t c = 0; c < expected[i].components.size(); ++c) {
      EXPECT_TRUE(actual[i].components[c] == expected[i].components[c]);
    }
  }
}

TEST(NetChaosTest, DeadReplicaIsEvictedAndFailedOverAcrossTheWire) {
  // Topology: every interface lives behind a live BackendServer, except
  // that Hotel1 is routed through a client whose only endpoint is a dead
  // port — the wire-level analogue of a backend that stopped responding.
  // The pool must evict the endpoint, exhaust, and fast-fail kUnavailable;
  // the resilient handler raises ServiceLostEvent; PlanRepairer fails over
  // to Hotel2 *over the live wire*; and the answers must be identical to
  // planning against Hotel2 from the start.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  SECO_ASSERT_OK(AddReplica(&scenario, "Hotel1", "Hotel2").status());

  BackendServer backend;
  backend.ExposeRegistry(*scenario.registry);
  SECO_ASSERT_OK(backend.Start());

  uint16_t dead_port;
  {
    Listener probe;
    SECO_ASSERT_OK(probe.Listen(0));
    dead_port = probe.port();
    probe.Close();
  }

  auto live_client = std::make_shared<RemoteBackendClient>(
      "127.0.0.1", backend.port());
  RemoteBackendOptions dead_options;
  dead_options.eviction_threshold = 1;
  dead_options.wire_retries = 1;
  dead_options.reconnect.backoff_base_ms = 1.0;
  dead_options.reconnect.backoff_cap_ms = 2.0;
  dead_options.reprobe_ms = 1e9;  // stays dead for the whole query
  auto dead_client = std::make_shared<RemoteBackendClient>(
      "127.0.0.1", dead_port, dead_options);

  SECO_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<ServiceRegistry> remote,
      MakeRemoteRegistryRouted(*scenario.registry, live_client,
                               {{"Hotel1", dead_client}}));

  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan,
                            OptimizePlan(remote, scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(
      QueryPlan replica_plan,
      OptimizePlan(remote,
                   WithService(scenario.query_text, "Hotel1", "Hotel2")));

  StreamingOptions stream_options;
  stream_options.k = 10;
  stream_options.input_bindings = scenario.inputs;

  // Reference: the replica was the plan's hotel service from the start —
  // everything over the live backend.
  StreamingEngine reference_engine(stream_options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult reference,
                            reference_engine.Execute(replica_plan));
  ASSERT_FALSE(reference.combinations.empty());
  ASSERT_TRUE(reference.complete);

  RepairOptions repair;
  repair.policy = RepairPolicy::kFailover;
  repair.registry = remote.get();
  repair.optimizer.k = 10;
  StreamingOptions options = stream_options;
  options.repair = repair;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult repaired, engine.Execute(plan));

  EXPECT_TRUE(repaired.complete);
  ExpectSameCombinations(reference.combinations, repaired.combinations);
  ASSERT_GE(repaired.repair.log.size(), 1u);
  EXPECT_EQ(repaired.repair.log[0].lost, "Hotel1");
  EXPECT_EQ(repaired.repair.log[0].replacement, "Hotel2");

  // The wire layer did its half: evicted the dead endpoint, attempted a
  // reconnect, then declared exhaustion instead of hanging.
  RemotePoolStats dead_stats = dead_client->stats();
  EXPECT_GE(dead_stats.endpoints_evicted, 1);
  EXPECT_GE(dead_stats.reconnect_attempts, 1);
  EXPECT_GE(dead_stats.endpoint_exhaustions, 1);
  ASSERT_EQ(dead_stats.endpoints.size(), 1u);
  EXPECT_TRUE(dead_stats.endpoints[0].evicted);

  backend.Stop();
}

}  // namespace
}  // namespace seco
