#include <gtest/gtest.h>

#include "sim/fixtures.h"
#include "sim/scoring.h"
#include "sim/simulated_service.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

TEST(ScoringTest, LinearDecayShape) {
  EXPECT_DOUBLE_EQ(
      ScoreAtPosition(ScoreDecay::kLinear, 0, 100, 10, 1, 0.9, 0.1), 1.0);
  double mid = ScoreAtPosition(ScoreDecay::kLinear, 50, 101, 10, 1, 0.9, 0.1);
  EXPECT_NEAR(mid, 0.5, 1e-9);
  EXPECT_NEAR(ScoreAtPosition(ScoreDecay::kLinear, 100, 101, 10, 1, 0.9, 0.1),
              0.0, 1e-9);
}

TEST(ScoringTest, QuadraticBelowLinear) {
  for (int pos = 1; pos < 100; ++pos) {
    double lin = ScoreAtPosition(ScoreDecay::kLinear, pos, 100, 10, 1, 0.9, 0.1);
    double quad =
        ScoreAtPosition(ScoreDecay::kQuadratic, pos, 100, 10, 1, 0.9, 0.1);
    EXPECT_LE(quad, lin + 1e-12) << "at pos " << pos;
  }
}

TEST(ScoringTest, StepDropsAfterHChunks) {
  // h=2 chunks of size 10: positions 0..19 high, 20+ low.
  EXPECT_DOUBLE_EQ(ScoreAtPosition(ScoreDecay::kStep, 19, 100, 10, 2, 0.9, 0.1),
                   0.9);
  EXPECT_DOUBLE_EQ(ScoreAtPosition(ScoreDecay::kStep, 20, 100, 10, 2, 0.9, 0.1),
                   0.1);
}

TEST(ScoringTest, NoneIsConstantOne) {
  EXPECT_DOUBLE_EQ(ScoreAtPosition(ScoreDecay::kNone, 5, 10, 3, 1, 0.9, 0.1),
                   1.0);
}

class DecaySweepTest : public ::testing::TestWithParam<ScoreDecay> {};

TEST_P(DecaySweepTest, ScoresAreMonotoneNonIncreasingAndBounded) {
  ScoreDecay decay = GetParam();
  double prev = 1.0 + 1e-12;
  for (int pos = 0; pos < 200; ++pos) {
    double s = ScoreAtPosition(decay, pos, 200, 10, 3, 0.95, 0.05);
    EXPECT_LE(s, prev + 1e-12);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    prev = s;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDecays, DecaySweepTest,
                         ::testing::Values(ScoreDecay::kNone, ScoreDecay::kStep,
                                           ScoreDecay::kLinear,
                                           ScoreDecay::kQuadratic,
                                           ScoreDecay::kOpaque));

TEST(SimulatedServiceTest, ChunkingPagesThroughRankedList) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc, MakeKeyedSearchService("S", /*rows=*/12, /*chunk=*/5,
                                               /*key_domain=*/100));
  ServiceRequest req;
  req.chunk_index = 0;
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse r0, svc.backend->Call(req));
  EXPECT_EQ(r0.tuples.size(), 5u);
  EXPECT_FALSE(r0.exhausted);
  req.chunk_index = 2;
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse r2, svc.backend->Call(req));
  EXPECT_EQ(r2.tuples.size(), 2u);  // 12 = 5 + 5 + 2
  EXPECT_TRUE(r2.exhausted);
  req.chunk_index = 3;
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse r3, svc.backend->Call(req));
  EXPECT_TRUE(r3.tuples.empty());
}

TEST(SimulatedServiceTest, ScoresDecreaseAcrossChunks) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc,
                            MakeKeyedSearchService("S", 30, 10, 100));
  double prev = 1.1;
  for (int c = 0; c < 3; ++c) {
    ServiceRequest req;
    req.chunk_index = c;
    SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse resp, svc.backend->Call(req));
    for (double s : resp.scores) {
      EXPECT_LE(s, prev + 1e-12);
      prev = s;
    }
  }
}

TEST(SimulatedServiceTest, InputMatchingFiltersRows) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc,
      MakeKeyedSearchService("S", 20, 10, /*key_domain=*/4,
                             ScoreDecay::kLinear, /*key_is_input=*/true));
  ServiceRequest req;
  req.inputs = {Value(2)};
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse resp, svc.backend->Call(req));
  EXPECT_EQ(resp.tuples.size(), 5u);  // rows 2, 6, 10, 14, 18
  for (const Tuple& t : resp.tuples) {
    EXPECT_EQ(t.AtomicAt(0).AsInt(), 2);
  }
}

TEST(SimulatedServiceTest, WrongArityRejected) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService svc, MakeKeyedSearchService("S", 10, 5, 4, ScoreDecay::kLinear,
                                               /*key_is_input=*/true));
  ServiceRequest req;  // no inputs provided
  Result<ServiceResponse> resp = svc.backend->Call(req);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimulatedServiceTest, LatencyIsDeterministicPerCallSequence) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService a, MakeKeyedSearchService("S", 10, 5, 4));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService b, MakeKeyedSearchService("S", 10, 5, 4));
  ServiceRequest req;
  for (int i = 0; i < 3; ++i) {
    req.chunk_index = i % 2;
    SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse ra, a.backend->Call(req));
    SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse rb, b.backend->Call(req));
    EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
    EXPECT_GT(ra.latency_ms, 0.0);
  }
}

TEST(SimulatedServiceTest, CallCountTracks) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, MakeKeyedSearchService("S", 10, 5, 4));
  EXPECT_EQ(svc.backend->call_count(), 0);
  ServiceRequest req;
  SECO_ASSERT_OK(svc.backend->Call(req).status());
  SECO_ASSERT_OK(svc.backend->Call(req).status());
  EXPECT_EQ(svc.backend->call_count(), 2);
  svc.backend->ResetCallCount();
  EXPECT_EQ(svc.backend->call_count(), 0);
}

TEST(SimulatedServiceTest, FullScanReturnsAllMatchesRanked) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, MakeKeyedSearchService("S", 17, 5, 100));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse all, svc.backend->FullScan({}));
  EXPECT_EQ(all.tuples.size(), 17u);
  for (size_t i = 1; i < all.scores.size(); ++i) {
    EXPECT_LE(all.scores[i], all.scores[i - 1]);
  }
}

TEST(SimulatedServiceTest, RepeatingGroupInputMatchesExistentially) {
  // Service whose input is a sub-attribute of a repeating group.
  SimServiceBuilder builder("G");
  builder
      .Schema({AttributeDef::Atomic("Id", ValueType::kInt),
               AttributeDef::RepeatingGroup("Tags", {{"T", ValueType::kString}})})
      .Pattern({{"Id", Adornment::kOutput}, {"Tags.T", Adornment::kInput}})
      .Kind(ServiceKind::kExact);
  builder.AddRow(Tuple({Value(1), RepeatingGroupValue{{Value("a")}, {Value("b")}}}));
  builder.AddRow(Tuple({Value(2), RepeatingGroupValue{{Value("c")}}}));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, builder.Build());
  ServiceRequest req;
  req.inputs = {Value("b")};
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse resp, svc.backend->Call(req));
  ASSERT_EQ(resp.tuples.size(), 1u);
  EXPECT_EQ(resp.tuples[0].AtomicAt(0).AsInt(), 1);
}

TEST(FaultModelTest, TransientFaultsKeyOnRequestIdentityNotArrivalOrder) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, MakeKeyedSearchService("S", 10, 5, 4));
  FaultProfile profile;
  profile.transient_rate = 1.0;  // every logical request is stricken
  profile.transient_attempts = 2;
  profile.seed = 7;
  FaultInjectingHandler flaky(svc.backend, profile);
  ServiceRequest req;
  // Attempt 0 fails every time it is delivered — the decision depends on
  // the request identity and attempt number, never on arrival order.
  EXPECT_EQ(flaky.Call(req).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(flaky.Call(req).status().code(), StatusCode::kUnavailable);
  req.attempt = 1;
  EXPECT_EQ(flaky.Call(req).status().code(), StatusCode::kUnavailable);
  // From attempt `transient_attempts` on, the request always succeeds.
  req.attempt = 2;
  EXPECT_TRUE(flaky.Call(req).ok());
  req.attempt = 0;
  EXPECT_EQ(flaky.Call(req).status().code(), StatusCode::kUnavailable);
}

TEST(FaultModelTest, RateSelectsAStrictSubsetOfRequests) {
  FaultProfile profile;
  profile.transient_rate = 0.3;
  profile.seed = 99;
  FaultModel model(profile);
  int stricken = 0;
  for (uint64_t ordinal = 0; ordinal < 1000; ++ordinal) {
    if (model.TransientlyStricken(ordinal)) ++stricken;
    // Decisions are stable across repeated queries.
    EXPECT_EQ(model.TransientlyStricken(ordinal),
              model.TransientlyStricken(ordinal));
  }
  EXPECT_GT(stricken, 200);
  EXPECT_LT(stricken, 400);
}

TEST(FaultModelTest, PermanentOutageFailsEveryAttempt) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, MakeKeyedSearchService("S", 10, 5, 4));
  FaultProfile profile;
  profile.permanent_outage = true;
  svc.backend->set_fault_profile(profile);
  ServiceRequest req;
  for (int attempt = 0; attempt < 4; ++attempt) {
    req.attempt = attempt;
    EXPECT_EQ(svc.backend->Call(req).status().code(), StatusCode::kUnavailable);
  }
}

TEST(FaultModelTest, LatencySpikesInflateStrickenAttemptsOnly) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService svc, MakeKeyedSearchService("S", 10, 5, 4));
  ServiceRequest req;
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse base, svc.backend->Call(req));
  FaultProfile profile;
  profile.spike_rate = 1.0;
  profile.spike_factor = 8.0;
  profile.spike_attempts = 1;
  svc.backend->set_fault_profile(profile);
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse spiked, svc.backend->Call(req));
  EXPECT_DOUBLE_EQ(spiked.latency_ms, base.latency_ms * 8.0);
  req.attempt = 1;  // past spike_attempts: back to the base latency
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse calm, svc.backend->Call(req));
  EXPECT_DOUBLE_EQ(calm.latency_ms, base.latency_ms);
}

TEST(FixturesTest, MovieScenarioBuilds) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  EXPECT_TRUE(scenario.registry->FindInterface("Movie11").ok());
  EXPECT_TRUE(scenario.registry->FindInterface("Theatre11").ok());
  EXPECT_TRUE(scenario.registry->FindInterface("Restaurant11").ok());
  EXPECT_TRUE(scenario.registry->FindConnectionPattern("Shows").ok());
  EXPECT_TRUE(scenario.registry->FindConnectionPattern("DinnerPlace").ok());
  EXPECT_EQ(scenario.inputs.size(), 6u);
}

TEST(FixturesTest, MovieScenarioHasEnoughMatchingMovies) {
  MovieScenarioParams params;
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario(params));
  // The canonical query needs >= 100 movies matching genre+country for the
  // chapter's 5 fetches of 20.
  SECO_ASSERT_OK_AND_ASSIGN(
      ServiceResponse matches,
      scenario.backends["Movie11"]->FullScan(
          {scenario.inputs["INPUT1"], scenario.inputs["INPUT2"]}));
  EXPECT_GE(matches.tuples.size(), 100u);
}

TEST(FixturesTest, ConferenceScenarioBuilds) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  for (const char* name : {"Conference1", "Weather1", "Flight1", "Hotel1"}) {
    EXPECT_TRUE(scenario.registry->FindInterface(name).ok()) << name;
  }
  // Conference is exact and proliferative (avg 20 per call).
  SECO_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<ServiceInterface> conf,
      scenario.registry->FindInterface("Conference1"));
  EXPECT_EQ(conf->kind(), ServiceKind::kExact);
  EXPECT_TRUE(conf->is_proliferative());
  EXPECT_DOUBLE_EQ(conf->stats().avg_tuples_per_call, 20.0);
}

TEST(FixturesTest, SyntheticPairSelectivityControlled) {
  SyntheticPairParams params;
  params.rows_x = 100;
  params.rows_y = 100;
  params.key_domain = 10;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));
  // Count actual joinable pairs; expectation ~ rows_x*rows_y/key_domain.
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse all_x, pair.x.backend->FullScan({}));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse all_y, pair.y.backend->FullScan({}));
  int matches = 0;
  for (const Tuple& x : all_x.tuples) {
    for (const Tuple& y : all_y.tuples) {
      if (x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt()) ++matches;
    }
  }
  EXPECT_GT(matches, 500);
  EXPECT_LT(matches, 1500);
}

TEST(FixturesTest, ScenariosAreDeterministic) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario a, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(Scenario b, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse ra,
                            a.backends["Movie11"]->FullScan(
                                {a.inputs["INPUT1"], a.inputs["INPUT2"]}));
  SECO_ASSERT_OK_AND_ASSIGN(ServiceResponse rb,
                            b.backends["Movie11"]->FullScan(
                                {b.inputs["INPUT1"], b.inputs["INPUT2"]}));
  ASSERT_EQ(ra.tuples.size(), rb.tuples.size());
  for (size_t i = 0; i < ra.tuples.size(); ++i) {
    EXPECT_TRUE(ra.tuples[i] == rb.tuples[i]);
  }
}

}  // namespace
}  // namespace seco
