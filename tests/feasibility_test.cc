#include <gtest/gtest.h>

#include "query/feasibility.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class FeasibilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
  }

  Result<BoundQuery> Bind(const std::string& text) {
    SECO_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
    return BindQuery(parsed, *scenario_.registry);
  }

  Scenario scenario_;
};

TEST_F(FeasibilityTest, RunningExampleIsFeasible) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(scenario_.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_TRUE(report.feasible) << report.reason;
  EXPECT_EQ(report.reachable_order.size(), 3u);
  // Restaurant (atom 2) depends on Theatre (atom 1) through DinnerPlace.
  EXPECT_EQ(report.atoms[2].depends_on, (std::vector<int>{1}));
  EXPECT_TRUE(report.atoms[0].depends_on.empty());
  EXPECT_TRUE(report.atoms[1].depends_on.empty());
}

TEST_F(FeasibilityTest, UnboundInputMakesInfeasible) {
  // Theatre's user-position inputs are not bound.
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q, Bind("select Theatre11 as T where T.TCity = 'Milano'"));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.reason.find("T"), std::string::npos);
  EXPECT_NE(report.reason.find("unbound input"), std::string::npos);
}

TEST_F(FeasibilityTest, InequalityDoesNotBindInput) {
  // Movie needs Genres.Genre and Openings.Country by equality; 'like' and
  // '>' must not count as bindings.
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Movie11 as M where M.Genres.Genre like 'act%' and "
           "M.Openings.Country > 'A'"));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_FALSE(report.feasible);
}

TEST_F(FeasibilityTest, ConstantBindingSuffices) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Movie11 as M where M.Genres.Genre = 'action' and "
           "M.Openings.Country = 'Italy'"));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_TRUE(report.feasible) << report.reason;
  ASSERT_EQ(report.atoms[0].inputs.size(), 2u);
  EXPECT_EQ(report.atoms[0].inputs[0].source, BindingSource::kConstant);
}

TEST_F(FeasibilityTest, InputVariableBinding) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Movie11 as M where M.Genres.Genre = INPUT1 and "
           "M.Openings.Country = INPUT2"));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.atoms[0].inputs[0].source, BindingSource::kInput);
}

TEST_F(FeasibilityTest, JoinBindingRequiresProviderOutput) {
  // Restaurant's inputs can be joined from Theatre's outputs; report must
  // say so with provider info.
  SECO_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      Bind("select Theatre11 as T, Restaurant11 as R where DinnerPlace(T, R) "
           "and T.UAddress = INPUT4 and T.UCity = INPUT5 and T.UCountry = "
           "INPUT2 and R.Category.Name = INPUT6"));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_TRUE(report.feasible) << report.reason;
  const AtomFeasibility& restaurant = report.atoms[1];
  int join_bound = 0;
  for (const InputBinding& binding : restaurant.inputs) {
    if (binding.source == BindingSource::kJoin) {
      ++join_bound;
      EXPECT_EQ(binding.provider_atom, 0);
    }
  }
  EXPECT_EQ(join_bound, 3);  // UAddress, UCity, UCountry piped from Theatre
}

TEST_F(FeasibilityTest, CyclicDependencyInfeasible) {
  // Two keyed services, each needing the other's output: no start point.
  ServiceRegistry reg;
  using testing_util::MakeKeyedSearchService;
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService a, MakeKeyedSearchService("A", 10, 5, 4, ScoreDecay::kLinear,
                                             /*key_is_input=*/true));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService b, MakeKeyedSearchService("B", 10, 5, 4, ScoreDecay::kLinear,
                                             /*key_is_input=*/true));
  SECO_ASSERT_OK(reg.RegisterInterface(a.interface));
  SECO_ASSERT_OK(reg.RegisterInterface(b.interface));
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery("select A as X, B as Y where X.Key = Y.Key"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindQuery(parsed, reg));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  // Key is an *input* on both sides: neither can provide it as output.
  EXPECT_FALSE(report.feasible);
}

TEST_F(FeasibilityTest, MartLevelAtomRejected) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q,
                            Bind("select Movie as M where M.Title = 'x'"));
  Result<FeasibilityReport> report = CheckFeasibility(q);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FeasibilityTest, ReachableOrderRespectsDependencies) {
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, Bind(scenario_.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  // Theatre (1) must appear before Restaurant (2).
  auto pos = [&](int atom) {
    for (size_t i = 0; i < report.reachable_order.size(); ++i) {
      if (report.reachable_order[i] == atom) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos(1), pos(2));
}

TEST_F(FeasibilityTest, NoInputServiceAlwaysReachable) {
  ServiceRegistry reg;
  using testing_util::MakeKeyedSearchService;
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService a, MakeKeyedSearchService("A", 10, 5, 4));
  SECO_ASSERT_OK(reg.RegisterInterface(a.interface));
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                            ParseQuery("select A as X where X.Val = 'v'"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindQuery(parsed, reg));
  SECO_ASSERT_OK_AND_ASSIGN(FeasibilityReport report, CheckFeasibility(q));
  EXPECT_TRUE(report.feasible);
  EXPECT_TRUE(report.atoms[0].inputs.empty());
}

}  // namespace
}  // namespace seco
