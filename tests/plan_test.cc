#include <gtest/gtest.h>

#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
    Result<ParsedQuery> parsed = ParseQuery(scenario_.query_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    Result<BoundQuery> bound = BindQuery(*parsed, *scenario_.registry);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    query_ = std::move(bound).value();
    // The fixture generates every matching movie with an opening date after
    // the queried one, so the date filter's true selectivity is 1.0 (the
    // §5.6 numbers likewise ignore it). Override the 0.33 default estimate.
    for (BoundSelection& sel : query_.selections) {
      if (sel.op == Comparator::kGt) sel.selectivity = 1.0;
    }
  }

  Scenario scenario_;
  BoundQuery query_;  // atoms: 0=Movie, 1=Theatre, 2=Restaurant
};

TEST_F(PlanTest, DefaultPlanIsValidChain) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(query_));
  SECO_ASSERT_OK(plan.Validate());
  EXPECT_GE(plan.num_nodes(), 5);  // input, 3 services, output (+selections)
  EXPECT_NE(plan.input_node(), -1);
  EXPECT_NE(plan.output_node(), -1);
}

TEST_F(PlanTest, TopologyMustCoverAllAtoms) {
  TopologySpec spec;
  spec.stages = {{0}, {1}};  // Restaurant missing
  Result<QueryPlan> plan = BuildPlan(query_, spec);
  EXPECT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("missing"), std::string::npos);
}

TEST_F(PlanTest, TopologyDuplicateAtomRejected) {
  TopologySpec spec;
  spec.stages = {{0}, {0}, {1}, {2}};
  Result<QueryPlan> plan = BuildPlan(query_, spec);
  EXPECT_FALSE(plan.ok());
}

TEST_F(PlanTest, PrematurePlacementInfeasible) {
  // Restaurant before Theatre: its piped inputs cannot be bound.
  TopologySpec spec;
  spec.stages = {{2}, {0}, {1}};
  Result<QueryPlan> plan = BuildPlan(query_, spec);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInfeasible);
}

TEST_F(PlanTest, PipeGroupAssignedToPipedService) {
  TopologySpec spec;
  spec.stages = {{0}, {1}, {2}};
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  int rest_node = plan.NodeOfAtom(2);
  ASSERT_NE(rest_node, -1);
  // DinnerPlace (join group 1) is realized as a pipe into Restaurant.
  EXPECT_EQ(plan.node(rest_node).pipe_groups, (std::vector<int>{1}));
}

TEST_F(PlanTest, ResidualJoinBecomesSelectionInChain) {
  // In the all-serial topology, Shows (group 0) cannot pipe into Theatre
  // (its inputs come from the user), so it must appear as a residual
  // predicate after Theatre.
  TopologySpec spec;
  spec.stages = {{0}, {1}, {2}};
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  bool found = false;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kSelection) {
      for (int g : n.residual_join_groups) {
        if (g == 0) found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PlanTest, ParallelStageCreatesJoinNode) {
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  int joins = 0;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) {
      ++joins;
      EXPECT_EQ(n.join_groups, (std::vector<int>{0}));  // Shows
      EXPECT_EQ(n.inputs.size(), 2u);
    }
  }
  EXPECT_EQ(joins, 1);
}

// The fully instantiated running example of §5.6 / Fig. 10: K=10,
// sel(Shows)=2%, sel(DinnerPlace)=40%, movies: 5 fetches x chunk 20 = 100,
// theatres: 5 fetches x chunk 5 = 25, parallel join triangular ->
// 100*25/2 = 1250 candidates -> x2% = 25 combinations -> Restaurant piped
// with keep-first-1 -> 25 * 40% = 10 = K.
TEST_F(PlanTest, RunningExampleAnnotationMatchesPaper) {
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.invocation = JoinInvocation::kMergeScan;
  spec.parallel_strategy.completion = JoinCompletion::kTriangular;
  spec.atom_settings[0].fetch_factor = 5;  // Movie: 5 fetches of 20
  spec.atom_settings[1].fetch_factor = 5;  // Theatre: 5 fetches of 5
  spec.atom_settings[2].fetch_factor = 1;
  spec.atom_settings[2].keep_per_input = 1;  // best restaurant per theatre

  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  AnnotationParams params;
  params.k = 10;
  SECO_ASSERT_OK_AND_ASSIGN(double answers, AnnotatePlan(&plan, params));

  const PlanNode& movie = plan.node(plan.NodeOfAtom(0));
  EXPECT_DOUBLE_EQ(movie.t_out, 100.0);  // t_Movie_out = 100
  EXPECT_DOUBLE_EQ(movie.est_calls, 5.0);

  const PlanNode& theatre = plan.node(plan.NodeOfAtom(1));
  EXPECT_DOUBLE_EQ(theatre.t_out, 25.0);  // t_Theatre_out = 25
  EXPECT_DOUBLE_EQ(theatre.est_calls, 5.0);

  // The parallel join processes 1250 candidates and outputs 25.
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) {
      EXPECT_DOUBLE_EQ(n.t_in, 1250.0);
      EXPECT_DOUBLE_EQ(n.t_out, 25.0);  // t_MS_out = 25
    }
  }

  const PlanNode& restaurant = plan.node(plan.NodeOfAtom(2));
  EXPECT_DOUBLE_EQ(restaurant.t_in, 25.0);  // t_Restaurant_in = 25
  EXPECT_DOUBLE_EQ(restaurant.t_out, 10.0);  // 25 * 40% * keep 1 = 10 = K
  EXPECT_NEAR(answers, 10.0, 1e-9);
}

TEST_F(PlanTest, RectangularCompletionDoublesCandidates) {
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) {
      EXPECT_DOUBLE_EQ(n.t_in, 2500.0);
    }
  }
}

TEST_F(PlanTest, SerialChainSharesSingleCallForUnpipedService) {
  // Movie then Theatre in series: Theatre has no piped inputs, so its call
  // count stays at fetch_factor (distinct bindings = 1), not t_in.
  TopologySpec spec;
  spec.stages = {{0}, {1}, {2}};
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  const PlanNode& theatre = plan.node(plan.NodeOfAtom(1));
  EXPECT_DOUBLE_EQ(theatre.est_calls, 5.0);
  EXPECT_DOUBLE_EQ(theatre.t_in, 100.0);
  EXPECT_DOUBLE_EQ(theatre.t_out, 100.0 * 25.0);  // composition, joined later
}

TEST_F(PlanTest, PipedServiceCallsScaleWithInput) {
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  spec.atom_settings[2].fetch_factor = 2;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  const PlanNode& restaurant = plan.node(plan.NodeOfAtom(2));
  EXPECT_DOUBLE_EQ(restaurant.t_in, 25.0);
  // 25 bindings, but the second fetch per binding is useless: the expected
  // result-list depth (2) fits in one chunk of 5, so the estimator caps the
  // fetches at 1 per binding (the engine stops on exhaustion likewise).
  EXPECT_DOUBLE_EQ(restaurant.est_calls, 25.0);
}

TEST_F(PlanTest, ValidateCatchesGraphDefects) {
  // Hand-built broken plan: no output node.
  QueryPlan plan(query_);
  PlanNode input;
  input.kind = PlanNodeKind::kInput;
  plan.AddNode(input);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST_F(PlanTest, ValidateCatchesCycle) {
  QueryPlan plan(query_);
  PlanNode input;
  input.kind = PlanNodeKind::kInput;
  int in = plan.AddNode(input);
  PlanNode output;
  output.kind = PlanNodeKind::kOutput;
  int out = plan.AddNode(output);
  plan.Connect(in, out);
  plan.Connect(out, in);  // cycle
  EXPECT_FALSE(plan.TopologicalOrder().ok());
}

TEST_F(PlanTest, ToStringAndDotRender) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(query_));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  std::string text = plan.ToString();
  EXPECT_NE(text.find("Movie11"), std::string::npos);
  EXPECT_NE(text.find("t_out"), std::string::npos);
  std::string dot = plan.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST_F(PlanTest, OutputTruncatesToK) {
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  AnnotationParams params;
  params.k = 3;
  SECO_ASSERT_OK(AnnotatePlan(&plan, params).status());
  const PlanNode& output = plan.node(plan.output_node());
  EXPECT_LE(output.t_out, 3.0);
}

TEST_F(PlanTest, JoinStrategyToString) {
  JoinStrategy s;
  s.invocation = JoinInvocation::kMergeScan;
  s.completion = JoinCompletion::kTriangular;
  s.ratio_x = 3;
  s.ratio_y = 5;
  EXPECT_EQ(s.ToString(), "merge-scan/triangular r=3:5");
  s.invocation = JoinInvocation::kNestedLoop;
  s.completion = JoinCompletion::kRectangular;
  EXPECT_EQ(s.ToString(), "nested-loop/rectangular");
}

}  // namespace
}  // namespace seco
