#include <gtest/gtest.h>

#include "plan/annotate.h"
#include "plan/builder.h"
#include "plan/plan_json.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class PlanJsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::move(scenario).value();
    Result<ParsedQuery> parsed = ParseQuery(scenario_.query_text);
    ASSERT_TRUE(parsed.ok());
    Result<BoundQuery> bound = BindQuery(*parsed, *scenario_.registry);
    ASSERT_TRUE(bound.ok());
    query_ = std::move(bound).value();
  }

  Scenario scenario_;
  BoundQuery query_;
};

TEST_F(PlanJsonTest, ContainsAllStructuralElements) {
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  spec.atom_settings[2].keep_per_input = 1;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());

  std::string json = PlanToJson(plan);
  EXPECT_NE(json.find("\"kind\":\"input\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"output\""), std::string::npos);
  EXPECT_NE(json.find("\"service\":\"Movie11\""), std::string::npos);
  EXPECT_NE(json.find("\"service\":\"Theatre11\""), std::string::npos);
  EXPECT_NE(json.find("\"service\":\"Restaurant11\""), std::string::npos);
  EXPECT_NE(json.find("\"fetch_factor\":5"), std::string::npos);
  EXPECT_NE(json.find("\"keep_per_input\":1"), std::string::npos);
  EXPECT_NE(json.find("\"join_groups\":[\"Shows\"]"), std::string::npos);
  EXPECT_NE(json.find("\"pipe_groups\":"), std::string::npos);
  EXPECT_NE(json.find("\"t_in\":1250"), std::string::npos);  // MS candidates
  EXPECT_NE(json.find("\"strategy\":\"merge-scan/triangular"), std::string::npos);
}

TEST_F(PlanJsonTest, DeterministicOutput) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan a, BuildDefaultPlan(query_));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan b, BuildDefaultPlan(query_));
  SECO_ASSERT_OK(AnnotatePlan(&a).status());
  SECO_ASSERT_OK(AnnotatePlan(&b).status());
  EXPECT_EQ(PlanToJson(a), PlanToJson(b));
}

TEST_F(PlanJsonTest, BalancedBracesAndQuotes) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(query_));
  std::string json = PlanToJson(plan);
  int braces = 0, brackets = 0, quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) ++quotes;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST_F(PlanJsonTest, EscapesSpecialCharacters) {
  // A selection constant with a quote must not break the document.
  SECO_ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseQuery("select Movie11 as M where M.Genres.Genre = INPUT1 and "
                 "M.Openings.Country = INPUT2"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindQuery(parsed, *scenario_.registry));
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildDefaultPlan(q));
  std::string json = PlanToJson(plan);
  EXPECT_EQ(json.find("\n"), std::string::npos);
}

}  // namespace
}  // namespace seco
