// CancelToken semantics (docs/SERVER.md, "Cancellation"): one-shot sticky
// cancel with a first-wins reason, hierarchical child propagation, CV
// wakeup for blocked sleeps, the InterruptFlag bridge into existing pacing
// waits, and the progress heartbeat the stuck-query watchdog compares.

#include "common/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace seco {
namespace {

TEST(CancelTokenTest, StartsUncancelledWithOkStatus) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
  EXPECT_TRUE(token.ToStatus().ok());
  EXPECT_EQ(token.progress(), 0u);
}

TEST(CancelTokenTest, FirstCancelWinsAndSticks) {
  CancelToken token;
  EXPECT_TRUE(token.Cancel("client hung up"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "client hung up");
  // Later cancels are no-ops: the original reason survives.
  EXPECT_FALSE(token.Cancel("watchdog reaped"));
  EXPECT_EQ(token.reason(), "client hung up");
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
  EXPECT_NE(token.ToStatus().message().find("client hung up"),
            std::string::npos);
}

TEST(CancelTokenTest, WaitForWakesPromptlyOnCancel) {
  auto token = std::make_shared<CancelToken>();
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token->Cancel("wakeup");
  });
  const auto start = std::chrono::steady_clock::now();
  // Nominal 5s sleep; the cancel must cut it to ~20ms.
  EXPECT_TRUE(token->WaitFor(std::chrono::seconds(5)));
  const double waited =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 2000.0);
  canceller.join();
}

TEST(CancelTokenTest, WaitForTimesOutWhenNotCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.WaitFor(std::chrono::milliseconds(5)));
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, ParentCancelPropagatesToChildren) {
  auto parent = std::make_shared<CancelToken>();
  std::shared_ptr<CancelToken> a = parent->Child();
  std::shared_ptr<CancelToken> b = parent->Child();
  parent->Cancel("query torn down");
  EXPECT_TRUE(a->cancelled());
  EXPECT_TRUE(b->cancelled());
  EXPECT_EQ(a->reason(), "query torn down");
}

TEST(CancelTokenTest, ChildCancelStaysLocal) {
  auto parent = std::make_shared<CancelToken>();
  std::shared_ptr<CancelToken> a = parent->Child();
  std::shared_ptr<CancelToken> b = parent->Child();
  a->Cancel("one arm abandoned");
  EXPECT_TRUE(a->cancelled());
  EXPECT_FALSE(parent->cancelled());
  EXPECT_FALSE(b->cancelled());
}

TEST(CancelTokenTest, ChildOfCancelledParentStartsCancelled) {
  auto parent = std::make_shared<CancelToken>();
  parent->Cancel("already gone");
  std::shared_ptr<CancelToken> late = parent->Child();
  EXPECT_TRUE(late->cancelled());
  EXPECT_EQ(late->reason(), "already gone");
}

TEST(CancelTokenTest, ExpiredChildrenAreSkippedSafely) {
  auto parent = std::make_shared<CancelToken>();
  { std::shared_ptr<CancelToken> dead = parent->Child(); }
  std::shared_ptr<CancelToken> alive = parent->Child();
  parent->Cancel("sweep");  // must not crash on the expired weak_ptr
  EXPECT_TRUE(alive->cancelled());
}

TEST(CancelTokenTest, LinkedInterruptFiresOnCancel) {
  CancelToken token;
  auto flag = std::make_shared<InterruptFlag>();
  token.LinkInterrupt(flag);
  EXPECT_FALSE(flag->triggered());
  token.Cancel("pacing sleep must wake");
  EXPECT_TRUE(flag->triggered());
}

TEST(CancelTokenTest, InterruptLinkedAfterCancelFiresImmediately) {
  CancelToken token;
  token.Cancel("early");
  auto flag = std::make_shared<InterruptFlag>();
  token.LinkInterrupt(flag);
  EXPECT_TRUE(flag->triggered());
}

TEST(CancelTokenTest, InterruptResetDoesNotUncancelTheToken) {
  // The contract that separates CancelToken from InterruptFlag: hedge
  // winners Reset() the shared pacing flag between runs, and that must
  // never resurrect a cancelled query.
  CancelToken token;
  auto flag = std::make_shared<InterruptFlag>();
  token.LinkInterrupt(flag);
  token.Cancel("stay down");
  flag->Reset();
  EXPECT_FALSE(flag->triggered());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, HeartbeatAdvancesProgressMonotonically) {
  CancelToken token;
  for (int i = 1; i <= 5; ++i) {
    token.Heartbeat();
    EXPECT_EQ(token.progress(), static_cast<uint64_t>(i));
  }
  // Heartbeats after cancellation are harmless (work loops may notice the
  // flag a chunk late).
  token.Cancel("late beat");
  token.Heartbeat();
  EXPECT_EQ(token.progress(), 6u);
}

TEST(CancelTokenTest, ConcurrentCancelsProduceExactlyOneWinner) {
  for (int round = 0; round < 50; ++round) {
    CancelToken token;
    std::atomic<int> wins{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&token, &wins, t] {
        if (token.Cancel("racer " + std::to_string(t))) {
          wins.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(wins.load(), 1);
    EXPECT_TRUE(token.cancelled());
    EXPECT_FALSE(token.reason().empty());
  }
}

}  // namespace
}  // namespace seco
