#include <gtest/gtest.h>

#include "cost/metrics.h"
#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class CostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeConferenceScenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).value();
    Result<ParsedQuery> parsed = ParseQuery(scenario_.query_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    Result<BoundQuery> bound = BindQuery(*parsed, *scenario_.registry);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    query_ = std::move(bound).value();
    // Atoms: 0=Conference, 1=Weather, 2=Flight, 3=Hotel.
  }

  Result<QueryPlan> MakeFig2Plan(int flight_fetch = 1, int hotel_fetch = 1) {
    TopologySpec spec;
    spec.stages = {{0}, {1}, {2, 3}};
    spec.atom_settings[2].fetch_factor = flight_fetch;
    spec.atom_settings[3].fetch_factor = hotel_fetch;
    SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(query_, spec));
    SECO_RETURN_IF_ERROR(AnnotatePlan(&plan).status());
    return plan;
  }

  Scenario scenario_;
  BoundQuery query_;
};

TEST_F(CostTest, CallCountSumsCalls) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan());
  SECO_ASSERT_OK_AND_ASSIGN(double calls,
                            PlanCost(plan, CostMetricKind::kCallCount));
  double expected = 0.0;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kServiceCall) expected += n.est_calls;
  }
  EXPECT_DOUBLE_EQ(calls, expected);
  EXPECT_GT(calls, 0.0);
}

TEST_F(CostTest, RequestResponseWeighsPerCallCharge) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan());
  SECO_ASSERT_OK_AND_ASSIGN(double rr,
                            PlanCost(plan, CostMetricKind::kRequestResponse));
  // Weighted sum of calls by each service's per-call charge.
  double expected = 0.0;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kServiceCall) {
      expected += n.est_calls * n.iface->stats().cost_per_call;
    }
  }
  EXPECT_DOUBLE_EQ(rr, expected);
  // Weather is discounted (0.5/call): rr differs from the raw call count.
  SECO_ASSERT_OK_AND_ASSIGN(double calls,
                            PlanCost(plan, CostMetricKind::kCallCount));
  EXPECT_NE(rr, calls);
}

TEST_F(CostTest, SumCostAddsJoinCpu) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan());
  SECO_ASSERT_OK_AND_ASSIGN(double base,
                            PlanCost(plan, CostMetricKind::kSumCost));
  CostParams params;
  params.join_cpu_cost_per_candidate = 0.01;
  SECO_ASSERT_OK_AND_ASSIGN(
      double with_cpu, PlanCost(plan, CostMetricKind::kSumCost, params));
  EXPECT_GT(with_cpu, base);
}

TEST_F(CostTest, ExecutionTimeIsSlowestPath) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan());
  SECO_ASSERT_OK_AND_ASSIGN(double time,
                            PlanCost(plan, CostMetricKind::kExecutionTime));
  // Slowest path includes Conference + Weather + max(Flight, Hotel).
  double conference = 0, weather = 0, flight = 0, hotel = 0;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind != PlanNodeKind::kServiceCall) continue;
    double elapsed = NodeElapsedMs(n);
    if (n.iface->name() == "Conference1") conference = elapsed;
    if (n.iface->name() == "Weather1") weather = elapsed;
    if (n.iface->name() == "Flight1") flight = elapsed;
    if (n.iface->name() == "Hotel1") hotel = elapsed;
  }
  EXPECT_NEAR(time, conference + weather + std::max(flight, hotel), 1e-6);
  // Parallel branches overlap: exec time strictly below the full sum.
  EXPECT_LT(time, conference + weather + flight + hotel);
}

TEST_F(CostTest, BottleneckIsSlowestService) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan());
  SECO_ASSERT_OK_AND_ASSIGN(double bottleneck,
                            PlanCost(plan, CostMetricKind::kBottleneck));
  double worst = 0;
  for (const PlanNode& n : plan.nodes()) {
    worst = std::max(worst, NodeElapsedMs(n));
  }
  EXPECT_DOUBLE_EQ(bottleneck, worst);
}

TEST_F(CostTest, TimeToScreenCountsOneCallPerService) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan(/*flight_fetch=*/5,
                                                         /*hotel_fetch=*/5));
  SECO_ASSERT_OK_AND_ASSIGN(double tts,
                            PlanCost(plan, CostMetricKind::kTimeToScreen));
  SECO_ASSERT_OK_AND_ASSIGN(double exec_time,
                            PlanCost(plan, CostMetricKind::kExecutionTime));
  EXPECT_LT(tts, exec_time);  // first tuple is cheaper than the k-th
  // Conference + Weather + max(Flight, Hotel) single-call latencies.
  EXPECT_NEAR(tts, 120.0 + 60.0 + 200.0, 1e-6);
}

TEST_F(CostTest, MonotonicInFetchFactors) {
  // Growing a fetching factor must never reduce any metric (§5.2).
  for (CostMetricKind kind :
       {CostMetricKind::kExecutionTime, CostMetricKind::kSumCost,
        CostMetricKind::kRequestResponse, CostMetricKind::kCallCount,
        CostMetricKind::kBottleneck, CostMetricKind::kTimeToScreen}) {
    double prev = -1.0;
    for (int f = 1; f <= 4; ++f) {
      SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan(f, f));
      SECO_ASSERT_OK_AND_ASSIGN(double cost, PlanCost(plan, kind));
      EXPECT_GE(cost, prev - 1e-9)
          << CostMetricKindToString(kind) << " not monotone at F=" << f;
      prev = cost;
    }
  }
}

TEST_F(CostTest, MonotonicInPlanExtension) {
  // The cost of a prefix sub-plan is a lower bound for the full plan.
  std::vector<int> keep_atoms = {0, 1};  // Conference + Weather only
  BoundQuery sub = query_;
  // Build the restricted query via the public API: re-bind a smaller query.
  SECO_ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseQuery("select Conference1 as C, Weather1 as W where "
                 "CheckWeather(C, W) and C.Area = INPUT1 and "
                 "W.AvgTemp > INPUT2"));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery small,
                            BindQuery(parsed, *scenario_.registry));
  TopologySpec small_spec;
  small_spec.stages = {{0}, {1}};
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan small_plan, BuildPlan(small, small_spec));
  SECO_ASSERT_OK(AnnotatePlan(&small_plan).status());
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan full_plan, MakeFig2Plan());
  for (CostMetricKind kind :
       {CostMetricKind::kExecutionTime, CostMetricKind::kSumCost,
        CostMetricKind::kCallCount, CostMetricKind::kBottleneck}) {
    SECO_ASSERT_OK_AND_ASSIGN(double small_cost, PlanCost(small_plan, kind));
    SECO_ASSERT_OK_AND_ASSIGN(double full_cost, PlanCost(full_plan, kind));
    EXPECT_LE(small_cost, full_cost + 1e-9) << CostMetricKindToString(kind);
  }
}

TEST_F(CostTest, MetricNamesAndTimeBase) {
  EXPECT_STREQ(CostMetricKindToString(CostMetricKind::kExecutionTime),
               "execution-time");
  EXPECT_STREQ(CostMetricKindToString(CostMetricKind::kCallCount),
               "call-count");
  EXPECT_TRUE(MetricIsTimeBased(CostMetricKind::kExecutionTime));
  EXPECT_TRUE(MetricIsTimeBased(CostMetricKind::kBottleneck));
  EXPECT_TRUE(MetricIsTimeBased(CostMetricKind::kTimeToScreen));
  EXPECT_FALSE(MetricIsTimeBased(CostMetricKind::kSumCost));
  EXPECT_FALSE(MetricIsTimeBased(CostMetricKind::kCallCount));
}

TEST_F(CostTest, WeatherIsSelectiveInContext) {
  // §3.2: Weather is selective in the context of the query because of the
  // temperature selection: the selection node shrinks the stream.
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakeFig2Plan());
  double weather_out = -1, selection_out = -1;
  for (const PlanNode& n : plan.nodes()) {
    if (n.kind == PlanNodeKind::kServiceCall && n.iface->name() == "Weather1") {
      weather_out = n.t_out;
    }
    if (n.kind == PlanNodeKind::kSelection && !n.selections.empty()) {
      selection_out = n.t_out;
    }
  }
  ASSERT_GT(weather_out, 0);
  ASSERT_GT(selection_out, 0);
  EXPECT_LT(selection_out, weather_out);
}

}  // namespace
}  // namespace seco
