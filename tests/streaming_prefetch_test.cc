// Determinism and budget-safety contract of the StreamingEngine's
// speculative chunk prefetcher (docs/CONCURRENCY.md): the emitted
// combinations, charged calls, per-node stats, trace, and simulated
// timings must be bit-identical at any {num_threads} x {prefetch_depth}
// setting — speculation may only move work onto the wall clock — and
// speculative fetches must never push the real backend call count past
// `max_calls`.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

StreamingOptions BaseStreamOptions(const std::map<std::string, Value>& inputs,
                                   int num_threads, int prefetch_depth) {
  StreamingOptions options;
  options.k = 10;
  options.input_bindings = inputs;
  options.max_calls = 10000;
  options.num_threads = num_threads;
  options.prefetch_depth = prefetch_depth;
  options.collect_trace = true;
  return options;
}

void ExpectIdenticalStream(const StreamingResult& sequential,
                           const StreamingResult& speculative) {
  EXPECT_EQ(speculative.total_calls, sequential.total_calls);
  EXPECT_DOUBLE_EQ(speculative.total_latency_ms, sequential.total_latency_ms);
  EXPECT_EQ(speculative.exhausted, sequential.exhausted);
  EXPECT_EQ(speculative.cache_hits, sequential.cache_hits);
  EXPECT_EQ(speculative.cache_misses, sequential.cache_misses);

  ASSERT_EQ(speculative.combinations.size(), sequential.combinations.size());
  for (size_t i = 0; i < sequential.combinations.size(); ++i) {
    const Combination& a = sequential.combinations[i];
    const Combination& b = speculative.combinations[i];
    EXPECT_DOUBLE_EQ(b.combined_score, a.combined_score);
    ASSERT_EQ(b.components.size(), a.components.size());
    for (size_t c = 0; c < a.components.size(); ++c) {
      EXPECT_TRUE(b.components[c] == a.components[c]);
      EXPECT_DOUBLE_EQ(b.component_scores[c], a.component_scores[c]);
    }
  }

  ASSERT_EQ(speculative.node_stats.size(), sequential.node_stats.size());
  for (const auto& [node_id, stats] : sequential.node_stats) {
    auto it = speculative.node_stats.find(node_id);
    ASSERT_NE(it, speculative.node_stats.end());
    EXPECT_EQ(it->second.calls, stats.calls);
    EXPECT_EQ(it->second.tuples_out, stats.tuples_out);
    EXPECT_EQ(it->second.cache_hits, stats.cache_hits);
    EXPECT_DOUBLE_EQ(it->second.latency_ms, stats.latency_ms);
    EXPECT_DOUBLE_EQ(it->second.finished_at_ms, stats.finished_at_ms);
  }

  // Charging happens at consumption, on the pull thread, so the chronological
  // call log must reproduce the sequential demand order event for event no
  // matter what the speculation threads did.
  ASSERT_EQ(speculative.trace.size(), sequential.trace.size());
  for (size_t i = 0; i < sequential.trace.size(); ++i) {
    EXPECT_EQ(speculative.trace[i].node, sequential.trace[i].node);
    EXPECT_EQ(speculative.trace[i].service, sequential.trace[i].service);
    EXPECT_EQ(speculative.trace[i].binding_key,
              sequential.trace[i].binding_key);
    EXPECT_EQ(speculative.trace[i].chunk_index,
              sequential.trace[i].chunk_index);
    EXPECT_DOUBLE_EQ(speculative.trace[i].latency_ms,
                     sequential.trace[i].latency_ms);
  }
}

/// Runs the plan at {1, 8} threads x {0, 1, 4} prefetch depth (each run
/// against a fresh private cache) and asserts every result is identical to
/// the sequential baseline.
void ExpectDeterministicAcrossSettings(
    const QueryPlan& plan, const std::map<std::string, Value>& inputs) {
  StreamingEngine baseline_engine(BaseStreamOptions(inputs, 1, 0));
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult baseline,
                            baseline_engine.Execute(plan));
  EXPECT_FALSE(baseline.combinations.empty());
  for (int num_threads : {1, 8}) {
    for (int prefetch_depth : {0, 1, 4}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " prefetch_depth=" + std::to_string(prefetch_depth));
      StreamingEngine engine(
          BaseStreamOptions(inputs, num_threads, prefetch_depth));
      SECO_ASSERT_OK_AND_ASSIGN(StreamingResult run, engine.Execute(plan));
      ExpectIdenticalStream(baseline, run);
      if (num_threads > 1 && prefetch_depth > 0) {
        // Speculation must actually run in these settings (otherwise the
        // property test exercises nothing) and waste must be accounted.
        EXPECT_GT(run.speculative_calls, 0);
        EXPECT_GE(run.speculative_wasted, 0);
        EXPECT_LE(run.speculative_wasted, run.speculative_calls);
      } else {
        EXPECT_EQ(run.speculative_calls, 0);
      }
    }
  }
}

TEST(StreamingPrefetchTest, ConferenceScenarioIsDeterministic) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(scenario.registry, optimizer_options);
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult optimized,
                            session.Optimize(bound));
  ExpectDeterministicAcrossSettings(optimized.plan, scenario.inputs);
}

TEST(StreamingPrefetchTest, DoctorScenarioIsDeterministic) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeDoctorScenario());
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(scenario.registry, optimizer_options);
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult optimized,
                            session.Optimize(bound));
  ExpectDeterministicAcrossSettings(optimized.plan, scenario.inputs);
}

TEST(StreamingPrefetchTest, ChainScenarioIsDeterministic) {
  SECO_ASSERT_OK_AND_ASSIGN(bench_util::ChainScenario scenario,
                            bench_util::MakeChainScenario(4));
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(scenario.registry, optimizer_options);
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult optimized,
                            session.Optimize(bound));
  ExpectDeterministicAcrossSettings(optimized.plan, {});
}

// --- Budget safety ---------------------------------------------------------

class StreamingPrefetchBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ServiceRegistry>();
    Result<BuiltService> outer =
        MakeKeyedSearchService("Outer", 60, 5, 4, ScoreDecay::kLinear);
    ASSERT_TRUE(outer.ok());
    outer_ = std::move(outer).value();
    Result<BuiltService> inner = MakeKeyedSearchService(
        "Inner", 80, 5, 4, ScoreDecay::kLinear, /*key_is_input=*/true);
    ASSERT_TRUE(inner.ok());
    inner_ = std::move(inner).value();
    ASSERT_TRUE(registry_->RegisterInterface(outer_.interface).ok());
    ASSERT_TRUE(registry_->RegisterInterface(inner_.interface).ok());
  }

  Result<QueryPlan> MakePlan() {
    SECO_ASSIGN_OR_RETURN(
        ParsedQuery parsed,
        ParseQuery("select Outer as O, Inner as I where O.Key = I.Key"));
    SECO_ASSIGN_OR_RETURN(BoundQuery query, BindQuery(parsed, *registry_));
    TopologySpec spec;
    spec.stages = {{0}, {1}};
    spec.atom_settings[0].fetch_factor = 12;
    spec.atom_settings[1].fetch_factor = 16;
    SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(query, spec));
    SECO_RETURN_IF_ERROR(AnnotatePlan(&plan).status());
    return plan;
  }

  int BackendCalls() const {
    return static_cast<int>(outer_.backend->call_count() +
                            inner_.backend->call_count());
  }

  BuiltService outer_;
  BuiltService inner_;
  std::shared_ptr<ServiceRegistry> registry_;
};

TEST_F(StreamingPrefetchBudgetTest, SpeculationNeverOverdrawsMaxCalls) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  for (int max_calls : {1, 2, 3, 5, 8}) {
    SCOPED_TRACE("max_calls=" + std::to_string(max_calls));
    outer_.backend->ResetCallCount();
    inner_.backend->ResetCallCount();
    StreamingOptions options;
    options.k = 1000;  // demand far more than the budget allows
    options.max_calls = max_calls;
    options.num_threads = 4;
    options.prefetch_depth = 4;
    StreamingEngine engine(options);
    Result<StreamingResult> result = engine.Execute(plan);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    // The hard guarantee: speculation reserves budget before issuing, so
    // even the failed run never sent more real requests than max_calls.
    EXPECT_LE(BackendCalls(), max_calls);
  }
}

TEST_F(StreamingPrefetchBudgetTest, ChargedPlusWastedEqualsRealCalls) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  outer_.backend->ResetCallCount();
  inner_.backend->ResetCallCount();
  StreamingOptions options;
  options.k = 7;
  options.max_calls = 10000;
  options.num_threads = 8;
  options.prefetch_depth = 4;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult stream, engine.Execute(plan));
  ASSERT_EQ(stream.combinations.size(), 7u);
  // With a fresh private cache every real request is either charged (a
  // demand miss or a consumed speculation) or wasted speculation.
  EXPECT_EQ(BackendCalls(), stream.total_calls + stream.speculative_wasted);
  EXPECT_GT(stream.speculative_calls, 0);
}

TEST_F(StreamingPrefetchBudgetTest, LostServiceSpeculationCountsAsWasted) {
  // Regression: speculative fetches already in flight against a service that
  // is then declared permanently lost fail at their consumption point. They
  // must still land in `speculative_wasted` — charging-then-checking used to
  // count them as consumed, leaking them out of both `total_calls` and the
  // waste counter — and the shared cache must never serve data for the lost
  // service.
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  outer_.backend->ResetCallCount();
  inner_.backend->ResetCallCount();
  FaultProfile outage;
  outage.permanent_outage = true;
  inner_.backend->set_fault_profile(outage);

  ServiceCallCache cache;
  StreamingOptions options;
  options.k = 1000;  // run to exhaustion so every Outer chunk is consumed
  options.max_calls = 10000;
  options.num_threads = 8;
  options.prefetch_depth = 4;
  options.cache = &cache;
  options.reliability.degrade = true;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult stream, engine.Execute(plan));

  EXPECT_FALSE(stream.complete);
  ASSERT_FALSE(stream.degraded.empty());
  EXPECT_EQ(stream.degraded[0].service, "Inner");
  // The outage is discovered through real refused attempts (they count on
  // the backend, like every failed attempt), but nothing of Inner is ever
  // charged: every charged call is Outer's, and with the run driven to
  // exhaustion every Outer fetch was consumed — so speculation against the
  // lost service is pure waste and must be visible as such.
  EXPECT_GT(inner_.backend->call_count(), 0);
  EXPECT_EQ(outer_.backend->call_count(), stream.total_calls);
  EXPECT_GT(stream.speculative_calls, 0);
  EXPECT_GT(stream.speculative_wasted, 0);

  // Nothing of the lost service reached the shared cache: a warm rerun is
  // served entirely from Outer's cached chunks (zero charged calls, zero
  // new Outer traffic) and still degrades Inner with the identical partial
  // answers — its errors were never stored, so they cannot replay as data.
  int64_t outer_after_cold = outer_.backend->call_count();
  StreamingEngine warm_engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult warm, warm_engine.Execute(plan));
  EXPECT_EQ(outer_.backend->call_count(), outer_after_cold);
  EXPECT_EQ(warm.total_calls, 0);
  EXPECT_FALSE(warm.complete);
  ASSERT_FALSE(warm.degraded.empty());
  EXPECT_EQ(warm.degraded[0].service, "Inner");
  ASSERT_EQ(warm.combinations.size(), stream.combinations.size());
  for (size_t i = 0; i < stream.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm.combinations[i].combined_score,
                     stream.combinations[i].combined_score);
    EXPECT_EQ(warm.combinations[i].missing_atoms,
              stream.combinations[i].missing_atoms);
  }
}

TEST_F(StreamingPrefetchBudgetTest, SequentialBudgetErrorIsUnchanged) {
  // The overdraw guard may refuse a demand fetch only while speculation is
  // outstanding; without speculation the error point must match the
  // historical sequential engine exactly.
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  StreamingOptions options;
  options.k = 1000;
  options.max_calls = 2;
  options.num_threads = 1;
  options.prefetch_depth = 0;
  StreamingEngine engine(options);
  Result<StreamingResult> result = engine.Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace seco
