#include "exec/call_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/tuple.h"

namespace seco {
namespace {

ServiceResponse MakeResponse(const std::string& payload, double latency_ms) {
  ServiceResponse resp;
  resp.tuples.push_back(Tuple({TupleSlot(Value(payload))}));
  resp.scores.push_back(0.5);
  resp.exhausted = false;
  resp.latency_ms = latency_ms;
  return resp;
}

TEST(CallCacheTest, KeyDistinguishesServiceBindingAndChunk) {
  std::set<std::string> keys = {
      ServiceCallCache::Key("S", "b", 0), ServiceCallCache::Key("S", "b", 1),
      ServiceCallCache::Key("S", "c", 0), ServiceCallCache::Key("T", "b", 0)};
  EXPECT_EQ(keys.size(), 4u);
}

TEST(CallCacheTest, SerializeBindingIsPositional) {
  EXPECT_NE(SerializeBinding({Value("ab"), Value("c")}),
            SerializeBinding({Value("a"), Value("bc")}));
  EXPECT_EQ(SerializeBinding({Value(1), Value(2)}),
            SerializeBinding({Value(1), Value(2)}));
}

TEST(CallCacheTest, PutGetRoundTrip) {
  ServiceCallCache cache;
  std::string key = ServiceCallCache::Key("S", "b", 0);
  EXPECT_FALSE(cache.Get(key).has_value());
  cache.Put(key, MakeResponse("hello", 42.0));
  std::optional<ServiceResponse> got = cache.Get(key);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->tuples.size(), 1u);
  EXPECT_EQ(got->tuples[0].AtomicAt(0).AsString(), "hello");
  EXPECT_DOUBLE_EQ(got->scores[0], 0.5);
  EXPECT_FALSE(got->exhausted);
  EXPECT_DOUBLE_EQ(got->latency_ms, 42.0);
  CallCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST(CallCacheTest, LruEvictionPrefersRecentlyUsed) {
  // Single shard, ~2 KiB budget; each 800-char payload entry weighs roughly
  // 1 KiB, so exactly two fit.
  ServiceCallCache cache(/*byte_budget=*/2048, /*num_shards=*/1);
  std::string payload(800, 'x');
  cache.Put("A", MakeResponse(payload, 1.0));
  cache.Put("B", MakeResponse(payload, 2.0));
  ASSERT_TRUE(cache.Get("A").has_value());  // A becomes most-recently-used
  cache.Put("C", MakeResponse(payload, 3.0));
  EXPECT_TRUE(cache.Get("A").has_value());
  EXPECT_FALSE(cache.Get("B").has_value());  // LRU victim
  EXPECT_TRUE(cache.Get("C").has_value());
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(CallCacheTest, EvictionKeepsShardWithinBudget) {
  ServiceCallCache cache(/*byte_budget=*/2048, /*num_shards=*/1);
  std::string payload(400, 'y');
  for (int i = 0; i < 10; ++i) {
    cache.Put("k" + std::to_string(i), MakeResponse(payload, i));
  }
  CallCacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, 2048);
  EXPECT_LT(stats.entries, 10);
  EXPECT_TRUE(cache.Get("k9").has_value());    // newest survives
  EXPECT_FALSE(cache.Get("k0").has_value());   // oldest evicted
}

TEST(CallCacheTest, OversizedEntryIsNotAdmitted) {
  ServiceCallCache cache(/*byte_budget=*/512, /*num_shards=*/1);
  cache.Put("small", MakeResponse("s", 1.0));
  cache.Put("huge", MakeResponse(std::string(4096, 'z'), 2.0));
  EXPECT_FALSE(cache.Get("huge").has_value());
  EXPECT_TRUE(cache.Get("small").has_value());  // untouched by the rejection
}

TEST(CallCacheTest, KeysSpreadAcrossShards) {
  ServiceCallCache cache(ServiceCallCache::kDefaultByteBudget,
                         /*num_shards=*/16);
  std::set<size_t> shards;
  for (int i = 0; i < 1000; ++i) {
    shards.insert(cache.ShardOf(ServiceCallCache::Key(
        "S" + std::to_string(i % 7), "binding" + std::to_string(i), i % 5)));
  }
  // With 1000 hashed keys, a healthy hash touches essentially every shard.
  EXPECT_GE(shards.size(), 12u);
}

TEST(CallCacheTest, ClearDropsEntriesAndCounters) {
  ServiceCallCache cache;
  cache.Put("A", MakeResponse("a", 1.0));
  ASSERT_TRUE(cache.Get("A").has_value());
  cache.Clear();
  CallCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_FALSE(cache.Get("A").has_value());
}

TEST(CallCacheTest, ConcurrentGetPutHammering) {
  // 8 threads hammer 32 keys under a tight budget (evictions happen
  // continuously). Correctness bar: every hit returns the payload that was
  // stored for that exact key, and shard counters never tear.
  ServiceCallCache cache(/*byte_budget=*/8192, /*num_shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int64_t> payload_mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &payload_mismatches, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        int key_id = (t * 31 + i * 17) % 32;
        std::string key = ServiceCallCache::Key("S", std::to_string(key_id), 0);
        std::string payload = "payload-" + std::to_string(key_id);
        if ((t + i) % 3 == 0) {
          cache.Put(key, MakeResponse(payload, key_id));
        } else {
          std::optional<ServiceResponse> got = cache.Get(key);
          if (got.has_value() &&
              got->tuples[0].AtomicAt(0).AsString() != payload) {
            payload_mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(payload_mismatches.load(), 0);
  int64_t expected_gets = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      if ((t + i) % 3 != 0) ++expected_gets;
    }
  }
  CallCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, expected_gets);
  EXPECT_LE(stats.bytes, 8192);
}

TEST(CallCacheTest, BytesHighWaterBoundedByBudgetAndAboveBytes) {
  ServiceCallCache cache(/*byte_budget=*/4096, /*num_shards=*/2);
  for (int i = 0; i < 200; ++i) {
    cache.Put(ServiceCallCache::Key("S", std::to_string(i), 0),
              MakeResponse("payload-" + std::to_string(i), i));
  }
  CallCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, 4096);
  EXPECT_LE(stats.bytes_high_water, 4096);
  EXPECT_GE(stats.bytes_high_water, stats.bytes);
  cache.Clear();
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes_high_water, 0);
}

TEST(CallCacheTest, PressurePastBudgetFromManyThreadsKeepsInvariants) {
  // 8 writers offer far more distinct payload bytes than the budget while a
  // sampler polls stats concurrently: the byte budget (and the high-water
  // mark derived from it) must hold at every instant, not just at the end,
  // and eviction accounting must stay consistent.
  constexpr size_t kBudget = 8192;
  ServiceCallCache cache(kBudget, /*num_shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 1500;
  std::atomic<bool> done{false};
  std::atomic<int64_t> budget_violations{0};
  std::thread sampler([&cache, &done, &budget_violations] {
    while (!done.load()) {
      CallCacheStats snapshot = cache.stats();
      if (snapshot.bytes > static_cast<int64_t>(kBudget) ||
          snapshot.bytes_high_water > static_cast<int64_t>(kBudget) ||
          snapshot.bytes < 0 || snapshot.entries < 0) {
        budget_violations.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        int key_id = (t * 131 + i * 29) % 512;
        std::string key =
            ServiceCallCache::Key("svc", std::to_string(key_id), i % 3);
        if (i % 2 == 0) {
          cache.Put(key, MakeResponse(
                             std::string(64, 'x') + std::to_string(key_id),
                             key_id));
        } else {
          (void)cache.Get(key);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  done.store(true);
  sampler.join();

  EXPECT_EQ(budget_violations.load(), 0);
  CallCacheStats stats = cache.stats();
  // Every Get was either a hit or a miss — no double counting under races.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<int64_t>(kThreads) * (kOpsPerThread / 2));
  EXPECT_GT(stats.evictions, 0);  // the offered bytes dwarf the budget
  EXPECT_LE(stats.bytes, static_cast<int64_t>(kBudget));
  EXPECT_LE(stats.bytes_high_water, static_cast<int64_t>(kBudget));
  EXPECT_GE(stats.bytes_high_water, stats.bytes);
  // 512 key ids x 3 chunks bound the distinct keys ever stored.
  EXPECT_LE(stats.entries, 512 * 3);
}

TEST(CallCacheTest, ShardStatsSumToAggregateStats) {
  ServiceCallCache cache(1 << 20, /*num_shards=*/4);
  for (int i = 0; i < 64; ++i) {
    std::string key = ServiceCallCache::Key("S", std::to_string(i), 0);
    cache.Put(key, MakeResponse("v" + std::to_string(i), 1.0));
    cache.Get(key);                                              // hit
    cache.Get(ServiceCallCache::Key("S", std::to_string(i), 9));  // miss
  }
  CallCacheStats total = cache.stats();
  std::vector<CallCacheShardStats> shards = cache.shard_stats();
  ASSERT_EQ(shards.size(), 4u);
  CallCacheShardStats sum;
  for (const CallCacheShardStats& shard : shards) {
    sum.hits += shard.hits;
    sum.misses += shard.misses;
    sum.evictions += shard.evictions;
    sum.invalidations += shard.invalidations;
    sum.entries += shard.entries;
    sum.bytes += shard.bytes;
    sum.bytes_high_water += shard.bytes_high_water;
  }
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.evictions, total.evictions);
  EXPECT_EQ(sum.invalidations, total.invalidations);
  EXPECT_EQ(sum.entries, total.entries);
  EXPECT_EQ(sum.bytes, total.bytes);
  EXPECT_EQ(sum.bytes_high_water, total.bytes_high_water);
  EXPECT_GT(sum.hits, 0);
  EXPECT_GT(sum.misses, 0);
}

TEST(CallCacheTest, GenerationBumpInvalidatesLazily) {
  ServiceCallCache cache;
  std::string key = ServiceCallCache::Key("S", "b", 0);
  cache.Put(key, MakeResponse("old", 1.0));
  ASSERT_TRUE(cache.Contains(key));
  ASSERT_TRUE(cache.Get(key).has_value());

  cache.BumpGeneration();
  EXPECT_EQ(cache.generation(), 1u);
  // The stale entry is treated as absent everywhere...
  EXPECT_FALSE(cache.Contains(key));
  EXPECT_FALSE(cache.Get(key).has_value());
  // ...and the Get reclaimed it, counted as an invalidation + miss.
  CallCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);

  // A fresh Put under the current generation serves again.
  cache.Put(key, MakeResponse("new", 2.0));
  std::optional<ServiceResponse> got = cache.Get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tuples[0].AtomicAt(0).AsString(), "new");
}

}  // namespace
}  // namespace seco
