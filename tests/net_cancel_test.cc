// Cancellation over the wire (docs/NETWORK.md, "Cancellation"): the v3
// CANCEL frame purges queued queries server-side, a client disconnect
// cancels everything it left outstanding, the backend daemon purges queued
// calls named by a kCancel, and `RemoteBackendClient::Stop` interrupts
// reconnect-backoff and reply waits promptly instead of sleeping them out.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "net/backend_server.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/remote_handler.h"
#include "net/wire.h"
#include "server/server.h"
#include "sim/fixtures.h"

namespace seco {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Harness {
  Scenario scenario;
  std::unique_ptr<QueryServer> server;
  std::unique_ptr<NetServer> net;

  QueryRequest Request(int k = 5) const {
    QueryRequest request;
    request.query_text = scenario.query_text;
    request.input_bindings = scenario.inputs;
    request.k = k;
    return request;
  }
};

Harness MakeHarness(ServerOptions options = {}, double realtime = 0.0) {
  Harness h;
  Result<Scenario> scenario = MakeMovieScenario();
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  h.scenario = scenario.value();
  if (realtime > 0.0) {
    for (auto& [name, backend] : h.scenario.backends) {
      backend->set_realtime_factor(realtime);
    }
  }
  options.ladder.enabled = false;
  h.server = std::make_unique<QueryServer>(h.scenario.registry, options);
  h.net = std::make_unique<NetServer>(h.server.get());
  EXPECT_TRUE(h.net->Start().ok());
  return h;
}

TEST(NetCancelTest, CancelFramePurgesAQueuedPipelinedQuery) {
  ServerOptions options;
  options.admission.max_in_flight = 1;
  options.runner_threads = 1;
  // ~40 real ms per query: the second submission reliably queues behind
  // the first long enough for the cancel to land.
  Harness h = MakeHarness(options, 0.02);

  Result<NetClient> client = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value().Submit(1, h.Request()).ok());
  ASSERT_TRUE(client.value().Submit(2, h.Request()).ok());
  ASSERT_TRUE(client.value().Cancel(2).ok());

  // One response per submit, in submission order — the cancel does not
  // perturb the pipeline accounting.
  Result<WireResponse> first = client.value().Receive();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().request_id, 1u);
  EXPECT_EQ(first.value().status, WireStatus::kOk);

  Result<WireResponse> second = client.value().Receive();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().request_id, 2u);
  EXPECT_EQ(second.value().status, WireStatus::kCancelled);
  Result<QueryResponse> decoded = DecodeAnswerBody(second.value().body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().outcome, ServedOutcome::kCancelled);
  EXPECT_EQ(decoded.value().status.code(), StatusCode::kCancelled);

  client.value().Goodbye();
  h.net->Stop();
  EXPECT_EQ(h.net->cancels_received(), 1);
  EXPECT_EQ(h.net->disconnect_cancels(), 0);
  EXPECT_EQ(h.server->stats().interactive.cancelled, 1);
}

TEST(NetCancelTest, CancelForUnknownIdIsHarmless) {
  Harness h = MakeHarness();
  Result<NetClient> client = NetClient::Connect("127.0.0.1", h.net->port());
  ASSERT_TRUE(client.ok());
  // Cancel for an id never submitted: dropped silently, connection intact.
  ASSERT_TRUE(client.value().Cancel(999).ok());
  Result<WireResponse> wire = client.value().Roundtrip(1, h.Request());
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire.value().status, WireStatus::kOk);
  client.value().Goodbye();
  h.net->Stop();
  EXPECT_EQ(h.net->cancels_received(), 1);
  EXPECT_EQ(h.net->protocol_errors(), 0);
}

TEST(NetCancelTest, ClientDisconnectCancelsOutstandingQueries) {
  // A client that vanishes mid-query (EOF without goodbye) must not leave
  // the query running to completion for nobody: the reader's exit cancels
  // everything the connection still had outstanding.
  Harness h = MakeHarness({}, 0.05);

  {
    Result<NetClient> client =
        NetClient::Connect("127.0.0.1", h.net->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client.value().Submit(7, h.Request(10)).ok());
    // Wait until the server has accepted the query, then vanish.
    for (int i = 0; i < 500; ++i) {
      ServerStats stats = h.server->stats();
      if (stats.interactive.submitted >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // NetClient's destructor closes the socket without a goodbye frame.
  }

  // The disconnect-cancel unwinds the query; Drain returns once it has.
  h.server->Drain();
  ServerStats stats = h.server->stats();
  EXPECT_EQ(stats.interactive.cancelled, 1);
  h.net->Stop();
  EXPECT_EQ(h.net->disconnect_cancels(), 1);
}

TEST(NetCancelTest, BackendServerPurgesQueuedCancelledCall) {
  // Raw-frame exercise of the backend daemon's pre-dispatch sweep: a
  // pipelined burst [call 1, call 2, cancel 2] behind a slow handler. The
  // purged call is answered kCancelled immediately (replies are matched by
  // call id, so the out-of-order reply is safe); call 1 computes normally.
  Result<SyntheticPair> pair = MakeSyntheticPair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  // ~50 real ms per SX call: while call 1 computes, the rest of the burst
  // is guaranteed to be sitting in the queue for the sweep to see.
  pair->x.backend->set_realtime_factor(0.5);

  BackendServer server;
  server.RegisterHandler("SX", pair->x.backend);
  ASSERT_TRUE(server.Start().ok());

  Result<Socket> conn = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  FrameDecoder decoder;
  {
    WireWriter hello;
    hello.U32(kWireMagic);
    hello.U16(kWireVersion);
    hello.U8(static_cast<uint8_t>(WireRole::kBackendClient));
    ASSERT_TRUE(
        SendFrame(&conn.value(), FrameType::kHello, hello.Take()).ok());
    Result<Frame> ack = RecvFrame(&conn.value(), &decoder);
    ASSERT_TRUE(ack.ok());
    ASSERT_EQ(ack.value().type, FrameType::kHelloAck);
  }

  std::string burst;
  for (uint64_t id = 1; id <= 2; ++id) {
    WireWriter call;
    call.U64(id);
    call.Str("SX");
    EncodeServiceRequest(ServiceRequest{}, &call);
    burst += EncodeFrame(FrameType::kCall, call.Take());
  }
  WireWriter cancel;
  cancel.U64(2);
  burst += EncodeFrame(FrameType::kCancel, cancel.Take());
  ASSERT_TRUE(conn.value().SendAll(burst).ok());

  // The purge reply for call 2 overtakes the slow call 1.
  Result<Frame> purged = RecvFrame(&conn.value(), &decoder);
  ASSERT_TRUE(purged.ok()) << purged.status().ToString();
  ASSERT_EQ(purged.value().type, FrameType::kCallReply);
  {
    WireReader r(purged.value().payload);
    EXPECT_EQ(r.U64().value(), 2u);
    EXPECT_FALSE(r.Bool().value());
    Status status = Status::OK();
    ASSERT_TRUE(DecodeStatus(&r, &status).ok());
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
  }
  Result<Frame> served = RecvFrame(&conn.value(), &decoder);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_EQ(served.value().type, FrameType::kCallReply);
  {
    WireReader r(served.value().payload);
    EXPECT_EQ(r.U64().value(), 1u);
    EXPECT_TRUE(r.Bool().value());
  }

  server.Stop();
  EXPECT_EQ(server.cancelled_purges(), 1);
  EXPECT_EQ(server.calls_served(), 1);
}

// --- RemoteBackendClient::Stop interruptibility (the satellite bugfix) -----

TEST(NetCancelTest, StopDuringReconnectBackoffReturnsFarUnderTheBackoff) {
  // Regression: the reconnect backoff used to be a raw sleep, so a client
  // being torn down sat out the full (multi-second) schedule. Stop must cut
  // it short.
  uint16_t dead_port;
  {
    Listener probe;
    ASSERT_TRUE(probe.Listen(0).ok());
    dead_port = probe.port();
    probe.Close();
  }
  RemoteBackendOptions options;
  options.wire_retries = 4;
  options.reconnect.backoff_base_ms = 5000.0;  // nominal schedule: ~20 s
  options.reconnect.backoff_cap_ms = 5000.0;
  RemoteBackendClient client("127.0.0.1", dead_port, options);

  const auto start = std::chrono::steady_clock::now();
  std::thread caller([&client] {
    Result<ServiceResponse> result = client.Call("SX", ServiceRequest{});
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.Stop();
  caller.join();
  // The first dial fails instantly, so by 100 ms the caller is deep inside
  // its first 5000 ms backoff; Stop must pull it out within milliseconds.
  EXPECT_LT(ElapsedMs(start), 2000.0);

  // After Stop, calls fail kCancelled immediately.
  Result<ServiceResponse> after = client.Call("SX", ServiceRequest{});
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
}

TEST(NetCancelTest, StopDuringReplyWaitReturnsPromptly) {
  // Handshakes fine, then never replies — with an unbounded receive
  // timeout, only Stop can end the wait.
  Listener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  std::atomic<bool> release{false};
  std::thread silent([&] {
    Result<Socket> conn = listener.Accept();
    if (!conn.ok()) return;
    FrameDecoder decoder;
    Result<Frame> hello = RecvFrame(&conn.value(), &decoder);
    if (!hello.ok()) return;
    WireWriter ack;
    ack.U16(kWireVersion);
    (void)SendFrame(&conn.value(), FrameType::kHelloAck, ack.Take());
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  RemoteBackendOptions options;
  options.timeout_ms = -1;  // block forever
  RemoteBackendClient client("127.0.0.1", listener.port(), options);
  const auto start = std::chrono::steady_clock::now();
  std::thread caller([&client] {
    Result<ServiceResponse> result = client.Call("SX", ServiceRequest{});
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.Stop();
  caller.join();
  EXPECT_LT(ElapsedMs(start), 2000.0);

  release.store(true);
  silent.join();
  listener.Close();
}

TEST(NetCancelTest, PerCallCancelTokenInterruptsTheReplyWait) {
  // The in-process engine cancel rides ServiceRequest.cancel into the
  // transport: firing it mid-wait abandons the reply (kCancelled, never
  // wire-retried) while the client object itself stays usable.
  Listener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  std::atomic<bool> release{false};
  std::thread silent([&] {
    Result<Socket> conn = listener.Accept();
    if (!conn.ok()) return;
    FrameDecoder decoder;
    Result<Frame> hello = RecvFrame(&conn.value(), &decoder);
    if (!hello.ok()) return;
    WireWriter ack;
    ack.U16(kWireVersion);
    (void)SendFrame(&conn.value(), FrameType::kHelloAck, ack.Take());
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  RemoteBackendOptions options;
  options.timeout_ms = -1;
  RemoteBackendClient client("127.0.0.1", listener.port(), options);
  auto token = std::make_shared<CancelToken>();
  ServiceRequest request;
  request.cancel = token;
  const auto start = std::chrono::steady_clock::now();
  std::thread caller([&client, &request] {
    Result<ServiceResponse> result = client.Call("SX", request);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  token->Cancel("query abandoned");
  caller.join();
  EXPECT_LT(ElapsedMs(start), 2000.0);
  EXPECT_FALSE(client.stopped());  // the client survives a per-call cancel

  release.store(true);
  silent.join();
  listener.Close();
}

}  // namespace
}  // namespace seco
