// MemoTable: lock-free probe/insert semantics, collision safety, generation
// invalidation (including 16-bit tag rollover), and a multi-threaded fuzz
// that the TSan job runs (scripts/tsan.sh).

#include "cache/memo_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace seco {
namespace {

// The integrity invariant of every test here: a probe either misses or
// returns exactly the payload that was inserted under that signature.
uint64_t PayloadFor(const Signature& sig) { return sig.lo * 31 + sig.hi; }

TEST(MemoTableTest, RoundtripAndMiss) {
  MemoTable<uint64_t> table(1 << 20);
  Signature sig{0x1234567890ABCDEFULL, 0xFEDCBA0987654321ULL};
  EXPECT_EQ(table.Probe(sig), nullptr);
  EXPECT_TRUE(table.Insert(sig, PayloadFor(sig), 1.0, 64));
  std::shared_ptr<const uint64_t> hit = table.Probe(sig);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, PayloadFor(sig));

  MemoStats stats = table.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 64);
}

TEST(MemoTableTest, ProbeResultSurvivesOverwrite) {
  MemoTable<uint64_t> table(1 << 20, /*capacity=*/8);
  Signature a{0x10, 0xA0};
  ASSERT_TRUE(table.Insert(a, PayloadFor(a), 1.0, 32));
  std::shared_ptr<const uint64_t> hit = table.Probe(a);
  ASSERT_NE(hit, nullptr);
  // Displace every slot of a's set; the aliased pointer must stay valid and
  // keep its original value (the record is immutable and refcounted).
  for (uint64_t i = 0; i < 64; ++i) {
    Signature other{0x10 + (i << 32), 0xB0 + i};
    table.Insert(other, PayloadFor(other), 100.0, 32);
  }
  EXPECT_EQ(*hit, PayloadFor(a));
}

// Two signatures landing in the same 4-way set with different hi words must
// coexist or miss — never cross-contaminate.
TEST(MemoTableTest, SameSetDistinctHi) {
  MemoTable<uint64_t> table(1 << 20, /*capacity=*/64);
  // Same low bits of lo (same set base), different hi.
  Signature a{0x40, 0x111111};
  Signature b{0x40, 0x222222};
  ASSERT_TRUE(table.Insert(a, PayloadFor(a), 1.0, 32));
  ASSERT_TRUE(table.Insert(b, PayloadFor(b), 1.0, 32));
  std::shared_ptr<const uint64_t> ha = table.Probe(a);
  std::shared_ptr<const uint64_t> hb = table.Probe(b);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(*ha, PayloadFor(a));
  EXPECT_EQ(*hb, PayloadFor(b));
}

// Full partial-hash collision: same set AND same hi, different lo. The
// check word cannot distinguish them (the insert may treat them as the same
// entry), but the full signature stored in the record must prevent a wrong
// payload from ever being returned.
TEST(MemoTableTest, PartialHashCollisionNeverWrongPayload) {
  MemoTable<uint64_t> table(1 << 20, /*capacity=*/64);
  Signature a{0x40, 0x999999};
  Signature b{0x40 + (1ULL << 40), 0x999999};  // same set, same hi
  ASSERT_TRUE(table.Insert(a, PayloadFor(a), 1.0, 32));
  table.Insert(b, PayloadFor(b), 1.0, 32);
  for (const Signature& sig : {a, b}) {
    std::shared_ptr<const uint64_t> hit = table.Probe(sig);
    if (hit) {
      EXPECT_EQ(*hit, PayloadFor(sig));
    }
  }
}

// Overfill one set (> kWays distinct signatures): evictions happen, and
// every probe still returns either nullptr or its own payload.
TEST(MemoTableTest, ReplacementIsSafeUnderSetPressure) {
  MemoTable<uint64_t> table(1 << 20, /*capacity=*/8);
  std::vector<Signature> sigs;
  for (uint64_t i = 0; i < 16; ++i) {
    // All in the same set: identical low bits, distinct upper bits.
    sigs.push_back(Signature{0x3 + (i << 32), 0x5000 + i});
  }
  for (const Signature& sig : sigs) {
    table.Insert(sig, PayloadFor(sig), static_cast<double>(sig.hi & 7), 32);
  }
  int live = 0;
  for (const Signature& sig : sigs) {
    std::shared_ptr<const uint64_t> hit = table.Probe(sig);
    if (hit) {
      EXPECT_EQ(*hit, PayloadFor(sig));
      ++live;
    }
  }
  EXPECT_GT(live, 0);
  EXPECT_LE(live, 4);  // one 4-way set can hold at most 4
}

TEST(MemoTableTest, RefreshingSameSignatureReplacesInPlace) {
  MemoTable<uint64_t> table(1 << 20);
  Signature sig{0xABCD, 0xEF12};
  ASSERT_TRUE(table.Insert(sig, 1, 1.0, 32));
  ASSERT_TRUE(table.Insert(sig, 2, 1.0, 32));
  std::shared_ptr<const uint64_t> hit = table.Probe(sig);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2u);
  MemoStats stats = table.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.replacements, 1);
}

TEST(MemoTableTest, GenerationBumpInvalidates) {
  MemoTable<uint64_t> table(1 << 20);
  Signature sig{0x77, 0x88};
  ASSERT_TRUE(table.Insert(sig, PayloadFor(sig), 1.0, 32));
  ASSERT_NE(table.Probe(sig), nullptr);
  table.BumpGeneration();
  EXPECT_EQ(table.Probe(sig), nullptr);
  EXPECT_GT(table.stats().stale_drops, 0);
  // A post-bump insert under the same signature is served again.
  ASSERT_TRUE(table.Insert(sig, 42, 1.0, 32));
  std::shared_ptr<const uint64_t> hit = table.Probe(sig);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42u);
}

// 65536 bumps wrap the 16-bit generation tag in the packed word back to the
// entry's own tag; the full 64-bit generation in the record must still
// reject the stale entry.
TEST(MemoTableTest, GenerationRolloverStaysInvalid) {
  MemoTable<uint64_t> table(1 << 20);
  Signature sig{0x7777, 0x8888};
  ASSERT_TRUE(table.Insert(sig, PayloadFor(sig), 1.0, 32));
  for (int i = 0; i < 65536; ++i) table.BumpGeneration();
  EXPECT_EQ(table.generation(), 65536u);
  EXPECT_EQ(table.Probe(sig), nullptr);
}

TEST(MemoTableTest, OversizedPayloadRejected) {
  MemoTable<uint64_t> table(/*byte_budget=*/1024);
  Signature sig{0x1, 0x2};
  EXPECT_FALSE(table.Insert(sig, 1, 1.0, /*payload_bytes=*/4096));
  EXPECT_EQ(table.Probe(sig), nullptr);
  EXPECT_EQ(table.stats().rejected, 1);
}

TEST(MemoTableTest, ByteBudgetBoundsGrowth) {
  MemoTable<uint64_t> table(/*byte_budget=*/4096, /*capacity=*/1024);
  for (uint64_t i = 0; i < 512; ++i) {
    Signature sig{Mix64(i + 1), Mix64(i + 100001)};
    table.Insert(sig, PayloadFor(sig), 1.0, 64);
  }
  // bytes is maintained with relaxed arithmetic but single-threaded here it
  // is exact: replacements keep it at or under the budget.
  EXPECT_LE(table.stats().bytes, 4096);
}

// The TSan stress: concurrent probes, inserts over a small signature
// universe (forcing set sharing and same-signature races), and a generation
// bumper. The invariant throughout: a hit's payload always matches its
// signature — torn publications must surface as misses, never as garbage.
TEST(MemoTableTest, ConcurrentFuzzIntegrity) {
  MemoTable<uint64_t> table(1 << 16, /*capacity=*/64);
  constexpr int kUniverse = 48;
  std::vector<Signature> sigs;
  for (uint64_t i = 0; i < kUniverse; ++i) {
    sigs.push_back(Signature{Mix64(i + 1), Mix64(i + 7001)});
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> verified_hits{0};
  const int kThreads = 6;
  const int kOpsPerThread = 20000;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t rng = 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        rng = Mix64(rng);
        const Signature& sig = sigs[rng % kUniverse];
        if ((rng >> 32) % 3 == 0) {
          table.Insert(sig, PayloadFor(sig), static_cast<double>(rng % 100),
                       32 + rng % 64);
        } else {
          std::shared_ptr<const uint64_t> hit = table.Probe(sig);
          if (hit) {
            // The one invariant that must hold under any interleaving.
            EXPECT_EQ(*hit, PayloadFor(sig));
            verified_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread bumper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      table.BumpGeneration();
      std::this_thread::yield();
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  bumper.join();

  MemoStats stats = table.stats();
  EXPECT_GT(stats.probes, 0);
  // Sanity: the run actually exercised publication under contention.
  EXPECT_GT(stats.inserts + stats.replacements, 0);
}

}  // namespace
}  // namespace seco
