// The drop-in-backend claim (docs/NETWORK.md): a `RemoteServiceHandler`
// calling a `BackendServer` over loopback is indistinguishable from the
// in-process handler it fronts — responses are bit-identical, handler
// errors round-trip code + message verbatim, socket failures map onto the
// structured fault statuses the reliability layer retries on, and the usual
// CachingHandler / ResilientHandler decorators compose over it unchanged.

#include "net/remote_handler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "exec/resumable.h"
#include "net/backend_server.h"
#include "net/socket.h"
#include "reliability/resilient_handler.h"
#include "sim/fault_model.h"
#include "sim/fixtures.h"

namespace seco {
namespace {

// SX/SY take no inputs, so handcrafted ServiceRequests are valid.
SyntheticPair MakePair() {
  Result<SyntheticPair> pair = MakeSyntheticPair();
  EXPECT_TRUE(pair.ok()) << pair.status().ToString();
  return pair.value();
}

void ExpectSameResponse(const ServiceResponse& got,
                        const ServiceResponse& want) {
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    EXPECT_TRUE(got.tuples[i] == want.tuples[i]) << "tuple " << i;
  }
  EXPECT_EQ(got.scores, want.scores);
  EXPECT_EQ(got.exhausted, want.exhausted);
  EXPECT_EQ(got.latency_ms, want.latency_ms);  // bit-exact over the wire
  EXPECT_EQ(got.fault_overhead_ms, want.fault_overhead_ms);
}

TEST(RemoteHandlerTest, RemoteCallsAreBitIdenticalToInProcessCalls) {
  SyntheticPair pair = MakePair();
  BackendServer server;
  server.RegisterHandler("SX", pair.x.backend);
  ASSERT_TRUE(server.Start().ok());

  auto client =
      std::make_shared<RemoteBackendClient>("127.0.0.1", server.port());
  RemoteServiceHandler remote(client, "SX");
  for (int chunk = 0; chunk < 4; ++chunk) {
    ServiceRequest request;
    request.chunk_index = chunk;
    Result<ServiceResponse> over_wire = remote.Call(request);
    Result<ServiceResponse> direct = pair.x.backend->Call(request);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    ASSERT_TRUE(direct.ok());
    ExpectSameResponse(over_wire.value(), direct.value());
  }
  EXPECT_EQ(server.calls_served(), 4);
  // Sequential calls reuse the pooled connection instead of redialing.
  EXPECT_EQ(client->connections_opened(), 1);
  server.Stop();
}

TEST(RemoteHandlerTest, HandlerFaultStatusRoundTripsVerbatim) {
  SyntheticPair pair = MakePair();
  FaultProfile outage;
  outage.permanent_outage = true;
  auto faulty =
      std::make_shared<FaultInjectingHandler>(pair.x.backend, outage);

  BackendServer server;
  server.RegisterHandler("SX", faulty);
  ASSERT_TRUE(server.Start().ok());

  ServiceRequest request;
  Result<ServiceResponse> direct = faulty->Call(request);
  ASSERT_FALSE(direct.ok());

  RemoteBackendClient client("127.0.0.1", server.port());
  Result<ServiceResponse> over_wire = client.Call("SX", request);
  ASSERT_FALSE(over_wire.ok());
  // The exact status the FaultModel emitted, code and message.
  EXPECT_EQ(over_wire.status().code(), direct.status().code());
  EXPECT_EQ(over_wire.status().message(), direct.status().message());
  server.Stop();
}

TEST(RemoteHandlerTest, UnknownInterfaceIsACleanNotFound) {
  BackendServer server;
  ASSERT_TRUE(server.Start().ok());
  RemoteBackendClient client("127.0.0.1", server.port());
  Result<ServiceResponse> result = client.Call("Nope", ServiceRequest{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // A protocol-level failure keeps the connection: the next call against a
  // registered name would reuse it rather than redial.
  Result<ServiceResponse> again = client.Call("Nope", ServiceRequest{});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(client.connections_opened(), 1);
  server.Stop();
}

// --- Socket fault mapping (satellite): refused / reset / timeout surface
// --- as the same structured statuses `FaultModel` emits, so the
// --- reliability layer retries and breaks on them identically.

TEST(RemoteHandlerTest, ConnectionRefusedMapsToUnavailable) {
  // Grab an ephemeral port, then free it: dialing it is refused.
  uint16_t dead_port;
  {
    Listener probe;
    ASSERT_TRUE(probe.Listen(0).ok());
    dead_port = probe.port();
    probe.Close();
  }
  RemoteBackendClient client("127.0.0.1", dead_port);
  Result<ServiceResponse> result = client.Call("SX", ServiceRequest{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(RemoteHandlerTest, ConnectionClosedMidCallMapsToUnavailable) {
  // A raw acceptor that completes the handshake, then slams the connection
  // shut on the first call.
  Listener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  std::thread rogue([&] {
    Result<Socket> conn = listener.Accept();
    if (!conn.ok()) return;
    FrameDecoder decoder;
    Result<Frame> hello = RecvFrame(&conn.value(), &decoder);
    if (!hello.ok()) return;
    WireWriter ack;
    ack.U16(kWireVersion);
    (void)SendFrame(&conn.value(), FrameType::kHelloAck, ack.Take());
    (void)RecvFrame(&conn.value(), &decoder);  // the call
    conn.value().Close();                      // ... and no reply
  });
  RemoteBackendClient client("127.0.0.1", listener.port());
  Result<ServiceResponse> result = client.Call("SX", ServiceRequest{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  rogue.join();
  listener.Close();
}

TEST(RemoteHandlerTest, BackendTimeoutMapsToDeadlineExceeded) {
  // Handshakes fine, then sits on the call forever; the client's receive
  // timeout must convert the silence into kDeadlineExceeded.
  Listener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  std::atomic<bool> release{false};
  std::thread slow([&] {
    Result<Socket> conn = listener.Accept();
    if (!conn.ok()) return;
    FrameDecoder decoder;
    Result<Frame> hello = RecvFrame(&conn.value(), &decoder);
    if (!hello.ok()) return;
    WireWriter ack;
    ack.U16(kWireVersion);
    (void)SendFrame(&conn.value(), FrameType::kHelloAck, ack.Take());
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  RemoteBackendOptions options;
  options.timeout_ms = 100;
  RemoteBackendClient client("127.0.0.1", listener.port(), options);
  Result<ServiceResponse> result = client.Call("SX", ServiceRequest{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  release.store(true);
  slow.join();
  listener.Close();
}

// --- Decorator composition: the remote handler slots under the same
// --- reliability / caching wrappers as any in-process handler.

TEST(RemoteHandlerTest, ResilientHandlerRetriesTransientBackendFaults) {
  SyntheticPair pair = MakePair();
  FaultProfile transient;
  transient.transient_rate = 1.0;  // every request fails...
  transient.transient_attempts = 2;  // ...its first two attempts
  auto flaky =
      std::make_shared<FaultInjectingHandler>(pair.x.backend, transient);

  BackendServer server;
  server.RegisterHandler("SX", flaky);
  ASSERT_TRUE(server.Start().ok());

  auto client =
      std::make_shared<RemoteBackendClient>("127.0.0.1", server.port());
  ReliabilityContext context;
  context.policy.retry.max_retries = 3;
  ResilientHandler resilient(
      std::make_shared<RemoteServiceHandler>(client, "SX"), "SX", context);

  ServiceRequest request;
  Result<ServiceResponse> recovered = resilient.Call(request);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The recovered value matches the clean in-process service; the retries
  // only show up as fault overhead.
  Result<ServiceResponse> clean = pair.x.backend->Call(request);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(recovered.value().tuples.size(), clean.value().tuples.size());
  EXPECT_EQ(recovered.value().scores, clean.value().scores);
  EXPECT_EQ(recovered.value().latency_ms, clean.value().latency_ms);
  EXPECT_GT(recovered.value().fault_overhead_ms, 0.0);
  server.Stop();
}

TEST(RemoteHandlerTest, CachingHandlerAbsorbsRepeatedRemoteCalls) {
  SyntheticPair pair = MakePair();
  BackendServer server;
  server.RegisterHandler("SX", pair.x.backend);
  ASSERT_TRUE(server.Start().ok());

  auto client =
      std::make_shared<RemoteBackendClient>("127.0.0.1", server.port());
  CachingHandler caching(std::make_shared<RemoteServiceHandler>(client, "SX"),
                         "SX");
  ServiceRequest request;
  Result<ServiceResponse> first = caching.Call(request);
  Result<ServiceResponse> second = caching.Call(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().tuples.size(), first.value().tuples.size());
  for (size_t i = 0; i < second.value().tuples.size(); ++i) {
    EXPECT_TRUE(second.value().tuples[i] == first.value().tuples[i]);
  }
  EXPECT_EQ(second.value().scores, first.value().scores);
  EXPECT_EQ(second.value().exhausted, first.value().exhausted);
  EXPECT_EQ(second.value().latency_ms, 0.0);  // cache hits are free
  EXPECT_EQ(caching.novel_calls(), 1);
  EXPECT_EQ(caching.cache_hits(), 1);
  EXPECT_EQ(server.calls_served(), 1);  // the wire never saw the repeat
  server.Stop();
}

TEST(RemoteHandlerTest, MakeRemoteRegistryTwinsEveryInterface) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  BackendServer server;
  server.ExposeRegistry(*scenario.value().registry);
  ASSERT_TRUE(server.Start().ok());

  Result<std::shared_ptr<ServiceRegistry>> remote = MakeRemoteRegistry(
      *scenario.value().registry, "127.0.0.1", server.port());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote.value()->interface_names(),
            scenario.value().registry->interface_names());
  EXPECT_EQ(remote.value()->mart_names(),
            scenario.value().registry->mart_names());

  // The twins share schema and access pattern with the originals — only
  // the handler moved across the wire.
  for (const std::string& name : remote.value()->interface_names()) {
    auto local_iface = scenario.value().registry->FindInterface(name);
    auto remote_iface = remote.value()->FindInterface(name);
    ASSERT_TRUE(local_iface.ok());
    ASSERT_TRUE(remote_iface.ok());
    EXPECT_EQ(remote_iface.value()->schema_ptr(),
              local_iface.value()->schema_ptr());
    EXPECT_EQ(remote_iface.value()->pattern().num_inputs(),
              local_iface.value()->pattern().num_inputs());
  }
  server.Stop();
}

}  // namespace
}  // namespace seco
