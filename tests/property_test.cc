// Cross-module property tests: completeness of join exploration, engine vs.
// reference-semantics equivalence on a whole scenario, and clock pacing.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "exec/engine.h"
#include "join/parallel_join.h"
#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "query/semantics.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

// ---- Completeness of tile processing --------------------------------------

struct CompletenessCase {
  JoinInvocation invocation;
  JoinCompletion completion;
  ScoreDecay decay_x;
};

class JoinCompletenessTest
    : public ::testing::TestWithParam<CompletenessCase> {};

TEST_P(JoinCompletenessTest, EveryMatchInProcessedTilesIsEmitted) {
  const CompletenessCase& c = GetParam();
  SyntheticPairParams params;
  params.rows_x = 80;
  params.rows_y = 80;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 7;
  params.decay_x = c.decay_x;
  params.step_h_x = 2;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));

  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = c.invocation;
  config.strategy.completion = c.completion;
  config.k = 37;  // stop mid-exploration
  config.max_calls = 60;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution exec, executor.Run());

  // Recompute every matching pair within the processed tiles; the executor
  // must have emitted each exactly once.
  std::multiset<std::string> expected, actual;
  for (const Tile& tile : exec.tile_order) {
    const Chunk& cx = x.chunk(tile.x);
    const Chunk& cy = y.chunk(tile.y);
    for (size_t i = 0; i < cx.tuples.size(); ++i) {
      for (size_t j = 0; j < cy.tuples.size(); ++j) {
        if (cx.tuples[i].AtomicAt(0).AsInt() ==
            cy.tuples[j].AtomicAt(0).AsInt()) {
          expected.insert(cx.tuples[i].AtomicAt(1).AsString() + "|" +
                          cy.tuples[j].AtomicAt(1).AsString());
        }
      }
    }
  }
  for (const JoinResultTuple& r : exec.results) {
    actual.insert(r.x.AtomicAt(1).AsString() + "|" + r.y.AtomicAt(1).AsString());
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, JoinCompletenessTest,
    ::testing::Values(
        CompletenessCase{JoinInvocation::kMergeScan, JoinCompletion::kRectangular,
                         ScoreDecay::kLinear},
        CompletenessCase{JoinInvocation::kMergeScan, JoinCompletion::kTriangular,
                         ScoreDecay::kLinear},
        CompletenessCase{JoinInvocation::kNestedLoop,
                         JoinCompletion::kRectangular, ScoreDecay::kStep},
        CompletenessCase{JoinInvocation::kNestedLoop,
                         JoinCompletion::kTriangular, ScoreDecay::kQuadratic}));

// ---- Engine vs. oracle on the full running-example scenario ---------------

TEST(ScenarioEquivalenceTest, EngineMatchesOracleOnSmallMovieScenario) {
  MovieScenarioParams params;
  params.num_movies = 24;
  params.matching_movies = 12;
  params.num_theatres = 8;
  params.movie_chunk_size = 10;
  params.theatre_chunk_size = 4;
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario(params));
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario.registry));

  // Execute with exhaustive fetching and no triangular pruning.
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.invocation = JoinInvocation::kMergeScan;
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 10;
  spec.atom_settings[1].fetch_factor = 10;
  spec.atom_settings[2].fetch_factor = 10;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());
  ExecutionOptions options;
  options.k = 1000000;
  options.truncate_to_k = false;
  options.input_bindings = scenario.inputs;
  options.max_calls = 100000;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));

  // Oracle over the raw relations (selections and joins re-evaluated from
  // scratch under the §3.1 semantics).
  OracleInput oracle_input;
  oracle_input.tuples.push_back(scenario.backends["Movie11"]->rows());
  oracle_input.tuples.push_back(scenario.backends["Theatre11"]->rows());
  oracle_input.tuples.push_back(scenario.backends["Restaurant11"]->rows());
  oracle_input.scores.resize(3);
  SECO_ASSERT_OK_AND_ASSIGN(
      std::vector<Combination> oracle,
      EvaluateOracle(query, oracle_input, scenario.inputs));

  auto key_of = [](const Combination& combo) {
    return combo.components[0].AtomicAt(0).AsString() + "|" +
           combo.components[1].AtomicAt(0).AsString() + "|" +
           combo.components[2].AtomicAt(0).AsString();
  };
  std::multiset<std::string> engine_keys, oracle_keys;
  for (const Combination& combo : result.combinations) {
    engine_keys.insert(key_of(combo));
  }
  for (const Combination& combo : oracle) {
    oracle_keys.insert(key_of(combo));
  }
  EXPECT_EQ(engine_keys, oracle_keys);
  EXPECT_FALSE(engine_keys.empty());
}

// ---- Clock pacing across ratios --------------------------------------------

class ClockRatioTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ClockRatioTest, LongRunFractionMatchesRatio) {
  auto [rx, ry] = GetParam();
  SECO_ASSERT_OK_AND_ASSIGN(Clock clock, Clock::Create({rx, ry}));
  int cycles = 30;
  int total = (rx + ry) * cycles;
  for (int i = 0; i < total; ++i) clock.NextService();
  EXPECT_EQ(clock.call_counts()[0], rx * cycles);
  EXPECT_EQ(clock.call_counts()[1], ry * cycles);
  // Smoothness: within any prefix, observed ratio deviates by < 1 call.
  SECO_ASSERT_OK_AND_ASSIGN(Clock replay, Clock::Create({rx, ry}));
  int c0 = 0, c1 = 0;
  for (int i = 1; i <= total; ++i) {
    if (replay.NextService() == 0) {
      ++c0;
    } else {
      ++c1;
    }
    double expected0 = static_cast<double>(rx) / (rx + ry) * i;
    EXPECT_NEAR(c0, expected0, 1.0 + 1e-9) << "at tick " << i;
    (void)c1;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, ClockRatioTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{3, 5}, std::pair{1, 7},
                                           std::pair{4, 3}));

}  // namespace
}  // namespace seco
