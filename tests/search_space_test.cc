#include <gtest/gtest.h>

#include "join/search_space.h"

namespace seco {
namespace {

TEST(TileTest, Adjacency) {
  Tile a{2, 3};
  EXPECT_TRUE(a.AdjacentTo(Tile{2, 4}));
  EXPECT_TRUE(a.AdjacentTo(Tile{2, 2}));
  EXPECT_TRUE(a.AdjacentTo(Tile{1, 3}));
  EXPECT_TRUE(a.AdjacentTo(Tile{3, 3}));
  EXPECT_FALSE(a.AdjacentTo(Tile{3, 4}));  // diagonal
  EXPECT_FALSE(a.AdjacentTo(a));
  EXPECT_FALSE(a.AdjacentTo(Tile{2, 5}));
}

TEST(TileTest, IndexSumAndToString) {
  Tile t{1, 4};
  EXPECT_EQ(t.IndexSum(), 5);
  EXPECT_EQ(t.ToString(), "t(1,4)");
}

TEST(SearchSpaceTest, AvailabilityFollowsFetches) {
  SearchSpace space;
  EXPECT_FALSE(space.Available(Tile{0, 0}));
  space.AddChunkX(1.0);
  EXPECT_FALSE(space.Available(Tile{0, 0}));  // no Y chunk yet
  space.AddChunkY(0.9);
  EXPECT_TRUE(space.Available(Tile{0, 0}));
  EXPECT_FALSE(space.Available(Tile{1, 0}));
  space.AddChunkX(0.8);
  EXPECT_TRUE(space.Available(Tile{1, 0}));
}

TEST(SearchSpaceTest, TileScoreIsProductOfRepresentatives) {
  SearchSpace space;
  space.AddChunkX(0.8);
  space.AddChunkY(0.5);
  EXPECT_DOUBLE_EQ(space.TileScore(Tile{0, 0}), 0.4);
}

TEST(SearchSpaceTest, FrontierExcludesExplored) {
  SearchSpace space;
  space.AddChunkX(1.0);
  space.AddChunkX(0.5);
  space.AddChunkY(1.0);
  EXPECT_EQ(space.Frontier().size(), 2u);
  space.MarkExplored(Tile{0, 0});
  std::vector<Tile> frontier = space.Frontier();
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], (Tile{1, 0}));
  EXPECT_TRUE(space.Explored(Tile{0, 0}));
  EXPECT_FALSE(space.Explored(Tile{1, 0}));
}

TEST(ExtractionOptimalityTest, DetectsOrderedSequences) {
  std::vector<double> sx{1.0, 0.8, 0.6};
  std::vector<double> sy{1.0, 0.5};
  // Scores: (0,0)=1.0 (1,0)=0.8 (2,0)=0.6 (0,1)=0.5 (1,1)=0.4 (2,1)=0.3
  std::vector<Tile> good{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}};
  EXPECT_TRUE(IsGloballyExtractionOptimal(good, sx, sy));
  std::vector<Tile> bad{{0, 0}, {0, 1}, {1, 0}};  // 0.5 then 0.8 increases
  EXPECT_FALSE(IsGloballyExtractionOptimal(bad, sx, sy));
}

TEST(ExtractionOptimalityTest, EqualScoresAllowed) {
  std::vector<double> sx{1.0, 1.0};
  std::vector<double> sy{1.0};
  std::vector<Tile> order{{0, 0}, {1, 0}};
  EXPECT_TRUE(IsGloballyExtractionOptimal(order, sx, sy));
}

TEST(ExtractionOptimalityTest, UnfetchedTileRejected) {
  std::vector<double> sx{1.0};
  std::vector<double> sy{1.0};
  std::vector<Tile> order{{1, 0}};
  EXPECT_FALSE(IsGloballyExtractionOptimal(order, sx, sy));
}

TEST(AdjacencyOrderTest, SmallerIndexSumFirst) {
  // §4.1: among adjacent tiles, the smaller index sum is extracted first.
  std::vector<Tile> good{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  EXPECT_TRUE(SatisfiesAdjacencyOrder(good));
  std::vector<Tile> bad{{1, 1}, {1, 0}};  // adjacent, sums 2 then 1
  EXPECT_FALSE(SatisfiesAdjacencyOrder(bad));
}

TEST(AdjacencyOrderTest, NonAdjacentUnconstrained) {
  std::vector<Tile> order{{2, 2}, {0, 0}};  // not adjacent: fine
  EXPECT_TRUE(SatisfiesAdjacencyOrder(order));
}

}  // namespace
}  // namespace seco
