#include <gtest/gtest.h>

#include "join/parallel_join.h"
#include "join/pipe_join.h"
#include "join/strategy_select.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

struct StrategyCase {
  JoinInvocation invocation;
  JoinCompletion completion;
};

class ParallelJoinStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(ParallelJoinStrategyTest, ProducesKResultsAndValidTrace) {
  SyntheticPairParams params;
  params.rows_x = 120;
  params.rows_y = 120;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 8;  // selectivity 1/8: plenty of matches
  params.decay_x = GetParam().invocation == JoinInvocation::kNestedLoop
                       ? ScoreDecay::kStep
                       : ScoreDecay::kLinear;
  params.step_h_x = 2;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));

  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = GetParam().invocation;
  config.strategy.completion = GetParam().completion;
  config.k = 15;
  config.max_calls = 100;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution exec, executor.Run());

  EXPECT_GE(exec.results.size(), 15u);
  EXPECT_GT(exec.calls_x, 0);
  EXPECT_GT(exec.calls_y, 0);
  EXPECT_LE(exec.calls_x + exec.calls_y, 100);
  // Every result really joins.
  for (const JoinResultTuple& r : exec.results) {
    EXPECT_EQ(r.x.AtomicAt(0).AsInt(), r.y.AtomicAt(0).AsInt());
  }
  // Tiles are never processed twice and only after both chunks fetched.
  int seen_x = 0, seen_y = 0;
  std::vector<Tile> processed;
  for (const JoinEvent& event : exec.events) {
    switch (event.kind) {
      case JoinEventKind::kFetchX:
        ++seen_x;
        break;
      case JoinEventKind::kFetchY:
        ++seen_y;
        break;
      case JoinEventKind::kProcessTile:
        EXPECT_LT(event.tile.x, seen_x);
        EXPECT_LT(event.tile.y, seen_y);
        for (const Tile& prev : processed) {
          EXPECT_FALSE(prev == event.tile);
        }
        processed.push_back(event.tile);
        break;
    }
  }
  // Parallel latency never exceeds sequential.
  EXPECT_LE(exec.latency_parallel_ms, exec.latency_sequential_ms + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ParallelJoinStrategyTest,
    ::testing::Values(
        StrategyCase{JoinInvocation::kNestedLoop, JoinCompletion::kRectangular},
        StrategyCase{JoinInvocation::kNestedLoop, JoinCompletion::kTriangular},
        StrategyCase{JoinInvocation::kMergeScan, JoinCompletion::kRectangular},
        StrategyCase{JoinInvocation::kMergeScan, JoinCompletion::kTriangular}));

TEST(ParallelJoinTest, MergeScanAlternatesPerRatio) {
  SyntheticPairParams params;
  params.key_domain = 1;  // everything joins; calls driven by k
  params.rows_x = 100;
  params.rows_y = 100;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = JoinInvocation::kMergeScan;
  config.strategy.completion = JoinCompletion::kRectangular;
  config.strategy.ratio_x = 2;
  config.strategy.ratio_y = 1;
  config.k = 1000000;  // force exploration until budget
  config.max_calls = 12;  // below exhaustion (10 chunks per side)
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution exec, executor.Run());
  // Calls should approximate the 2:1 ratio.
  EXPECT_NEAR(static_cast<double>(exec.calls_x) / exec.calls_y, 2.0, 0.7);
}

TEST(ParallelJoinTest, NestedLoopDrainsStepServiceFirst) {
  SyntheticPairParams params;
  params.decay_x = ScoreDecay::kStep;
  params.step_h_x = 3;
  params.key_domain = 1000;  // rare matches: fetch order is observable
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = JoinInvocation::kNestedLoop;
  config.strategy.completion = JoinCompletion::kRectangular;
  config.k = 50;
  config.max_calls = 12;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution exec, executor.Run());
  // After the first alternated X/Y calls, X is drained up to h=3 chunks
  // before further Y fetches.
  std::vector<JoinEventKind> fetches;
  for (const JoinEvent& e : exec.events) {
    if (e.kind != JoinEventKind::kProcessTile) fetches.push_back(e.kind);
  }
  ASSERT_GE(fetches.size(), 4u);
  EXPECT_EQ(fetches[0], JoinEventKind::kFetchX);
  EXPECT_EQ(fetches[1], JoinEventKind::kFetchY);
  EXPECT_EQ(fetches[2], JoinEventKind::kFetchX);  // draining the step
  EXPECT_EQ(fetches[3], JoinEventKind::kFetchX);
  EXPECT_EQ(exec.calls_x, 3);  // h chunks and no more
}

TEST(ParallelJoinTest, TriangularDefersBeyondDiagonal) {
  SyntheticPairParams params;
  params.key_domain = 1000;  // no matches: exploration driven by structure
  params.rows_x = 60;
  params.rows_y = 60;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));

  auto run = [&](JoinCompletion completion, int max_calls) {
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    ParallelJoinConfig config;
    config.strategy.invocation = JoinInvocation::kMergeScan;
    config.strategy.completion = completion;
    config.k = 5;
    config.max_calls = max_calls;
    ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
    return executor.Run();
  };
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution rect,
                            run(JoinCompletion::kRectangular, 8));
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution tri,
                            run(JoinCompletion::kTriangular, 8));
  // With no matches both exhaust their call budget, but triangular keeps
  // processing tiles (slack growth) so it never processes FEWER than the
  // admitted half... it must process at most the rectangular count.
  EXPECT_LE(tri.tile_order.size(), rect.tile_order.size());
  EXPECT_GT(rect.tile_order.size(), 0u);
}

TEST(ParallelJoinTest, LocalExtractionOptimalityOfProcessedOrder) {
  // §4.4: both completions are locally extraction-optimal — replay the
  // event trace and check each processed tile had the best product score
  // among available unexplored tiles at that moment.
  SyntheticPairParams params;
  params.rows_x = 80;
  params.rows_y = 80;
  params.key_domain = 4;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = JoinInvocation::kMergeScan;
  config.strategy.completion = JoinCompletion::kRectangular;
  config.k = 40;
  config.max_calls = 20;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution exec, executor.Run());

  SearchSpace replay;
  std::vector<Tile> explored;
  for (const JoinEvent& event : exec.events) {
    if (event.kind == JoinEventKind::kFetchX) {
      replay.AddChunkX(exec.space.scores_x()[event.chunk]);
    } else if (event.kind == JoinEventKind::kFetchY) {
      replay.AddChunkY(exec.space.scores_y()[event.chunk]);
    } else {
      double best = -1.0;
      for (const Tile& t : replay.Frontier()) {
        best = std::max(best, replay.TileScore(t));
      }
      EXPECT_GE(replay.TileScore(event.tile), best - 1e-9)
          << "tile " << event.tile.ToString() << " processed before better one";
      replay.MarkExplored(event.tile);
      explored.push_back(event.tile);
    }
  }
}

TEST(ParallelJoinTest, ExhaustsWhenNoMoreData) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService sx,
                            MakeKeyedSearchService("SX", 10, 5, 2));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService sy,
                            MakeKeyedSearchService("SY", 10, 5, 2));
  ChunkSource x(sx.interface, {});
  ChunkSource y(sy.interface, {});
  ParallelJoinConfig config;
  config.k = 1000000;
  config.max_calls = 100;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution exec, executor.Run());
  EXPECT_TRUE(exec.exhausted_x);
  EXPECT_TRUE(exec.exhausted_y);
  // 10 rows, chunk 5 -> 2 chunks each; all 4 tiles processed.
  EXPECT_EQ(exec.tile_order.size(), 4u);
  // Full cross check: 50 matching pairs per construction (keys cycle 0,1).
  EXPECT_EQ(exec.results.size(), 50u);
}

TEST(ParallelJoinTest, ScoresCombineWithWeights) {
  SyntheticPairParams params;
  params.key_domain = 1;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.k = 5;
  config.weight_x = 0.25;
  config.weight_y = 0.75;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution exec, executor.Run());
  for (const JoinResultTuple& r : exec.results) {
    EXPECT_NEAR(r.combined, 0.25 * r.score_x + 0.75 * r.score_y, 1e-12);
  }
}

TEST(PipeJoinTest, FetchesInnerPerOuterTuple) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService outer,
                            MakeKeyedSearchService("O", 20, 5, 4));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService inner,
      MakeKeyedSearchService("I", 40, 5, 4, ScoreDecay::kLinear,
                             /*key_is_input=*/true));
  ChunkSource outer_source(outer.interface, {});
  PipeJoinConfig config;
  config.k = 8;
  config.fetches_per_input = 1;
  SECO_ASSERT_OK_AND_ASSIGN(
      JoinExecution exec,
      RunPipeJoin(&outer_source, inner.interface,
                  [](const Tuple& t) {
                    return std::vector<Value>{t.AtomicAt(0)};
                  },
                  KeyEquals(), config));
  EXPECT_GE(exec.results.size(), 8u);
  for (const JoinResultTuple& r : exec.results) {
    EXPECT_EQ(r.x.AtomicAt(0).AsInt(), r.y.AtomicAt(0).AsInt());
  }
  // Pipe joins are sequential: parallel latency equals sequential.
  EXPECT_DOUBLE_EQ(exec.latency_parallel_ms, exec.latency_sequential_ms);
}

TEST(PipeJoinTest, KeepPerInputLimitsResults) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService outer,
                            MakeKeyedSearchService("O", 5, 5, 1));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService inner,
      MakeKeyedSearchService("I", 50, 10, 1, ScoreDecay::kLinear,
                             /*key_is_input=*/true));
  ChunkSource outer_source(outer.interface, {});
  PipeJoinConfig config;
  config.k = 100;
  config.max_calls = 50;
  config.keep_per_input = 1;
  SECO_ASSERT_OK_AND_ASSIGN(
      JoinExecution exec,
      RunPipeJoin(&outer_source, inner.interface,
                  [](const Tuple& t) {
                    return std::vector<Value>{t.AtomicAt(0)};
                  },
                  nullptr, config));
  // Exactly one inner result kept per outer tuple.
  EXPECT_EQ(exec.results.size(), 5u);
}

TEST(PipeJoinTest, RespectsCallBudget) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService outer,
                            MakeKeyedSearchService("O", 100, 5, 2));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService inner,
      MakeKeyedSearchService("I", 100, 5, 2, ScoreDecay::kLinear, true));
  ChunkSource outer_source(outer.interface, {});
  PipeJoinConfig config;
  config.k = 1000000;
  config.max_calls = 10;
  SECO_ASSERT_OK_AND_ASSIGN(
      JoinExecution exec,
      RunPipeJoin(&outer_source, inner.interface,
                  [](const Tuple& t) {
                    return std::vector<Value>{t.AtomicAt(0)};
                  },
                  KeyEquals(), config));
  EXPECT_LE(exec.calls_x + exec.calls_y, 10);
}

TEST(StrategySelectTest, StepServiceTriggersNestedLoop) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService step,
      MakeKeyedSearchService("S", 10, 5, 2, ScoreDecay::kStep));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService lin,
                            MakeKeyedSearchService("L", 10, 5, 2));
  JoinStrategy s = ChooseStrategy(*step.interface, *lin.interface);
  EXPECT_EQ(s.invocation, JoinInvocation::kNestedLoop);
  EXPECT_EQ(s.completion, JoinCompletion::kRectangular);
}

TEST(StrategySelectTest, ProgressiveServicesUseMergeScan) {
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService fast,
      MakeKeyedSearchService("F", 10, 5, 2, ScoreDecay::kLinear, false, 1,
                             /*latency_ms=*/50));
  SECO_ASSERT_OK_AND_ASSIGN(
      BuiltService slow,
      MakeKeyedSearchService("W", 10, 5, 2, ScoreDecay::kQuadratic, false, 1,
                             /*latency_ms=*/150));
  JoinStrategy s = ChooseStrategy(*fast.interface, *slow.interface);
  EXPECT_EQ(s.invocation, JoinInvocation::kMergeScan);
  EXPECT_EQ(s.completion, JoinCompletion::kTriangular);
  // Fast service (x) should be called ~3x more than slow (y).
  EXPECT_GT(static_cast<double>(s.ratio_x) / s.ratio_y, 1.5);
}

TEST(StrategySelectTest, ReduceRatioFindsSmallIntegers) {
  int a = 0, b = 0;
  ReduceRatio(3.0, 5.0, 5, &a, &b);
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 5);
  ReduceRatio(100.0, 100.0, 5, &a, &b);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  ReduceRatio(0.0, 5.0, 5, &a, &b);  // degenerate -> 1:1
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

}  // namespace
}  // namespace seco
