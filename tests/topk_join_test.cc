#include <gtest/gtest.h>

#include <algorithm>

#include "join/topk_join.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

/// Ground truth: all joinable pairs of the two full lists, best first.
std::vector<double> OracleTopScores(const BuiltService& sx,
                                    const BuiltService& sy, double wx,
                                    double wy, int k) {
  ServiceResponse all_x = std::move(sx.backend->FullScan({})).value();
  ServiceResponse all_y = std::move(sy.backend->FullScan({})).value();
  std::vector<double> combined;
  for (size_t i = 0; i < all_x.tuples.size(); ++i) {
    for (size_t j = 0; j < all_y.tuples.size(); ++j) {
      if (all_x.tuples[i].AtomicAt(0).AsInt() ==
          all_y.tuples[j].AtomicAt(0).AsInt()) {
        combined.push_back(wx * all_x.scores[i] + wy * all_y.scores[j]);
      }
    }
  }
  std::sort(combined.begin(), combined.end(), std::greater<double>());
  if (static_cast<int>(combined.size()) > k) combined.resize(k);
  return combined;
}

struct TopKCase {
  ScoreDecay decay_x;
  ScoreDecay decay_y;
  double wx;
  double wy;
  int k;
};

class TopKJoinMatchesOracleTest : public ::testing::TestWithParam<TopKCase> {};

TEST_P(TopKJoinMatchesOracleTest, ExactTopK) {
  const TopKCase& c = GetParam();
  SyntheticPairParams params;
  params.rows_x = 120;
  params.rows_y = 120;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 6;
  params.decay_x = c.decay_x;
  params.decay_y = c.decay_y;
  params.step_h_x = 2;
  params.step_h_y = 2;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));

  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  TopKJoinConfig config;
  config.k = c.k;
  config.max_calls = 200;
  config.weight_x = c.wx;
  config.weight_y = c.wy;
  TopKJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(TopKJoinExecution exec, executor.Run());

  std::vector<double> oracle =
      OracleTopScores(pair.x, pair.y, c.wx, c.wy, c.k);
  ASSERT_EQ(exec.results.size(), oracle.size());
  EXPECT_TRUE(exec.guaranteed);
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_NEAR(exec.results[i].combined, oracle[i], 1e-9)
        << "rank " << i << " differs from true top-k";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DecayAndWeights, TopKJoinMatchesOracleTest,
    ::testing::Values(
        TopKCase{ScoreDecay::kLinear, ScoreDecay::kLinear, 0.5, 0.5, 10},
        TopKCase{ScoreDecay::kLinear, ScoreDecay::kQuadratic, 0.5, 0.5, 10},
        TopKCase{ScoreDecay::kQuadratic, ScoreDecay::kQuadratic, 0.3, 0.7, 10},
        TopKCase{ScoreDecay::kStep, ScoreDecay::kLinear, 0.5, 0.5, 10},
        TopKCase{ScoreDecay::kLinear, ScoreDecay::kLinear, 0.9, 0.1, 5},
        TopKCase{ScoreDecay::kLinear, ScoreDecay::kLinear, 0.5, 0.5, 25}));

TEST(TopKJoinTest, EmitsInNonIncreasingOrder) {
  SyntheticPairParams params;
  params.key_domain = 4;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  TopKJoinConfig config;
  config.k = 30;
  config.max_calls = 300;
  TopKJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(TopKJoinExecution exec, executor.Run());
  for (size_t i = 1; i < exec.results.size(); ++i) {
    EXPECT_LE(exec.results[i].combined, exec.results[i - 1].combined + 1e-12);
  }
}

TEST(TopKJoinTest, BudgetExhaustionLosesGuaranteeButStaysSorted) {
  SyntheticPairParams params;
  params.key_domain = 100;  // sparse: k unreachable in 4 calls
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  TopKJoinConfig config;
  config.k = 50;
  config.max_calls = 4;
  TopKJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(TopKJoinExecution exec, executor.Run());
  EXPECT_FALSE(exec.guaranteed);
  EXPECT_LE(exec.calls_x + exec.calls_y, 4);
  for (size_t i = 1; i < exec.results.size(); ++i) {
    EXPECT_LE(exec.results[i].combined, exec.results[i - 1].combined + 1e-12);
  }
  // Every emitted result still clears the final threshold (sound prefix).
  for (const JoinResultTuple& r : exec.results) {
    EXPECT_GE(r.combined, exec.final_threshold - 1e-9);
  }
}

TEST(TopKJoinTest, ExhaustedSourcesDrainEverything) {
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService sx,
                            MakeKeyedSearchService("SX", 10, 5, 2));
  SECO_ASSERT_OK_AND_ASSIGN(BuiltService sy,
                            MakeKeyedSearchService("SY", 10, 5, 2));
  ChunkSource x(sx.interface, {});
  ChunkSource y(sy.interface, {});
  TopKJoinConfig config;
  config.k = 1000;
  config.max_calls = 100;
  TopKJoinExecutor executor(&x, &y, KeyEquals(), config);
  SECO_ASSERT_OK_AND_ASSIGN(TopKJoinExecution exec, executor.Run());
  EXPECT_TRUE(exec.guaranteed);
  EXPECT_EQ(exec.results.size(), 50u);  // 2 keys, 5x5 pairs each x 2
}

TEST(TopKJoinTest, BlockingCostVsApproximateMethods) {
  // The chapter's §4.1 motivation for *not* demanding top-k: producing
  // guaranteed results requires halting output. Measured here: the top-k
  // join needs at least as many calls as the extraction-optimal merge-scan
  // for the same k.
  SyntheticPairParams params;
  params.key_domain = 20;
  params.rows_x = 200;
  params.rows_y = 200;
  SECO_ASSERT_OK_AND_ASSIGN(SyntheticPair pair, MakeSyntheticPair(params));

  ChunkSource tx(pair.x.interface, {});
  ChunkSource ty(pair.y.interface, {});
  TopKJoinConfig topk_config;
  topk_config.k = 10;
  topk_config.max_calls = 300;
  TopKJoinExecutor topk(&tx, &ty, KeyEquals(), topk_config);
  SECO_ASSERT_OK_AND_ASSIGN(TopKJoinExecution guaranteed, topk.Run());

  ChunkSource ax(pair.x.interface, {});
  ChunkSource ay(pair.y.interface, {});
  ParallelJoinConfig approx_config;
  approx_config.k = 10;
  approx_config.max_calls = 300;
  ParallelJoinExecutor approx(&ax, &ay, KeyEquals(), approx_config);
  SECO_ASSERT_OK_AND_ASSIGN(JoinExecution fast, approx.Run());

  EXPECT_GE(guaranteed.calls_x + guaranteed.calls_y,
            fast.calls_x + fast.calls_y);
}

TEST(ClockTest, RespectsRatios) {
  SECO_ASSERT_OK_AND_ASSIGN(Clock clock, Clock::Create({3, 5}));
  for (int i = 0; i < 80; ++i) clock.NextService();
  // Out of 80 ticks: 30 to service 0, 50 to service 1.
  EXPECT_EQ(clock.call_counts()[0], 30);
  EXPECT_EQ(clock.call_counts()[1], 50);
}

TEST(ClockTest, SmoothInterleaving) {
  SECO_ASSERT_OK_AND_ASSIGN(Clock clock, Clock::Create({1, 1}));
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) order.push_back(clock.NextService());
  // Perfect alternation for 1:1.
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_NE(order[i], order[i - 1]);
  }
}

TEST(ClockTest, SuspendAndResume) {
  SECO_ASSERT_OK_AND_ASSIGN(Clock clock, Clock::Create({1, 1, 2}));
  clock.Suspend(1);
  for (int i = 0; i < 9; ++i) {
    EXPECT_NE(clock.NextService(), 1);
  }
  clock.Resume(1);
  bool seen1 = false;
  for (int i = 0; i < 4; ++i) {
    if (clock.NextService() == 1) seen1 = true;
  }
  EXPECT_TRUE(seen1);
  clock.Suspend(0);
  clock.Suspend(1);
  clock.Suspend(2);
  EXPECT_EQ(clock.NextService(), -1);
}

TEST(ClockTest, InvalidRatiosRejected) {
  EXPECT_FALSE(Clock::Create({}).ok());
  EXPECT_FALSE(Clock::Create({1, 0}).ok());
  EXPECT_FALSE(Clock::Create({-2}).ok());
}

TEST(ClockTest, ThreeWayRatios) {
  SECO_ASSERT_OK_AND_ASSIGN(Clock clock, Clock::Create({1, 2, 3}));
  for (int i = 0; i < 60; ++i) clock.NextService();
  EXPECT_EQ(clock.call_counts()[0], 10);
  EXPECT_EQ(clock.call_counts()[1], 20);
  EXPECT_EQ(clock.call_counts()[2], 30);
}

}  // namespace
}  // namespace seco
