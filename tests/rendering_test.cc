// Rendering regressions: plan ToString/ToDot structure and stability.

#include <gtest/gtest.h>

#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

class RenderingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Scenario> scenario = MakeMovieScenario();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::move(scenario).value();
    Result<ParsedQuery> parsed = ParseQuery(scenario_.query_text);
    ASSERT_TRUE(parsed.ok());
    Result<BoundQuery> bound = BindQuery(*parsed, *scenario_.registry);
    ASSERT_TRUE(bound.ok());
    query_ = std::move(bound).value();
  }

  Result<QueryPlan> Fig10Plan() {
    TopologySpec spec;
    spec.stages = {{0, 1}, {2}};
    spec.atom_settings[0].fetch_factor = 5;
    spec.atom_settings[1].fetch_factor = 5;
    spec.atom_settings[2].keep_per_input = 1;
    SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(query_, spec));
    SECO_RETURN_IF_ERROR(AnnotatePlan(&plan).status());
    return plan;
  }

  Scenario scenario_;
  BoundQuery query_;
};

TEST_F(RenderingTest, ToStringListsEveryNodeOnce) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, Fig10Plan());
  std::string text = plan.ToString();
  for (int id = 0; id < plan.num_nodes(); ++id) {
    std::string tag = "#" + std::to_string(id) + " ";
    size_t first = text.find("\n" + tag);
    if (id == 0) first = text.rfind(tag, 0) == 0 ? 0 : first;
    EXPECT_NE(text.find(tag), std::string::npos) << "node " << id;
  }
  EXPECT_NE(text.find("keep=1"), std::string::npos);
  EXPECT_NE(text.find("F=5"), std::string::npos);
  EXPECT_NE(text.find("Shows"), std::string::npos);
}

TEST_F(RenderingTest, DotHasOneEdgePerArc) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, Fig10Plan());
  std::string dot = plan.ToDot();
  int arcs = 0;
  for (const PlanNode& n : plan.nodes()) {
    arcs += static_cast<int>(n.outputs.size());
  }
  int edges = 0;
  size_t pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, arcs);
  // Join node is diamond-shaped, input/output circles.
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);
}

TEST_F(RenderingTest, SelectionNodeShowsResidualJoinName) {
  // A serial topology evaluates Shows as a residual predicate; the
  // rendering must name it.
  TopologySpec spec;
  spec.stages = {{0}, {1}, {2}};
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query_, spec));
  std::string text = plan.ToString();
  EXPECT_NE(text.find("SELECT"), std::string::npos);
  EXPECT_NE(text.find("Shows"), std::string::npos);
}

TEST_F(RenderingTest, RenderingIsDeterministic) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan a, Fig10Plan());
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan b, Fig10Plan());
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.ToDot(), b.ToDot());
}

}  // namespace
}  // namespace seco
