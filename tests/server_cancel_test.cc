// End-to-end cooperative cancellation through the serving stack
// (docs/SERVER.md, "Cancellation" and "Watchdog"): queued queries are
// purged without consuming a window slot, running queries unwind through
// the kCancelled path, every submission still resolves exactly once under
// cancel/complete races, a cancelled single-flight leader never wedges its
// followers, the stuck-query watchdog reaps stalled queries, and a
// neighbor's answers are untouched by a co-runner's cancellation.

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/seco.h"

namespace seco {
namespace {

ServerOptions QuietServer() {
  ServerOptions options;
  options.admission.max_in_flight = 2;
  options.ladder.enabled = false;
  return options;
}

QueryRequest CanonicalRequest(const Scenario& scenario, int k = 5) {
  QueryRequest request;
  request.query_text = scenario.query_text;
  request.input_bindings = scenario.inputs;
  request.k = k;
  return request;
}

void SlowDown(Scenario* scenario, double factor) {
  for (auto& [name, backend] : scenario->backends) {
    backend->set_realtime_factor(factor);
  }
}

void ExpectSameAnswers(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(b.combinations.size(), a.combinations.size());
  for (size_t i = 0; i < a.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.combinations[i].combined_score,
                     a.combinations[i].combined_score);
    ASSERT_EQ(b.combinations[i].components.size(),
              a.combinations[i].components.size());
    for (size_t c = 0; c < a.combinations[i].components.size(); ++c) {
      EXPECT_TRUE(b.combinations[i].components[c] ==
                  a.combinations[i].components[c]);
    }
  }
}

TEST(ServerCancelTest, QueuedQueryIsPurgedWithoutConsumingASlot) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.02);  // the holder occupies the slot ~40 real ms

  ServerOptions options = QuietServer();
  options.admission.max_in_flight = 1;
  options.runner_threads = 1;
  QueryServer server(scenario->registry, options);

  std::future<QueryResponse> holder =
      server.Submit(CanonicalRequest(*scenario));
  QueryServer::SubmittedQuery queued =
      server.SubmitWithId(CanonicalRequest(*scenario));
  ASSERT_NE(queued.id, 0u);

  EXPECT_TRUE(server.Cancel(queued.id, "client lost interest"));
  // A purged queued query resolves immediately — it does not wait for the
  // slot the holder occupies.
  ASSERT_EQ(queued.future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  QueryResponse cancelled = queued.future.get();
  EXPECT_EQ(cancelled.outcome, ServedOutcome::kCancelled);
  EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);
  EXPECT_NE(cancelled.status.message().find("client lost interest"),
            std::string::npos);
  EXPECT_EQ(cancelled.execution.total_calls, 0);

  // Cancelling a resolved (or unknown) id is a no-op.
  EXPECT_FALSE(server.Cancel(queued.id));
  EXPECT_FALSE(server.Cancel(0xDEADBEEF));

  // The purge consumed no window slot: the holder completes and a fresh
  // query still dispatches through the single slot afterwards.
  EXPECT_TRUE(holder.get().status.ok());
  QueryResponse after = server.Submit(CanonicalRequest(*scenario)).get();
  EXPECT_EQ(after.outcome, ServedOutcome::kCompleted)
      << after.status.ToString();
  server.Drain();

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.interactive.cancelled, 1);
  EXPECT_EQ(stats.interactive.completed, 2);
  EXPECT_EQ(stats.interactive.finished(), 3);
}

TEST(ServerCancelTest, RunningQueryUnwindsCooperatively) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.05);  // ~100 real ms end to end

  QueryServer server(scenario->registry, QuietServer());
  QueryServer::SubmittedQuery submitted =
      server.SubmitWithId(CanonicalRequest(*scenario, 10));
  ASSERT_NE(submitted.id, 0u);
  // Give the runner a moment to dispatch, then cancel mid-run.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  server.Cancel(submitted.id, "abandoned mid-run");

  QueryResponse response = submitted.future.get();
  EXPECT_EQ(response.outcome, ServedOutcome::kCancelled)
      << ServedOutcomeToString(response.outcome);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  server.Drain();
  EXPECT_EQ(server.stats().interactive.cancelled, 1);
}

TEST(ServerCancelTest, CancelledStreamingQueryUnwindsAndLeaksNothing) {
  // The streaming engine owns the most teardown-sensitive state — prefetch
  // jobs in flight, partially filled chunk buffers, the speculation
  // interrupt link. Cancel it mid-run, then prove the server still serves:
  // under scripts/asan.sh this is the "cancelled streaming queries leak
  // nothing" check.
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.05);

  ServerOptions options = QuietServer();
  options.prefetch_depth = 2;  // keep speculative fetch jobs in flight
  QueryServer server(scenario->registry, options);

  QueryRequest request = CanonicalRequest(*scenario, 10);
  request.streaming = true;
  QueryServer::SubmittedQuery submitted = server.SubmitWithId(request);
  ASSERT_NE(submitted.id, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  server.Cancel(submitted.id, "stream abandoned mid-run");

  QueryResponse response = submitted.future.get();
  EXPECT_EQ(response.outcome, ServedOutcome::kCancelled)
      << ServedOutcomeToString(response.outcome);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);

  // The pool, caches, and breaker registry survived the teardown: a fresh
  // streaming run of the same query completes normally.
  QueryRequest again = CanonicalRequest(*scenario, 10);
  again.streaming = true;
  QueryResponse after = server.Submit(again).get();
  EXPECT_EQ(after.outcome, ServedOutcome::kCompleted)
      << after.status.ToString();
  EXPECT_EQ(static_cast<int>(after.streaming.combinations.size()), 10);
  server.Drain();
  EXPECT_EQ(server.stats().interactive.cancelled, 1);
}

TEST(ServerCancelTest, CancelCompleteRaceResolvesEveryQueryExactlyOnce) {
  // Fuzz the cancel-vs-complete race: fast queries cancelled from another
  // thread at staggered offsets. Whatever each race's outcome, every future
  // resolves exactly once and the ledger accounts for every submission.
  // (Run under TSan this is the data-race leg.)
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());

  ServerOptions options = QuietServer();
  options.admission.max_in_flight = 4;
  options.admission.interactive.queue_capacity = 64;
  QueryServer server(scenario->registry, options);

  constexpr int kQueries = 32;
  std::vector<QueryServer::SubmittedQuery> submitted;
  submitted.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    submitted.push_back(
        server.SubmitWithId(CanonicalRequest(*scenario, 3 + i % 4)));
  }
  std::thread canceller([&server, &submitted] {
    for (size_t i = 0; i < submitted.size(); ++i) {
      if (submitted[i].id == 0) continue;
      // No pacing: hammer the race window from cold to already-resolved.
      (void)server.Cancel(submitted[i].id, "race fuzz");
      if (i % 8 == 7) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  int cancelled = 0, completed = 0;
  for (QueryServer::SubmittedQuery& query : submitted) {
    ASSERT_EQ(query.future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    QueryResponse response = query.future.get();
    if (response.outcome == ServedOutcome::kCancelled) {
      ++cancelled;
      EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
    } else {
      ++completed;
      EXPECT_EQ(response.outcome, ServedOutcome::kCompleted)
          << response.status.ToString();
    }
  }
  canceller.join();
  server.Drain();

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.interactive.submitted, kQueries);
  EXPECT_EQ(stats.interactive.finished(), kQueries);
  EXPECT_EQ(stats.interactive.cancelled, cancelled);
  EXPECT_EQ(stats.interactive.completed, completed);
  EXPECT_EQ(cancelled + completed, kQueries);
}

TEST(ServerCancelTest, CancelledSingleFlightLeaderReleasesFollowers) {
  // The leader of a single-flight group is cancelled mid-execution. The
  // followers must not inherit its fate (their clients did not cancel) and
  // must not wedge waiting for an answer that will never be published —
  // they execute independently and complete.
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.05);

  ServerOptions options = QuietServer();
  options.admission.max_in_flight = 8;
  options.answer_cache = true;
  QueryServer server(scenario->registry, options);

  QueryServer::SubmittedQuery leader =
      server.SubmitWithId(CanonicalRequest(*scenario));
  ASSERT_NE(leader.id, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));

  std::vector<std::future<QueryResponse>> followers;
  for (int i = 0; i < 3; ++i) {
    followers.push_back(server.Submit(CanonicalRequest(*scenario)));
  }
  server.Cancel(leader.id, "leader abandoned");

  QueryResponse leader_response = leader.future.get();
  // The leader itself may have beaten the cancel; either way it resolved.
  EXPECT_TRUE(leader_response.outcome == ServedOutcome::kCancelled ||
              leader_response.outcome == ServedOutcome::kCompleted);

  for (std::future<QueryResponse>& follower : followers) {
    ASSERT_EQ(follower.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    QueryResponse response = follower.get();
    EXPECT_EQ(response.outcome, ServedOutcome::kCompleted)
        << response.status.ToString();
    EXPECT_EQ(response.execution.combinations.size(), 5u);
  }
  server.Drain();

  // A cancelled leader's partial work never poisons the answer cache: a
  // fresh submission gets a complete answer.
  QueryResponse after = server.Submit(CanonicalRequest(*scenario)).get();
  EXPECT_EQ(after.outcome, ServedOutcome::kCompleted);
  EXPECT_EQ(after.execution.combinations.size(), 5u);
}

TEST(ServerCancelTest, WatchdogReapsStalledQuery) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  // Full realtime: the first backend call alone sleeps ~140 real ms with no
  // heartbeat in between — a stall far past the grace window below.
  SlowDown(&*scenario, 1.0);

  ServerOptions options = QuietServer();
  options.watchdog.stall_grace_ms = 40.0;
  options.watchdog.scan_interval_ms = 10.0;
  QueryServer server(scenario->registry, options);

  QueryResponse response = server.Submit(CanonicalRequest(*scenario)).get();
  EXPECT_EQ(response.outcome, ServedOutcome::kCancelled)
      << ServedOutcomeToString(response.outcome) << ": "
      << response.status.ToString();
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_NE(response.status.message().find("watchdog"), std::string::npos);
  server.Drain();

  WatchdogStats stats = server.watchdog_stats();
  EXPECT_GE(stats.tracked, 1);
  EXPECT_GE(stats.scans, 1);
  EXPECT_GE(stats.reaped, 1);
  EXPECT_EQ(server.stats().interactive.cancelled, 1);
}

TEST(ServerCancelTest, WatchdogLeavesHealthyQueriesAlone) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  // Simulated time only: calls complete (and heartbeat) as fast as the CPU
  // allows, so progress never stalls.
  ServerOptions options = QuietServer();
  options.watchdog.stall_grace_ms = 200.0;
  options.watchdog.scan_interval_ms = 10.0;
  QueryServer server(scenario->registry, options);

  for (int i = 0; i < 4; ++i) {
    QueryResponse response =
        server.Submit(CanonicalRequest(*scenario)).get();
    EXPECT_EQ(response.outcome, ServedOutcome::kCompleted)
        << response.status.ToString();
  }
  server.Drain();
  EXPECT_EQ(server.watchdog_stats().reaped, 0);
  EXPECT_EQ(server.stats().interactive.cancelled, 0);
}

TEST(ServerCancelTest, NeighborAnswersUntouchedByCoRunnerCancellation) {
  // Determinism under cancellation: query A's answers must be identical
  // whether its co-runner B is cancelled mid-run or left to finish.
  Result<Scenario> reference_scenario = MakeMovieScenario();
  ASSERT_TRUE(reference_scenario.ok());
  QueryServer reference(reference_scenario->registry, QuietServer());
  QueryResponse solo =
      reference.Submit(CanonicalRequest(*reference_scenario, 10)).get();
  ASSERT_EQ(solo.outcome, ServedOutcome::kCompleted);

  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.02);
  QueryServer server(scenario->registry, QuietServer());

  // B differs from A (different k) and is cancelled while both are in
  // flight on the two-slot window.
  QueryServer::SubmittedQuery b =
      server.SubmitWithId(CanonicalRequest(*scenario, 7));
  std::future<QueryResponse> a =
      server.Submit(CanonicalRequest(*scenario, 10));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Cancel(b.id, "co-runner abandoned");
  (void)b.future.get();

  QueryResponse concurrent = a.get();
  ASSERT_EQ(concurrent.outcome, ServedOutcome::kCompleted)
      << concurrent.status.ToString();
  ExpectSameAnswers(solo.execution, concurrent.execution);
  server.Drain();
}

TEST(ServerCancelTest, LoadGeneratorAbandonmentCancelsThroughTheServer) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.02);  // queries live long enough to be abandoned

  ServerOptions options = QuietServer();
  options.admission.max_in_flight = 2;
  options.admission.interactive.queue_capacity = 32;
  options.admission.batch.queue_capacity = 32;
  QueryServer server(scenario->registry, options);

  LoadProfile profile;
  profile.num_queries = 16;
  profile.closed_loop_width = 0;
  profile.mean_interarrival_ms = 0.0;
  profile.abandon_fraction = 1.0;
  profile.abandon_after_ms = 1.0;
  LoadGenerator generator(profile, scenario->query_text, scenario->inputs);
  LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
  server.Drain();

  ASSERT_EQ(report.responses.size(), 16u);
  // Back-to-back submissions against a two-slot window with a 1 ms abandon
  // timer: the queued tail is reliably cancelled.
  EXPECT_GT(report.CountOutcome(ServedOutcome::kCancelled), 0);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.interactive.finished() + stats.batch.finished(), 16);
}

TEST(ServerCancelTest, AbandonStreamLeavesScheduleOtherwiseIdentical) {
  // Flipping abandon_fraction draws from its own seed stream: every other
  // request property of the schedule must stay bit-identical.
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  LoadProfile off;
  off.num_queries = 32;
  LoadProfile on = off;
  on.abandon_fraction = 0.5;
  on.abandon_after_ms = 2.0;

  LoadGenerator gen_off(off, scenario->query_text, scenario->inputs);
  LoadGenerator gen_on(on, scenario->query_text, scenario->inputs);
  std::vector<LoadItem> a = gen_off.Schedule();
  std::vector<LoadItem> b = gen_on.Schedule();
  ASSERT_EQ(a.size(), b.size());
  bool any_abandoned = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].request.priority, b[i].request.priority);
    EXPECT_EQ(a[i].request.k, b[i].request.k);
    EXPECT_EQ(a[i].request.max_calls, b[i].request.max_calls);
    EXPECT_FALSE(a[i].abandon);
    any_abandoned = any_abandoned || b[i].abandon;
  }
  EXPECT_TRUE(any_abandoned);
}

}  // namespace
}  // namespace seco
