// Determinism contract of the concurrent execution layer
// (docs/CONCURRENCY.md): an `ExecutionEngine` with `num_threads = 8` must
// produce byte-identical results, counters, and simulated timings to the
// sequential engine — thread interleaving may change only the real wall
// clock. Exercised on the Fig. 10 running example (pipe topology) and the
// conference scenario (parallel-join branches).

#include <gtest/gtest.h>

#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

ExecutionOptions BaseOptions(const Scenario& scenario, int num_threads) {
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = scenario.inputs;
  options.num_threads = num_threads;
  options.collect_trace = true;
  return options;
}

void ExpectIdentical(const ExecutionResult& sequential,
                     const ExecutionResult& threaded) {
  EXPECT_EQ(threaded.total_calls, sequential.total_calls);
  EXPECT_DOUBLE_EQ(threaded.elapsed_ms, sequential.elapsed_ms);
  EXPECT_DOUBLE_EQ(threaded.total_latency_ms, sequential.total_latency_ms);
  EXPECT_EQ(threaded.total_combinations_produced,
            sequential.total_combinations_produced);
  EXPECT_EQ(threaded.cache_hits, sequential.cache_hits);
  EXPECT_EQ(threaded.cache_misses, sequential.cache_misses);

  ASSERT_EQ(threaded.combinations.size(), sequential.combinations.size());
  for (size_t i = 0; i < sequential.combinations.size(); ++i) {
    const Combination& a = sequential.combinations[i];
    const Combination& b = threaded.combinations[i];
    EXPECT_DOUBLE_EQ(b.combined_score, a.combined_score);
    ASSERT_EQ(b.components.size(), a.components.size());
    for (size_t c = 0; c < a.components.size(); ++c) {
      EXPECT_TRUE(b.components[c] == a.components[c]);
      EXPECT_DOUBLE_EQ(b.component_scores[c], a.component_scores[c]);
    }
  }

  ASSERT_EQ(threaded.node_stats.size(), sequential.node_stats.size());
  for (const auto& [node_id, stats] : sequential.node_stats) {
    auto it = threaded.node_stats.find(node_id);
    ASSERT_NE(it, threaded.node_stats.end());
    EXPECT_EQ(it->second.calls, stats.calls);
    EXPECT_EQ(it->second.tuples_out, stats.tuples_out);
    EXPECT_EQ(it->second.cache_hits, stats.cache_hits);
    EXPECT_DOUBLE_EQ(it->second.latency_ms, stats.latency_ms);
    EXPECT_DOUBLE_EQ(it->second.finished_at_ms, stats.finished_at_ms);
  }

  // The chronological call log is part of the contract: collection by task
  // index must reproduce the sequential fetch order event for event.
  ASSERT_EQ(threaded.trace.size(), sequential.trace.size());
  for (size_t i = 0; i < sequential.trace.size(); ++i) {
    EXPECT_EQ(threaded.trace[i].node, sequential.trace[i].node);
    EXPECT_EQ(threaded.trace[i].service, sequential.trace[i].service);
    EXPECT_EQ(threaded.trace[i].binding_key, sequential.trace[i].binding_key);
    EXPECT_EQ(threaded.trace[i].chunk_index, sequential.trace[i].chunk_index);
    EXPECT_DOUBLE_EQ(threaded.trace[i].latency_ms,
                     sequential.trace[i].latency_ms);
  }
}

TEST(ConcurrencyDeterminismTest, Fig10RunningExampleEightThreads) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(scenario.registry, optimizer_options);
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult optimized,
                            session.Optimize(bound));

  ExecutionEngine sequential_engine(BaseOptions(scenario, 1));
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult sequential,
                            sequential_engine.Execute(optimized.plan));
  ExecutionEngine threaded_engine(BaseOptions(scenario, 8));
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult threaded,
                            threaded_engine.Execute(optimized.plan));
  EXPECT_FALSE(sequential.combinations.empty());
  ExpectIdentical(sequential, threaded);
}

TEST(ConcurrencyDeterminismTest, ConferenceParallelBranchesEightThreads) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeConferenceScenario());
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  optimizer_options.topology_heuristic = TopologyHeuristic::kParallelIsBetter;
  QuerySession session(scenario.registry, optimizer_options);
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult optimized,
                            session.Optimize(bound));

  ExecutionEngine sequential_engine(BaseOptions(scenario, 1));
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult sequential,
                            sequential_engine.Execute(optimized.plan));
  ExecutionEngine threaded_engine(BaseOptions(scenario, 8));
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult threaded,
                            threaded_engine.Execute(optimized.plan));
  EXPECT_FALSE(sequential.combinations.empty());
  ExpectIdentical(sequential, threaded);
}

TEST(ConcurrencyDeterminismTest, RepeatedExecutionIsStableUnderThreads) {
  // Back-to-back threaded runs see identical simulated latencies: the
  // latency model keys jitter off the request identity, never off shared
  // RNG state that interleaving could reorder.
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  QuerySession session(scenario.registry, OptimizerOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult optimized,
                            session.Optimize(bound));
  ExecutionEngine first(BaseOptions(scenario, 4));
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult a, first.Execute(optimized.plan));
  ExecutionEngine second(BaseOptions(scenario, 4));
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult b, second.Execute(optimized.plan));
  ExpectIdentical(a, b);
}

TEST(ConcurrencyDeterminismTest, SharedCacheMakesSecondRunWarm) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  QuerySession session(scenario.registry, OptimizerOptions{});
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery bound,
                            session.Prepare(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(OptimizationResult optimized,
                            session.Optimize(bound));

  ServiceCallCache cache;
  ExecutionOptions options = BaseOptions(scenario, 2);
  options.cache = &cache;
  ExecutionEngine cold_engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult cold,
                            cold_engine.Execute(optimized.plan));
  EXPECT_GT(cold.total_calls, 0);
  EXPECT_EQ(cold.cache_hits, 0);

  ExecutionEngine warm_engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult warm,
                            warm_engine.Execute(optimized.plan));
  // Every request-response of the repeat run is served from the cache.
  EXPECT_EQ(warm.total_calls, 0);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.cache_hits, cold.cache_hits + cold.cache_misses);
  // Answers are unchanged; only the simulated time collapses.
  ASSERT_EQ(warm.combinations.size(), cold.combinations.size());
  for (size_t i = 0; i < cold.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm.combinations[i].combined_score,
                     cold.combinations[i].combined_score);
  }
  EXPECT_DOUBLE_EQ(warm.total_latency_ms, 0.0);
}

}  // namespace
}  // namespace seco
