#include <gtest/gtest.h>

#include "query/parser.h"

namespace seco {
namespace {

TEST(ParserTest, MinimalQuery) {
  Result<ParsedQuery> q = ParseQuery("select S where S.A = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->atoms.size(), 1u);
  EXPECT_EQ(q->atoms[0].service_name, "S");
  EXPECT_EQ(q->atoms[0].alias, "S");  // defaults to service name
  ASSERT_EQ(q->predicates.size(), 1u);
  EXPECT_EQ(q->predicates[0].lhs.alias, "S");
  EXPECT_EQ(q->predicates[0].lhs.path, "A");
  EXPECT_EQ(q->predicates[0].op, Comparator::kEq);
  EXPECT_EQ(std::get<Value>(q->predicates[0].rhs).AsInt(), 1);
}

TEST(ParserTest, AliasesAndMultipleAtoms) {
  Result<ParsedQuery> q =
      ParseQuery("select Movie11 as M, Theatre11 as T where M.Title = T.Name");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->atoms.size(), 2u);
  EXPECT_EQ(q->atoms[0].alias, "M");
  EXPECT_EQ(q->atoms[1].alias, "T");
  const AttrRef& rhs = std::get<AttrRef>(q->predicates[0].rhs);
  EXPECT_EQ(rhs.alias, "T");
  EXPECT_EQ(rhs.path, "Name");
}

TEST(ParserTest, ConnectionPatternUse) {
  Result<ParsedQuery> q = ParseQuery(
      "select M as A, T as B where Shows(A, B) and A.X = 'v'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->connections.size(), 1u);
  EXPECT_EQ(q->connections[0].pattern_name, "Shows");
  EXPECT_EQ(q->connections[0].from_alias, "A");
  EXPECT_EQ(q->connections[0].to_alias, "B");
  EXPECT_EQ(q->predicates.size(), 1u);
}

TEST(ParserTest, SubAttributePaths) {
  Result<ParsedQuery> q =
      ParseQuery("select M where M.Genres.Genre = 'action'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates[0].lhs.path, "Genres.Genre");
}

TEST(ParserTest, InputVariables) {
  Result<ParsedQuery> q = ParseQuery("select M where M.A = INPUT1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(std::get<InputVarRef>(q->predicates[0].rhs).name, "INPUT1");
}

TEST(ParserTest, AllComparators) {
  Result<ParsedQuery> q = ParseQuery(
      "select M where M.A = 1 and M.B != 2 and M.C < 3 and M.D <= 4 and "
      "M.E > 5 and M.F >= 6 and M.G like 'x%'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->predicates.size(), 7u);
  EXPECT_EQ(q->predicates[0].op, Comparator::kEq);
  EXPECT_EQ(q->predicates[1].op, Comparator::kNe);
  EXPECT_EQ(q->predicates[2].op, Comparator::kLt);
  EXPECT_EQ(q->predicates[3].op, Comparator::kLe);
  EXPECT_EQ(q->predicates[4].op, Comparator::kGt);
  EXPECT_EQ(q->predicates[5].op, Comparator::kGe);
  EXPECT_EQ(q->predicates[6].op, Comparator::kLike);
}

TEST(ParserTest, Literals) {
  Result<ParsedQuery> q = ParseQuery(
      "select M where M.A = -5 and M.B = 2.75 and M.C = 'sq' and M.D = \"dq\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(std::get<Value>(q->predicates[0].rhs).AsInt(), -5);
  EXPECT_DOUBLE_EQ(std::get<Value>(q->predicates[1].rhs).AsDouble(), 2.75);
  EXPECT_EQ(std::get<Value>(q->predicates[2].rhs).AsString(), "sq");
  EXPECT_EQ(std::get<Value>(q->predicates[3].rhs).AsString(), "dq");
}

TEST(ParserTest, RankByWeights) {
  Result<ParsedQuery> q = ParseQuery(
      "select A, B, C where A.X = 1 rank by (0.3, 0.5, 0.2)");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->ranking_weights.size(), 3u);
  EXPECT_DOUBLE_EQ(q->ranking_weights[0], 0.3);
  EXPECT_DOUBLE_EQ(q->ranking_weights[1], 0.5);
  EXPECT_DOUBLE_EQ(q->ranking_weights[2], 0.2);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  Result<ParsedQuery> q =
      ParseQuery("SELECT a AS x WHERE x.F = 1 RANK BY (1.0)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms[0].alias, "x");
}

TEST(ParserTest, RunningExampleParses) {
  Result<ParsedQuery> q = ParseQuery(
      "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
      "where Shows(M, T) and DinnerPlace(T, R) "
      "and M.Genres.Genre = INPUT1 and M.Openings.Country = INPUT2 "
      "and M.Openings.Date > INPUT3 "
      "and T.UAddress = INPUT4 and T.UCity = INPUT5 and T.UCountry = INPUT2 "
      "and R.Category.Name = INPUT6 "
      "rank by (0.3, 0.5, 0.2)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms.size(), 3u);
  EXPECT_EQ(q->connections.size(), 2u);
  EXPECT_EQ(q->predicates.size(), 7u);
}

struct BadQuery {
  const char* text;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrorTest, Rejected) {
  Result<ParsedQuery> q = ParseQuery(GetParam().text);
  EXPECT_FALSE(q.ok()) << GetParam().why;
  if (!q.ok()) {
    EXPECT_EQ(q.status().code(), StatusCode::kParseError) << GetParam().why;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Errors, ParserErrorTest,
    ::testing::Values(
        BadQuery{"", "empty"},
        BadQuery{"where S.A = 1", "missing select"},
        BadQuery{"select S", "missing where"},
        BadQuery{"select S where", "missing condition"},
        BadQuery{"select S where S.A", "missing operator"},
        BadQuery{"select S where S.A =", "missing operand"},
        BadQuery{"select S where A = 1", "bare attr without alias"},
        BadQuery{"select S, S where S.A = 1", "duplicate alias"},
        BadQuery{"select S where S.A = 'unterminated", "unterminated string"},
        BadQuery{"select S where S.A = 1 rank by 0.5", "weights need parens"},
        BadQuery{"select A, B where A.X = 1 rank by (0.5)",
                 "weight count mismatch"},
        BadQuery{"select S where S.A = 1 garbage", "trailing input"},
        BadQuery{"select S where S.A ! 1", "stray bang"},
        BadQuery{"select S where S.A = 1 and", "dangling and"},
        BadQuery{"select S where Shows(A)", "connection arity"}));

}  // namespace
}  // namespace seco
