#ifndef SECO_TESTS_TEST_UTIL_H_
#define SECO_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/service_builder.h"

namespace seco {
namespace testing_util {

/// ASSERT on a non-OK Result and unwrap it.
#define SECO_ASSERT_OK(expr)                                        \
  do {                                                              \
    auto _st = (expr);                                              \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                        \
  } while (false)

#define SECO_ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto SECO_ASSIGN_OR_RETURN_NAME(_tmp_, __LINE__) = (rexpr);       \
  ASSERT_TRUE(SECO_ASSIGN_OR_RETURN_NAME(_tmp_, __LINE__).ok())     \
      << SECO_ASSIGN_OR_RETURN_NAME(_tmp_, __LINE__).status().ToString(); \
  lhs = std::move(SECO_ASSIGN_OR_RETURN_NAME(_tmp_, __LINE__)).value()

/// Builds a simple ranked search service over {Key:int, Val:string,
/// Relevance:double(R)} with `rows` tuples whose keys cycle through
/// [0, key_domain). Quality (and score order) decreases with row index.
inline Result<BuiltService> MakeKeyedSearchService(
    const std::string& name, int rows, int chunk_size, int key_domain,
    ScoreDecay decay = ScoreDecay::kLinear, bool key_is_input = false,
    int step_h = 1, double latency_ms = 100.0) {
  SimServiceBuilder builder(name);
  builder
      .Schema({AttributeDef::Atomic("Key", ValueType::kInt),
               AttributeDef::Atomic("Val", ValueType::kString),
               AttributeDef::Atomic("Relevance", ValueType::kDouble)})
      .Pattern({{"Key", key_is_input ? Adornment::kInput : Adornment::kOutput},
                {"Val", Adornment::kOutput},
                {"Relevance", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch)
      .Seed(1234);
  ServiceStats stats;
  stats.chunk_size = chunk_size;
  stats.latency_ms = latency_ms;
  stats.decay = decay;
  stats.step_h = step_h;
  stats.avg_matches_per_binding =
      key_is_input ? static_cast<double>(rows) / key_domain : rows;
  builder.Stats(stats);
  for (int i = 0; i < rows; ++i) {
    double quality = 1.0 - static_cast<double>(i) / rows;
    builder.AddRow(Tuple({Value(static_cast<int64_t>(i % key_domain)),
                          Value(name + "#" + std::to_string(i)),
                          Value(quality)}),
                   quality);
  }
  return builder.Build();
}

}  // namespace testing_util
}  // namespace seco

#endif  // SECO_TESTS_TEST_UTIL_H_
