#include <gtest/gtest.h>

#include "service/schema.h"
#include "service/tuple.h"

namespace seco {
namespace {

ServiceSchema MovieSchema() {
  return ServiceSchema(
      "Movie", {AttributeDef::Atomic("Title", ValueType::kString),
                AttributeDef::Atomic("Year", ValueType::kInt),
                AttributeDef::RepeatingGroup(
                    "Openings", {{"Country", ValueType::kString},
                                 {"Date", ValueType::kString}})});
}

TEST(SchemaTest, ResolveAtomic) {
  ServiceSchema schema = MovieSchema();
  Result<AttrPath> p = schema.Resolve("Title");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attr_index, 0);
  EXPECT_EQ(p->sub_index, -1);
  EXPECT_FALSE(p->is_sub_attribute());
}

TEST(SchemaTest, ResolveSubAttribute) {
  ServiceSchema schema = MovieSchema();
  Result<AttrPath> p = schema.Resolve("Openings.Date");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attr_index, 2);
  EXPECT_EQ(p->sub_index, 1);
  EXPECT_TRUE(p->is_sub_attribute());
}

TEST(SchemaTest, ResolveErrors) {
  ServiceSchema schema = MovieSchema();
  EXPECT_EQ(schema.Resolve("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(schema.Resolve("Openings").status().code(),
            StatusCode::kInvalidArgument);  // group without sub-attribute
  EXPECT_EQ(schema.Resolve("Title.Sub").status().code(),
            StatusCode::kInvalidArgument);  // atomic with sub-attribute
  EXPECT_EQ(schema.Resolve("Openings.Nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.Resolve("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.Resolve("a.b.c").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, TypeAt) {
  ServiceSchema schema = MovieSchema();
  EXPECT_EQ(schema.TypeAt(*schema.Resolve("Year")), ValueType::kInt);
  EXPECT_EQ(schema.TypeAt(*schema.Resolve("Openings.Country")),
            ValueType::kString);
}

TEST(SchemaTest, PathToStringRoundTrip) {
  ServiceSchema schema = MovieSchema();
  for (const char* name : {"Title", "Year", "Openings.Country", "Openings.Date"}) {
    Result<AttrPath> p = schema.Resolve(name);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(schema.PathToString(*p), name);
  }
}

Tuple MakeMovieTuple() {
  RepeatingGroupValue openings;
  openings.push_back({Value("Italy"), Value("2009-06-01")});
  openings.push_back({Value("USA"), Value("2009-03-15")});
  return Tuple({Value("Up"), Value(2009), openings});
}

TEST(TupleTest, AtomicAccess) {
  Tuple t = MakeMovieTuple();
  EXPECT_TRUE(t.IsAtomic(0));
  EXPECT_EQ(t.AtomicAt(0).AsString(), "Up");
  EXPECT_FALSE(t.IsAtomic(2));
  EXPECT_EQ(t.GroupAt(2).size(), 2u);
}

TEST(TupleTest, CandidateValuesAtomicPath) {
  Tuple t = MakeMovieTuple();
  std::vector<Value> vals = t.CandidateValuesAt(AttrPath{0, -1});
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0].AsString(), "Up");
}

TEST(TupleTest, CandidateValuesGroupPath) {
  Tuple t = MakeMovieTuple();
  std::vector<Value> countries = t.CandidateValuesAt(AttrPath{2, 0});
  ASSERT_EQ(countries.size(), 2u);
  EXPECT_EQ(countries[0].AsString(), "Italy");
  EXPECT_EQ(countries[1].AsString(), "USA");
}

TEST(TupleTest, CandidateValuesEmptyGroup) {
  Tuple t(std::vector<TupleSlot>{Value("x"), RepeatingGroupValue{}});
  EXPECT_TRUE(t.CandidateValuesAt(AttrPath{1, 0}).empty());
}

TEST(TupleTest, EqualityIsStructural) {
  EXPECT_TRUE(MakeMovieTuple() == MakeMovieTuple());
  Tuple other = MakeMovieTuple();
  other.slot(0) = Value("Down");
  EXPECT_FALSE(MakeMovieTuple() == other);
}

TEST(TupleTest, ToStringRendersGroups) {
  ServiceSchema schema = MovieSchema();
  std::string s = MakeMovieTuple().ToString(schema);
  EXPECT_NE(s.find("Title:'Up'"), std::string::npos);
  EXPECT_NE(s.find("Openings:[<'Italy','2009-06-01'>"), std::string::npos);
}

TEST(TupleTest, AppendGrowsSlots) {
  Tuple t;
  EXPECT_EQ(t.num_slots(), 0);
  t.Append(Value(1));
  t.Append(RepeatingGroupValue{{Value("a")}});
  EXPECT_EQ(t.num_slots(), 2);
  EXPECT_TRUE(t.IsAtomic(0));
  EXPECT_FALSE(t.IsAtomic(1));
}

}  // namespace
}  // namespace seco
