#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

namespace seco {
namespace {

TEST(ThreadPoolTest, ResultsCollectedByTaskIndex) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  // Futures are read in submission order: completion order is irrelevant.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> boom =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  std::future<int> fine = pool.Submit([] { return 7; });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // A throwing task must not poison the pool.
  EXPECT_EQ(fine.get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    pool.Shutdown();
    EXPECT_EQ(ran.load(), 32);
  }
  EXPECT_EQ(ran.load(), 32);  // destructor after Shutdown is a no-op
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::future<int> future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SleepingTasksOverlapOnTheWallClock) {
  // 8 tasks x 50 ms with 4 workers: sequential execution would take 400 ms,
  // two overlapped waves take ~100 ms. The generous bound keeps the test
  // robust on loaded machines while still proving real overlap.
  ThreadPool pool(4);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); }));
  }
  for (auto& future : futures) future.get();
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_LT(elapsed_ms, 320.0);
  EXPECT_GE(elapsed_ms, 95.0);  // two waves cannot beat ~100 ms
}

TEST(ThreadPoolTest, ThreadCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([] { return 3; }).get(), 3);
}

// The `completed()` counter bumps just after a task's future becomes ready,
// so assertions on it wait for the counter to catch up.
void AwaitCompleted(const ThreadPool& pool, int64_t expected) {
  while (pool.completed() < expected) std::this_thread::yield();
}

TEST(ThreadPoolTest, QueueDepthAndCountersTrackSubmissions) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  std::future<void> blocker = pool.Submit([&started, opened] {
    started.set_value();
    opened.wait();
  });
  started.get_future().wait();  // the lone worker is now pinned

  std::future<void> a = pool.Submit([] {});
  std::future<void> b = pool.Submit([] {});
  EXPECT_EQ(pool.queue_depth(), 2);
  EXPECT_EQ(pool.submitted(), 3);
  EXPECT_EQ(pool.completed(), 0);

  gate.set_value();
  blocker.get();
  a.get();
  b.get();
  AwaitCompleted(pool, 3);
  EXPECT_EQ(pool.queue_depth(), 0);
  EXPECT_EQ(pool.submitted(), 3);
  EXPECT_EQ(pool.completed(), 3);
}

TEST(ThreadPoolTest, CountersIncludePostShutdownInlineTasks) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
  EXPECT_EQ(pool.queue_depth(), 0);
  EXPECT_EQ(pool.submitted(), 1);
  EXPECT_EQ(pool.completed(), 1);
}

// Regression: a task that shuts the pool down and then submits more work
// from inside a worker used to be able to deadlock if the inline-execution
// path ran the task while holding the pool mutex. The inline path must run
// lock-free, and a worker-side Shutdown must not join itself.
TEST(ThreadPoolTest, SubmitFromWorkerDuringShutdownDoesNotDeadlock) {
  std::atomic<int> inline_ran{0};
  {
    ThreadPool pool(2);
    pool.Submit([&pool, &inline_ran] {
        pool.Shutdown();  // joins the sibling, skips the calling worker
        // stopping_ is set: both submissions take the inline path, on a
        // worker thread, nested one inside the other.
        pool.Submit([&pool, &inline_ran] {
              inline_ran.fetch_add(1);
              pool.Submit([&inline_ran] { inline_ran.fetch_add(1); }).get();
            })
            .get();
      })
        .get();
  }  // destructor performs the final self-join
  EXPECT_EQ(inline_ran.load(), 2);
}

}  // namespace
}  // namespace seco
