#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

namespace seco {
namespace {

TEST(ThreadPoolTest, ResultsCollectedByTaskIndex) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  // Futures are read in submission order: completion order is irrelevant.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> boom =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  std::future<int> fine = pool.Submit([] { return 7; });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // A throwing task must not poison the pool.
  EXPECT_EQ(fine.get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    pool.Shutdown();
    EXPECT_EQ(ran.load(), 32);
  }
  EXPECT_EQ(ran.load(), 32);  // destructor after Shutdown is a no-op
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::future<int> future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SleepingTasksOverlapOnTheWallClock) {
  // 8 tasks x 50 ms with 4 workers: sequential execution would take 400 ms,
  // two overlapped waves take ~100 ms. The generous bound keeps the test
  // robust on loaded machines while still proving real overlap.
  ThreadPool pool(4);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); }));
  }
  for (auto& future : futures) future.get();
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_LT(elapsed_ms, 320.0);
  EXPECT_GE(elapsed_ms, 95.0);  // two waves cannot beat ~100 ms
}

TEST(ThreadPoolTest, ThreadCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([] { return 3; }).get(), 3);
}

}  // namespace
}  // namespace seco
