#include <gtest/gtest.h>

#include "query/semantics.h"
#include "tests/test_util.h"

namespace seco {
namespace {

// The §3.1 example: services S1, S2 over a repeating group R with
// sub-attributes A (int) and B (string).
//   S1: t1 = ({<1,x>,<2,x>}),  t2 = ({<2,x>,<1,y>})
//   S2: t3 = ({<1,x>,<2,y>}),  t4 = ({<2,x>})

std::shared_ptr<ServiceSchema> GroupSchema(const std::string& name) {
  return std::make_shared<ServiceSchema>(
      name, std::vector<AttributeDef>{AttributeDef::RepeatingGroup(
                "R", {{"A", ValueType::kInt}, {"B", ValueType::kString}})});
}

Tuple GroupTuple(std::vector<std::pair<int, std::string>> instances) {
  RepeatingGroupValue group;
  for (auto& [a, b] : instances) {
    group.push_back({Value(a), Value(b)});
  }
  return Tuple({group});
}

BoundAtom MakeAtom(const std::string& alias) {
  BoundAtom atom;
  atom.alias = alias;
  atom.schema = GroupSchema(alias);
  return atom;
}

const AttrPath kPathA{0, 0};
const AttrPath kPathB{0, 1};

Tuple T1() { return GroupTuple({{1, "x"}, {2, "x"}}); }
Tuple T2() { return GroupTuple({{2, "x"}, {1, "y"}}); }
Tuple T3() { return GroupTuple({{1, "x"}, {2, "y"}}); }
Tuple T4() { return GroupTuple({{2, "x"}}); }

TEST(SemanticsTest, PaperQ1SelectionSingleInstanceRule) {
  // Q1: select S1 where S1.R.A=1 and S1.R.B=x  ==>  {t1}.
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.selections.push_back({0, kPathA, Comparator::kEq, Value(1), "", 0.1});
  q.selections.push_back({0, kPathB, Comparator::kEq, Value("x"), "", 0.1});

  OracleInput input;
  input.tuples = {{T1(), T2()}};
  input.scores = {{1.0, 0.9}};

  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> result,
                            EvaluateOracle(q, input, {}));
  // t1 qualifies: instance <1,x> satisfies both predicates.
  // t2 does NOT: <2,x> fails A=1; <1,y> fails B=x (no single instance works).
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].components[0] == T1());
}

TEST(SemanticsTest, PaperQ2JoinSingleInstanceRule) {
  // Q2: select S1, S2 where S1.R.A=S2.R.A and S1.R.B=S2.R.B
  //     ==> {t1*t3, t1*t4, t2*t4}.
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.atoms.push_back(MakeAtom("S2"));
  BoundJoinGroup group;
  group.clauses.push_back({0, kPathA, Comparator::kEq, 1, kPathA});
  group.clauses.push_back({0, kPathB, Comparator::kEq, 1, kPathB});
  group.selectivity = 0.5;
  q.joins.push_back(group);

  OracleInput input;
  input.tuples = {{T1(), T2()}, {T3(), T4()}};
  input.scores = {{1.0, 0.9}, {1.0, 0.9}};

  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> result,
                            EvaluateOracle(q, input, {}));
  ASSERT_EQ(result.size(), 3u);
  auto contains = [&](const Tuple& s1, const Tuple& s2) {
    for (const Combination& combo : result) {
      if (combo.components[0] == s1 && combo.components[1] == s2) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(T1(), T3()));  // shared instance <1,x>
  EXPECT_TRUE(contains(T1(), T4()));  // shared instance <2,x>
  EXPECT_TRUE(contains(T2(), T4()));  // shared instance <2,x>
  // t2*t3 excluded: A and B only match in *different* instances.
  EXPECT_FALSE(contains(T2(), T3()));
}

TEST(SemanticsTest, EmptyGroupExcludesCombination) {
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.selections.push_back({0, kPathA, Comparator::kEq, Value(1), "", 0.1});
  OracleInput input;
  input.tuples = {{GroupTuple({})}};  // empty repeating group
  input.scores = {{1.0}};
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> result,
                            EvaluateOracle(q, input, {}));
  EXPECT_TRUE(result.empty());
}

TEST(SemanticsTest, InputVariableResolution) {
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.selections.push_back({0, kPathA, Comparator::kEq, Value(), "INPUT1", 0.1});
  OracleInput input;
  input.tuples = {{T1(), T2()}};
  input.scores = {{1.0, 0.9}};
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> result,
                            EvaluateOracle(q, input, {{"INPUT1", Value(1)}}));
  EXPECT_EQ(result.size(), 2u);  // both tuples have an instance with A=1... t2 has <1,y> yes
  Result<std::vector<Combination>> missing = EvaluateOracle(q, input, {});
  EXPECT_FALSE(missing.ok());
}

TEST(SemanticsTest, RankingOrderAndTopK) {
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.explicit_weights = {1.0};
  OracleInput input;
  input.tuples = {{T1(), T2(), T3(), T4()}};
  input.scores = {{0.3, 0.9, 0.1, 0.5}};
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> all,
                            EvaluateOracle(q, input, {}));
  ASSERT_EQ(all.size(), 4u);
  EXPECT_DOUBLE_EQ(all[0].combined_score, 0.9);
  EXPECT_DOUBLE_EQ(all[3].combined_score, 0.1);
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> top2,
                            EvaluateOracle(q, input, {}, 2));
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_DOUBLE_EQ(top2[1].combined_score, 0.5);
}

TEST(SemanticsTest, WeightsCombineScores) {
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.atoms.push_back(MakeAtom("S2"));
  q.explicit_weights = {0.3, 0.7};
  OracleInput input;
  input.tuples = {{T1()}, {T4()}};
  input.scores = {{0.5}, {1.0}};
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> result,
                            EvaluateOracle(q, input, {}));
  ASSERT_EQ(result.size(), 1u);  // cross product, no predicates
  EXPECT_NEAR(result[0].combined_score, 0.3 * 0.5 + 0.7 * 1.0, 1e-12);
}

TEST(SemanticsTest, SatisfiesSelectionsJointInstance) {
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.selections.push_back({0, kPathA, Comparator::kEq, Value(1), "", 0.1});
  q.selections.push_back({0, kPathB, Comparator::kEq, Value("x"), "", 0.1});
  SECO_ASSERT_OK_AND_ASSIGN(bool t1_ok, SatisfiesSelections(q, 0, T1(), {}));
  EXPECT_TRUE(t1_ok);
  SECO_ASSERT_OK_AND_ASSIGN(bool t2_ok, SatisfiesSelections(q, 0, T2(), {}));
  EXPECT_FALSE(t2_ok);  // needs a single shared instance
}

TEST(SemanticsTest, SatisfiesJoinGroupSharedInstance) {
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.atoms.push_back(MakeAtom("S2"));
  BoundJoinGroup group;
  group.clauses.push_back({0, kPathA, Comparator::kEq, 1, kPathA});
  group.clauses.push_back({0, kPathB, Comparator::kEq, 1, kPathB});
  q.joins.push_back(group);
  SECO_ASSERT_OK_AND_ASSIGN(bool t2t3,
                            SatisfiesJoinGroup(q, q.joins[0], T2(), T3()));
  EXPECT_FALSE(t2t3);
  SECO_ASSERT_OK_AND_ASSIGN(bool t2t4,
                            SatisfiesJoinGroup(q, q.joins[0], T2(), T4()));
  EXPECT_TRUE(t2t4);
}

TEST(SemanticsTest, GlobalInstanceSharedBetweenSelectionAndJoin) {
  // A selection and a join over the SAME group of S1 must share the chosen
  // instance in the oracle's global semantics.
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  q.atoms.push_back(MakeAtom("S2"));
  q.selections.push_back({0, kPathB, Comparator::kEq, Value("y"), "", 0.1});
  BoundJoinGroup group;
  group.clauses.push_back({0, kPathA, Comparator::kEq, 1, kPathA});
  q.joins.push_back(group);

  OracleInput input;
  // S1 = t2 = {<2,x>,<1,y>}: the selection B=y forces instance <1,y>, so the
  // join can only use A=1.
  input.tuples = {{T2()}, {GroupTuple({{2, "q"}}), GroupTuple({{1, "q"}})}};
  input.scores = {{1.0}, {1.0, 0.9}};
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> result,
                            EvaluateOracle(q, input, {}));
  ASSERT_EQ(result.size(), 1u);
  // Partner must be the A=1 tuple, not A=2.
  EXPECT_EQ(result[0].components[1].GroupAt(0)[0][0].AsInt(), 1);
}

TEST(SemanticsTest, AtomCountMismatchRejected) {
  BoundQuery q;
  q.atoms.push_back(MakeAtom("S1"));
  OracleInput input;  // no tuple lists
  Result<std::vector<Combination>> r = EvaluateOracle(q, input, {});
  EXPECT_FALSE(r.ok());
}

TEST(SemanticsTest, AtomicAttributesNeedNoMapping) {
  auto schema = std::make_shared<ServiceSchema>(
      "P", std::vector<AttributeDef>{AttributeDef::Atomic("K", ValueType::kInt)});
  BoundAtom atom;
  atom.alias = "P";
  atom.schema = schema;
  BoundQuery q;
  q.atoms.push_back(atom);
  q.selections.push_back({0, AttrPath{0, -1}, Comparator::kGe, Value(5), "", 0.3});
  OracleInput input;
  input.tuples = {{Tuple({Value(7)}), Tuple({Value(3)})}};
  input.scores = {{1.0, 0.9}};
  SECO_ASSERT_OK_AND_ASSIGN(std::vector<Combination> result,
                            EvaluateOracle(q, input, {}));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].components[0].AtomicAt(0).AsInt(), 7);
}

}  // namespace
}  // namespace seco
