// Unit tests of the reliability layer (docs/RELIABILITY.md): deterministic
// backoff, circuit breaking, the attempt-level call budget, and the
// ResilientHandler decorator's retry / deadline / short-circuit behavior —
// plus the retry-storm budget regression at the engine level.

#include <gtest/gtest.h>

#include <cmath>

#include "core/seco.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

// --- RetryPolicy ----------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy retry;
  retry.backoff_base_ms = 50.0;
  retry.backoff_multiplier = 2.0;
  retry.backoff_cap_ms = 300.0;
  retry.jitter_fraction = 0.0;  // isolate the nominal curve
  EXPECT_DOUBLE_EQ(retry.BackoffMs(7, 0), 50.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(7, 1), 100.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(7, 2), 200.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(7, 3), 300.0);  // capped
  EXPECT_DOUBLE_EQ(retry.BackoffMs(7, 9), 300.0);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy retry;
  retry.backoff_base_ms = 100.0;
  retry.jitter_fraction = 0.25;
  for (uint64_t ordinal : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      double a = retry.BackoffMs(ordinal, attempt);
      double b = retry.BackoffMs(ordinal, attempt);
      EXPECT_DOUBLE_EQ(a, b);  // pure function of (ordinal, attempt)
      double nominal = std::min(100.0 * std::pow(2.0, attempt), 2000.0);
      EXPECT_GE(a, nominal * 0.75);
      EXPECT_LE(a, nominal * 1.25);
    }
  }
  // Different ordinals draw different jitter (not a shared RNG stream, but
  // also not degenerate).
  EXPECT_NE(retry.BackoffMs(1, 0), retry.BackoffMs(2, 0));
}

TEST(RetryPolicyTest, BackoffBaseAboveCapIsClampedToCap) {
  // A misconfigured base larger than the cap must still yield the capped,
  // deterministic value — for every attempt, including the first.
  RetryPolicy retry;
  retry.backoff_base_ms = 5000.0;
  retry.backoff_cap_ms = 300.0;
  retry.jitter_fraction = 0.0;
  for (int attempt : {0, 1, 5, 50}) {
    EXPECT_DOUBLE_EQ(retry.BackoffMs(3, attempt), 300.0);
  }
}

TEST(RetryPolicyTest, ZeroJitterIsExactNominalCurve) {
  RetryPolicy retry;
  retry.backoff_base_ms = 40.0;
  retry.backoff_multiplier = 3.0;
  retry.backoff_cap_ms = 1000.0;
  retry.jitter_fraction = 0.0;
  // With jitter off, the (ordinal, attempt) hash must not leak into the
  // result: every ordinal sees the identical nominal curve.
  for (uint64_t ordinal : {0ULL, 9ULL, 0xFFFFFFFFFFULL}) {
    EXPECT_DOUBLE_EQ(retry.BackoffMs(ordinal, 0), 40.0);
    EXPECT_DOUBLE_EQ(retry.BackoffMs(ordinal, 1), 120.0);
    EXPECT_DOUBLE_EQ(retry.BackoffMs(ordinal, 2), 360.0);
    EXPECT_DOUBLE_EQ(retry.BackoffMs(ordinal, 3), 1000.0);  // capped
  }
}

TEST(RetryPolicyTest, UnitMultiplierNeverGrowsAndStaysCapped) {
  RetryPolicy retry;
  retry.backoff_base_ms = 75.0;
  retry.backoff_multiplier = 1.0;  // constant backoff; the loop must
  retry.backoff_cap_ms = 2000.0;   // terminate despite never reaching cap
  retry.jitter_fraction = 0.0;
  for (int attempt : {0, 1, 7, 100}) {
    EXPECT_DOUBLE_EQ(retry.BackoffMs(11, attempt), 75.0);
  }
  // Constant backoff above the cap clamps like any other.
  retry.backoff_base_ms = 4000.0;
  EXPECT_DOUBLE_EQ(retry.BackoffMs(11, 0), 2000.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(11, 64), 2000.0);
}

// --- CircuitBreaker -------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndProbes) {
  CircuitBreaker breaker(/*failure_threshold=*/3, /*probe_interval=*/4);
  EXPECT_TRUE(breaker.AllowCall());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.open());
  // While open, every 4th denied call goes through as a probe.
  int allowed = 0;
  for (int i = 0; i < 8; ++i) {
    if (breaker.AllowCall()) ++allowed;
  }
  EXPECT_EQ(allowed, 2);
  // A successful probe closes the breaker.
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.open());
  EXPECT_TRUE(breaker.AllowCall());
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureRun) {
  CircuitBreaker breaker(/*failure_threshold=*/2, /*probe_interval=*/8);
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.open());  // never two in a row
}

// --- CallBudget -----------------------------------------------------------

TEST(CallBudgetTest, ClaimsUpToMaxThenRefuses) {
  CallBudget budget(3);
  EXPECT_TRUE(budget.TryClaim());
  EXPECT_TRUE(budget.TryClaim());
  EXPECT_TRUE(budget.TryClaim());
  EXPECT_FALSE(budget.TryClaim());
  EXPECT_EQ(budget.used(), 3);
}

TEST(CallBudgetTest, NegativeMaxIsUnlimited) {
  CallBudget budget(-1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(budget.TryClaim());
  EXPECT_EQ(budget.used(), 100);
}

// --- ResilientHandler -----------------------------------------------------

class ResilientHandlerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<BuiltService> built =
        MakeKeyedSearchService("Svc", 20, 5, 4, ScoreDecay::kLinear);
    ASSERT_TRUE(built.ok());
    service_ = std::move(built).value();
  }

  ReliabilityContext Context(const ReliabilityPolicy& policy) {
    ReliabilityContext ctx;
    ctx.policy = policy;
    ctx.budget = &budget_;
    ctx.ledger = &ledger_;
    ctx.breakers = &breakers_;
    return ctx;
  }

  BuiltService service_;
  CallBudget budget_{-1};
  ReliabilityLedger ledger_;
  CircuitBreakerRegistry breakers_{2, 4};
};

TEST_F(ResilientHandlerTest, RetriesRecoverTheIdenticalResponse) {
  ServiceRequest request;
  request.chunk_index = 0;
  // Fault-free reference response for this request identity.
  Result<ServiceResponse> clean = service_.backend->Call(request);
  ASSERT_TRUE(clean.ok());

  FaultProfile profile;
  profile.transient_rate = 1.0;  // every request stricken
  profile.transient_attempts = 2;
  profile.seed = 5;
  service_.backend->set_fault_profile(profile);

  ReliabilityPolicy policy;
  policy.retry.max_retries = 3;
  ResilientHandler handler(service_.backend, "Svc", Context(policy));
  Result<ServiceResponse> recovered = handler.Call(request);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // The recovered response is bit-identical to the fault-free one: same
  // tuples, same simulated latency. Only fault_overhead_ms differs.
  EXPECT_EQ(recovered.value().tuples.size(), clean.value().tuples.size());
  EXPECT_DOUBLE_EQ(recovered.value().latency_ms, clean.value().latency_ms);
  uint64_t ordinal = RequestOrdinal(request);
  EXPECT_DOUBLE_EQ(
      recovered.value().fault_overhead_ms,
      policy.retry.BackoffMs(ordinal, 0) + policy.retry.BackoffMs(ordinal, 1));

  ReliabilityStats stats = ledger_.Snapshot();
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.transient_failures, 2);
  EXPECT_EQ(stats.permanent_failures, 0);
}

TEST_F(ResilientHandlerTest, ExhaustedRetriesReturnTheFaultStatus) {
  FaultProfile profile;
  profile.transient_rate = 1.0;
  profile.transient_attempts = 5;  // outlasts the retry budget
  service_.backend->set_fault_profile(profile);

  ReliabilityPolicy policy;
  policy.retry.max_retries = 2;
  ResilientHandler handler(service_.backend, "Svc", Context(policy));
  ServiceRequest request;
  Result<ServiceResponse> result = handler.Call(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ledger_.Snapshot().permanent_failures, 1);
}

TEST_F(ResilientHandlerTest, BudgetExhaustionIsNeverRetried) {
  FaultProfile profile;
  profile.transient_rate = 1.0;
  profile.transient_attempts = 3;
  service_.backend->set_fault_profile(profile);

  CallBudget tight(1);
  ReliabilityPolicy policy;
  policy.retry.max_retries = 5;
  ReliabilityContext ctx = Context(policy);
  ctx.budget = &tight;
  ResilientHandler handler(service_.backend, "Svc", std::move(ctx));
  Result<ServiceResponse> result = handler.Call(ServiceRequest{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ledger_.Snapshot().attempts, 1);  // the storm stopped cold
}

TEST_F(ResilientHandlerTest, CallDeadlineConvertsSlowResponses) {
  ReliabilityPolicy policy;
  policy.retry.max_retries = 1;
  policy.call_deadline_ms = 1.0;  // far below the ~100ms simulated latency
  ResilientHandler handler(service_.backend, "Svc", Context(policy));
  Result<ServiceResponse> result = handler.Call(ServiceRequest{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  ReliabilityStats stats = ledger_.Snapshot();
  EXPECT_EQ(stats.deadline_hits, 2);  // latency keys on identity, not attempt
  EXPECT_EQ(stats.attempts, 2);
}

TEST_F(ResilientHandlerTest, OpenBreakerShortCircuits) {
  FaultProfile profile;
  profile.permanent_outage = true;
  service_.backend->set_fault_profile(profile);

  ReliabilityPolicy policy;
  policy.breaker_failure_threshold = 2;
  policy.breaker_probe_interval = 4;
  ResilientHandler handler(service_.backend, "Svc", Context(policy));
  for (int i = 0; i < 10; ++i) {
    Result<ServiceResponse> result = handler.Call(ServiceRequest{});
    EXPECT_FALSE(result.ok());
  }
  ReliabilityStats stats = ledger_.Snapshot();
  EXPECT_GT(stats.breaker_short_circuits, 0);
  // Short-circuited calls never reach the backend: 10 logical calls but
  // strictly fewer real attempts.
  EXPECT_LT(static_cast<int>(service_.backend->call_count()), 10);
  EXPECT_EQ(breakers_.OpenBreakers(), std::vector<std::string>{"Svc"});
}

TEST_F(ResilientHandlerTest, HedgedCallStillReturnsTheIdenticalResponse) {
  ServiceRequest request;
  Result<ServiceResponse> clean = service_.backend->Call(request);
  ASSERT_TRUE(clean.ok());

  ThreadPool pool(2);
  ReliabilityPolicy policy;
  policy.hedge_delay_ms = 0.0;  // hedge aggressively
  ReliabilityContext ctx = Context(policy);
  ctx.hedge_pool = &pool;
  ResilientHandler handler(service_.backend, "Svc", std::move(ctx));
  for (int i = 0; i < 5; ++i) {
    Result<ServiceResponse> hedged = handler.Call(request);
    ASSERT_TRUE(hedged.ok()) << hedged.status().ToString();
    // Whoever wins the race, the response value is a pure function of the
    // request identity.
    EXPECT_DOUBLE_EQ(hedged.value().latency_ms, clean.value().latency_ms);
    EXPECT_EQ(hedged.value().tuples.size(), clean.value().tuples.size());
  }
}

// --- Retry-storm budget regression (attempt-level accounting) -------------

class RetryStormTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ServiceRegistry>();
    Result<BuiltService> built =
        MakeKeyedSearchService("Outer", 40, 5, 4, ScoreDecay::kLinear);
    ASSERT_TRUE(built.ok());
    service_ = std::move(built).value();
    ASSERT_TRUE(registry_->RegisterInterface(service_.interface).ok());
  }

  Result<QueryPlan> MakePlan() {
    SECO_ASSIGN_OR_RETURN(ParsedQuery parsed,
                          ParseQuery("select Outer as O where O.Key >= 0"));
    SECO_ASSIGN_OR_RETURN(BoundQuery query, BindQuery(parsed, *registry_));
    TopologySpec spec;
    spec.stages = {{0}};
    spec.atom_settings[0].fetch_factor = 8;
    SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(query, spec));
    SECO_RETURN_IF_ERROR(AnnotatePlan(&plan).status());
    return plan;
  }

  BuiltService service_;
  std::shared_ptr<ServiceRegistry> registry_;
};

TEST_F(RetryStormTest, EveryAttemptCountsAgainstMaxCalls) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  FaultProfile profile;
  profile.permanent_outage = true;  // every attempt fails: maximal storm
  service_.backend->set_fault_profile(profile);

  ExecutionOptions options;
  options.k = 10;
  options.max_calls = 5;
  options.reliability.retry.max_retries = 100;
  ExecutionEngine engine(options);
  Result<ExecutionResult> result = engine.Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The invariant: real requests == claimed attempts <= max_calls. Without
  // attempt-level budgeting the storm would have sent ~100 requests.
  EXPECT_LE(static_cast<int>(service_.backend->call_count()), 5);
}

TEST_F(RetryStormTest, RealCallsEqualChargedPlusFailedAttempts) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  FaultProfile profile;
  profile.transient_rate = 0.5;
  profile.transient_attempts = 2;
  profile.seed = 17;
  service_.backend->set_fault_profile(profile);

  ExecutionOptions options;
  options.k = 10;
  options.max_calls = 10000;
  options.reliability.retry.max_retries = 3;
  ExecutionEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult result, engine.Execute(plan));
  EXPECT_FALSE(result.combinations.empty());
  // PR-2 invariant, extended by reliability: every real request is either a
  // charged (successful) call or a failed attempt.
  EXPECT_EQ(static_cast<int64_t>(service_.backend->call_count()),
            result.total_calls + result.reliability.transient_failures);
  EXPECT_GT(result.reliability.retries, 0);
}

}  // namespace
}  // namespace seco
