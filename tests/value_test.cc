#include <gtest/gtest.h>

#include "service/value.h"

namespace seco {
namespace {

TEST(ValueTest, TypesAreReported) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
}

TEST(ValueTest, NullChecks) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_FALSE(Value(1).is_null());
}

TEST(ValueTest, AsDoubleCoercesInt) {
  EXPECT_DOUBLE_EQ(Value(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.25).AsDouble(), 7.25);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(ValueTest, TypeCompatibility) {
  EXPECT_TRUE(Value(1).TypeCompatibleWith(Value(2.0)));
  EXPECT_TRUE(Value("a").TypeCompatibleWith(Value("b")));
  EXPECT_FALSE(Value(1).TypeCompatibleWith(Value("1")));
  EXPECT_FALSE(Value(true).TypeCompatibleWith(Value(1)));
}

struct CompareCase {
  Value lhs;
  Comparator op;
  Value rhs;
  bool expected;
};

class ValueCompareTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(ValueCompareTest, Evaluates) {
  const CompareCase& c = GetParam();
  Result<bool> r = c.lhs.Compare(c.op, c.rhs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, c.expected)
      << c.lhs.ToString() << " " << ComparatorToString(c.op) << " "
      << c.rhs.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Numeric, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value(1), Comparator::kEq, Value(1), true},
        CompareCase{Value(1), Comparator::kEq, Value(2), false},
        CompareCase{Value(1), Comparator::kNe, Value(2), true},
        CompareCase{Value(1), Comparator::kLt, Value(2), true},
        CompareCase{Value(2), Comparator::kLe, Value(2), true},
        CompareCase{Value(3), Comparator::kGt, Value(2), true},
        CompareCase{Value(2), Comparator::kGe, Value(3), false},
        // Cross int/double comparisons coerce.
        CompareCase{Value(2), Comparator::kEq, Value(2.0), true},
        CompareCase{Value(2.5), Comparator::kGt, Value(2), true},
        CompareCase{Value(-1), Comparator::kLt, Value(0.5), true}));

INSTANTIATE_TEST_SUITE_P(
    Strings, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value("abc"), Comparator::kEq, Value("abc"), true},
        CompareCase{Value("abc"), Comparator::kLt, Value("abd"), true},
        CompareCase{Value("b"), Comparator::kGe, Value("a"), true},
        CompareCase{Value("2009-05-02"), Comparator::kGt, Value("2009-05-01"),
                    true},
        CompareCase{Value("hello"), Comparator::kLike, Value("he%"), true},
        CompareCase{Value("hello"), Comparator::kLike, Value("x%"), false}));

INSTANTIATE_TEST_SUITE_P(
    Nulls, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value(), Comparator::kEq, Value(), true},
        CompareCase{Value(), Comparator::kNe, Value(), false},
        CompareCase{Value(), Comparator::kEq, Value(1), false},
        CompareCase{Value(), Comparator::kNe, Value(1), true},
        CompareCase{Value(), Comparator::kLt, Value(1), false},
        CompareCase{Value(1), Comparator::kGe, Value(), false}));

TEST(ValueTest, IncompatibleComparisonFails) {
  Result<bool> r = Value(1).Compare(Comparator::kEq, Value("1"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, LikeRequiresStrings) {
  Result<bool> r = Value(1).Compare(Comparator::kLike, Value("1%"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, HashAgreesWithNumericEquality) {
  // 2 == 2.0 under Compare, so buckets must agree.
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_TRUE(Value(2) == Value(2));
  EXPECT_FALSE(Value(2) == Value(2.0));  // structural, not SQL equality
  EXPECT_TRUE(Value() == Value());
}

TEST(ValueTest, ComparatorNames) {
  EXPECT_STREQ(ComparatorToString(Comparator::kEq), "=");
  EXPECT_STREQ(ComparatorToString(Comparator::kLike), "like");
  EXPECT_STREQ(ComparatorToString(Comparator::kLe), "<=");
}

}  // namespace
}  // namespace seco
