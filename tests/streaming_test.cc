#include <gtest/gtest.h>

#include <set>

#include "exec/engine.h"
#include "exec/streaming.h"
#include "plan/annotate.h"
#include "plan/builder.h"
#include "query/parser.h"
#include "sim/fixtures.h"
#include "tests/test_util.h"

namespace seco {
namespace {

using testing_util::MakeKeyedSearchService;

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ServiceRegistry>();
    Result<BuiltService> outer =
        MakeKeyedSearchService("Outer", 60, 5, 4, ScoreDecay::kLinear);
    ASSERT_TRUE(outer.ok());
    outer_ = std::move(outer).value();
    Result<BuiltService> inner = MakeKeyedSearchService(
        "Inner", 80, 5, 4, ScoreDecay::kLinear, /*key_is_input=*/true);
    ASSERT_TRUE(inner.ok());
    inner_ = std::move(inner).value();
    ASSERT_TRUE(registry_->RegisterInterface(outer_.interface).ok());
    ASSERT_TRUE(registry_->RegisterInterface(inner_.interface).ok());
  }

  Result<QueryPlan> MakePlan(int outer_fetch = 12, int inner_fetch = 16) {
    SECO_ASSIGN_OR_RETURN(
        ParsedQuery parsed,
        ParseQuery("select Outer as O, Inner as I where O.Key = I.Key"));
    SECO_ASSIGN_OR_RETURN(BoundQuery bound, BindQuery(parsed, *registry_));
    TopologySpec spec;
    spec.stages = {{0}, {1}};
    spec.atom_settings[0].fetch_factor = outer_fetch;
    spec.atom_settings[1].fetch_factor = inner_fetch;
    SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(bound, spec));
    SECO_RETURN_IF_ERROR(AnnotatePlan(&plan).status());
    return plan;
  }

  std::shared_ptr<ServiceRegistry> registry_;
  BuiltService outer_;
  BuiltService inner_;
};

TEST_F(StreamingTest, ProducesKValidCombinations) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  StreamingOptions options;
  options.k = 7;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult result, engine.Execute(plan));
  ASSERT_EQ(result.combinations.size(), 7u);
  EXPECT_FALSE(result.exhausted);
  for (const Combination& combo : result.combinations) {
    EXPECT_EQ(combo.components[0].AtomicAt(0).AsInt(),
              combo.components[1].AtomicAt(0).AsInt());
  }
}

TEST_F(StreamingTest, StopsCallingAtK) {
  // The materializing engine prepays every fetch the factors allow; the
  // streaming engine stops the moment k combinations exist.
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  ExecutionOptions mat_options;
  mat_options.k = 5;
  mat_options.max_calls = 100000;
  ExecutionEngine materializing(mat_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult mat, materializing.Execute(plan));

  StreamingOptions stream_options;
  stream_options.k = 5;
  stream_options.max_calls = 100000;
  StreamingEngine streaming(stream_options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult stream, streaming.Execute(plan));

  ASSERT_EQ(stream.combinations.size(), 5u);
  EXPECT_LT(stream.total_calls, mat.total_calls);
  EXPECT_LE(stream.total_calls, 3);  // 1 outer chunk + lookups for 1-2 keys
}

TEST_F(StreamingTest, DrainingMatchesMaterializingEngine) {
  // Pulled to exhaustion, the streaming engine sees exactly the same
  // combinations as the materializing engine.
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  ExecutionOptions mat_options;
  mat_options.k = 1000000;
  mat_options.truncate_to_k = false;
  mat_options.max_calls = 100000;
  ExecutionEngine materializing(mat_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult mat, materializing.Execute(plan));

  StreamingOptions stream_options;
  stream_options.k = 1000000;
  stream_options.max_calls = 100000;
  StreamingEngine streaming(stream_options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult stream, streaming.Execute(plan));
  EXPECT_TRUE(stream.exhausted);

  auto key_of = [](const Combination& c) {
    return c.components[0].AtomicAt(1).AsString() + "|" +
           c.components[1].AtomicAt(1).AsString();
  };
  std::multiset<std::string> mat_keys, stream_keys;
  for (const Combination& c : mat.combinations) mat_keys.insert(key_of(c));
  for (const Combination& c : stream.combinations) stream_keys.insert(key_of(c));
  EXPECT_EQ(mat_keys, stream_keys);
}

TEST_F(StreamingTest, ArrivalOrderApproximatesRanking) {
  // Outer tuples are consumed in ranking order, so the first emitted
  // combination carries the best outer score seen overall.
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  StreamingOptions options;
  options.k = 20;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult result, engine.Execute(plan));
  ASSERT_GE(result.combinations.size(), 2u);
  double first_outer = result.combinations.front().component_scores[0];
  for (const Combination& combo : result.combinations) {
    EXPECT_LE(combo.component_scores[0], first_outer + 1e-12);
  }
}

TEST_F(StreamingTest, BudgetSurfacesAsError) {
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, MakePlan());
  StreamingOptions options;
  options.k = 1000;
  options.max_calls = 2;
  StreamingEngine engine(options);
  Result<StreamingResult> result = engine.Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(StreamingScenarioTest, MovieScenarioStreamsAndSavesCalls) {
  SECO_ASSERT_OK_AND_ASSIGN(Scenario scenario, MakeMovieScenario());
  SECO_ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseQuery(scenario.query_text));
  SECO_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindQuery(parsed, *scenario.registry));
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  SECO_ASSERT_OK_AND_ASSIGN(QueryPlan plan, BuildPlan(query, spec));
  SECO_ASSERT_OK(AnnotatePlan(&plan).status());

  StreamingOptions options;
  options.k = 5;
  options.input_bindings = scenario.inputs;
  options.max_calls = 100000;
  StreamingEngine engine(options);
  SECO_ASSERT_OK_AND_ASSIGN(StreamingResult stream, engine.Execute(plan));
  ASSERT_EQ(stream.combinations.size(), 5u);
  for (const Combination& combo : stream.combinations) {
    const Tuple& movie = combo.components[0];
    const Tuple& theatre = combo.components[1];
    bool shows = false;
    for (const Value& title : theatre.CandidateValuesAt(AttrPath{9, 0})) {
      if (title.AsString() == movie.AtomicAt(0).AsString()) shows = true;
    }
    EXPECT_TRUE(shows);
  }

  ExecutionOptions mat_options;
  mat_options.k = 5;
  mat_options.input_bindings = scenario.inputs;
  mat_options.max_calls = 100000;
  ExecutionEngine materializing(mat_options);
  SECO_ASSERT_OK_AND_ASSIGN(ExecutionResult mat, materializing.Execute(plan));
  EXPECT_LE(stream.total_calls, mat.total_calls);
}

}  // namespace
}  // namespace seco
