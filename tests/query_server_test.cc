// QueryServer behavior (docs/SERVER.md): admission control with explicit
// shedding, the degradation ladder, weighted round-robin fairness across
// priority classes, queue-time deadlines, and the determinism contract —
// with the ladder off and load below capacity, served answers are
// bit-identical to standalone engine runs.

#include "server/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "core/seco.h"

namespace seco {
namespace {

// --- DegradationLadder (pure policy) --------------------------------------

PressureSignals IdleSignals() {
  PressureSignals signals;
  signals.max_in_flight = 4;
  signals.runner_threads = 4;
  signals.queue_capacity = 16;
  signals.cache_budget = 1 << 20;
  return signals;
}

TEST(DegradationLadderTest, IdleServerScoresZeroAndLevelZero) {
  DegradationLadder ladder(DegradationLadderConfig{});
  EXPECT_DOUBLE_EQ(DegradationLadder::Score(IdleSignals(), ladder.config()),
                   0.0);
  EXPECT_EQ(ladder.LevelFor(IdleSignals()), 0);
}

TEST(DegradationLadderTest, LevelsRiseWithLoad) {
  DegradationLadder ladder(DegradationLadderConfig{});
  PressureSignals signals = IdleSignals();

  // All slots busy, queues empty: score 0.5 -> level 1.
  signals.in_flight = 4;
  EXPECT_EQ(ladder.LevelFor(signals), 1);

  // Slots busy + queues three-quarters full: score climbs past level 2.
  signals.queued = 12;
  EXPECT_GE(ladder.LevelFor(signals), 2);

  // Queues full as well: level 3.
  signals.queued = 16;
  EXPECT_EQ(ladder.LevelFor(signals), 3);
}

TEST(DegradationLadderTest, OpenBreakerAloneReachesLevelTwo) {
  DegradationLadder ladder(DegradationLadderConfig{});
  PressureSignals signals = IdleSignals();
  signals.open_breakers = 1;
  // breaker_weight 0.75 sits exactly at the level-2 threshold.
  EXPECT_EQ(ladder.LevelFor(signals), 2);
}

TEST(DegradationLadderTest, DisabledLadderPinsLevelZero) {
  DegradationLadderConfig config;
  config.enabled = false;
  DegradationLadder ladder(config);
  PressureSignals signals = IdleSignals();
  signals.in_flight = 4;
  signals.queued = 16;
  signals.open_breakers = 3;
  EXPECT_EQ(ladder.LevelFor(signals), 0);
}

TEST(DegradationLadderTest, ApplyCutsKAndBudgetOnlyFromLevelTwo) {
  DegradationLadder ladder(DegradationLadderConfig{});
  int k = 10, max_calls = 1000;
  ladder.ApplyToRequest(1, &k, &max_calls);
  EXPECT_EQ(k, 10);
  EXPECT_EQ(max_calls, 1000);
  ladder.ApplyToRequest(2, &k, &max_calls);
  EXPECT_EQ(k, 5);
  EXPECT_EQ(max_calls, 500);
  // Floors: k never drops below min_k, max_calls never below 1.
  int k1 = 1, budget1 = 1;
  ladder.ApplyToRequest(3, &k1, &budget1);
  EXPECT_EQ(k1, 1);
  EXPECT_EQ(budget1, 1);
}

// --- AdmissionController ---------------------------------------------------

AdmissionConfig SmallAdmission() {
  AdmissionConfig config;
  config.max_in_flight = 2;
  config.interactive.queue_capacity = 2;
  config.batch.queue_capacity = 2;
  return config;
}

TEST(AdmissionControllerTest, ShedsWhenClassQueueIsFull) {
  AdmissionController admission(SmallAdmission());
  EXPECT_TRUE(admission.Offer(PriorityClass::kInteractive, 0.0).has_value());
  EXPECT_TRUE(admission.Offer(PriorityClass::kInteractive, 0.0).has_value());
  // Interactive is full; batch still has room.
  EXPECT_FALSE(admission.Offer(PriorityClass::kInteractive, 0.0).has_value());
  EXPECT_TRUE(admission.Offer(PriorityClass::kBatch, 0.0).has_value());
}

TEST(AdmissionControllerTest, WindowBoundsInFlight) {
  AdmissionConfig config = SmallAdmission();
  config.interactive.queue_capacity = 8;
  AdmissionController admission(config);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(admission.Offer(PriorityClass::kInteractive, 0.0).has_value());
  }
  EXPECT_TRUE(admission.NextToDispatch(0.0).has_value());
  EXPECT_TRUE(admission.NextToDispatch(0.0).has_value());
  EXPECT_EQ(admission.in_flight(), 2);
  EXPECT_FALSE(admission.NextToDispatch(0.0).has_value());  // window full
  admission.OnFinished();
  EXPECT_TRUE(admission.NextToDispatch(0.0).has_value());
}

TEST(AdmissionControllerTest, DrainFollowsWeightedRoundRobin) {
  AdmissionConfig config;
  config.max_in_flight = 100;
  config.interactive = {/*queue_capacity=*/16, 0.0, /*weight=*/4};
  config.batch = {/*queue_capacity=*/16, 0.0, /*weight=*/1};
  AdmissionController admission(config);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(admission.Offer(PriorityClass::kInteractive, 0.0).has_value());
    ASSERT_TRUE(admission.Offer(PriorityClass::kBatch, 0.0).has_value());
  }
  // Out of the first 5 dispatches, 4 go to interactive and 1 to batch —
  // smoothly interleaved, and in FIFO order within each class.
  int interactive = 0, batch = 0;
  uint64_t last_interactive_id = 0, last_batch_id = 0;
  for (int i = 0; i < 5; ++i) {
    std::optional<QueueTicket> ticket = admission.NextToDispatch(0.0);
    ASSERT_TRUE(ticket.has_value());
    if (ticket->priority == PriorityClass::kInteractive) {
      ++interactive;
      EXPECT_GT(ticket->id, last_interactive_id);
      last_interactive_id = ticket->id;
    } else {
      ++batch;
      EXPECT_GT(ticket->id, last_batch_id);
      last_batch_id = ticket->id;
    }
  }
  EXPECT_EQ(interactive, 4);
  EXPECT_EQ(batch, 1);
}

TEST(AdmissionControllerTest, BatchDrainsWhenInteractiveIsEmpty) {
  AdmissionController admission(SmallAdmission());
  ASSERT_TRUE(admission.Offer(PriorityClass::kBatch, 0.0).has_value());
  std::optional<QueueTicket> ticket = admission.NextToDispatch(0.0);
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->priority, PriorityClass::kBatch);
}

TEST(AdmissionControllerTest, ExpiredTicketsResolveWithoutClaimingSlots) {
  AdmissionConfig config = SmallAdmission();
  config.max_in_flight = 1;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.Offer(PriorityClass::kInteractive, 0.0).has_value());
  ASSERT_TRUE(
      admission.Offer(PriorityClass::kInteractive, 0.0, /*deadline=*/5.0)
          .has_value());

  // The first (deadline-free) ticket claims the single slot; the deadlined
  // one queues behind it.
  std::optional<QueueTicket> first = admission.NextToDispatch(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->expired);
  EXPECT_EQ(admission.in_flight(), 1);

  std::optional<QueueTicket> expired = admission.NextToDispatch(10.0);
  ASSERT_TRUE(expired.has_value());
  EXPECT_TRUE(expired->expired);
  EXPECT_EQ(expired->priority, PriorityClass::kInteractive);
  EXPECT_EQ(admission.in_flight(), 1);  // no slot claimed
  EXPECT_FALSE(admission.NextToDispatch(10.0).has_value());
}

// --- QueryServer integration ----------------------------------------------

ServerOptions QuietServer() {
  ServerOptions options;
  options.admission.max_in_flight = 2;
  options.ladder.enabled = false;
  return options;
}

TEST(QueryServerTest, LowLoadCompletesEverythingAtFullQuality) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  QueryServer server(scenario->registry, QuietServer());

  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    QueryRequest request;
    request.query_text = scenario->query_text;
    request.input_bindings = scenario->inputs;
    request.k = 5;
    request.priority =
        i % 2 == 0 ? PriorityClass::kInteractive : PriorityClass::kBatch;
    futures.push_back(server.Submit(std::move(request)));
  }
  for (std::future<QueryResponse>& future : futures) {
    QueryResponse response = future.get();
    EXPECT_EQ(response.outcome, ServedOutcome::kCompleted)
        << ServedOutcomeToString(response.outcome) << ": "
        << response.status.ToString();
    EXPECT_EQ(response.degradation_level, 0);
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.execution.combinations.size(), 5u);
  }
  server.Drain();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.interactive.completed + stats.batch.completed, 6);
  EXPECT_EQ(stats.interactive.shed + stats.batch.shed, 0);
  EXPECT_LE(stats.peak_in_flight, 2);
  // Identical queries share the call cache: later runs hit warm entries.
  EXPECT_GT(server.cache().stats().hits, 0);
}

TEST(QueryServerTest, AnswersBitIdenticalToStandaloneUnderCapacity) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());

  // Standalone run: private everything, default options.
  QuerySession session(scenario->registry);
  Result<QueryOutcome> standalone =
      session.Run(scenario->query_text, scenario->inputs);
  ASSERT_TRUE(standalone.ok());

  // Served run, ladder off, load far below capacity.
  QueryServer server(scenario->registry, QuietServer());
  QueryRequest request;
  request.query_text = scenario->query_text;
  request.input_bindings = scenario->inputs;
  request.k = 10;
  QueryResponse response = server.Submit(std::move(request)).get();
  ASSERT_EQ(response.outcome, ServedOutcome::kCompleted)
      << response.status.ToString();

  const ExecutionResult& a = standalone->execution;
  const ExecutionResult& b = response.execution;
  EXPECT_EQ(b.total_calls, a.total_calls);
  EXPECT_DOUBLE_EQ(b.elapsed_ms, a.elapsed_ms);
  ASSERT_EQ(b.combinations.size(), a.combinations.size());
  for (size_t i = 0; i < a.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.combinations[i].combined_score,
                     a.combinations[i].combined_score);
    ASSERT_EQ(b.combinations[i].components.size(),
              a.combinations[i].components.size());
    for (size_t c = 0; c < a.combinations[i].components.size(); ++c) {
      EXPECT_TRUE(b.combinations[i].components[c] ==
                  a.combinations[i].components[c]);
    }
  }
}

TEST(QueryServerTest, ShedsWithRejectedStatusWhenQueueIsFull) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  ServerOptions options = QuietServer();
  options.admission.interactive.queue_capacity = 0;  // shed everything
  QueryServer server(scenario->registry, options);

  QueryRequest request;
  request.query_text = scenario->query_text;
  request.input_bindings = scenario->inputs;
  std::future<QueryResponse> future = server.Submit(std::move(request));
  // A shed future is ready immediately.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  QueryResponse response = future.get();
  EXPECT_EQ(response.outcome, ServedOutcome::kShed);
  EXPECT_EQ(response.status.code(), StatusCode::kRejected);
  EXPECT_GT(response.retry_after_ms, 0.0);
  EXPECT_EQ(server.stats().interactive.shed, 1);
}

TEST(QueryServerTest, ShedQueryLeavesNoExecutionResidue) {
  // A shed query must consume nothing: no cache entries, no breaker state,
  // no charged reliability attempts — admission rejects before any
  // execution facility is touched.
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  ServerOptions options = QuietServer();
  options.admission.interactive.queue_capacity = 0;
  options.admission.batch.queue_capacity = 0;
  options.reliability.retry.max_retries = 2;  // a live policy, never charged
  QueryServer server(scenario->registry, options);

  for (int i = 0; i < 8; ++i) {
    QueryRequest request;
    request.query_text = scenario->query_text;
    request.input_bindings = scenario->inputs;
    request.priority =
        i % 2 == 0 ? PriorityClass::kInteractive : PriorityClass::kBatch;
    QueryResponse response = server.Submit(std::move(request)).get();
    ASSERT_EQ(response.outcome, ServedOutcome::kShed);
    EXPECT_EQ(response.execution.total_calls, 0);
    EXPECT_EQ(response.execution.reliability.attempts, 0);
  }
  server.Drain();

  CallCacheStats cache = server.cache().stats();
  EXPECT_EQ(cache.entries, 0);
  EXPECT_EQ(cache.bytes, 0);
  EXPECT_EQ(cache.bytes_high_water, 0);
  EXPECT_EQ(cache.hits + cache.misses, 0);
  EXPECT_EQ(server.breakers().OpenCount(), 0);
  EXPECT_TRUE(server.breakers().States().empty());
  for (const auto& [name, backend] : scenario->backends) {
    EXPECT_EQ(backend->call_count(), 0) << name;
  }
}

// Pins every scenario backend to real time so queries occupy the window
// long enough for queues to form.
void SlowDown(Scenario* scenario, double factor) {
  for (auto& [name, backend] : scenario->backends) {
    backend->set_realtime_factor(factor);
  }
}

TEST(QueryServerTest, QueueDeadlineExpiresWaitingQueries) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.02);  // ~2000 simulated ms -> ~40 real ms per query

  ServerOptions options = QuietServer();
  options.admission.max_in_flight = 1;
  QueryServer server(scenario->registry, options);

  QueryRequest slow;
  slow.query_text = scenario->query_text;
  slow.input_bindings = scenario->inputs;
  std::future<QueryResponse> holder = server.Submit(slow);

  // Tiny queue deadline: by the time the slot frees, it has long expired.
  QueryRequest hurried = slow;
  hurried.deadline_ms = 0.5;
  std::future<QueryResponse> expired = server.Submit(std::move(hurried));

  QueryResponse response = expired.get();
  EXPECT_EQ(response.outcome, ServedOutcome::kDeadlineExpired);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(response.queue_wait_ms, 0.5);
  EXPECT_TRUE(holder.get().status.ok());
  server.Drain();
  EXPECT_EQ(server.stats().interactive.expired, 1);
}

TEST(QueryServerTest, InteractiveWaitsLessThanBatchUnderBacklog) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.01);

  ServerOptions options = QuietServer();
  options.admission.max_in_flight = 1;
  options.admission.interactive.queue_capacity = 8;
  options.admission.batch.queue_capacity = 8;
  QueryServer server(scenario->registry, options);

  // One query pins the single slot; the rest pile up behind it, batch
  // first so FIFO order would favor batch — the 4:1 weighted round-robin
  // must not.
  QueryRequest base;
  base.query_text = scenario->query_text;
  base.input_bindings = scenario->inputs;
  base.k = 5;
  std::vector<std::future<QueryResponse>> futures;
  futures.push_back(server.Submit(base));

  for (int i = 0; i < 4; ++i) {
    QueryRequest batch = base;
    batch.priority = PriorityClass::kBatch;
    futures.push_back(server.Submit(std::move(batch)));
  }
  for (int i = 0; i < 4; ++i) {
    QueryRequest interactive = base;
    interactive.priority = PriorityClass::kInteractive;
    futures.push_back(server.Submit(std::move(interactive)));
  }
  for (std::future<QueryResponse>& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  server.Drain();

  ServerStats stats = server.stats();
  ASSERT_EQ(stats.interactive.queue_wait_ms.size(), 5u);
  ASSERT_EQ(stats.batch.queue_wait_ms.size(), 4u);
  // Despite arriving later, interactive queries drain mostly ahead of the
  // batch backlog: their mean wait must come in under batch's.
  auto mean = [](const std::vector<double>& samples) {
    double sum = 0.0;
    for (double s : samples) sum += s;
    return sum / static_cast<double>(samples.size());
  };
  EXPECT_LT(mean(stats.interactive.queue_wait_ms),
            mean(stats.batch.queue_wait_ms));
}

TEST(QueryServerTest, LadderDegradesAdmissionsUnderPressure) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.01);

  ServerOptions options;
  options.admission.max_in_flight = 1;
  options.admission.interactive.queue_capacity = 6;
  options.ladder.enabled = true;
  QueryServer server(scenario->registry, options);

  QueryRequest base;
  base.query_text = scenario->query_text;
  base.input_bindings = scenario->inputs;
  base.k = 8;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 7; ++i) futures.push_back(server.Submit(base));

  bool saw_degraded_level = false;
  int cut_k_seen = 0;
  for (std::future<QueryResponse>& future : futures) {
    QueryResponse response = future.get();
    if (response.degradation_level > 0 &&
        response.outcome != ServedOutcome::kShed) {
      saw_degraded_level = true;
      EXPECT_EQ(response.outcome, ServedOutcome::kDegraded);
      EXPECT_EQ(response.execution.degradation_level,
                response.degradation_level);
      if (response.degradation_level >= 2) {
        // k was cut in half at admission (8 -> 4).
        EXPECT_LE(response.execution.combinations.size(), 4u);
        ++cut_k_seen;
      }
    }
  }
  server.Drain();
  // The first query runs at level 0; the backlog behind the single slot
  // must push later admissions up the ladder.
  EXPECT_TRUE(saw_degraded_level);
  ServerStats stats = server.stats();
  int64_t degraded_admissions = 0;
  for (int level = 1; level <= DegradationLadder::kMaxLevel; ++level) {
    degraded_admissions += stats.interactive.degradation_levels[level];
  }
  EXPECT_GT(degraded_admissions, 0);
  (void)cut_k_seen;
}

TEST(QueryServerTest, StreamingRequestsServeThroughTheSameFrontEnd) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  QueryServer server(scenario->registry, QuietServer());

  QueryRequest request;
  request.query_text = scenario->query_text;
  request.input_bindings = scenario->inputs;
  request.streaming = true;
  request.k = 5;
  QueryResponse response = server.Submit(std::move(request)).get();
  ASSERT_EQ(response.outcome, ServedOutcome::kCompleted)
      << response.status.ToString();
  EXPECT_TRUE(response.streamed);
  EXPECT_EQ(response.streaming.combinations.size(), 5u);
  EXPECT_EQ(response.execution.combinations.size(), 0u);
}

TEST(QueryServerTest, ParseFailureResolvesAsFailedOutcome) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  QueryServer server(scenario->registry, QuietServer());

  QueryRequest request;
  request.query_text = "this is not a query";
  QueryResponse response = server.Submit(std::move(request)).get();
  EXPECT_EQ(response.outcome, ServedOutcome::kFailed);
  EXPECT_FALSE(response.status.ok());
  server.Drain();
  EXPECT_EQ(server.stats().interactive.failed, 1);
}

TEST(QueryServerTest, EveryOutcomeIsLedgeredExactlyOnce) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  ServerOptions options = QuietServer();
  options.admission.interactive.queue_capacity = 1;
  options.admission.batch.queue_capacity = 1;
  QueryServer server(scenario->registry, options);

  LoadProfile profile;
  profile.num_queries = 24;
  profile.closed_loop_width = 0;  // open loop: force some shedding
  profile.mean_interarrival_ms = 0.0;
  profile.k_min = 3;
  profile.k_max = 6;
  LoadGenerator generator(profile, scenario->query_text, scenario->inputs);
  LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
  server.Drain();

  ASSERT_EQ(report.responses.size(), 24u);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.interactive.submitted + stats.batch.submitted, 24);
  EXPECT_EQ(stats.interactive.finished() + stats.batch.finished(), 24);
  for (const QueryResponse& response : report.responses) {
    // Every query terminates with an explicit outcome; no silent drops.
    EXPECT_TRUE(response.outcome == ServedOutcome::kCompleted ||
                response.outcome == ServedOutcome::kDegraded ||
                response.outcome == ServedOutcome::kShed ||
                response.outcome == ServedOutcome::kDeadlineExpired ||
                response.outcome == ServedOutcome::kFailed);
  }
}

// --- Whole-answer cache (docs/CACHING.md) ----------------------------------

ServerOptions CachedQuietServer() {
  ServerOptions options = QuietServer();
  options.answer_cache = true;
  return options;
}

QueryRequest CanonicalRequest(const Scenario& scenario) {
  QueryRequest request;
  request.query_text = scenario.query_text;
  request.input_bindings = scenario.inputs;
  request.k = 10;
  return request;
}

void ExpectSameAnswers(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(b.combinations.size(), a.combinations.size());
  for (size_t i = 0; i < a.combinations.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.combinations[i].combined_score,
                     a.combinations[i].combined_score);
    ASSERT_EQ(b.combinations[i].components.size(),
              a.combinations[i].components.size());
    for (size_t c = 0; c < a.combinations[i].components.size(); ++c) {
      EXPECT_TRUE(b.combinations[i].components[c] ==
                  a.combinations[i].components[c]);
    }
  }
}

void ExpectBitIdentical(const ExecutionResult& a, const ExecutionResult& b) {
  EXPECT_EQ(b.total_calls, a.total_calls);
  EXPECT_DOUBLE_EQ(b.elapsed_ms, a.elapsed_ms);
  ExpectSameAnswers(a, b);
}

TEST(AnswerCacheServerTest, CacheIsOffByDefault) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  QueryServer server(scenario->registry, QuietServer());
  EXPECT_EQ(server.answer_cache(), nullptr);
  EXPECT_EQ(server.plan_memo(), nullptr);
  for (int i = 0; i < 2; ++i) {
    QueryResponse response =
        server.Submit(CanonicalRequest(*scenario)).get();
    ASSERT_EQ(response.outcome, ServedOutcome::kCompleted);
    EXPECT_FALSE(response.answer_cache_hit);
  }
  server.Drain();
  EXPECT_EQ(server.stats().interactive.answer_cache_hits, 0);
}

// The acceptance property: a warm hit served by a cache-on server running
// any {num_threads, prefetch_depth} is byte-identical to a fresh cache-off
// execution — those knobs are excluded from the signature precisely because
// the determinism suites prove they do not change answers.
TEST(AnswerCacheServerTest, WarmHitBitIdenticalAcrossExecutionKnobs) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());

  // Fresh reference: cache off, single-threaded.
  QueryServer reference(scenario->registry, QuietServer());
  QueryResponse fresh = reference.Submit(CanonicalRequest(*scenario)).get();
  ASSERT_EQ(fresh.outcome, ServedOutcome::kCompleted)
      << fresh.status.ToString();

  // Cached server with different execution knobs.
  ServerOptions options = CachedQuietServer();
  options.num_threads = 4;
  options.prefetch_depth = 2;
  QueryServer server(scenario->registry, options);
  ASSERT_NE(server.answer_cache(), nullptr);

  QueryResponse cold = server.Submit(CanonicalRequest(*scenario)).get();
  ASSERT_EQ(cold.outcome, ServedOutcome::kCompleted)
      << cold.status.ToString();
  EXPECT_FALSE(cold.answer_cache_hit);

  QueryResponse warm = server.Submit(CanonicalRequest(*scenario)).get();
  ASSERT_EQ(warm.outcome, ServedOutcome::kCompleted)
      << warm.status.ToString();
  EXPECT_TRUE(warm.answer_cache_hit);

  ExpectBitIdentical(fresh.execution, cold.execution);
  ExpectBitIdentical(fresh.execution, warm.execution);

  server.Drain();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.interactive.answer_cache_hits, 1);
  EXPECT_GT(server.answer_cache()->stats().hits, 0);
  // The optimizer memo was exercised on the cold run.
  ASSERT_NE(server.plan_memo(), nullptr);
  EXPECT_GT(server.plan_memo()->stats().probes(), 0);
}

// N identical cold queries submitted concurrently execute ONCE: one leader
// runs, the followers reuse its answer, and the backends see exactly the
// call pattern of a single run.
TEST(AnswerCacheServerTest, SingleFlightExecutesConcurrentIdenticalOnce) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  SlowDown(&*scenario, 0.02);  // leader stays in flight while followers join

  // Baseline: one cold query on its own cache-on server.
  std::map<std::string, int64_t> baseline;
  {
    ServerOptions options = CachedQuietServer();
    options.admission.max_in_flight = 8;
    QueryServer server(scenario->registry, options);
    QueryResponse response =
        server.Submit(CanonicalRequest(*scenario)).get();
    ASSERT_EQ(response.outcome, ServedOutcome::kCompleted);
    server.Drain();
    for (const auto& [name, backend] : scenario->backends) {
      baseline[name] = backend->call_count();
      backend->ResetCallCount();
    }
  }

  constexpr int kClients = 6;
  ServerOptions options = CachedQuietServer();
  options.admission.max_in_flight = 8;
  QueryServer server(scenario->registry, options);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(server.Submit(CanonicalRequest(*scenario)));
  }
  QueryResponse first = futures[0].get();
  ASSERT_EQ(first.outcome, ServedOutcome::kCompleted)
      << first.status.ToString();
  for (int i = 1; i < kClients; ++i) {
    QueryResponse response = futures[i].get();
    ASSERT_EQ(response.outcome, ServedOutcome::kCompleted);
    ExpectBitIdentical(first.execution, response.execution);
  }
  server.Drain();

  // The backends ran the workload of exactly one query.
  for (const auto& [name, backend] : scenario->backends) {
    EXPECT_EQ(backend->call_count(), baseline[name]) << name;
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.interactive.answer_cache_hits, kClients - 1);
  EXPECT_EQ(server.answer_cache()->flights_led(), 1);
}

TEST(AnswerCacheServerTest, RegistryChangeInvalidatesCachedAnswers) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  QueryServer server(scenario->registry, CachedQuietServer());

  QueryResponse cold = server.Submit(CanonicalRequest(*scenario)).get();
  ASSERT_EQ(cold.outcome, ServedOutcome::kCompleted);
  QueryResponse warm = server.Submit(CanonicalRequest(*scenario)).get();
  EXPECT_TRUE(warm.answer_cache_hit);

  // Any successful registration bumps the catalog generation; the answers
  // and plans derived from the old candidate sets must stop being served.
  auto pattern = std::make_shared<ConnectionPattern>(
      "CacheTestPattern", "Movie", "Theatre",
      std::vector<ConnectionClause>{
          {"Title", Comparator::kEq, "Movie.Title"}});
  ASSERT_TRUE(scenario->registry->RegisterConnectionPattern(pattern).ok());

  QueryResponse after = server.Submit(CanonicalRequest(*scenario)).get();
  ASSERT_EQ(after.outcome, ServedOutcome::kCompleted);
  EXPECT_FALSE(after.answer_cache_hit);
  // The ServiceCallCache is deliberately NOT bumped on registry changes, so
  // the re-execution runs against warm chunks: call counts and latency
  // legitimately drop while the answers themselves stay identical.
  ExpectSameAnswers(cold.execution, after.execution);
  // And the re-executed answer is cached again under the new generation.
  QueryResponse rewarm = server.Submit(CanonicalRequest(*scenario)).get();
  EXPECT_TRUE(rewarm.answer_cache_hit);
  server.Drain();
}

TEST(AnswerCacheServerTest, TraceRequestsBypassTheCache) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  QueryServer server(scenario->registry, CachedQuietServer());

  // Prime the cache with the untraced identity.
  QueryResponse primed = server.Submit(CanonicalRequest(*scenario)).get();
  ASSERT_EQ(primed.outcome, ServedOutcome::kCompleted);

  ASSERT_NE(server.answer_cache(), nullptr);
  const MemoStats before = server.answer_cache()->stats();
  for (int i = 0; i < 2; ++i) {
    QueryRequest request = CanonicalRequest(*scenario);
    request.collect_trace = true;
    QueryResponse response = server.Submit(std::move(request)).get();
    ASSERT_EQ(response.outcome, ServedOutcome::kCompleted);
    // A cached answer carries no fresh trace; trace requests must execute.
    // (The trace itself may be empty here: trace events record actual
    // backend calls, and the warm ServiceCallCache absorbs them all.)
    EXPECT_FALSE(response.answer_cache_hit);
    ExpectSameAnswers(primed.execution, response.execution);
  }
  // Traced requests never touched the answer cache — no probes, no inserts.
  const MemoStats after = server.answer_cache()->stats();
  EXPECT_EQ(after.probes, before.probes);
  EXPECT_EQ(after.inserts, before.inserts);
  server.Drain();
}

TEST(AnswerCacheServerTest, DifferentKOrBindingsMissTheCache) {
  Result<Scenario> scenario = MakeMovieScenario();
  ASSERT_TRUE(scenario.ok());
  QueryServer server(scenario->registry, CachedQuietServer());

  QueryResponse first = server.Submit(CanonicalRequest(*scenario)).get();
  ASSERT_EQ(first.outcome, ServedOutcome::kCompleted);

  QueryRequest other_k = CanonicalRequest(*scenario);
  other_k.k = 5;
  QueryResponse response_k = server.Submit(std::move(other_k)).get();
  ASSERT_EQ(response_k.outcome, ServedOutcome::kCompleted);
  EXPECT_FALSE(response_k.answer_cache_hit);
  EXPECT_EQ(response_k.execution.combinations.size(), 5u);

  QueryRequest other_binding = CanonicalRequest(*scenario);
  other_binding.input_bindings["INPUT1"] = Value(std::string("Comedy"));
  QueryResponse response_b = server.Submit(std::move(other_binding)).get();
  EXPECT_FALSE(response_b.answer_cache_hit);
  server.Drain();
}

}  // namespace
}  // namespace seco
