// The chapter's running example (§3.1, §5.6): "find an action movie opening
// in Italy after May 1st, shown at a theatre near my address in Milano, with
// a good romantic restaurant close to the theatre".
//
// Demonstrates: connection patterns (Shows, DinnerPlace), INPUT variables,
// the branch-and-bound optimizer, and the executed plan with its runtime
// statistics.

#include <cstdio>

#include "core/seco.h"

namespace {

seco::Status Run() {
  // The scenario fixture builds the Movie/Theatre/Restaurant marts, the
  // Movie11/Theatre11/Restaurant11 interfaces with the §5.6 adornments, the
  // Shows (2%) and DinnerPlace (40%) connection patterns, and synthetic data
  // realizing those statistics.
  SECO_ASSIGN_OR_RETURN(seco::Scenario scenario, seco::MakeMovieScenario());

  std::printf("query:\n  %s\n\n", scenario.query_text.c_str());
  std::printf("inputs:\n");
  for (const auto& [name, value] : scenario.inputs) {
    std::printf("  %-8s = %s\n", name.c_str(), value.ToString().c_str());
  }

  seco::OptimizerOptions options;
  options.k = 10;
  options.metric = seco::CostMetricKind::kExecutionTime;
  seco::QuerySession session(scenario.registry, options);

  SECO_ASSIGN_OR_RETURN(seco::QueryOutcome outcome,
                        session.Run(scenario.query_text, scenario.inputs));

  std::printf("\noptimized plan (cost %.0f ms, %d plans costed, %d pruned):\n%s\n",
              outcome.optimization.cost, outcome.optimization.plans_costed,
              outcome.optimization.branches_pruned,
              outcome.optimization.plan.ToString().c_str());

  std::printf("answers (K=10), %d service calls, %.0f simulated ms:\n",
              outcome.execution.total_calls, outcome.execution.elapsed_ms);
  for (const seco::Combination& combo : outcome.execution.combinations) {
    const seco::Tuple& movie = combo.components[0];
    const seco::Tuple& theatre = combo.components[1];
    const seco::Tuple& restaurant = combo.components[2];
    std::printf("  %.3f  %-9s at %-9s (%.1f km), dinner: %-7s (rating %.1f)\n",
                combo.combined_score, movie.AtomicAt(0).AsString().c_str(),
                theatre.AtomicAt(0).AsString().c_str(),
                theatre.AtomicAt(8).AsDouble(),
                restaurant.AtomicAt(0).AsString().c_str(),
                restaurant.AtomicAt(9).AsDouble());
  }

  // Graphviz rendering for the paper-style figure.
  std::printf("\nGraphviz (paste into dot -Tpng):\n%s",
              outcome.optimization.plan.ToDot().c_str());
  return seco::Status::OK();
}

}  // namespace

int main() {
  seco::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
