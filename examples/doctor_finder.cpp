// The canonical Search Computing question (ICDE'09 vision paper): "who is
// the best doctor to cure insomnia in a nearby hospital?" — a parallel join
// of two ranked search services (doctors by specialty, hospitals by city)
// with an exact insurance-coverage lookup piped behind them.
//
// Demonstrates: parallel joins between keyed search services, boolean
// selections, exact services selective in context, and execution tracing.

#include <cstdio>

#include "core/seco.h"

namespace {

seco::Status Run() {
  SECO_ASSIGN_OR_RETURN(seco::Scenario scenario, seco::MakeDoctorScenario());
  std::printf("query:\n  %s\n\n", scenario.query_text.c_str());

  seco::OptimizerOptions options;
  options.k = 8;
  options.metric = seco::CostMetricKind::kExecutionTime;
  options.topology_heuristic = seco::TopologyHeuristic::kParallelIsBetter;
  seco::QuerySession session(scenario.registry, options);

  SECO_ASSIGN_OR_RETURN(seco::BoundQuery bound,
                        session.Prepare(scenario.query_text));
  SECO_ASSIGN_OR_RETURN(seco::OptimizationResult optimized,
                        session.Optimize(bound));
  std::printf("plan (cost %.0f ms):\n%s\n", optimized.cost,
              optimized.plan.ToString().c_str());

  seco::ExecutionOptions exec_options;
  exec_options.k = 8;
  exec_options.input_bindings = scenario.inputs;
  exec_options.max_calls = 100000;
  exec_options.collect_trace = true;
  seco::ExecutionEngine engine(exec_options);
  SECO_ASSIGN_OR_RETURN(seco::ExecutionResult result,
                        engine.Execute(optimized.plan));

  std::printf("best insured options (%d calls, %.0f ms simulated):\n",
              result.total_calls, result.elapsed_ms);
  for (const seco::Combination& combo : result.combinations) {
    const seco::Tuple& doctor = combo.components[0];
    const seco::Tuple& hospital = combo.components[1];
    std::printf("  %.3f  %-8s (rating %.2f) at %-11s (quality %.2f, insured)\n",
                combo.combined_score, doctor.AtomicAt(1).AsString().c_str(),
                doctor.AtomicAt(3).AsDouble(),
                hospital.AtomicAt(1).AsString().c_str(),
                hospital.AtomicAt(2).AsDouble());
  }

  std::printf("\ncall trace (first 10 of %zu):\n", result.trace.size());
  for (size_t i = 0; i < result.trace.size() && i < 10; ++i) {
    const seco::CallEvent& event = result.trace[i];
    std::printf("  #%zu %-11s chunk %d (%.0f ms)\n", i, event.service.c_str(),
                event.chunk_index, event.latency_ms);
  }
  return seco::Status::OK();
}

}  // namespace

int main() {
  seco::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
