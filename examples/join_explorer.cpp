// Interactive-style visualization of the §4 join search space: runs a
// binary join of two ranked search services under each strategy combination
// and draws the explored tile grid (Fig. 4-7 as ASCII), together with the
// fetch trace and the cost/quality trade-off.
//
// Usage: join_explorer [k] [max_calls]   (defaults: 15, 14)

#include <cstdio>
#include <cstdlib>

#include "core/seco.h"

namespace {

seco::JoinPredicate KeyEquals() {
  return [](const seco::Tuple& x, const seco::Tuple& y) -> seco::Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

void DrawGrid(const seco::JoinExecution& exec) {
  int chunks_x = 0, chunks_y = 0;
  for (const seco::JoinEvent& e : exec.events) {
    if (e.kind == seco::JoinEventKind::kFetchX) ++chunks_x;
    if (e.kind == seco::JoinEventKind::kFetchY) ++chunks_y;
  }
  std::printf("    grid (column = SX chunk, row = SY chunk; number = order"
              " processed, '.' = fetched but deferred):\n");
  for (int y = 0; y < chunks_y; ++y) {
    std::printf("      ");
    for (int x = 0; x < chunks_x; ++x) {
      int rank = -1;
      for (size_t i = 0; i < exec.tile_order.size(); ++i) {
        if (exec.tile_order[i].x == x && exec.tile_order[i].y == y) {
          rank = static_cast<int>(i);
        }
      }
      if (rank < 0) {
        std::printf("  . ");
      } else {
        std::printf("%3d ", rank);
      }
    }
    std::printf("\n");
  }
}

seco::Status Run(int k, int max_calls) {
  seco::SyntheticPairParams params;
  params.rows_x = 200;
  params.rows_y = 200;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 30;
  SECO_ASSIGN_OR_RETURN(seco::SyntheticPair pair, seco::MakeSyntheticPair(params));

  std::printf("two ranked search services, chunk 10, join selectivity 1/30,"
              " k=%d, call budget %d\n",
              k, max_calls);
  for (seco::JoinInvocation invocation :
       {seco::JoinInvocation::kNestedLoop, seco::JoinInvocation::kMergeScan}) {
    for (seco::JoinCompletion completion :
         {seco::JoinCompletion::kRectangular, seco::JoinCompletion::kTriangular}) {
      seco::ChunkSource x(pair.x.interface, {});
      seco::ChunkSource y(pair.y.interface, {});
      seco::ParallelJoinConfig config;
      config.strategy.invocation = invocation;
      config.strategy.completion = completion;
      config.k = k;
      config.max_calls = max_calls;
      seco::ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
      SECO_ASSIGN_OR_RETURN(seco::JoinExecution exec, executor.Run());

      std::printf("\n  === %s ===\n", config.strategy.ToString().c_str());
      std::printf("    calls: X=%d Y=%d; results: %zu; parallel time %.0f ms\n",
                  exec.calls_x, exec.calls_y, exec.results.size(),
                  exec.latency_parallel_ms);
      DrawGrid(exec);
      if (!exec.results.empty()) {
        std::printf("    top pair: %s + %s (combined %.3f)\n",
                    exec.results[0].x.AtomicAt(1).AsString().c_str(),
                    exec.results[0].y.AtomicAt(1).AsString().c_str(),
                    exec.results[0].combined);
      }
    }
  }
  return seco::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  int k = argc > 1 ? std::atoi(argv[1]) : 15;
  int max_calls = argc > 2 ? std::atoi(argv[2]) : 14;
  seco::Status status = Run(k, max_calls);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
