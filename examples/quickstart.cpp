// Quickstart: register two simulated services, submit a multi-domain query,
// and print the optimized plan and the ranked answers.
//
// The scenario: find a well-reviewed restaurant in the city a concert takes
// place in — a Concert search service joined to a Restaurant search service
// through the city attribute.

#include <cstdio>

#include "core/seco.h"

namespace {

using seco::Adornment;
using seco::AttributeDef;
using seco::ServiceKind;
using seco::Value;
using seco::ValueType;

seco::Result<std::shared_ptr<seco::ServiceRegistry>> BuildCatalog() {
  auto registry = std::make_shared<seco::ServiceRegistry>();

  // --- Concert search service: ranked by relevance, chunked. -------------
  seco::SimServiceBuilder concerts("Concerts");
  concerts
      .Schema({AttributeDef::Atomic("Artist", ValueType::kString),
               AttributeDef::Atomic("City", ValueType::kString),
               AttributeDef::Atomic("Genre", ValueType::kString),
               AttributeDef::Atomic("Relevance", ValueType::kDouble)})
      .Pattern({{"Artist", Adornment::kOutput},
                {"City", Adornment::kOutput},
                {"Genre", Adornment::kInput},
                {"Relevance", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch);
  seco::ServiceStats concert_stats;
  concert_stats.chunk_size = 5;
  concert_stats.latency_ms = 120;
  concert_stats.decay = seco::ScoreDecay::kLinear;
  concerts.Stats(concert_stats);
  const char* cities[] = {"Milano", "Torino", "Roma", "Napoli"};
  for (int i = 0; i < 40; ++i) {
    double quality = 1.0 - i / 40.0;
    concerts.AddRow(seco::Tuple({Value("Band" + std::to_string(i)),
                                 Value(cities[i % 4]), Value("rock"),
                                 Value(quality)}),
                    quality);
  }
  SECO_RETURN_IF_ERROR(concerts.BuildInto(*registry).status());

  // --- Restaurant search service: city is an input, ranked by rating. ----
  seco::SimServiceBuilder restaurants("Restaurants");
  restaurants
      .Schema({AttributeDef::Atomic("Name", ValueType::kString),
               AttributeDef::Atomic("City", ValueType::kString),
               AttributeDef::Atomic("Rating", ValueType::kDouble)})
      .Pattern({{"Name", Adornment::kOutput},
                {"City", Adornment::kInput},
                {"Rating", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch);
  seco::ServiceStats rest_stats;
  rest_stats.chunk_size = 3;
  rest_stats.latency_ms = 80;
  rest_stats.decay = seco::ScoreDecay::kLinear;
  restaurants.Stats(rest_stats);
  int id = 0;
  for (const char* city : cities) {
    for (int r = 0; r < 9; ++r) {
      double rating = 1.0 - r / 9.0;
      restaurants.AddRow(
          seco::Tuple({Value("Trattoria" + std::to_string(id++)), Value(city),
                       Value(rating)}),
          rating);
    }
  }
  SECO_RETURN_IF_ERROR(restaurants.BuildInto(*registry).status());
  return registry;
}

seco::Status RunDemo() {
  SECO_ASSIGN_OR_RETURN(std::shared_ptr<seco::ServiceRegistry> registry,
                        BuildCatalog());

  seco::OptimizerOptions options;
  options.k = 5;
  options.metric = seco::CostMetricKind::kExecutionTime;
  seco::QuerySession session(registry, options);

  const std::string query =
      "select Concerts as C, Restaurants as R "
      "where C.Genre = INPUT1 and C.City = R.City "
      "rank by (0.6, 0.4)";

  SECO_ASSIGN_OR_RETURN(seco::QueryOutcome outcome,
                        session.Run(query, {{"INPUT1", Value("rock")}}));

  std::printf("=== optimized plan (cost %.1f ms, est. answers %.1f) ===\n",
              outcome.optimization.cost,
              outcome.optimization.estimated_answers);
  std::printf("%s\n", outcome.optimization.plan.ToString().c_str());

  std::printf("=== top-%zu answers (service calls: %d, simulated %.0f ms) ===\n",
              outcome.execution.combinations.size(), outcome.execution.total_calls,
              outcome.execution.elapsed_ms);
  for (const seco::Combination& combo : outcome.execution.combinations) {
    const seco::Tuple& concert = combo.components[0];
    const seco::Tuple& restaurant = combo.components[1];
    std::printf("  %.3f  %-8s in %-7s + %-12s (rating %.2f)\n",
                combo.combined_score, concert.AtomicAt(0).AsString().c_str(),
                concert.AtomicAt(1).AsString().c_str(),
                restaurant.AtomicAt(0).AsString().c_str(),
                restaurant.AtomicAt(2).AsDouble());
  }
  return seco::Status::OK();
}

}  // namespace

int main() {
  seco::Status status = RunDemo();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
