// The Fig. 2/3 scenario: plan a trip to a warm-weather conference — an
// exact proliferative Conference service, a Weather service that is
// *selective in the context of the query* (AvgTemp > 26), and ranked Flight
// and Hotel search services joined in parallel by merge-scan.
//
// Demonstrates: exact vs. search services, selection nodes, parallel joins,
// and how different cost metrics rate the same plan.

#include <cstdio>

#include "core/seco.h"

namespace {

seco::Status Run() {
  SECO_ASSIGN_OR_RETURN(seco::Scenario scenario, seco::MakeConferenceScenario());
  std::printf("query:\n  %s\n", scenario.query_text.c_str());

  seco::OptimizerOptions options;
  options.k = 10;
  options.metric = seco::CostMetricKind::kExecutionTime;
  options.topology_heuristic = seco::TopologyHeuristic::kParallelIsBetter;
  seco::QuerySession session(scenario.registry, options);

  SECO_ASSIGN_OR_RETURN(seco::BoundQuery bound,
                        session.Prepare(scenario.query_text));
  SECO_ASSIGN_OR_RETURN(seco::FeasibilityReport report,
                        seco::CheckFeasibility(bound));
  std::printf("\nfeasible: %s; invocation order:", report.feasible ? "yes" : "no");
  for (int atom : report.reachable_order) {
    std::printf(" %s", bound.atoms[atom].alias.c_str());
  }
  std::printf("\n");

  SECO_ASSIGN_OR_RETURN(seco::QueryOutcome outcome,
                        session.Run(scenario.query_text, scenario.inputs));
  std::printf("\noptimized plan:\n%s\n",
              outcome.optimization.plan.ToString().c_str());

  // Rate the chosen plan under every metric of §5.1.
  std::printf("metric ratings of the chosen plan:\n");
  for (seco::CostMetricKind kind :
       {seco::CostMetricKind::kExecutionTime, seco::CostMetricKind::kSumCost,
        seco::CostMetricKind::kRequestResponse, seco::CostMetricKind::kCallCount,
        seco::CostMetricKind::kBottleneck, seco::CostMetricKind::kTimeToScreen}) {
    SECO_ASSIGN_OR_RETURN(double cost,
                          seco::PlanCost(outcome.optimization.plan, kind));
    std::printf("  %-18s %10.1f %s\n", seco::CostMetricKindToString(kind), cost,
                seco::MetricIsTimeBased(kind) ? "ms" : "units");
  }

  std::printf("\ntrips found (%d calls, %.0f simulated ms):\n",
              outcome.execution.total_calls, outcome.execution.elapsed_ms);
  for (const seco::Combination& combo : outcome.execution.combinations) {
    const seco::Tuple& conf = combo.components[0];
    const seco::Tuple& weather = combo.components[1];
    const seco::Tuple& flight = combo.components[2];
    const seco::Tuple& hotel = combo.components[3];
    std::printf(
        "  %.3f  %-7s in %-7s (%4.1fC)  fly %-9s EUR%-6.0f  stay %-8s %.1f*\n",
        combo.combined_score, conf.AtomicAt(1).AsString().c_str(),
        conf.AtomicAt(2).AsString().c_str(), weather.AtomicAt(2).AsDouble(),
        flight.AtomicAt(1).AsString().c_str(), flight.AtomicAt(2).AsDouble(),
        hotel.AtomicAt(1).AsString().c_str(), hotel.AtomicAt(2).AsDouble());
  }
  return seco::Status::OK();
}

}  // namespace

int main() {
  seco::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
