// seco_shell: command-line driver for ad-hoc multi-domain queries against
// the built-in scenarios.
//
// Usage:
//   seco_shell [options] ["query text"]
//     --scenario=movie|conference|doctor   data to load (default: movie)
//     --metric=time|sum|rr|calls|bottleneck|tts   cost metric (default: time)
//     --k=N                         answers to produce (default: 10)
//     --parallel | --selective      topology heuristic (default: selective)
//     --threads=N                   engine worker threads (default: 1)
//     --stream                      run the pull-based streaming engine
//                                   (answers in arrival order)
//     --prefetch=N                  streaming speculation depth: with
//                                   --threads>1, fetch up to N chunks ahead
//                                   of the consumer (default: 0, off)
//     --shared-cache                serve repeats from the process-wide
//                                   service-call cache (runs twice to show
//                                   the warm hit-rate)
//     --dot                         print the plan as Graphviz DOT
//     --explain                     print the bound query and stop
//     --estimates                   print estimate-vs-actual per node
//
// Reliability (docs/RELIABILITY.md):
//     --faults=R                    transient fault rate in [0,1] injected
//                                   into every scenario service
//     --fault-attempts=N            attempts a stricken request fails before
//                                   recovering (default 2)
//     --spikes=R                    latency-spike rate in [0,1]
//     --outage=SERVICE              permanent outage of one named service
//     --fault-seed=S                fault-model seed (default: per service)
//     --retries=N                   retry budget per call (capped backoff)
//     --call-deadline=MS            per-call deadline on simulated latency
//     --query-deadline=MS           simulated-clock budget for the query
//     --breaker=N                   open a circuit breaker after N
//                                   consecutive failures per interface
//     --hedge=MS                    launch a backup call after MS real ms
//     --degrade                     report partial answers instead of
//                                   failing when a service stays down
//
// Plan repair (docs/RELIABILITY.md, "Failover & plan repair"):
//     --replicas                    register an "R"-suffixed replica of every
//                                   scenario service, so --outage has a
//                                   failover target
//     --repair=off|degrade|failover|failover_then_degrade
//                                   what to do when a service is permanently
//                                   lost mid-query (default: off)
//
// Serving mode (docs/SERVER.md):
//     --serve                       run a QueryServer and drive a load
//                                   profile through it instead of a single
//                                   query; prints the per-class serving
//                                   report (outcomes, latency percentiles,
//                                   degradation histogram, shed counts)
//     --load=light|overload|burst   load profile (default: light)
//     --max-in-flight=N             admission window (default: 4)
//     --no-ladder                   disable the degradation ladder (answers
//                                   then match standalone runs bit for bit)
//     --seed=S                      load-generator seed (default: 1)
//     --abandon=F                   fraction of load queries the client
//                                   abandons (QueryServer::Cancel) after
//                                   --cancel-after-ms (default: 0)
//     --cancel-after-ms=MS          client-side abandonment timer; setting
//                                   it without --abandon abandons every
//                                   query (default: 1)
//     --stall-grace=MS              stuck-query watchdog: force-cancel
//                                   queries with no progress for MS
//                                   (default: 0 = watchdog off)
//     --answer-cache=on|off         whole-answer reuse + single-flight +
//                                   optimizer plan memo (docs/CACHING.md;
//                                   default: off)
//     --memo-bytes=N                plan-memo byte budget (0 keeps only the
//                                   answer cache; default: 4 MiB)
// Fault flags compose with --serve: the load then runs against the faulty
// scenario, with breaker state feeding the ladder's pressure score.
//
// Network mode (docs/NETWORK.md):
//     --listen=PORT                 run as a daemon: a NetServer front end
//                                   over the QueryServer on 127.0.0.1:PORT
//                                   (0 = ephemeral). Prints "listening on
//                                   port N" once ready. SIGINT/SIGTERM
//                                   drains in flight queries, refuses new
//                                   connections with a retry-after, and
//                                   exits 0.
//     --serve-backend=PORT          run a BackendServer exposing the
//                                   scenario's services over the wire
//                                   (0 = ephemeral). Same signal handling.
//     --connect=HOST:PORT           drive the --load profile against a
//                                   remote front end instead of serving
//                                   in-process
//     --remote-backend=HOST:PORT    swap every scenario service for a
//                                   RemoteServiceHandler against that
//                                   backend daemon before serving/querying
//     --drain-grace=MS              window between the drain signal and
//                                   the final stop, during which new
//                                   connections get the structured
//                                   "draining; retry after" rejection
//                                   (default 200)
//     --dump-answers=PATH           write one AnswerBodyHex line per
//                                   response (submission order) — the
//                                   byte-diffable oracle form used by
//                                   scripts/net_e2e.sh; applies to --serve
//                                   and --connect runs
//     --write-timeout=MS            front-end write-progress deadline: a
//                                   client that stops reading while owed
//                                   responses is disconnected (slow-loris
//                                   defense; applies to --listen)
//
// Chaos (docs/NETWORK.md, "Failure model & chaos testing"):
//     --chaos-seed=S                deterministic fault schedule seed
//     --chaos-refuse=R              connection-refusal rate in [0,1]
//     --chaos-reset=R               mid-stream RST rate
//     --chaos-corrupt=R             byte-corruption rate (checksum-caught)
//     --chaos-truncate=R            mid-frame truncation rate
//     --chaos-stall=R               one-shot stall rate
//     --chaos-stall-ms=MS           stall duration (default 25)
//     --chaos-blackhole=R           read-silence rate
//     --chaos-window=BYTES          fault offsets land in the first BYTES
//                                   of each connection (default 8192)
// Chaos flags apply to whichever network role this process plays: accepted
// connections for --listen / --serve-backend, dialed connections for
// --remote-backend. A fired-fault summary prints on shutdown.
//     --chaos-proxy=PORT            run a chaos TCP proxy on 127.0.0.1:PORT
//                                   (0 = ephemeral) instead of a query
//                                   role; forwards bytes verbatim to
//                                   --upstream while injecting the chaos
//                                   schedule on the client-facing socket
//     --upstream=HOST:PORT          where --chaos-proxy forwards to
//
// With any reliability knob set, a summary table (attempts, retries, hedges
// won, per-interface breaker state, degraded nodes) prints after the
// results; with a repair policy, a repair block (events, replans, chosen
// replicas, salvaged calls) follows it.
//
// Without a query argument, the scenario's canonical query runs. INPUT
// variables are bound from the scenario's defaults.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/seco.h"
#include "data/kernels.h"
#include "query/printer.h"

namespace {

struct Options {
  std::string scenario = "movie";
  seco::CostMetricKind metric = seco::CostMetricKind::kExecutionTime;
  int k = 10;
  seco::TopologyHeuristic topology = seco::TopologyHeuristic::kSelectiveFirst;
  int threads = 1;
  bool stream = false;
  int prefetch = 0;
  bool shared_cache = false;
  bool dot = false;
  bool explain = false;
  bool estimates = false;
  double faults = 0.0;
  int fault_attempts = 2;
  double spikes = 0.0;
  std::string outage;
  uint64_t fault_seed = 0;
  int retries = 0;
  double call_deadline_ms = 0.0;
  double query_deadline_ms = 0.0;
  int breaker = 0;
  double hedge_ms = -1.0;
  bool degrade = false;
  bool replicas = false;
  seco::RepairPolicy repair = seco::RepairPolicy::kOff;
  bool serve = false;
  bool answer_cache = false;
  size_t memo_bytes = 4 << 20;
  std::string load = "light";
  int max_in_flight = 4;
  bool no_ladder = false;
  uint64_t seed = 1;
  double abandon_fraction = 0.0;
  double cancel_after_ms = 0.0;   // 0 keeps the profile default
  double stall_grace_ms = 0.0;    // 0 = watchdog off
  int listen = -1;          // >= 0: front-end daemon on this port
  int serve_backend = -1;   // >= 0: backend daemon on this port
  std::string connect;      // host:port of a front end to drive load at
  std::string remote_backend;  // host:port of a backend daemon to call
  int drain_grace_ms = 200;
  std::string dump_answers;
  int write_timeout_ms = -1;
  int chaos_proxy = -1;     // >= 0: chaos proxy daemon on this port
  std::string upstream;     // host:port the chaos proxy forwards to
  seco::ChaosOptions chaos;
  std::string query;

  bool faulty() const {
    return faults > 0.0 || spikes > 0.0 || !outage.empty();
  }
  seco::ReliabilityPolicy policy() const {
    seco::ReliabilityPolicy policy;
    policy.retry.max_retries = retries;
    policy.call_deadline_ms = call_deadline_ms;
    policy.query_deadline_ms = query_deadline_ms;
    policy.breaker_failure_threshold = breaker;
    policy.hedge_delay_ms = hedge_ms;
    policy.degrade = degrade;
    return policy;
  }
};

// Daemon shutdown: SIGINT/SIGTERM set a flag; the serving loop notices,
// drains gracefully, and exits 0 (the soak harness asserts on that).
volatile std::sig_atomic_t g_shutdown = 0;
void OnShutdownSignal(int) { g_shutdown = 1; }

void AwaitShutdownSignal() {
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool SplitHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(std::atoi(spec.c_str() + colon + 1));
  return !host->empty() && *port != 0;
}

/// One AnswerBodyHex line per response, submission order — the diffable
/// oracle form (scripts/net_e2e.sh byte-compares these across topologies).
seco::Status DumpAnswerBodies(const std::string& path,
                              const std::vector<std::string>& bodies) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return seco::Status::Internal("cannot open '" + path + "' for writing");
  }
  for (const std::string& body : bodies) {
    std::fprintf(f, "%s\n", seco::AnswerBodyHex(body).c_str());
  }
  std::fclose(f);
  std::printf("wrote %zu answer bodies to %s\n", bodies.size(), path.c_str());
  return seco::Status::OK();
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--scenario=")) {
      options->scenario = v;
    } else if (const char* v = value_of("--metric=")) {
      std::string m = v;
      if (m == "time") options->metric = seco::CostMetricKind::kExecutionTime;
      else if (m == "sum") options->metric = seco::CostMetricKind::kSumCost;
      else if (m == "rr") options->metric = seco::CostMetricKind::kRequestResponse;
      else if (m == "calls") options->metric = seco::CostMetricKind::kCallCount;
      else if (m == "bottleneck") options->metric = seco::CostMetricKind::kBottleneck;
      else if (m == "tts") options->metric = seco::CostMetricKind::kTimeToScreen;
      else {
        std::fprintf(stderr, "unknown metric '%s'\n", v);
        return false;
      }
    } else if (const char* v = value_of("--k=")) {
      options->k = std::atoi(v);
    } else if (const char* v = value_of("--threads=")) {
      options->threads = std::atoi(v);
    } else if (arg == "--stream") {
      options->stream = true;
    } else if (const char* v = value_of("--prefetch=")) {
      options->prefetch = std::atoi(v);
    } else if (arg == "--shared-cache") {
      options->shared_cache = true;
    } else if (arg == "--parallel") {
      options->topology = seco::TopologyHeuristic::kParallelIsBetter;
    } else if (arg == "--selective") {
      options->topology = seco::TopologyHeuristic::kSelectiveFirst;
    } else if (arg == "--dot") {
      options->dot = true;
    } else if (arg == "--explain") {
      options->explain = true;
    } else if (arg == "--estimates") {
      options->estimates = true;
    } else if (const char* v = value_of("--faults=")) {
      options->faults = std::atof(v);
    } else if (const char* v = value_of("--fault-attempts=")) {
      options->fault_attempts = std::atoi(v);
    } else if (const char* v = value_of("--spikes=")) {
      options->spikes = std::atof(v);
    } else if (const char* v = value_of("--outage=")) {
      options->outage = v;
    } else if (const char* v = value_of("--fault-seed=")) {
      options->fault_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--retries=")) {
      options->retries = std::atoi(v);
    } else if (const char* v = value_of("--call-deadline=")) {
      options->call_deadline_ms = std::atof(v);
    } else if (const char* v = value_of("--query-deadline=")) {
      options->query_deadline_ms = std::atof(v);
    } else if (const char* v = value_of("--breaker=")) {
      options->breaker = std::atoi(v);
    } else if (const char* v = value_of("--hedge=")) {
      options->hedge_ms = std::atof(v);
    } else if (arg == "--degrade") {
      options->degrade = true;
    } else if (arg == "--replicas") {
      options->replicas = true;
    } else if (const char* v = value_of("--repair=")) {
      seco::Result<seco::RepairPolicy> parsed = seco::ParseRepairPolicy(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return false;
      }
      options->repair = parsed.value();
    } else if (arg == "--serve") {
      options->serve = true;
    } else if (const char* v = value_of("--answer-cache=")) {
      if (std::strcmp(v, "on") == 0) {
        options->answer_cache = true;
      } else if (std::strcmp(v, "off") == 0) {
        options->answer_cache = false;
      } else {
        std::fprintf(stderr, "unknown --answer-cache value '%s'\n", v);
        return false;
      }
    } else if (const char* v = value_of("--memo-bytes=")) {
      options->memo_bytes = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value_of("--load=")) {
      options->load = v;
    } else if (const char* v = value_of("--max-in-flight=")) {
      options->max_in_flight = std::atoi(v);
    } else if (arg == "--no-ladder") {
      options->no_ladder = true;
    } else if (const char* v = value_of("--seed=")) {
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--abandon=")) {
      options->abandon_fraction = std::atof(v);
    } else if (const char* v = value_of("--cancel-after-ms=")) {
      options->cancel_after_ms = std::atof(v);
      // --cancel-after-ms alone means "abandon everything after MS".
      if (options->abandon_fraction <= 0.0) options->abandon_fraction = 1.0;
    } else if (const char* v = value_of("--stall-grace=")) {
      options->stall_grace_ms = std::atof(v);
    } else if (const char* v = value_of("--listen=")) {
      options->listen = std::atoi(v);
    } else if (const char* v = value_of("--serve-backend=")) {
      options->serve_backend = std::atoi(v);
    } else if (arg == "--serve-backend") {
      options->serve_backend = 0;
    } else if (const char* v = value_of("--connect=")) {
      options->connect = v;
    } else if (const char* v = value_of("--remote-backend=")) {
      options->remote_backend = v;
    } else if (const char* v = value_of("--drain-grace=")) {
      options->drain_grace_ms = std::atoi(v);
    } else if (const char* v = value_of("--dump-answers=")) {
      options->dump_answers = v;
    } else if (const char* v = value_of("--write-timeout=")) {
      options->write_timeout_ms = std::atoi(v);
    } else if (const char* v = value_of("--chaos-proxy=")) {
      options->chaos_proxy = std::atoi(v);
    } else if (const char* v = value_of("--upstream=")) {
      options->upstream = v;
    } else if (const char* v = value_of("--chaos-seed=")) {
      options->chaos.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--chaos-refuse=")) {
      options->chaos.refuse_rate = std::atof(v);
    } else if (const char* v = value_of("--chaos-reset=")) {
      options->chaos.reset_rate = std::atof(v);
    } else if (const char* v = value_of("--chaos-corrupt=")) {
      options->chaos.corrupt_rate = std::atof(v);
    } else if (const char* v = value_of("--chaos-truncate=")) {
      options->chaos.truncate_rate = std::atof(v);
    } else if (const char* v = value_of("--chaos-stall=")) {
      options->chaos.stall_rate = std::atof(v);
    } else if (const char* v = value_of("--chaos-stall-ms=")) {
      options->chaos.stall_ms = std::atof(v);
    } else if (const char* v = value_of("--chaos-blackhole=")) {
      options->chaos.blackhole_rate = std::atof(v);
    } else if (const char* v = value_of("--chaos-window=")) {
      options->chaos.fault_window_bytes =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      options->query = arg;
    }
  }
  return true;
}

void PrintChaosStats(const char* role, const seco::ChaosStats& stats) {
  std::printf(
      "%s chaos: %lld connections planned, %lld refusals, %lld resets, "
      "%lld corruptions, %lld truncations, %lld stalls, %lld blackholes\n",
      role, static_cast<long long>(stats.connections_planned),
      static_cast<long long>(stats.refusals),
      static_cast<long long>(stats.resets),
      static_cast<long long>(stats.corruptions),
      static_cast<long long>(stats.truncations),
      static_cast<long long>(stats.stalls),
      static_cast<long long>(stats.blackholes));
}

seco::Status Run(const Options& options) {
  if (options.chaos_proxy >= 0) {
    // Chaos proxy daemon: no query role at all — a byte pump between real
    // daemons that injects the deterministic fault schedule on the
    // client-facing socket (scripts/net_chaos.sh runs one per seed).
    std::string host;
    uint16_t port = 0;
    if (!SplitHostPort(options.upstream, &host, &port)) {
      return seco::Status::InvalidArgument(
          "--chaos-proxy needs --upstream=HOST:PORT, got '" +
          options.upstream + "'");
    }
    seco::ChaosProxy proxy(host, port, options.chaos);
    SECO_RETURN_IF_ERROR(
        proxy.Start(static_cast<uint16_t>(options.chaos_proxy)));
    std::printf("chaos proxy listening on port %u (upstream %s)\n",
                proxy.port(), options.upstream.c_str());
    std::fflush(stdout);
    AwaitShutdownSignal();
    proxy.Stop();
    PrintChaosStats("proxy", proxy.stats());
    return seco::Status::OK();
  }

  seco::Scenario scenario;
  if (options.scenario == "movie") {
    SECO_ASSIGN_OR_RETURN(scenario, seco::MakeMovieScenario());
  } else if (options.scenario == "conference") {
    SECO_ASSIGN_OR_RETURN(scenario, seco::MakeConferenceScenario());
  } else if (options.scenario == "doctor") {
    SECO_ASSIGN_OR_RETURN(scenario, seco::MakeDoctorScenario());
  } else {
    return seco::Status::InvalidArgument("unknown scenario '" +
                                         options.scenario + "'");
  }
  std::string query_text =
      options.query.empty() ? scenario.query_text : options.query;

  if (options.replicas) {
    // Register before faults are injected: replicas clone the clean backends,
    // so an --outage of the original leaves its "R" twin healthy.
    std::vector<std::string> names;
    for (const auto& [name, backend] : scenario.backends) names.push_back(name);
    for (const std::string& name : names) {
      SECO_RETURN_IF_ERROR(
          seco::AddReplica(&scenario, name, name + "R").status());
    }
  }

  if (options.faulty()) {
    bool outage_found = options.outage.empty();
    for (auto& [name, backend] : scenario.backends) {
      seco::FaultProfile profile;
      profile.transient_rate = options.faults;
      profile.transient_attempts = options.fault_attempts;
      profile.spike_rate = options.spikes;
      profile.seed = options.fault_seed;
      if (name == options.outage) {
        profile.permanent_outage = true;
        outage_found = true;
      }
      if (profile.active()) backend->set_fault_profile(profile);
    }
    if (!outage_found) {
      return seco::Status::InvalidArgument("unknown service '" +
                                           options.outage + "' for --outage");
    }
  }

  // Reliability summary table, shared by both engines.
  auto print_reliability = [&](const seco::ReliabilityStats& stats,
                               const std::vector<seco::DegradedStatus>& degraded,
                               const std::vector<std::string>& open_breakers,
                               bool complete) {
    if (!options.faulty() && !options.policy().enabled()) return;
    std::printf("\nreliability summary:\n");
    std::printf("  %-24s %lld\n", "attempts",
                static_cast<long long>(stats.attempts));
    std::printf("  %-24s %lld\n", "retries",
                static_cast<long long>(stats.retries));
    std::printf("  %-24s %lld\n", "transient failures",
                static_cast<long long>(stats.transient_failures));
    std::printf("  %-24s %lld\n", "deadline hits",
                static_cast<long long>(stats.deadline_hits));
    std::printf("  %-24s %lld / %lld\n", "hedges launched / won",
                static_cast<long long>(stats.hedges_launched),
                static_cast<long long>(stats.hedges_won));
    std::printf("  %-24s %lld\n", "breaker short-circuits",
                static_cast<long long>(stats.breaker_short_circuits));
    std::printf("  %-24s %lld\n", "permanent failures",
                static_cast<long long>(stats.permanent_failures));
    std::printf("  %-24s %.1f ms\n", "backoff", stats.backoff_ms);
    std::printf("  %-24s %.1f ms\n", "overhead charged", stats.overhead_ms);
    if (open_breakers.empty()) {
      std::printf("  %-24s all closed\n", "breakers");
    } else {
      std::string names;
      for (const std::string& name : open_breakers) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      std::printf("  %-24s open: %s\n", "breakers", names.c_str());
    }
    if (!stats.breakers.empty()) {
      std::printf("  breaker state:\n");
      std::printf("    %-20s %-10s %6s %9s %9s\n", "interface", "phase",
                  "trips", "failures", "shorted");
      for (const seco::CircuitBreakerState& b : stats.breakers) {
        std::printf("    %-20s %-10s %6d %9d %9lld\n",
                    b.interface_name.c_str(),
                    seco::BreakerPhaseToString(b.phase), b.trips,
                    b.consecutive_failures,
                    static_cast<long long>(b.short_circuits));
      }
    }
    for (const seco::ServiceLostEvent& lost : stats.services_lost) {
      std::printf("  service lost: %-14s %s%s\n", lost.interface_name.c_str(),
                  lost.reason.c_str(),
                  lost.breaker_open ? " [breaker open]" : "");
    }
    for (const seco::DegradedStatus& d : degraded) {
      std::printf("  degraded node %-3d %s: %d failed bindings (%s)\n", d.node,
                  d.service.c_str(), d.failed_bindings, d.reason.c_str());
    }
    std::printf("  %-24s %s\n", "answers",
                complete ? "complete" : "PARTIAL (degraded services)");
  };

  // Repair summary: what was lost, what it was replanned onto, and how much
  // of the abandoned round's work the shared cache salvaged.
  auto print_repair = [&](const seco::RepairStats& repair) {
    if (options.repair == seco::RepairPolicy::kOff && !repair.any()) return;
    std::printf("\nrepair summary (policy %s):\n",
                seco::RepairPolicyToString(options.repair));
    std::printf("  %-24s %d\n", "services lost", repair.events);
    std::printf("  %-24s %d\n", "replans", repair.replans);
    std::printf("  %-24s %.2f ms (wall; never on the simulated clock)\n",
                "replan time", repair.replan_ms);
    std::printf("  %-24s %lld\n", "salvaged calls",
                static_cast<long long>(repair.salvaged_calls));
    std::printf("  %-24s %.1f ms\n", "abandoned rounds", repair.abandoned_ms);
    for (const seco::RepairEvent& event : repair.log) {
      if (event.replacement.empty()) {
        std::printf("  lost %-20s -> (unrepaired: %s)\n", event.lost.c_str(),
                    event.reason.c_str());
      } else {
        std::printf("  lost %-20s -> %s (%s)\n", event.lost.c_str(),
                    event.replacement.c_str(), event.reason.c_str());
      }
    }
  };

  // A degraded atom has a placeholder component; print it as a hole rather
  // than dereferencing an empty tuple.
  auto component_str = [](const seco::Combination& combo,
                          size_t atom) -> std::string {
    for (int m : combo.missing_atoms) {
      if (static_cast<size_t>(m) == atom) return "<missing>";
    }
    return combo.components[atom].AtomicAt(0).ToString();
  };

  std::shared_ptr<seco::RemoteBackendClient> remote_client;
  if (!options.remote_backend.empty()) {
    // Swap every service for a RemoteServiceHandler twin before anything
    // plans or executes: planner, engines, and decorators are untouched —
    // only the handler seam crosses the wire (docs/NETWORK.md).
    std::string host;
    uint16_t port = 0;
    if (!SplitHostPort(options.remote_backend, &host, &port)) {
      return seco::Status::InvalidArgument(
          "--remote-backend expects HOST:PORT, got '" +
          options.remote_backend + "'");
    }
    seco::RemoteBackendOptions remote_options;
    remote_options.chaos = options.chaos;  // client-side dial chaos
    SECO_ASSIGN_OR_RETURN(
        scenario.registry,
        seco::MakeRemoteRegistry(*scenario.registry, host, port,
                                 remote_options, &remote_client));
    std::printf("using remote backends at %s\n",
                options.remote_backend.c_str());
  }

  // Remote pool/health table: how the self-healing client spent the run
  // (reuse vs dials, discards, eviction state per replica). Printed after
  // any run that went over the wire to a backend.
  auto print_remote_pool = [&] {
    if (remote_client == nullptr) return;
    seco::RemotePoolStats pool = remote_client->stats();
    std::printf("\nremote backend pool:\n");
    std::printf("  %-24s %lld\n", "connections opened",
                static_cast<long long>(pool.connections_opened));
    std::printf("  %-24s %lld\n", "connections reused",
                static_cast<long long>(pool.connections_reused));
    std::printf("  %-24s %lld\n", "connections discarded",
                static_cast<long long>(pool.connections_discarded));
    std::printf("  %-24s %lld\n", "reconnect attempts",
                static_cast<long long>(pool.reconnect_attempts));
    std::printf("  %-24s %lld\n", "dial overflows",
                static_cast<long long>(pool.dial_overflows));
    std::printf("  %-24s %lld sent / %lld failed\n", "checkout pings",
                static_cast<long long>(pool.pings_sent),
                static_cast<long long>(pool.ping_failures));
    std::printf("  %-24s %lld (%lld exhaustions)\n", "endpoints evicted",
                static_cast<long long>(pool.endpoints_evicted),
                static_cast<long long>(pool.endpoint_exhaustions));
    std::printf("    %-22s %-8s %6s %8s %9s %7s\n", "endpoint", "state",
                "dials", "calls ok", "transport", "evicted");
    for (const seco::RemoteEndpointHealth& ep : pool.endpoints) {
      std::printf("    %-22s %-8s %6lld %8lld %9lld %7lld\n",
                  ep.endpoint.c_str(), ep.evicted ? "EVICTED" : "healthy",
                  static_cast<long long>(ep.dials),
                  static_cast<long long>(ep.calls_ok),
                  static_cast<long long>(ep.transport_failures),
                  static_cast<long long>(ep.evictions));
    }
    if (options.chaos.active()) {
      PrintChaosStats("client", remote_client->chaos_stats());
    }
  };

  seco::OptimizerOptions optimizer_options;
  optimizer_options.k = options.k;
  optimizer_options.metric = options.metric;
  optimizer_options.topology_heuristic = options.topology;
  seco::QuerySession session(scenario.registry, optimizer_options);

  seco::RepairOptions repair_options;
  repair_options.policy = options.repair;
  repair_options.registry = scenario.registry.get();
  // Re-optimize with the same options as the original plan, so a failover
  // plan equals what planning against the replica would have produced.
  repair_options.optimizer = optimizer_options;

  auto make_server_options = [&] {
    seco::ServerOptions server_options;
    server_options.admission.max_in_flight = options.max_in_flight;
    server_options.ladder.enabled = !options.no_ladder;
    server_options.reliability = options.policy();
    server_options.repair = repair_options;
    server_options.num_threads = options.threads;
    server_options.prefetch_depth = options.prefetch;
    server_options.answer_cache = options.answer_cache;
    server_options.plan_memo_bytes = options.memo_bytes;
    server_options.watchdog.stall_grace_ms = options.stall_grace_ms;
    return server_options;
  };

  if (options.serve_backend >= 0) {
    // Backend daemon: the scenario's services (with whatever fault profiles
    // the flags injected) behind a BackendServer.
    seco::BackendServerOptions backend_options;
    backend_options.chaos = options.chaos;
    seco::BackendServer backend(backend_options);
    backend.ExposeRegistry(*scenario.registry);
    SECO_RETURN_IF_ERROR(
        backend.Start(static_cast<uint16_t>(options.serve_backend)));
    std::printf("backend listening on port %u\n", backend.port());
    std::fflush(stdout);
    AwaitShutdownSignal();
    backend.Stop();
    std::printf("backend served %lld calls (%lld deadline rejections)\n",
                static_cast<long long>(backend.calls_served()),
                static_cast<long long>(backend.deadline_rejections()));
    if (options.chaos.active()) {
      PrintChaosStats("backend", backend.chaos_stats());
    }
    return seco::Status::OK();
  }

  if (options.listen >= 0) {
    // Front-end daemon: QueryServer + NetServer until SIGINT/SIGTERM, then
    // graceful drain — new connections get the structured retry-after for
    // --drain-grace ms while in-flight queries run out, then exit 0.
    seco::QueryServer server(scenario.registry, make_server_options(),
                             optimizer_options);
    seco::NetServerOptions net_options;
    net_options.chaos = options.chaos;
    net_options.write_timeout_ms = options.write_timeout_ms;
    seco::NetServer net(&server, net_options);
    SECO_RETURN_IF_ERROR(net.Start(static_cast<uint16_t>(options.listen)));
    std::printf("listening on port %u\n", net.port());
    std::fflush(stdout);
    AwaitShutdownSignal();
    std::printf("draining: refusing new connections for %d ms\n",
                options.drain_grace_ms);
    std::fflush(stdout);
    net.BeginDrain();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.drain_grace_ms));
    net.Stop();
    seco::ServerStats stats = server.stats();
    std::printf(
        "served %lld queries over %lld connections "
        "(%lld shed, %lld protocol errors, %lld write stalls, "
        "%lld cancels, %lld disconnect cancels)\n",
        static_cast<long long>(net.queries_served()),
        static_cast<long long>(net.connections_accepted()),
        static_cast<long long>(stats.interactive.shed + stats.batch.shed),
        static_cast<long long>(net.protocol_errors()),
        static_cast<long long>(net.write_stalls()),
        static_cast<long long>(net.cancels_received()),
        static_cast<long long>(net.disconnect_cancels()));
    if (options.stall_grace_ms > 0.0) {
      seco::WatchdogStats wd = server.watchdog_stats();
      std::printf("watchdog: %lld tracked, %lld scans, %lld reaped\n",
                  static_cast<long long>(wd.tracked),
                  static_cast<long long>(wd.scans),
                  static_cast<long long>(wd.reaped));
    }
    if (options.chaos.active()) {
      PrintChaosStats("front end", net.chaos_stats());
    }
    return seco::Status::OK();
  }

  if (!options.connect.empty()) {
    // Wire client: replay the load profile against a remote front end and
    // report outcomes like the in-process serving report.
    std::string host;
    uint16_t port = 0;
    if (!SplitHostPort(options.connect, &host, &port)) {
      return seco::Status::InvalidArgument(
          "--connect expects HOST:PORT, got '" + options.connect + "'");
    }
    std::optional<seco::LoadProfile> profile =
        seco::LoadProfileByName(options.load);
    if (!profile.has_value()) {
      return seco::Status::InvalidArgument("unknown load profile '" +
                                           options.load + "'");
    }
    profile->seed = options.seed;
    profile->streaming = options.stream;
    seco::LoadGenerator generator(*profile, query_text, scenario.inputs);
    std::vector<seco::LoadItem> schedule = generator.Schedule();
    std::printf("driving %zu queries (profile '%s', %s loop) at %s...\n",
                schedule.size(), options.load.c_str(),
                profile->closed_loop_width > 0 ? "closed" : "open",
                options.connect.c_str());
    seco::WireLoadReport report =
        seco::DriveLoadOverWire(host, port, schedule, *profile);
    std::printf(
        "wire report (wall %.1f ms): %lld completed, %lld degraded, "
        "%lld shed, %lld expired, %lld failed, %lld cancelled\n",
        report.wall_ms,
        static_cast<long long>(
            report.CountOutcome(seco::ServedOutcome::kCompleted)),
        static_cast<long long>(
            report.CountOutcome(seco::ServedOutcome::kDegraded)),
        static_cast<long long>(report.CountOutcome(seco::ServedOutcome::kShed)),
        static_cast<long long>(
            report.CountOutcome(seco::ServedOutcome::kDeadlineExpired)),
        static_cast<long long>(
            report.CountOutcome(seco::ServedOutcome::kFailed)),
        static_cast<long long>(
            report.CountOutcome(seco::ServedOutcome::kCancelled)));
    if (!options.dump_answers.empty()) {
      SECO_RETURN_IF_ERROR(
          DumpAnswerBodies(options.dump_answers, report.bodies));
    }
    return seco::Status::OK();
  }

  if (options.serve) {
    std::optional<seco::LoadProfile> profile =
        seco::LoadProfileByName(options.load);
    if (!profile.has_value()) {
      return seco::Status::InvalidArgument("unknown load profile '" +
                                           options.load + "'");
    }
    profile->seed = options.seed;
    profile->streaming = options.stream;
    profile->abandon_fraction = options.abandon_fraction;
    if (options.cancel_after_ms > 0.0) {
      profile->abandon_after_ms = options.cancel_after_ms;
    }

    seco::ServerOptions server_options = make_server_options();
    seco::QueryServer server(scenario.registry, server_options,
                             optimizer_options);

    seco::LoadGenerator generator(*profile, query_text, scenario.inputs);
    std::vector<seco::LoadItem> schedule = generator.Schedule();
    std::printf(
        "serving %zu queries (profile '%s', %s loop, seed %llu, "
        "window %d, ladder %s)...\n",
        schedule.size(), options.load.c_str(),
        profile->closed_loop_width > 0 ? "closed" : "open",
        static_cast<unsigned long long>(profile->seed),
        options.max_in_flight, options.no_ladder ? "off" : "on");
    seco::LoadReport report = seco::DriveLoad(&server, schedule, *profile);
    server.Drain();

    if (!options.dump_answers.empty()) {
      std::vector<std::string> bodies;
      bodies.reserve(report.responses.size());
      for (const seco::QueryResponse& response : report.responses) {
        bodies.push_back(seco::EncodeAnswerBody(response));
      }
      SECO_RETURN_IF_ERROR(DumpAnswerBodies(options.dump_answers, bodies));
    }

    seco::PressureSignals pressure = server.pressure();
    seco::ServerStats stats = server.stats();
    seco::CallCacheStats cache = server.cache().stats();

    std::printf("\nserving report (wall %.1f ms, goodput %.1f q/s):\n",
                report.wall_ms,
                report.wall_ms > 0.0
                    ? 1000.0 *
                          static_cast<double>(
                              report.CountOutcome(
                                  seco::ServedOutcome::kCompleted) +
                              report.CountOutcome(seco::ServedOutcome::kDegraded)) /
                          report.wall_ms
                    : 0.0);
    std::printf(
        "  %-12s %9s %9s %8s %6s %8s %6s %9s %10s %9s %9s %9s %9s\n", "class",
        "submitted", "completed", "degraded", "shed", "expired", "failed",
        "cancelled", "peak queue", "wait p50", "wait p95", "sim p50",
        "sim p95");
    for (seco::PriorityClass priority :
         {seco::PriorityClass::kInteractive, seco::PriorityClass::kBatch}) {
      const seco::ClassServingStats& cls = stats.of(priority);
      std::printf(
          "  %-12s %9lld %9lld %8lld %6lld %8lld %6lld %9lld %10d %8.1fms "
          "%8.1fms %8.1fms %8.1fms\n",
          seco::PriorityClassToString(priority),
          static_cast<long long>(cls.submitted),
          static_cast<long long>(cls.completed),
          static_cast<long long>(cls.degraded),
          static_cast<long long>(cls.shed),
          static_cast<long long>(cls.expired),
          static_cast<long long>(cls.failed),
          static_cast<long long>(cls.cancelled), cls.peak_queue_depth,
          seco::Percentile(cls.queue_wait_ms, 50.0),
          seco::Percentile(cls.queue_wait_ms, 95.0),
          seco::Percentile(cls.sim_elapsed_ms, 50.0),
          seco::Percentile(cls.sim_elapsed_ms, 95.0));
    }
    if (options.abandon_fraction > 0.0) {
      std::printf("  abandonment: %.0f%% of queries cancelled after %.1f ms "
                  "(%lld resolved cancelled)\n",
                  100.0 * options.abandon_fraction, profile->abandon_after_ms,
                  static_cast<long long>(
                      report.CountOutcome(seco::ServedOutcome::kCancelled)));
    }
    if (options.stall_grace_ms > 0.0) {
      seco::WatchdogStats wd = server.watchdog_stats();
      std::printf("  watchdog: %lld tracked, %lld scans, %lld reaped "
                  "(grace %.1f ms)\n",
                  static_cast<long long>(wd.tracked),
                  static_cast<long long>(wd.scans),
                  static_cast<long long>(wd.reaped), options.stall_grace_ms);
    }
    std::printf("  degradation levels (admitted queries):");
    for (int level = 0; level <= seco::DegradationLadder::kMaxLevel; ++level) {
      long long count = 0;
      for (seco::PriorityClass priority :
           {seco::PriorityClass::kInteractive, seco::PriorityClass::kBatch}) {
        count += stats.of(priority).degradation_levels[level];
      }
      std::printf("  L%d:%lld", level, count);
    }
    std::printf("\n");
    std::printf(
        "  peak in-flight %d of %d; final pressure %.2f (pool queue %d, "
        "open breakers %d)\n",
        stats.peak_in_flight, options.max_in_flight,
        seco::DegradationLadder::Score(pressure, server_options.ladder),
        pressure.pool_queue_depth, pressure.open_breakers);
    std::printf(
        "  shared cache: %lld entries, %lld bytes (high water %lld) of %zu; "
        "%lld hits / %lld misses, %lld evictions, %lld invalidations\n",
        static_cast<long long>(cache.entries),
        static_cast<long long>(cache.bytes),
        static_cast<long long>(cache.bytes_high_water),
        server.cache().byte_budget(), static_cast<long long>(cache.hits),
        static_cast<long long>(cache.misses),
        static_cast<long long>(cache.evictions),
        static_cast<long long>(cache.invalidations));
    {
      std::vector<seco::CallCacheShardStats> shards = server.cache().shard_stats();
      std::printf("  shard    hits  misses  evict  inval  entries      bytes\n");
      for (size_t i = 0; i < shards.size(); ++i) {
        const seco::CallCacheShardStats& sh = shards[i];
        if (sh.hits == 0 && sh.misses == 0 && sh.entries == 0) continue;
        std::printf("  %5zu %7lld %7lld %6lld %6lld %8lld %10lld\n", i,
                    static_cast<long long>(sh.hits),
                    static_cast<long long>(sh.misses),
                    static_cast<long long>(sh.evictions),
                    static_cast<long long>(sh.invalidations),
                    static_cast<long long>(sh.entries),
                    static_cast<long long>(sh.bytes));
      }
    }
    if (const seco::AnswerCache* answers = server.answer_cache()) {
      seco::MemoStats mem = answers->stats();
      std::printf(
          "  answer cache: %lld hits / %lld probes (%.0f%%), %lld entries "
          "(%lld bytes), %lld inserts, %lld replaced; flights %lld led / "
          "%lld followed\n",
          static_cast<long long>(mem.hits),
          static_cast<long long>(mem.probes), 100.0 * mem.HitRate(),
          static_cast<long long>(mem.entries),
          static_cast<long long>(mem.bytes),
          static_cast<long long>(mem.inserts),
          static_cast<long long>(mem.replacements),
          static_cast<long long>(answers->flights_led()),
          static_cast<long long>(answers->flights_followed()));
    }
    if (const seco::PlanMemo* memo = server.plan_memo()) {
      seco::PlanMemoStats mem = memo->stats();
      std::printf(
          "  plan memo: %lld hits / %lld probes (plans %lld/%lld, bounds "
          "%lld/%lld, feasibility %lld/%lld)\n",
          static_cast<long long>(mem.hits()),
          static_cast<long long>(mem.probes()),
          static_cast<long long>(mem.plans.hits),
          static_cast<long long>(mem.plans.probes),
          static_cast<long long>(mem.bounds.hits),
          static_cast<long long>(mem.bounds.probes),
          static_cast<long long>(mem.feasibility.hits),
          static_cast<long long>(mem.feasibility.probes));
    }
    print_remote_pool();
    return seco::Status::OK();
  }

  if (options.explain) {
    SECO_ASSIGN_OR_RETURN(seco::BoundQuery bound, session.Prepare(query_text));
    std::printf("%s", seco::BoundQueryDebugString(bound).c_str());
    SECO_ASSIGN_OR_RETURN(seco::FeasibilityReport report,
                          seco::CheckFeasibility(bound));
    std::printf("feasible: %s\n", report.feasible ? "yes" : "no");
    if (!report.feasible) {
      std::printf("  %s\n", report.reason.c_str());
      SECO_ASSIGN_OR_RETURN(
          std::vector<seco::AugmentationSuggestion> suggestions,
          seco::SuggestAugmentations(bound, *scenario.registry));
      for (const seco::AugmentationSuggestion& s : suggestions) {
        std::printf("  suggestion: bind %s via off-query service %s (%s)%s\n",
                    s.input_name.c_str(), s.provider_interface.c_str(),
                    s.provider_output.c_str(),
                    s.provider_invocable ? "" : " [provider not invocable]");
      }
    }
    return seco::Status::OK();
  }

  if (options.stream) {
    SECO_ASSIGN_OR_RETURN(seco::BoundQuery bound, session.Prepare(query_text));
    SECO_ASSIGN_OR_RETURN(seco::OptimizationResult optimized,
                          session.Optimize(bound));
    seco::StreamingOptions stream_options;
    stream_options.k = options.k;
    stream_options.input_bindings = scenario.inputs;
    stream_options.max_calls = 100000;
    stream_options.num_threads = options.threads;
    stream_options.prefetch_depth = options.prefetch;
    stream_options.reliability = options.policy();
    stream_options.repair = repair_options;
    if (options.shared_cache) {
      stream_options.cache = seco::ServiceCallCache::Process();
    }
    seco::StreamingEngine engine(stream_options);
    SECO_ASSIGN_OR_RETURN(seco::StreamingResult stream,
                          engine.Execute(optimized.plan));
    if (options.shared_cache) {
      // Second identical run: every request-response should now be warm.
      SECO_ASSIGN_OR_RETURN(stream, engine.Execute(optimized.plan));
    }
    std::printf("plan (metric %s, cost %.1f):\n%s\n",
                seco::CostMetricKindToString(options.metric),
                optimized.cost, optimized.plan.ToString().c_str());
    std::printf(
        "streamed answers: %zu of k=%d%s  (charged calls %d, cache hits %d / "
        "misses %d, critical path %.0f ms, wall %.1f ms, threads %d, "
        "prefetch depth %d, speculative %d issued / %d wasted)\n",
        stream.combinations.size(), options.k,
        stream.exhausted ? " [sources exhausted]" : "", stream.total_calls,
        stream.cache_hits, stream.cache_misses, stream.total_latency_ms,
        stream.wall_clock_ms, options.threads, options.prefetch,
        stream.speculative_calls, stream.speculative_wasted);
    for (const auto& [node_id, stats] : stream.node_stats) {
      if (stats.calls == 0 && stats.cache_hits == 0) continue;
      std::printf(
          "  node %-3d calls %-4d cache hits %-4d latency %.0f ms "
          "(finished %.0f ms, %d tuples out)\n",
          node_id, stats.calls, stats.cache_hits, stats.latency_ms,
          stats.finished_at_ms, stats.tuples_out);
    }
    if (stream.columnar.chunks_decoded > 0 ||
        stream.columnar.kernel_batches > 0) {
      const seco::ColumnarStats& col = stream.columnar;
      std::printf(
          "columnar data plane (kernel %s): %lld batches decoded "
          "(%lld fallbacks), %lld kernel scans / %lld scalar, "
          "%lld rows through kernels\n",
          seco::simd::KernelName(seco::simd::ActiveKernel()),
          col.chunks_decoded, col.decode_fallbacks, col.kernel_batches,
          col.scalar_batches, col.kernel_rows);
      if (col.KernelRowsPerSec() > 0.0) {
        // Wall-clock-derived, so on its own "wall" line: the determinism
        // check diffs shell output modulo `grep -v wall`.
        std::printf("columnar kernel wall throughput: %.1fM rows/s\n",
                    col.KernelRowsPerSec() / 1e6);
      }
    }
    int rank = 0;
    for (const seco::Combination& combo : stream.combinations) {
      std::printf("  #%-3d score %.3f :", ++rank, combo.combined_score);
      for (size_t a = 0; a < combo.components.size(); ++a) {
        std::printf("  %s", component_str(combo, a).c_str());
      }
      std::printf("\n");
    }
    if (remote_client != nullptr) {
      stream.reliability.remote = remote_client->stats();
    }
    print_reliability(stream.reliability, stream.degraded,
                      stream.open_breakers, stream.complete);
    print_repair(stream.repair);
    print_remote_pool();
    return seco::Status::OK();
  }

  session.execution_options().num_threads = options.threads;
  session.execution_options().reliability = options.policy();
  session.execution_options().repair = repair_options;
  if (options.shared_cache) {
    session.execution_options().cache = seco::ServiceCallCache::Process();
  }
  SECO_ASSIGN_OR_RETURN(seco::QueryOutcome outcome,
                        session.Run(query_text, scenario.inputs, 100000));
  if (options.shared_cache) {
    // Second identical run: every request-response should now be warm.
    SECO_ASSIGN_OR_RETURN(outcome, session.Run(query_text, scenario.inputs,
                                               100000));
  }
  std::printf("plan (metric %s, cost %.1f, %d plans costed, %d pruned):\n%s\n",
              seco::CostMetricKindToString(options.metric),
              outcome.optimization.cost, outcome.optimization.plans_costed,
              outcome.optimization.branches_pruned,
              outcome.optimization.plan.ToString().c_str());
  if (options.dot) {
    std::printf("%s\n", outcome.optimization.plan.ToDot().c_str());
  }
  std::printf(
      "answers: %zu of k=%d  (calls %d, cache hits %d / misses %d, "
      "simulated %.0f ms, wall %.1f ms, threads %d)\n",
      outcome.execution.combinations.size(), options.k,
      outcome.execution.total_calls, outcome.execution.cache_hits,
      outcome.execution.cache_misses, outcome.execution.elapsed_ms,
      outcome.execution.wall_clock_ms, options.threads);
  for (const auto& [node_id, stats] : outcome.execution.node_stats) {
    if (stats.calls == 0 && stats.cache_hits == 0) continue;
    std::printf("  node %-3d calls %-4d cache hits %-4d latency %.0f ms\n",
                node_id, stats.calls, stats.cache_hits, stats.latency_ms);
  }
  int rank = 0;
  for (const seco::Combination& combo : outcome.execution.combinations) {
    std::printf("  #%-3d score %.3f :", ++rank, combo.combined_score);
    for (size_t a = 0; a < combo.components.size(); ++a) {
      std::printf("  %s", component_str(combo, a).c_str());
    }
    std::printf("\n");
  }
  if (remote_client != nullptr) {
    outcome.execution.reliability.remote = remote_client->stats();
  }
  print_reliability(outcome.execution.reliability, outcome.execution.degraded,
                    outcome.execution.open_breakers,
                    outcome.execution.complete);
  print_repair(outcome.execution.repair);
  print_remote_pool();
  if (options.estimates) {
    seco::EstimateReport report =
        seco::CompareEstimates(outcome.optimization.plan, outcome.execution);
    std::printf("\nestimate vs actual:\n%s", report.ToString().c_str());
  }
  return seco::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return 2;
  seco::Status status = Run(options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
