#include "common/status.h"

namespace seco {

namespace {
const std::string kEmpty;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kRejected:
      return "rejected";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(rep_->code);
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace seco
