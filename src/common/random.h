#ifndef SECO_COMMON_RANDOM_H_
#define SECO_COMMON_RANDOM_H_

#include <cstdint>

namespace seco {

/// A small, fast, deterministic PRNG (SplitMix64). All synthetic data and
/// simulated latencies in SeCo derive from seeded instances of this class so
/// that tests and benchmarks are reproducible bit-for-bit across platforms.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Derives an independent child stream; stable for a given (seed, tag).
  SplitMix64 Fork(uint64_t tag) const {
    SplitMix64 child(state_ ^ (tag * 0xD6E8FEB86659FD93ULL + 0x2545F4914F6CDD1DULL));
    child.Next();
    return child;
  }

 private:
  uint64_t state_;
};

/// Samples from a Zipf(s) distribution over ranks {0, ..., n-1}; rank 0 is
/// the most frequent. Used by the data generators to produce realistically
/// skewed join-attribute values.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (0 = uniform).
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(SplitMix64& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  double harmonic_;  // generalized harmonic number H_{n,s}
};

}  // namespace seco

#endif  // SECO_COMMON_RANDOM_H_
