#ifndef SECO_COMMON_STRING_UTIL_H_
#define SECO_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace seco {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view s);

/// True if `s` matches SQL LIKE `pattern` with '%' (any run) and '_'
/// (any single char) wildcards; comparison is case-sensitive.
bool LikeMatch(std::string_view s, std::string_view pattern);

/// Trims ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

}  // namespace seco

#endif  // SECO_COMMON_STRING_UTIL_H_
