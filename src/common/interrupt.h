#ifndef SECO_COMMON_INTERRUPT_H_
#define SECO_COMMON_INTERRUPT_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace seco {

/// A one-shot, thread-safe wakeup flag shared between an executor and the
/// blocking calls it may have in flight.
///
/// Realtime-mode simulated services sleep for their modeled latency; when an
/// executor hits its call budget (or simply finishes) while speculative
/// fetches are still sleeping on pool threads, it triggers the flag and the
/// sleeps return immediately instead of holding up teardown. Interruption
/// only shortens the *pacing* sleep — the interrupted call still computes
/// and returns its full response, so results and simulated timings are
/// unaffected.
class InterruptFlag {
 public:
  void Trigger() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      triggered_ = true;
    }
    cv_.notify_all();
  }

  /// Re-arms the flag (e.g. between runs sharing one flag).
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    triggered_ = false;
  }

  bool triggered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return triggered_;
  }

  /// Blocks for `duration` or until triggered, whichever comes first.
  /// Returns true if the wait ended early because of a trigger.
  template <typename Rep, typename Period>
  bool SleepFor(std::chrono::duration<Rep, Period> duration) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, duration, [this] { return triggered_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool triggered_ = false;
};

}  // namespace seco

#endif  // SECO_COMMON_INTERRUPT_H_
