#ifndef SECO_COMMON_THREAD_POOL_H_
#define SECO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace seco {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Deliberately work-stealing-free: tasks are executed in submission order
/// (modulo worker availability), which keeps scheduling easy to reason
/// about; determinism of *results* is the caller's job — collect outcomes
/// by task index, never by completion order (see docs/CONCURRENCY.md).
///
/// `Submit` returns a `std::future` carrying the task's value; exceptions
/// thrown by a task are captured and rethrown from `future::get()`.
/// Destruction (or `Shutdown()`) drains every already-queued task before
/// joining the workers, so submitted work is never silently dropped.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `f` and returns a future for its result. After `Shutdown()`
  /// the task runs inline on the submitting thread (the pool never rejects
  /// work).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) {
        lock.unlock();
        (*task)();
        return future;
      }
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Waits for all queued tasks to finish, then joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace seco

#endif  // SECO_COMMON_THREAD_POOL_H_
