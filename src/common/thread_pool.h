#ifndef SECO_COMMON_THREAD_POOL_H_
#define SECO_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace seco {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Deliberately work-stealing-free: tasks are executed in submission order
/// (modulo worker availability), which keeps scheduling easy to reason
/// about; determinism of *results* is the caller's job — collect outcomes
/// by task index, never by completion order (see docs/CONCURRENCY.md).
///
/// `Submit` returns a `std::future` carrying the task's value; exceptions
/// thrown by a task are captured and rethrown from `future::get()`.
/// Destruction (or `Shutdown()`) drains every already-queued task before
/// joining the workers, so submitted work is never silently dropped.
///
/// The pool exposes its own congestion — `queue_depth()` plus cumulative
/// `submitted()` / `completed()` counters — as a backpressure signal for
/// admission control (docs/SERVER.md). All three are safe to poll from any
/// thread without stalling the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks accepted but not yet picked up by a worker. A sustained nonzero
  /// depth means the pool is saturated (more offered work than workers).
  int queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  /// Cumulative tasks ever accepted by `Submit` (including post-shutdown
  /// inline executions).
  int64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

  /// Cumulative tasks that finished running (including those that stored an
  /// exception in their future, and post-shutdown inline executions).
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Enqueues `f` and returns a future for its result. After `Shutdown()`
  /// the task runs inline on the submitting thread (the pool never rejects
  /// work). The inline path never holds the pool mutex while the task runs,
  /// so a task submitted from inside a worker during shutdown — even one
  /// that itself submits further tasks — cannot self-deadlock on the pool.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    submitted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!stopping_) {
        queue_.push([task] { (*task)(); });
        queued_.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        cv_.notify_one();
        return future;
      }
    }
    // Post-shutdown inline path: run with no lock held. A packaged_task
    // captures exceptions into the future, so this never throws.
    (*task)();
    completed_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  /// Waits for all queued tasks to finish, then joins the workers.
  /// Idempotent, and safe to call from inside a pool task: a worker thread
  /// calling `Shutdown` (directly or through a task's destructors) joins its
  /// siblings but skips itself — the final self-join is left to a later
  /// `Shutdown` from a non-worker thread (typically the destructor).
  void Shutdown();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::mutex join_mutex_;  // serializes the join loop of concurrent Shutdowns
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<int> queued_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
};

}  // namespace seco

#endif  // SECO_COMMON_THREAD_POOL_H_
