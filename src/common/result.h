#ifndef SECO_COMMON_RESULT_H_
#define SECO_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace seco {

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`. Construction from a value yields the OK state;
/// construction from a non-OK Status yields the error state. Constructing
/// from an OK status is a programming error.
template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }
  /// Constructs a success result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status, or OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Accessors; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which must be a declaration or lvalue).
#define SECO_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define SECO_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SECO_ASSIGN_OR_RETURN_NAME(x, y) SECO_ASSIGN_OR_RETURN_CONCAT(x, y)

#define SECO_ASSIGN_OR_RETURN(lhs, rexpr) \
  SECO_ASSIGN_OR_RETURN_IMPL(            \
      SECO_ASSIGN_OR_RETURN_NAME(_seco_result_, __LINE__), lhs, rexpr)

}  // namespace seco

#endif  // SECO_COMMON_RESULT_H_
