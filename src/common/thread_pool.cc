#include "common/thread_pool.h"

#include <algorithm>

namespace seco {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
      queued_.fetch_sub(1, std::memory_order_relaxed);
    }
    task();  // packaged_task: exceptions land in the future
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Join outside the queue mutex so draining workers can still pop tasks.
  // A worker thread running Shutdown (e.g. a task that tears down the pool's
  // owner) must not join itself; its join falls to the next Shutdown call —
  // the destructor at the latest. `join_mutex_` keeps two concurrent
  // Shutdowns from racing a join on the same thread.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (std::thread& worker : workers_) {
    if (worker.joinable() && worker.get_id() != std::this_thread::get_id()) {
      worker.join();
    }
  }
}

}  // namespace seco
