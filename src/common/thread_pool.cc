#include "common/thread_pool.h"

#include <algorithm>

namespace seco {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace seco
