#include "common/random.h"

#include <cmath>

namespace seco {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n == 0 ? 1 : n), s_(s) {
  harmonic_ = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    harmonic_ += 1.0 / std::pow(static_cast<double>(i), s_);
  }
}

uint64_t ZipfSampler::Sample(SplitMix64& rng) const {
  // Inverse-CDF by linear scan; n is small in our generators (<= a few
  // thousand distinct values), so this is fast enough and exact.
  double u = rng.NextDouble() * harmonic_;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s_);
    if (u <= acc) return i - 1;
  }
  return n_ - 1;
}

}  // namespace seco
