#ifndef SECO_COMMON_CANCEL_H_
#define SECO_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/interrupt.h"
#include "common/status.h"

namespace seco {

/// A one-shot, sticky, reason-carrying cancellation token shared between a
/// query's owner (server, wire front end, watchdog, shell) and every layer
/// doing work on its behalf (engines, scheduler jobs, retry loops, remote
/// clients).
///
/// Semantics:
///  - **One-shot and sticky.** The first `Cancel()` wins and records its
///    reason; there is no reset. This is deliberately different from
///    `InterruptFlag`, whose `Reset()` re-arms it between runs (hedge
///    winners and streaming runs rely on that) — a cancelled query must
///    stay cancelled no matter who re-arms the pacing flag.
///  - **Hierarchical.** `Child()` creates a linked token: cancelling the
///    parent cancels every child (with the parent's reason), while a child
///    can be cancelled on its own without touching siblings. A child born
///    of an already-cancelled parent starts cancelled.
///  - **CV wakeup.** `WaitFor()` blocks until cancelled or the duration
///    elapses; linked `InterruptFlag`s are triggered on cancel so existing
///    pacing sleeps (simulated latency, backoff) wake immediately.
///  - **Progress heartbeats.** Work loops call `Heartbeat()` at chunk /
///    call boundaries; the watchdog compares `progress()` snapshots to
///    find queries that stopped advancing (docs/SERVER.md).
///
/// All methods are thread-safe. Checking `cancelled()` is one acquire
/// load, cheap enough for per-chunk polling in the hot loops.
class CancelToken {
 public:
  CancelToken() = default;

  /// Requests cancellation. The first caller's reason sticks; later calls
  /// are no-ops. Returns true if this call performed the cancellation.
  bool Cancel(std::string reason) {
    std::vector<std::weak_ptr<CancelToken>> children;
    std::vector<std::shared_ptr<InterruptFlag>> interrupts;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_.load(std::memory_order_relaxed)) return false;
      reason_ = std::move(reason);
      cancelled_.store(true, std::memory_order_release);
      children.swap(children_);
      interrupts.swap(interrupts_);
    }
    cv_.notify_all();
    // Propagate outside the lock: children take their own locks, and a
    // child callback must never be able to deadlock against the parent.
    for (auto& weak : children) {
      if (auto child = weak.lock()) child->Cancel(ReasonInternal());
    }
    for (auto& flag : interrupts) flag->Trigger();
    return true;
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// The first cancel's reason; empty while not cancelled.
  std::string reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

  /// `Status::Cancelled(reason)` once cancelled, OK before.
  Status ToStatus() const {
    if (!cancelled()) return Status::OK();
    return Status::Cancelled(ReasonInternal());
  }

  /// Blocks until cancelled or `duration` elapses. Returns true if the
  /// wait ended because of cancellation — the drop-in replacement for raw
  /// `std::this_thread::sleep_for` in backoff / pacing paths.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> duration) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, duration, [this] {
      return cancelled_.load(std::memory_order_relaxed);
    });
  }

  /// Creates a child token: parent cancellation propagates to the child,
  /// child cancellation stays local. Children of a cancelled parent start
  /// cancelled.
  std::shared_ptr<CancelToken> Child() {
    auto child = std::make_shared<CancelToken>();
    std::string parent_reason;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!cancelled_.load(std::memory_order_relaxed)) {
        children_.push_back(child);
        return child;
      }
      parent_reason = reason_;
    }
    child->Cancel(std::move(parent_reason));
    return child;
  }

  /// Links a pacing flag: on cancel it is `Trigger()`ed so sleeping calls
  /// wake. A flag linked after cancellation is triggered immediately. The
  /// flag's own `Reset()` does NOT un-cancel this token.
  void LinkInterrupt(std::shared_ptr<InterruptFlag> flag) {
    if (flag == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!cancelled_.load(std::memory_order_relaxed)) {
        interrupts_.push_back(std::move(flag));
        return;
      }
    }
    flag->Trigger();
  }

  /// Progress heartbeat — bump once per unit of observable forward
  /// progress (chunk admitted, call completed). Relaxed: the watchdog
  /// only compares snapshots for equality over a grace window.
  void Heartbeat() { progress_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

 private:
  std::string ReasonInternal() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_.empty() ? std::string("cancelled") : reason_;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> progress_{0};
  std::string reason_;
  std::vector<std::weak_ptr<CancelToken>> children_;
  std::vector<std::shared_ptr<InterruptFlag>> interrupts_;
};

}  // namespace seco

#endif  // SECO_COMMON_CANCEL_H_
