#ifndef SECO_COMMON_STATUS_H_
#define SECO_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace seco {

/// Error categories used across the SeCo library. Values are stable and may
/// be used for programmatic dispatch on failure kind.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller supplied malformed input.
  kNotFound = 2,          ///< A named entity (service, attribute, ...) is absent.
  kAlreadyExists = 3,     ///< Registration collides with an existing entity.
  kParseError = 4,        ///< The query text is not well-formed.
  kInfeasible = 5,        ///< No choice of access patterns makes the query feasible.
  kTypeError = 6,         ///< Type-incompatible comparison or assignment.
  kInternal = 7,          ///< Invariant violation inside the library.
  kUnsupported = 8,       ///< A combination of options that is not implemented.
  kResourceExhausted = 9, ///< A configured budget (calls, plans, ...) ran out.
  kUnavailable = 10,      ///< A service is (transiently or permanently) down.
  kDeadlineExceeded = 11, ///< A call or query overran its deadline.
  kRejected = 12,         ///< Admission control shed the request (retry later).
  kCancelled = 13,        ///< The caller abandoned the query/call; work was stopped.
};

/// Returns the canonical lowercase name of a status code ("ok", "not found", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, movable success/error value in the style of Arrow/RocksDB.
///
/// The OK state carries no allocation; error states carry a code and message.
/// All SeCo library entry points that can fail return `Status` or
/// `Result<T>` instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The human-readable error message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // null == OK
};

/// Propagates a non-OK Status from the enclosing function.
#define SECO_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::seco::Status _seco_status = (expr);     \
    if (!_seco_status.ok()) return _seco_status; \
  } while (false)

}  // namespace seco

#endif  // SECO_COMMON_STATUS_H_
