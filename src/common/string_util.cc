#include "common/string_util.h"

#include <cctype>

namespace seco {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool LikeMatch(std::string_view s, std::string_view pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  size_t si = 0, pi = 0;
  size_t star_pi = std::string_view::npos, star_si = 0;
  while (si < s.size()) {
    if (pi < pattern.size() && (pattern[pi] == '_' || pattern[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_si = si;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      si = ++star_si;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace seco
