#ifndef SECO_NET_REMOTE_HANDLER_H_
#define SECO_NET_REMOTE_HANDLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "service/invocation.h"
#include "service/registry.h"

namespace seco {

/// Client-side configuration for one backend connection pool.
struct RemoteBackendOptions {
  /// Receive timeout per call, milliseconds; < 0 blocks forever. A timeout
  /// surfaces as `kDeadlineExceeded` — the same code the in-process
  /// deadline path emits, so the reliability layer treats a slow backend
  /// exactly like a slow simulated service.
  int timeout_ms = -1;
  /// Idle connections kept for reuse. Calls beyond the pool dial fresh
  /// connections, so the pool bounds memory, not concurrency.
  int max_pool = 8;
};

/// Shared connection pool to one `BackendServer`. Handlers check a
/// connection out per call and return it on success; any socket or
/// protocol error discards the connection, so a poisoned stream can never
/// serve a second call.
class RemoteBackendClient {
 public:
  RemoteBackendClient(std::string host, uint16_t port,
                      RemoteBackendOptions options = {});

  /// Performs one remote call against `interface_name`. Socket failures
  /// map onto the structured fault statuses the reliability layer retries
  /// on: refused/reset/closed -> `kUnavailable`, timeout ->
  /// `kDeadlineExceeded`. Backend-side handler errors round-trip verbatim.
  Result<ServiceResponse> Call(const std::string& interface_name,
                               const ServiceRequest& request);

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// Connections dialed so far (diagnostic; reuse keeps this near the
  /// concurrency level rather than the call count).
  int64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

 private:
  struct PooledConn {
    Socket socket;
    /// Persists across calls: bytes of the next reply may arrive with the
    /// tail of the previous one.
    FrameDecoder decoder;
  };

  Result<std::unique_ptr<PooledConn>> CheckOut();
  void CheckIn(std::unique_ptr<PooledConn> conn);

  const std::string host_;
  const uint16_t port_;
  const RemoteBackendOptions options_;
  std::atomic<uint64_t> next_call_id_{1};
  std::atomic<int64_t> connections_opened_{0};

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<PooledConn>> pool_;
};

/// `ServiceCallHandler` that forwards every call to a `BackendServer` over
/// TCP — the drop-in remote backend. Constructed exactly where a
/// `SimulatedService` would be, and wrapped by the same
/// `CachingHandler`/`ResilientHandler` decorators; nothing above the
/// handler seam can tell the data source moved out of process.
class RemoteServiceHandler : public ServiceCallHandler {
 public:
  RemoteServiceHandler(std::shared_ptr<RemoteBackendClient> client,
                       std::string interface_name)
      : client_(std::move(client)),
        interface_name_(std::move(interface_name)) {}

  Result<ServiceResponse> Call(const ServiceRequest& request) override {
    return client_->Call(interface_name_, request);
  }

  const std::string& interface_name() const { return interface_name_; }

 private:
  std::shared_ptr<RemoteBackendClient> client_;
  std::string interface_name_;
};

/// Builds a twin of `local` whose every interface calls a remote backend:
/// marts, connection patterns, schemas, access patterns, and stats are
/// shared with the original, only the handlers are replaced by
/// `RemoteServiceHandler`s over one pooled client. Point the result at a
/// `BackendServer` exposing `local` and queries plan and execute
/// identically — the registry-level form of the drop-in claim.
Result<std::shared_ptr<ServiceRegistry>> MakeRemoteRegistry(
    const ServiceRegistry& local, const std::string& host, uint16_t port,
    RemoteBackendOptions options = {});

}  // namespace seco

#endif  // SECO_NET_REMOTE_HANDLER_H_
