#ifndef SECO_NET_REMOTE_HANDLER_H_
#define SECO_NET_REMOTE_HANDLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/chaos.h"
#include "net/socket.h"
#include "reliability/policy.h"
#include "service/invocation.h"
#include "service/registry.h"

namespace seco {

/// One backend replica address.
struct RemoteEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// Client-side configuration for one backend connection pool.
struct RemoteBackendOptions {
  /// Receive timeout per call, milliseconds; < 0 blocks forever. A timeout
  /// surfaces as `kDeadlineExceeded` — the same code the in-process
  /// deadline path emits, so the reliability layer treats a slow backend
  /// exactly like a slow simulated service. Timeouts are never silently
  /// wire-retried (the reliability layer owns that decision), but they DO
  /// count toward endpoint eviction.
  int timeout_ms = -1;
  /// Idle connections kept for reuse, per endpoint. Bounds memory.
  int max_pool = 8;
  /// Concurrent dials in flight across all endpoints — the retry-storm
  /// valve: dials beyond the cap queue up to `dial_wait_ms`, then fail
  /// `kUnavailable` instead of opening unbounded sockets against a
  /// struggling backend.
  int max_dials = 8;
  int dial_wait_ms = 1000;
  /// Receive timeout for the hello handshake on a fresh connection. Always
  /// bounded (even when `timeout_ms` < 0): a peer that accepts but never
  /// handshakes must not hang a dial — it fails `kUnavailable` and counts
  /// as a transport failure.
  int handshake_timeout_ms = 1000;
  /// Transparent retries of one call on a *fresh* connection after a
  /// transport-class failure (dial refused, reset, checksum corruption,
  /// half-written reply, stale reply id). Handler-level statuses and recv
  /// timeouts are never wire-retried. 0 disables self-healing.
  int wire_retries = 2;
  /// Backoff between wire retries, keyed on the request ordinal — capped,
  /// jittered, deterministic per (request, attempt).
  RetryPolicy reconnect;
  /// Consecutive transport failures that evict an endpoint from rotation.
  int eviction_threshold = 3;
  /// Real milliseconds after which one probe dial may test an evicted
  /// endpoint (half-open, single probe at a time).
  double reprobe_ms = 1000.0;
  /// Health-gate pooled connections with a ping/pong before reuse.
  bool ping_on_checkout = false;
  int ping_timeout_ms = 200;
  /// Client-side deterministic fault injection on dialed connections.
  ChaosOptions chaos;
};

/// Self-healing connection pool across one or more backend replicas.
/// Handlers check a connection out per call and return it on success; any
/// socket or protocol error discards the connection, so a poisoned stream
/// can never serve a second call. Transport faults heal transparently
/// (reconnect + bounded retry with jittered backoff); endpoints that keep
/// failing are evicted and re-probed; when every replica is gone, calls
/// fast-fail `kUnavailable` — which the resilient handler turns into a
/// `ServiceLostEvent`, so `PlanRepairer` failover works across the wire
/// exactly as in-process.
class RemoteBackendClient {
 public:
  RemoteBackendClient(std::string host, uint16_t port,
                      RemoteBackendOptions options = {});
  explicit RemoteBackendClient(std::vector<RemoteEndpoint> endpoints,
                               RemoteBackendOptions options = {});

  /// Shuts the client down: every blocked reconnect-backoff sleep, dial
  /// wait, and reply wait returns promptly (well under its configured
  /// duration), and subsequent `Call`s fail `kCancelled` immediately.
  /// Idempotent; does not close pooled sockets (their daemons own the
  /// other end and the pool dies with the object).
  void Stop();
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Performs one remote call against `interface_name`. Socket failures
  /// map onto the structured fault statuses the reliability layer retries
  /// on: refused/reset/closed/corrupted -> `kUnavailable`, timeout ->
  /// `kDeadlineExceeded`. Backend-side handler errors round-trip verbatim.
  Result<ServiceResponse> Call(const std::string& interface_name,
                               const ServiceRequest& request);

  const std::string& host() const { return endpoints_[0].host; }
  uint16_t port() const { return endpoints_[0].port; }

  /// Connections dialed so far (diagnostic; reuse keeps this near the
  /// concurrency level rather than the call count).
  int64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

  /// Pool/health snapshot, including per-endpoint state.
  RemotePoolStats stats() const;

  /// Faults fired by the client-side chaos engine (zeros when chaos off).
  ChaosStats chaos_stats() const { return chaos_.stats(); }

 private:
  struct PooledConn {
    Socket socket;
    /// Persists across calls: bytes of the next reply may arrive with the
    /// tail of the previous one.
    FrameDecoder decoder;
  };

  /// One replica plus its health ledger. Mutable state guarded by `mu_`.
  struct EndpointState {
    std::string host;
    uint16_t port = 0;
    bool evicted = false;
    double evicted_at_ms = 0.0;
    bool probe_in_flight = false;
    int consecutive_failures = 0;
    int64_t dials = 0;
    int64_t calls_ok = 0;
    int64_t transport_failures = 0;
    int64_t evictions = 0;
    std::vector<std::unique_ptr<PooledConn>> pool;
  };

  struct Checked {
    std::unique_ptr<PooledConn> conn;
    size_t endpoint = 0;
  };

  /// Pops a healthy pooled connection or dials a usable endpoint. Sets
  /// `*exhausted` when no endpoint is even eligible to try — the signal
  /// `Call` fast-fails on instead of retrying into a void.
  Result<Checked> CheckOut(bool* exhausted);
  Result<Checked> Dial(size_t endpoint_index);
  void CheckIn(size_t endpoint_index, std::unique_ptr<PooledConn> conn);
  Status PingConn(PooledConn* conn);
  /// Sleeps up to `ms`, returning early (false) if `Stop` fires or
  /// `cancel` (nullable) is cancelled — the interruptible twin of the old
  /// raw backoff sleep.
  bool InterruptibleSleep(double ms, const std::shared_ptr<CancelToken>& cancel);
  /// Waits for the reply frame of `call_id`, slicing the receive timeout so
  /// `Stop`/`cancel` interrupt the wait; on interruption a `kCancel` frame
  /// is sent (fire and forget) so the daemon can purge the queued call.
  Result<Frame> RecvReply(PooledConn* conn, uint64_t call_id,
                          const std::shared_ptr<CancelToken>& cancel);
  void NoteSuccess(size_t endpoint_index);
  void NoteTransportFailure(size_t endpoint_index);
  void DiscardLocked(EndpointState* ep);

  const std::vector<RemoteEndpoint> endpoints_config_;
  const RemoteBackendOptions options_;
  ChaosEngine chaos_;
  std::atomic<uint64_t> next_call_id_{1};
  std::atomic<int64_t> connections_opened_{0};
  std::atomic<int64_t> connections_reused_{0};
  std::atomic<int64_t> connections_discarded_{0};
  std::atomic<int64_t> reconnect_attempts_{0};
  std::atomic<int64_t> dial_overflows_{0};
  std::atomic<int64_t> pings_sent_{0};
  std::atomic<int64_t> ping_failures_{0};
  std::atomic<int64_t> endpoints_evicted_{0};
  std::atomic<int64_t> endpoint_exhaustions_{0};

  std::atomic<bool> stopped_{false};
  /// Guards nothing but the sleep below; separate from `mu_` so a Stop
  /// cannot be delayed by pool bookkeeping.
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  mutable std::mutex mu_;
  std::condition_variable dial_cv_;
  int dials_in_flight_ = 0;
  size_t rr_ = 0;  ///< Round-robin cursor over endpoints.
  std::vector<EndpointState> endpoints_;
};

/// `ServiceCallHandler` that forwards every call to a `BackendServer` over
/// TCP — the drop-in remote backend. Constructed exactly where a
/// `SimulatedService` would be, and wrapped by the same
/// `CachingHandler`/`ResilientHandler` decorators; nothing above the
/// handler seam can tell the data source moved out of process.
class RemoteServiceHandler : public ServiceCallHandler {
 public:
  RemoteServiceHandler(std::shared_ptr<RemoteBackendClient> client,
                       std::string interface_name)
      : client_(std::move(client)),
        interface_name_(std::move(interface_name)) {}

  Result<ServiceResponse> Call(const ServiceRequest& request) override {
    return client_->Call(interface_name_, request);
  }

  const std::string& interface_name() const { return interface_name_; }

 private:
  std::shared_ptr<RemoteBackendClient> client_;
  std::string interface_name_;
};

/// Builds a twin of `local` whose every interface calls a remote backend:
/// marts, connection patterns, schemas, access patterns, and stats are
/// shared with the original, only the handlers are replaced by
/// `RemoteServiceHandler`s over one pooled client. Point the result at a
/// `BackendServer` exposing `local` and queries plan and execute
/// identically — the registry-level form of the drop-in claim. When
/// `client_out` is non-null it receives the shared client, so callers can
/// read pool/health stats after the run.
Result<std::shared_ptr<ServiceRegistry>> MakeRemoteRegistry(
    const ServiceRegistry& local, const std::string& host, uint16_t port,
    RemoteBackendOptions options = {},
    std::shared_ptr<RemoteBackendClient>* client_out = nullptr);

/// Like `MakeRemoteRegistry`, but with per-interface client routing:
/// interfaces named in `routes` call their mapped client, everything else
/// calls `default_client`. This is how a replica interface can live on a
/// different backend (or port) than its primary — the over-the-wire
/// failover topology.
Result<std::shared_ptr<ServiceRegistry>> MakeRemoteRegistryRouted(
    const ServiceRegistry& local,
    std::shared_ptr<RemoteBackendClient> default_client,
    const std::map<std::string, std::shared_ptr<RemoteBackendClient>>&
        routes);

}  // namespace seco

#endif  // SECO_NET_REMOTE_HANDLER_H_
