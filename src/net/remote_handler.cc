#include "net/remote_handler.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace seco {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RemoteBackendClient::RemoteBackendClient(std::string host, uint16_t port,
                                         RemoteBackendOptions options)
    : RemoteBackendClient(
          std::vector<RemoteEndpoint>{{std::move(host), port}}, options) {}

RemoteBackendClient::RemoteBackendClient(std::vector<RemoteEndpoint> endpoints,
                                         RemoteBackendOptions options)
    : endpoints_config_(std::move(endpoints)),
      options_(options),
      chaos_(options.chaos) {
  endpoints_.resize(endpoints_config_.size());
  for (size_t i = 0; i < endpoints_config_.size(); ++i) {
    endpoints_[i].host = endpoints_config_[i].host;
    endpoints_[i].port = endpoints_config_[i].port;
  }
}

void RemoteBackendClient::Stop() {
  stopped_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  dial_cv_.notify_all();
}

bool RemoteBackendClient::InterruptibleSleep(
    double ms, const std::shared_ptr<CancelToken>& cancel) {
  const double deadline = NowMs() + std::max(0.0, ms);
  std::unique_lock<std::mutex> lock(stop_mu_);
  for (;;) {
    if (stopped_.load(std::memory_order_acquire)) return false;
    if (cancel != nullptr && cancel->cancelled()) return false;
    const double remaining = deadline - NowMs();
    if (remaining <= 0.0) return true;
    // Stop() notifies this CV; a cancel token does not, so its observation
    // rides a bounded slice.
    const double slice = cancel != nullptr ? std::min(remaining, 10.0)
                                           : remaining;
    stop_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(slice));
  }
}

Result<Frame> RemoteBackendClient::RecvReply(
    PooledConn* conn, uint64_t call_id,
    const std::shared_ptr<CancelToken>& cancel) {
  const bool bounded = options_.timeout_ms >= 0;
  const double deadline =
      bounded ? NowMs() + static_cast<double>(options_.timeout_ms) : 0.0;
  for (;;) {
    if (stopped() || (cancel != nullptr && cancel->cancelled())) {
      // Tell the daemon to purge the still-queued call (fire and forget),
      // then abandon the connection — the reply may already be in flight,
      // so this stream can never be trusted for another call.
      WireWriter w;
      w.U64(call_id);
      (void)SendFrame(&conn->socket, FrameType::kCancel, w.Take());
      return cancel != nullptr && cancel->cancelled()
                 ? cancel->ToStatus()
                 : Status::Cancelled("remote backend client stopped");
    }
    const double remaining = bounded ? deadline - NowMs() : 20.0;
    if (bounded && remaining <= 0.0) {
      return Status::DeadlineExceeded(
          "backend call timed out after " +
          std::to_string(options_.timeout_ms) + " ms");
    }
    // Sliced wait: each slice re-checks Stop/cancel, so an abandoned call
    // releases its thread in O(slice), not O(timeout). The decoder keeps
    // partial frames across slices.
    const int slice_ms =
        std::max(1, static_cast<int>(std::min(remaining, 20.0)));
    Result<Frame> frame = RecvFrame(&conn->socket, &conn->decoder, slice_ms);
    if (frame.ok() ||
        frame.status().code() != StatusCode::kDeadlineExceeded) {
      return frame;
    }
  }
}

Result<RemoteBackendClient::Checked> RemoteBackendClient::Dial(
    size_t endpoint_index) {
  EndpointState& ep = endpoints_[endpoint_index];
  {
    std::lock_guard<std::mutex> lock(mu_);
    ep.dials++;
  }

  // Client-side chaos sits below the dial: a refused plan fails before the
  // kernel connect, everything else rides the socket as byte-offset faults.
  std::shared_ptr<ChaosPlan> plan;
  if (options_.chaos.active()) {
    plan = chaos_.PlanConnection();
    if (plan->refuse) {
      return Status::Unavailable("chaos: connection to " + ep.host + ":" +
                                 std::to_string(ep.port) + " refused");
    }
  }

  SECO_ASSIGN_OR_RETURN(Socket socket,
                        ConnectTcp(ep.host, ep.port, options_.timeout_ms));
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  if (plan != nullptr) socket.AttachChaos(std::move(plan));
  auto conn = std::make_unique<PooledConn>();
  conn->socket = std::move(socket);

  // Hello handshake on the fresh connection. The recv is always bounded:
  // a peer that accepts the dial but never answers must fail the dial, not
  // hang it — and it fails as kUnavailable (a transport fault the retry
  // loop may heal on another endpoint), never kDeadlineExceeded.
  WireWriter hello;
  hello.U32(kWireMagic);
  hello.U16(kWireVersion);
  hello.U8(static_cast<uint8_t>(WireRole::kBackendClient));
  SECO_RETURN_IF_ERROR(
      SendFrame(&conn->socket, FrameType::kHello, hello.Take()));
  Result<Frame> ack = RecvFrame(&conn->socket, &conn->decoder,
                                options_.handshake_timeout_ms);
  if (!ack.ok()) {
    if (ack.status().code() == StatusCode::kDeadlineExceeded) {
      return Status::Unavailable("backend handshake timed out: " +
                                 ack.status().message());
    }
    return ack.status();
  }
  if (ack.value().type == FrameType::kError) {
    WireReader r(ack.value().payload);
    Status remote = Status::OK();
    if (!DecodeStatus(&r, &remote).ok() || remote.ok()) {
      return Status::Unavailable("backend rejected hello");
    }
    return remote;
  }
  if (ack.value().type != FrameType::kHelloAck) {
    return Status::Unavailable(
        "backend sent unexpected frame " +
        std::to_string(static_cast<int>(ack.value().type)) +
        " instead of hello ack");
  }
  Checked checked;
  checked.conn = std::move(conn);
  checked.endpoint = endpoint_index;
  return checked;
}

Result<RemoteBackendClient::Checked> RemoteBackendClient::CheckOut(
    bool* exhausted) {
  // May loop: a pooled connection that fails its checkout ping is
  // discarded and the next candidate tried. Bounded because each pass
  // either returns or permanently shrinks a pool.
  for (;;) {
    std::unique_ptr<PooledConn> pooled;
    size_t pooled_index = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < endpoints_.size(); ++i) {
        EndpointState& ep = endpoints_[i];
        if (ep.evicted || ep.pool.empty()) continue;
        pooled = std::move(ep.pool.back());
        ep.pool.pop_back();
        pooled_index = i;
        break;
      }
    }
    if (pooled != nullptr) {
      connections_reused_.fetch_add(1, std::memory_order_relaxed);
      if (options_.ping_on_checkout) {
        Status alive = PingConn(pooled.get());
        if (!alive.ok()) {
          // A dead pooled connection is stale state, not fresh evidence
          // about the endpoint — discard it and keep looking rather than
          // charging it toward eviction.
          ping_failures_.fetch_add(1, std::memory_order_relaxed);
          connections_discarded_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      }
      Checked checked;
      checked.conn = std::move(pooled);
      checked.endpoint = pooled_index;
      return checked;
    }

    // No pooled connection: pick a dial target round-robin among healthy
    // endpoints, letting one probe through to an evicted endpoint whose
    // re-probe window has elapsed (half-open circuit).
    size_t target = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const double now = NowMs();
      bool found = false;
      for (size_t offset = 0; offset < endpoints_.size(); ++offset) {
        const size_t i = (rr_ + offset) % endpoints_.size();
        EndpointState& ep = endpoints_[i];
        if (!ep.evicted) {
          target = i;
          found = true;
          break;
        }
        if (now - ep.evicted_at_ms >= options_.reprobe_ms &&
            !ep.probe_in_flight) {
          ep.probe_in_flight = true;
          target = i;
          found = true;
          break;
        }
      }
      if (!found) {
        // Every replica evicted and none due for a probe: fail fast with
        // the structured signal the reliability layer converts into a
        // ServiceLostEvent — plan repair is the healing path from here.
        *exhausted = true;
        endpoint_exhaustions_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable(
            "remote backend: all endpoints evicted or unreachable");
      }
      rr_ = (target + 1) % endpoints_.size();

      if (options_.max_dials > 0 && dials_in_flight_ >= options_.max_dials) {
        const bool freed = dial_cv_.wait_for(
            lock,
            std::chrono::milliseconds(std::max(0, options_.dial_wait_ms)),
            [this] {
              return dials_in_flight_ < options_.max_dials ||
                     stopped_.load(std::memory_order_acquire);
            });
        if (stopped_.load(std::memory_order_acquire)) {
          endpoints_[target].probe_in_flight = false;
          return Status::Cancelled("remote backend client stopped");
        }
        if (!freed) {
          dial_overflows_.fetch_add(1, std::memory_order_relaxed);
          endpoints_[target].probe_in_flight = false;
          return Status::Unavailable(
              "remote backend: dial queue full (" +
              std::to_string(options_.max_dials) +
              " dials in flight, waited " +
              std::to_string(options_.dial_wait_ms) + " ms)");
        }
      }
      ++dials_in_flight_;
    }

    Result<Checked> dialed = Dial(target);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --dials_in_flight_;
    }
    dial_cv_.notify_one();
    if (!dialed.ok()) {
      NoteTransportFailure(target);
      return dialed.status();
    }
    return dialed;
  }
}

void RemoteBackendClient::CheckIn(size_t endpoint_index,
                                  std::unique_ptr<PooledConn> conn) {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointState& ep = endpoints_[endpoint_index];
  if (!ep.evicted && static_cast<int>(ep.pool.size()) < options_.max_pool) {
    ep.pool.push_back(std::move(conn));
    return;
  }
  connections_discarded_.fetch_add(1, std::memory_order_relaxed);
}

Status RemoteBackendClient::PingConn(PooledConn* conn) {
  pings_sent_.fetch_add(1, std::memory_order_relaxed);
  WireWriter w;
  w.U64(0x5EC0);  // echoed cookie
  SECO_RETURN_IF_ERROR(SendFrame(&conn->socket, FrameType::kPing, w.Take()));
  SECO_ASSIGN_OR_RETURN(
      Frame pong,
      RecvFrame(&conn->socket, &conn->decoder, options_.ping_timeout_ms));
  if (pong.type != FrameType::kPong) {
    return Status::Unavailable("backend answered ping with frame " +
                               std::to_string(static_cast<int>(pong.type)));
  }
  return Status::OK();
}

void RemoteBackendClient::DiscardLocked(EndpointState* ep) {
  connections_discarded_.fetch_add(static_cast<int64_t>(ep->pool.size()),
                                   std::memory_order_relaxed);
  ep->pool.clear();
}

void RemoteBackendClient::NoteSuccess(size_t endpoint_index) {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointState& ep = endpoints_[endpoint_index];
  ep.consecutive_failures = 0;
  ep.calls_ok++;
  ep.evicted = false;
  ep.probe_in_flight = false;
}

void RemoteBackendClient::NoteTransportFailure(size_t endpoint_index) {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointState& ep = endpoints_[endpoint_index];
  ep.transport_failures++;
  ep.consecutive_failures++;
  if (ep.probe_in_flight) {
    // Failed probe: restart the re-probe clock, release the probe slot.
    ep.probe_in_flight = false;
    ep.evicted_at_ms = NowMs();
  }
  if (!ep.evicted && ep.consecutive_failures >= options_.eviction_threshold) {
    ep.evicted = true;
    ep.evicted_at_ms = NowMs();
    ep.evictions++;
    endpoints_evicted_.fetch_add(1, std::memory_order_relaxed);
    // Pooled connections to an endpoint we just declared dead are not
    // worth health-gating one by one.
    DiscardLocked(&ep);
  }
}

Result<ServiceResponse> RemoteBackendClient::Call(
    const std::string& interface_name, const ServiceRequest& request) {
  // Ship the caller's remaining budget inside the request so the backend
  // can skip work for calls that already timed out client-side.
  ServiceRequest wire_request = request;
  if (wire_request.deadline_ms < 0.0 && options_.timeout_ms >= 0) {
    wire_request.deadline_ms = static_cast<double>(options_.timeout_ms);
  }
  const uint64_t ordinal = RequestOrdinal(request);

  const int attempts =
      options_.wire_retries < 0 ? 1 : options_.wire_retries + 1;
  Status last = Status::Unavailable("remote backend: no call attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // A cancelled call is never (re)tried, and a stopped client issues
    // nothing — both checked before any backoff is slept or socket dialed.
    if (stopped()) {
      return Status::Cancelled("remote backend client stopped");
    }
    if (wire_request.cancel != nullptr && wire_request.cancel->cancelled()) {
      return wire_request.cancel->ToStatus();
    }
    if (attempt > 0) {
      reconnect_attempts_.fetch_add(1, std::memory_order_relaxed);
      if (!InterruptibleSleep(options_.reconnect.BackoffMs(ordinal, attempt - 1),
                              wire_request.cancel)) {
        return wire_request.cancel != nullptr &&
                       wire_request.cancel->cancelled()
                   ? wire_request.cancel->ToStatus()
                   : Status::Cancelled("remote backend client stopped");
      }
    }

    bool exhausted = false;
    Result<Checked> co = CheckOut(&exhausted);
    if (!co.ok()) {
      if (exhausted) return co.status();  // fail fast: nothing left to try
      if (co.status().code() != StatusCode::kUnavailable) {
        // Non-transport dial failure (e.g. a version-mismatch rejection):
        // retrying the same handshake cannot help.
        return co.status();
      }
      last = co.status();
      continue;
    }
    Checked checked = std::move(co.value());
    PooledConn* conn = checked.conn.get();

    const uint64_t call_id =
        next_call_id_.fetch_add(1, std::memory_order_relaxed);
    WireWriter call;
    call.U64(call_id);
    call.Str(interface_name);
    EncodeServiceRequest(wire_request, &call);
    Status sent = SendFrame(&conn->socket, FrameType::kCall, call.Take());
    if (!sent.ok()) {
      NoteTransportFailure(checked.endpoint);
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      last = sent;
      continue;
    }

    // Any failure from here on discards the connection: a reply may be in
    // flight, so the stream can never be trusted for another call — this
    // is what makes a stale reply impossible to misattribute to call N+1.
    Result<Frame> frame = RecvReply(conn, call_id, wire_request.cancel);
    if (!frame.ok() && frame.status().code() == StatusCode::kCancelled) {
      // Our own abandonment, not endpoint evidence: the connection is
      // discarded (a reply may be in flight) without charging eviction.
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      return frame.status();
    }
    if (!frame.ok()) {
      NoteTransportFailure(checked.endpoint);
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        // An honest timeout goes straight up: the reliability layer owns
        // the retry decision for slow backends, and silently retrying
        // here would double the configured budget.
        return frame.status();
      }
      last = frame.status();
      continue;
    }
    if (frame.value().type == FrameType::kError) {
      // The backend spoke the protocol to reject us (bad frame type,
      // undecodable call). Deliberate, not transport damage — surface it.
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      WireReader r(frame.value().payload);
      Status remote = Status::OK();
      if (!DecodeStatus(&r, &remote).ok() || remote.ok()) {
        return Status::Unavailable("backend protocol error");
      }
      return remote;
    }
    if (frame.value().type != FrameType::kCallReply) {
      NoteTransportFailure(checked.endpoint);
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      last = Status::Unavailable(
          "backend sent unexpected frame " +
          std::to_string(static_cast<int>(frame.value().type)) +
          " instead of a call reply");
      continue;
    }

    WireReader r(frame.value().payload);
    auto reply_id = r.U64();
    if (!reply_id.ok()) {
      NoteTransportFailure(checked.endpoint);
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      last = reply_id.status();
      continue;
    }
    if (reply_id.value() != call_id) {
      // A stale reply (the answer to some earlier call on a stream that
      // should have been discarded) must never be attributed to this one.
      NoteTransportFailure(checked.endpoint);
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      last = Status::Unavailable(
          "backend reply id " + std::to_string(reply_id.value()) +
          " does not match call id " + std::to_string(call_id));
      continue;
    }
    auto ok = r.Bool();
    if (!ok.ok()) {
      NoteTransportFailure(checked.endpoint);
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      last = ok.status();
      continue;
    }
    if (!ok.value()) {
      Status remote = Status::OK();
      Status decoded = DecodeStatus(&r, &remote);
      if (decoded.ok()) decoded = r.ExpectEnd();
      if (!decoded.ok()) {
        NoteTransportFailure(checked.endpoint);
        connections_discarded_.fetch_add(1, std::memory_order_relaxed);
        last = decoded;
        continue;
      }
      // The protocol exchange itself succeeded: the connection is healthy
      // and the handler's status must round-trip verbatim, un-retried —
      // the reliability layer upstream decides what a fault status means.
      NoteSuccess(checked.endpoint);
      CheckIn(checked.endpoint, std::move(checked.conn));
      if (remote.ok()) {
        return Status::Unavailable(
            "backend reported failure without status");
      }
      return remote;
    }
    auto response = DecodeServiceResponse(&r);
    Status tail = response.ok() ? r.ExpectEnd() : response.status();
    if (!tail.ok()) {
      NoteTransportFailure(checked.endpoint);
      connections_discarded_.fetch_add(1, std::memory_order_relaxed);
      last = tail;
      continue;
    }
    NoteSuccess(checked.endpoint);
    CheckIn(checked.endpoint, std::move(checked.conn));
    return std::move(response.value());
  }
  return last;
}

RemotePoolStats RemoteBackendClient::stats() const {
  RemotePoolStats out;
  out.connections_opened =
      connections_opened_.load(std::memory_order_relaxed);
  out.connections_reused =
      connections_reused_.load(std::memory_order_relaxed);
  out.connections_discarded =
      connections_discarded_.load(std::memory_order_relaxed);
  out.reconnect_attempts =
      reconnect_attempts_.load(std::memory_order_relaxed);
  out.dial_overflows = dial_overflows_.load(std::memory_order_relaxed);
  out.pings_sent = pings_sent_.load(std::memory_order_relaxed);
  out.ping_failures = ping_failures_.load(std::memory_order_relaxed);
  out.endpoints_evicted = endpoints_evicted_.load(std::memory_order_relaxed);
  out.endpoint_exhaustions =
      endpoint_exhaustions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const EndpointState& ep : endpoints_) {
    RemoteEndpointHealth health;
    health.endpoint = ep.host + ":" + std::to_string(ep.port);
    health.evicted = ep.evicted;
    health.consecutive_failures = ep.consecutive_failures;
    health.dials = ep.dials;
    health.calls_ok = ep.calls_ok;
    health.transport_failures = ep.transport_failures;
    health.evictions = ep.evictions;
    out.endpoints.push_back(std::move(health));
  }
  return out;
}

Result<std::shared_ptr<ServiceRegistry>> MakeRemoteRegistryRouted(
    const ServiceRegistry& local,
    std::shared_ptr<RemoteBackendClient> default_client,
    const std::map<std::string, std::shared_ptr<RemoteBackendClient>>&
        routes) {
  auto remote = std::make_shared<ServiceRegistry>();

  for (const std::string& name : local.mart_names()) {
    SECO_ASSIGN_OR_RETURN(auto mart, local.FindMart(name));
    SECO_RETURN_IF_ERROR(remote->RegisterMart(mart));
  }
  for (const std::string& name : local.interface_names()) {
    SECO_ASSIGN_OR_RETURN(auto iface, local.FindInterface(name));
    auto route = routes.find(name);
    std::shared_ptr<RemoteBackendClient> client =
        route != routes.end() ? route->second : default_client;
    auto handler = std::make_shared<RemoteServiceHandler>(client, name);
    auto twin = std::make_shared<ServiceInterface>(
        iface->name(), iface->schema_ptr(), iface->pattern(), iface->kind(),
        iface->stats(), std::move(handler));
    SECO_RETURN_IF_ERROR(
        remote->RegisterInterface(twin, local.MartOfInterface(name)));
  }
  for (const std::string& name : local.pattern_names()) {
    SECO_ASSIGN_OR_RETURN(auto pattern, local.FindConnectionPattern(name));
    SECO_RETURN_IF_ERROR(remote->RegisterConnectionPattern(pattern));
  }
  return remote;
}

Result<std::shared_ptr<ServiceRegistry>> MakeRemoteRegistry(
    const ServiceRegistry& local, const std::string& host, uint16_t port,
    RemoteBackendOptions options,
    std::shared_ptr<RemoteBackendClient>* client_out) {
  auto client = std::make_shared<RemoteBackendClient>(host, port, options);
  if (client_out != nullptr) *client_out = client;
  return MakeRemoteRegistryRouted(local, std::move(client), {});
}

}  // namespace seco
