#include "net/remote_handler.h"

namespace seco {

RemoteBackendClient::RemoteBackendClient(std::string host, uint16_t port,
                                         RemoteBackendOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

Result<std::unique_ptr<RemoteBackendClient::PooledConn>>
RemoteBackendClient::CheckOut() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      auto conn = std::move(pool_.back());
      pool_.pop_back();
      return conn;
    }
  }
  SECO_ASSIGN_OR_RETURN(Socket socket,
                        ConnectTcp(host_, port_, options_.timeout_ms));
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<PooledConn>();
  conn->socket = std::move(socket);

  // Hello handshake on the fresh connection.
  WireWriter hello;
  hello.U32(kWireMagic);
  hello.U16(kWireVersion);
  hello.U8(static_cast<uint8_t>(WireRole::kBackendClient));
  SECO_RETURN_IF_ERROR(
      SendFrame(&conn->socket, FrameType::kHello, hello.Take()));
  SECO_ASSIGN_OR_RETURN(
      Frame ack,
      RecvFrame(&conn->socket, &conn->decoder, options_.timeout_ms));
  if (ack.type == FrameType::kError) {
    WireReader r(ack.payload);
    Status remote = Status::OK();
    if (!DecodeStatus(&r, &remote).ok() || remote.ok()) {
      return Status::Unavailable("backend rejected hello");
    }
    return remote;
  }
  if (ack.type != FrameType::kHelloAck) {
    return Status::Unavailable("backend sent unexpected frame " +
                               std::to_string(static_cast<int>(ack.type)) +
                               " instead of hello ack");
  }
  return conn;
}

void RemoteBackendClient::CheckIn(std::unique_ptr<PooledConn> conn) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (static_cast<int>(pool_.size()) < options_.max_pool) {
    pool_.push_back(std::move(conn));
  }
}

Result<ServiceResponse> RemoteBackendClient::Call(
    const std::string& interface_name, const ServiceRequest& request) {
  SECO_ASSIGN_OR_RETURN(std::unique_ptr<PooledConn> conn, CheckOut());

  const uint64_t call_id =
      next_call_id_.fetch_add(1, std::memory_order_relaxed);
  WireWriter call;
  call.U64(call_id);
  call.Str(interface_name);
  EncodeServiceRequest(request, &call);
  SECO_RETURN_IF_ERROR(
      SendFrame(&conn->socket, FrameType::kCall, call.Take()));

  // Any failure from here on discards the connection: a reply may be in
  // flight, so the stream can no longer be trusted for the next call.
  SECO_ASSIGN_OR_RETURN(
      Frame frame,
      RecvFrame(&conn->socket, &conn->decoder, options_.timeout_ms));
  if (frame.type == FrameType::kError) {
    WireReader r(frame.payload);
    Status remote = Status::OK();
    if (!DecodeStatus(&r, &remote).ok() || remote.ok()) {
      return Status::Unavailable("backend protocol error");
    }
    return remote;
  }
  if (frame.type != FrameType::kCallReply) {
    return Status::Unavailable("backend sent unexpected frame " +
                               std::to_string(static_cast<int>(frame.type)) +
                               " instead of a call reply");
  }

  WireReader r(frame.payload);
  SECO_ASSIGN_OR_RETURN(uint64_t reply_id, r.U64());
  if (reply_id != call_id) {
    return Status::Unavailable("backend reply id " +
                               std::to_string(reply_id) +
                               " does not match call id " +
                               std::to_string(call_id));
  }
  SECO_ASSIGN_OR_RETURN(bool ok, r.Bool());
  if (!ok) {
    Status remote = Status::OK();
    SECO_RETURN_IF_ERROR(DecodeStatus(&r, &remote));
    SECO_RETURN_IF_ERROR(r.ExpectEnd());
    CheckIn(std::move(conn));  // the protocol exchange itself succeeded
    if (remote.ok()) {
      return Status::Unavailable("backend reported failure without status");
    }
    return remote;
  }
  SECO_ASSIGN_OR_RETURN(ServiceResponse response, DecodeServiceResponse(&r));
  SECO_RETURN_IF_ERROR(r.ExpectEnd());
  CheckIn(std::move(conn));
  return response;
}

Result<std::shared_ptr<ServiceRegistry>> MakeRemoteRegistry(
    const ServiceRegistry& local, const std::string& host, uint16_t port,
    RemoteBackendOptions options) {
  auto client = std::make_shared<RemoteBackendClient>(host, port, options);
  auto remote = std::make_shared<ServiceRegistry>();

  for (const std::string& name : local.mart_names()) {
    SECO_ASSIGN_OR_RETURN(auto mart, local.FindMart(name));
    SECO_RETURN_IF_ERROR(remote->RegisterMart(mart));
  }
  for (const std::string& name : local.interface_names()) {
    SECO_ASSIGN_OR_RETURN(auto iface, local.FindInterface(name));
    auto handler = std::make_shared<RemoteServiceHandler>(client, name);
    auto twin = std::make_shared<ServiceInterface>(
        iface->name(), iface->schema_ptr(), iface->pattern(), iface->kind(),
        iface->stats(), std::move(handler));
    SECO_RETURN_IF_ERROR(
        remote->RegisterInterface(twin, local.MartOfInterface(name)));
  }
  for (const std::string& name : local.pattern_names()) {
    SECO_ASSIGN_OR_RETURN(auto pattern, local.FindConnectionPattern(name));
    SECO_RETURN_IF_ERROR(remote->RegisterConnectionPattern(pattern));
  }
  return remote;
}

}  // namespace seco
