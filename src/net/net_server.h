#ifndef SECO_NET_NET_SERVER_H_
#define SECO_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/result.h"
#include "net/chaos.h"
#include "net/conn_registry.h"
#include "net/socket.h"
#include "server/server.h"

namespace seco {

/// Front-end knobs.
struct NetServerOptions {
  /// Responses a connection may have in flight before its reader stops
  /// pulling new queries off the socket — the pipelining cap. Backpressure
  /// then propagates to the client through TCP.
  int pipeline_depth = 64;
  /// Idle receive timeout for keep-alive connections, ms; < 0 waits
  /// forever.
  int idle_timeout_ms = -1;
  /// Queries a connection may have admitted into the QueryServer but not
  /// yet fully written back. Distinct from `pipeline_depth` (which bounds
  /// the reply FIFO): this bounds *work*, so one connection spraying
  /// queries cannot monopolize the executor. <= 0 disables the gate.
  int max_conn_in_flight = 0;
  /// Write-progress deadline per connection, ms: a peer that submits
  /// queries and then stops reading (slow loris) fails its writer with
  /// kDeadlineExceeded instead of wedging a server thread in send().
  /// < 0 waits forever.
  int write_timeout_ms = -1;
  /// Deterministic fault injection on accepted connections (see
  /// `net/chaos.h`). Inert by default.
  ChaosOptions chaos;
};

/// TCP listener in front of a `QueryServer` (docs/NETWORK.md): speaks the
/// framed query protocol on its own acceptor + per-connection io threads,
/// parses `kQuery` frames into `QueryRequest`s, and maps each
/// `ServedOutcome` — including admission shedding with its retry-after
/// hint — onto a wire status in the result header. Answer bodies are the
/// canonical `EncodeAnswerBody` bytes, chunked at `kBodyChunkBytes`, so a
/// wire answer is byte-identical to the in-process response it came from.
///
/// Connections are keep-alive and pipelined: a client may send many
/// `kQuery` frames without waiting; responses come back in per-connection
/// request order (submission order = response order, so closed-loop
/// clients see exactly the in-process future semantics).
class NetServer {
 public:
  /// `server` must outlive this object.
  explicit NetServer(QueryServer* server, NetServerOptions options = {});
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see `port()`) and starts the
  /// acceptor thread.
  Status Start(uint16_t port = 0);

  /// Graceful-shutdown entry (SIGINT/SIGTERM): puts the `QueryServer`
  /// into draining mode — in-flight queries finish, new submissions shed
  /// — and makes every *new* connection's hello fail with a structured
  /// `kRejected` + retry-after. Existing connections keep their pipeline;
  /// their queued queries resolve, later ones come back `kDraining`.
  void BeginDrain();

  /// Full stop: `BeginDrain`, close the listener, shut down both sides of
  /// every connection (a writer blocked in `send` against a stalled client
  /// must fail too), join all threads, and drain the `QueryServer`.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for malformed framing (oversized prefix, unknown
  /// type, garbage) — the robustness ledger.
  int64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  /// Connections killed by the write-progress deadline (peer stopped
  /// reading while responses were owed).
  int64_t write_stalls() const {
    return write_stalls_.load(std::memory_order_relaxed);
  }
  /// `CANCEL` frames received (v3) — whether or not they won their race.
  int64_t cancels_received() const {
    return cancels_received_.load(std::memory_order_relaxed);
  }
  /// Server-side queries cancelled because their connection went away
  /// (EOF, reset, goodbye, or framing error) while they were outstanding.
  int64_t disconnect_cancels() const {
    return disconnect_cancels_.load(std::memory_order_relaxed);
  }

  /// Faults fired by this server's chaos engine (zeros when chaos is off).
  ChaosStats chaos_stats() const { return chaos_.stats(); }

 private:
  void AcceptLoop();
  void ServeConnection(Socket* conn);

  QueryServer* const server_;
  const NetServerOptions options_;
  ChaosEngine chaos_;
  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> queries_served_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> write_stalls_{0};
  std::atomic<int64_t> cancels_received_{0};
  std::atomic<int64_t> disconnect_cancels_{0};

  ConnectionRegistry conns_;
};

}  // namespace seco

#endif  // SECO_NET_NET_SERVER_H_
