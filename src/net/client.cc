#include "net/client.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace seco {

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port,
                                     int timeout_ms) {
  SECO_ASSIGN_OR_RETURN(Socket socket, ConnectTcp(host, port, timeout_ms));
  NetClient client(std::move(socket), timeout_ms);

  WireWriter hello;
  hello.U32(kWireMagic);
  hello.U16(kWireVersion);
  hello.U8(static_cast<uint8_t>(WireRole::kQueryClient));
  SECO_RETURN_IF_ERROR(
      SendFrame(&client.socket_, FrameType::kHello, hello.Take()));
  SECO_ASSIGN_OR_RETURN(
      Frame ack, RecvFrame(&client.socket_, &client.decoder_, timeout_ms));
  if (ack.type == FrameType::kError) {
    WireReader r(ack.payload);
    Status remote = Status::OK();
    if (DecodeStatus(&r, &remote).ok() && !remote.ok()) return remote;
    return Status::Unavailable("front end rejected hello");
  }
  if (ack.type != FrameType::kHelloAck) {
    return Status::Unavailable("front end sent unexpected frame " +
                               std::to_string(static_cast<int>(ack.type)) +
                               " instead of hello ack");
  }
  return client;
}

Status NetClient::Submit(uint64_t request_id, const QueryRequest& request) {
  WireWriter w;
  w.U64(request_id);
  std::string encoded = EncodeQueryRequest(request);
  w.Bytes(encoded.data(), encoded.size());
  return SendFrame(&socket_, FrameType::kQuery, w.Take());
}

Result<WireResponse> NetClient::Receive() {
  SECO_ASSIGN_OR_RETURN(Frame header,
                        RecvFrame(&socket_, &decoder_, timeout_ms_));
  if (header.type == FrameType::kError) {
    WireReader r(header.payload);
    Status remote = Status::OK();
    if (DecodeStatus(&r, &remote).ok() && !remote.ok()) return remote;
    return Status::Unavailable("front end protocol error");
  }
  if (header.type != FrameType::kResultHeader) {
    return Status::Unavailable("front end sent unexpected frame " +
                               std::to_string(static_cast<int>(header.type)) +
                               " instead of a result header");
  }
  WireResponse response;
  uint32_t body_len = 0;
  {
    WireReader r(header.payload);
    SECO_ASSIGN_OR_RETURN(response.request_id, r.U64());
    SECO_ASSIGN_OR_RETURN(uint8_t status, r.U8());
    if (status > static_cast<uint8_t>(WireStatus::kCancelled)) {
      return Status::InvalidArgument("wire: result status out of range");
    }
    response.status = static_cast<WireStatus>(status);
    SECO_ASSIGN_OR_RETURN(response.retry_after_ms, r.F64());
    SECO_ASSIGN_OR_RETURN(body_len, r.U32());
    SECO_RETURN_IF_ERROR(r.ExpectEnd());
  }

  response.body.reserve(body_len);
  while (true) {
    SECO_ASSIGN_OR_RETURN(Frame frame,
                          RecvFrame(&socket_, &decoder_, timeout_ms_));
    if (frame.type == FrameType::kResultEnd) {
      WireReader r(frame.payload);
      SECO_ASSIGN_OR_RETURN(uint64_t id, r.U64());
      if (id != response.request_id) {
        return Status::InvalidArgument("wire: result end for request " +
                                       std::to_string(id) +
                                       " inside response " +
                                       std::to_string(response.request_id));
      }
      break;
    }
    if (frame.type != FrameType::kResultBody) {
      return Status::Unavailable(
          "front end sent unexpected frame " +
          std::to_string(static_cast<int>(frame.type)) +
          " inside a chunked response");
    }
    WireReader r(frame.payload);
    SECO_ASSIGN_OR_RETURN(uint64_t id, r.U64());
    if (id != response.request_id) {
      return Status::InvalidArgument("wire: body chunk for request " +
                                     std::to_string(id) +
                                     " inside response " +
                                     std::to_string(response.request_id));
    }
    response.body.append(frame.payload, 8, std::string::npos);
  }
  if (response.body.size() != body_len) {
    return Status::InvalidArgument(
        "wire: reassembled body is " + std::to_string(response.body.size()) +
        " bytes, header promised " + std::to_string(body_len));
  }
  return response;
}

Result<WireResponse> NetClient::Roundtrip(uint64_t request_id,
                                          const QueryRequest& request) {
  SECO_RETURN_IF_ERROR(Submit(request_id, request));
  return Receive();
}

Status NetClient::Cancel(uint64_t request_id) {
  WireWriter w;
  w.U64(request_id);
  return SendFrame(&socket_, FrameType::kCancel, w.Take());
}

Status NetClient::Ping(uint64_t cookie) {
  WireWriter w;
  w.U64(cookie);
  SECO_RETURN_IF_ERROR(SendFrame(&socket_, FrameType::kPing, w.Take()));
  SECO_ASSIGN_OR_RETURN(Frame pong,
                        RecvFrame(&socket_, &decoder_, timeout_ms_));
  if (pong.type != FrameType::kPong) {
    return Status::Unavailable("expected pong, got frame " +
                               std::to_string(static_cast<int>(pong.type)));
  }
  WireReader r(pong.payload);
  SECO_ASSIGN_OR_RETURN(uint64_t echoed, r.U64());
  if (echoed != cookie) {
    return Status::Unavailable("pong cookie mismatch");
  }
  return Status::OK();
}

void NetClient::Goodbye() {
  (void)SendFrame(&socket_, FrameType::kGoodbye, std::string());
  socket_.ShutdownWrite();
  socket_.Close();
}

int64_t WireLoadReport::CountOutcome(ServedOutcome outcome) const {
  int64_t count = 0;
  for (const QueryResponse& response : responses) {
    if (response.outcome == outcome) ++count;
  }
  return count;
}

namespace {

/// Decodes one wire response into the report slots; transport or codec
/// failures become kFailed responses so the report always has one terminal
/// entry per scheduled query, like the in-process `LoadReport`.
void FillSlot(Result<WireResponse> wire, WireLoadReport* report, size_t i) {
  if (!wire.ok()) {
    report->responses[i].outcome = ServedOutcome::kFailed;
    report->responses[i].status = wire.status();
    return;
  }
  report->bodies[i] = wire.value().body;
  Result<QueryResponse> decoded = DecodeAnswerBody(wire.value().body);
  if (!decoded.ok()) {
    report->responses[i].outcome = ServedOutcome::kFailed;
    report->responses[i].status = decoded.status();
    return;
  }
  report->responses[i] = std::move(decoded.value());
}

}  // namespace

WireLoadReport DriveLoadOverWire(const std::string& host, uint16_t port,
                                 const std::vector<LoadItem>& schedule,
                                 const LoadProfile& profile) {
  WireLoadReport report;
  report.responses.resize(schedule.size());
  report.bodies.resize(schedule.size());
  auto start = std::chrono::steady_clock::now();

  if (profile.closed_loop_width > 0) {
    // Closed loop: `width` worker connections, each keeping exactly one
    // call outstanding and pulling the next schedule slot as its response
    // lands — the wire analogue of DriveLoad's future deque.
    const int width = std::min<int>(profile.closed_loop_width,
                                    static_cast<int>(schedule.size()));
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(width);
    for (int w = 0; w < width; ++w) {
      workers.emplace_back([&] {
        Result<NetClient> client = NetClient::Connect(host, port);
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < schedule.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          if (!client.ok()) {
            // Reconnect per slot: one refused dial or one poisoned stream
            // fails its own query, not every query this worker would have
            // pulled for the rest of the run.
            client = NetClient::Connect(host, port);
          }
          if (!client.ok()) {
            report.responses[i].outcome = ServedOutcome::kFailed;
            report.responses[i].status = client.status();
            continue;
          }
          Result<WireResponse> wire = client.value().Roundtrip(
              static_cast<uint64_t>(i + 1), schedule[i].request);
          if (!wire.ok()) {
            // The stream may hold a half-delivered response; poison the
            // client so the next slot dials fresh.
            client = wire.status();
          }
          FillSlot(std::move(wire), &report, i);
        }
        if (client.ok()) client.value().Goodbye();
      });
    }
    for (std::thread& t : workers) t.join();
  } else {
    // Open loop: pipeline the entire schedule down one keep-alive
    // connection; a reader thread collects responses (submission order)
    // while the writer keeps offering load, so offered load stays
    // independent of service rate just like the in-process open loop.
    Result<NetClient> client = NetClient::Connect(host, port);
    if (!client.ok()) {
      for (size_t i = 0; i < schedule.size(); ++i) {
        report.responses[i].outcome = ServedOutcome::kFailed;
        report.responses[i].status = client.status();
      }
    } else {
      std::thread reader([&] {
        for (size_t i = 0; i < schedule.size(); ++i) {
          FillSlot(client.value().Receive(), &report, i);
        }
      });
      for (size_t i = 0; i < schedule.size(); ++i) {
        if (profile.realtime_factor > 0.0 && i > 0) {
          double gap_ms = (schedule[i].arrival_ms -
                           schedule[i - 1].arrival_ms) *
                          profile.realtime_factor;
          if (gap_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(gap_ms));
          }
        }
        Status sent = client.value().Submit(static_cast<uint64_t>(i + 1),
                                            schedule[i].request);
        if (!sent.ok()) break;  // reader fails the remaining slots
      }
      reader.join();
      client.value().Goodbye();
    }
  }

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return report;
}

}  // namespace seco
