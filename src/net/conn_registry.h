#ifndef SECO_NET_CONN_REGISTRY_H_
#define SECO_NET_CONN_REGISTRY_H_

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace seco {

/// Tracks the live connections of a one-thread-per-connection server
/// (`NetServer`, `BackendServer`): spawns each serving thread, keeps the
/// connection fd so `ShutdownAll` can force blocked reads *and writes* to
/// fail, and reaps finished threads opportunistically on every `Launch` so
/// a long-lived server accepting many short connections does not
/// accumulate one thread handle per connection ever served.
///
/// Lifecycle guarantees:
///  - A slot's fd is cleared (under the lock) *before* the socket is
///    closed, so a concurrent `ShutdownAll` can never act on a recycled
///    descriptor number.
///  - After `ShutdownAll`, `Launch` refuses (drops the socket) until
///    `JoinAll` completes, closing the accept/stop race.
class ConnectionRegistry {
 public:
  ConnectionRegistry() = default;
  ConnectionRegistry(const ConnectionRegistry&) = delete;
  ConnectionRegistry& operator=(const ConnectionRegistry&) = delete;

  /// Spawns a thread running `serve(&socket)` and registers it. Returns
  /// false (destroying the socket, serving nothing) once `ShutdownAll` has
  /// been called.
  bool Launch(Socket socket, std::function<void(Socket*)> serve);

  /// `shutdown(SHUT_RDWR)` on every live connection: unblocks reader
  /// threads stuck in recv *and* writer threads stuck in send against a
  /// peer that stopped reading. New `Launch` calls are refused from here
  /// until `JoinAll`.
  void ShutdownAll();

  /// Joins every remaining connection thread and clears the registry,
  /// re-enabling `Launch` (for servers restarted after `Stop`).
  void JoinAll();

 private:
  struct Slot {
    int fd = -1;       ///< live fd; -1 once the serving thread is past IO
    std::thread thread;
    bool done = false; ///< set last, after the socket is closed
  };

  /// Joins and erases every finished slot. Caller holds `mu_`.
  void ReapLocked();

  std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
  bool closed_ = false;
};

}  // namespace seco

#endif  // SECO_NET_CONN_REGISTRY_H_
