#include "net/wire.h"

#include <cstring>

namespace seco {

namespace {

/// Little-endian byte packing, independent of host endianness.
void PutLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t GetLE(const char* data, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[i])) << (8 * i);
  }
  return v;
}

bool KnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kHelloAck:
    case FrameType::kError:
    case FrameType::kGoodbye:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kQuery:
    case FrameType::kResultHeader:
    case FrameType::kResultBody:
    case FrameType::kResultEnd:
    case FrameType::kCall:
    case FrameType::kCallReply:
    case FrameType::kCancel:
      return true;
  }
  return false;
}

}  // namespace

WireStatus WireStatusOf(const QueryResponse& response) {
  switch (response.outcome) {
    case ServedOutcome::kCompleted:
      return WireStatus::kOk;
    case ServedOutcome::kDegraded:
      return WireStatus::kDegraded;
    case ServedOutcome::kShed:
      return WireStatus::kShed;
    case ServedOutcome::kDeadlineExpired:
      return WireStatus::kDeadline;
    case ServedOutcome::kFailed:
      return WireStatus::kFailed;
    case ServedOutcome::kCancelled:
      return WireStatus::kCancelled;
  }
  return WireStatus::kFailed;
}

ServedOutcome OutcomeOfWireStatus(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return ServedOutcome::kCompleted;
    case WireStatus::kDegraded:
      return ServedOutcome::kDegraded;
    case WireStatus::kShed:
    case WireStatus::kDraining:
      return ServedOutcome::kShed;
    case WireStatus::kDeadline:
      return ServedOutcome::kDeadlineExpired;
    case WireStatus::kFailed:
      return ServedOutcome::kFailed;
    case WireStatus::kCancelled:
      return ServedOutcome::kCancelled;
  }
  return ServedOutcome::kFailed;
}

const char* WireStatusToString(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kDegraded:
      return "degraded";
    case WireStatus::kShed:
      return "shed";
    case WireStatus::kDeadline:
      return "deadline";
    case WireStatus::kFailed:
      return "failed";
    case WireStatus::kDraining:
      return "draining";
    case WireStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

void WireWriter::U16(uint16_t v) { PutLE(&out_, v, 2); }
void WireWriter::U32(uint32_t v) { PutLE(&out_, v, 4); }
void WireWriter::U64(uint64_t v) { PutLE(&out_, v, 8); }

void WireWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void WireWriter::Bytes(const void* data, size_t len) {
  out_.append(static_cast<const char*>(data), len);
}

Result<uint8_t> WireReader::U8() {
  if (pos_ + 1 > size_) return Status::InvalidArgument("wire: truncated u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::U16() {
  if (pos_ + 2 > size_) return Status::InvalidArgument("wire: truncated u16");
  uint16_t v = static_cast<uint16_t>(GetLE(data_ + pos_, 2));
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::U32() {
  if (pos_ + 4 > size_) return Status::InvalidArgument("wire: truncated u32");
  uint32_t v = static_cast<uint32_t>(GetLE(data_ + pos_, 4));
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::U64() {
  if (pos_ + 8 > size_) return Status::InvalidArgument("wire: truncated u64");
  uint64_t v = GetLE(data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<int32_t> WireReader::I32() {
  SECO_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> WireReader::I64() {
  SECO_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::F64() {
  SECO_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> WireReader::Bool() {
  SECO_ASSIGN_OR_RETURN(uint8_t v, U8());
  if (v > 1) return Status::InvalidArgument("wire: bool byte out of range");
  return v == 1;
}

Result<std::string> WireReader::Str() {
  SECO_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (len > remaining()) {
    return Status::InvalidArgument("wire: string length " +
                                   std::to_string(len) +
                                   " exceeds remaining payload");
  }
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Status WireReader::ExpectEnd() const {
  if (pos_ != size_) {
    return Status::InvalidArgument(
        "wire: " + std::to_string(size_ - pos_) +
        " trailing bytes after payload");
  }
  return Status::OK();
}

uint32_t FrameChecksum(const char* data, size_t size) {
  // FNV-1a, 32-bit: cheap, order-sensitive, catches single-byte flips —
  // exactly the corruption class the chaos layer injects.
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutLE(&out, payload.size(), 4);
  out.push_back(static_cast<char>(type));
  PutLE(&out, FrameChecksum(payload), 4);
  out.append(payload);
  return out;
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (poisoned_) {
    return Status::InvalidArgument("wire: decoder poisoned by earlier error");
  }
  buffer_.append(data, size);
  // Walk every header that is now fully buffered, frame to frame: an
  // oversized length prefix or unknown type must be rejected before any
  // payload is accepted, no matter how the bytes were fragmented or batched
  // across recv chunks (a pipelined burst can carry many headers at once).
  // Length and type live in the first 5 header bytes, so they are validated
  // as soon as those arrive — before the checksum word completes.
  while (scan_ + 5 <= buffer_.size()) {
    const char* header = buffer_.data() + scan_;
    uint32_t len = static_cast<uint32_t>(GetLE(header, 4));
    uint8_t type = static_cast<uint8_t>(header[4]);
    if (len > kMaxFramePayload) {
      poisoned_ = true;
      return Status::InvalidArgument(
          "wire: frame payload length " + std::to_string(len) +
          " exceeds the " + std::to_string(kMaxFramePayload) + "-byte cap");
    }
    if (!KnownFrameType(type)) {
      poisoned_ = true;
      return Status::InvalidArgument("wire: unknown frame type " +
                                     std::to_string(type));
    }
    if (scan_ + kFrameHeaderBytes > buffer_.size()) break;
    scan_ += kFrameHeaderBytes + static_cast<size_t>(len);
  }
  return Status::OK();
}

bool FrameDecoder::Next(Frame* frame) {
  if (poisoned_) return false;
  size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return false;
  const char* header = buffer_.data() + consumed_;
  uint32_t len = static_cast<uint32_t>(GetLE(header, 4));
  // Belt and braces: Feed validated this header when it was buffered, but a
  // frame must never pop unchecked.
  if (len > kMaxFramePayload ||
      !KnownFrameType(static_cast<uint8_t>(header[4]))) {
    poisoned_ = true;
    return false;
  }
  if (avail < kFrameHeaderBytes + static_cast<size_t>(len)) return false;
  const uint32_t declared = static_cast<uint32_t>(GetLE(header + 5, 4));
  const char* payload = buffer_.data() + consumed_ + kFrameHeaderBytes;
  if (FrameChecksum(payload, len) != declared) {
    // Corrupted payload: the stream can no longer be trusted (a flipped
    // byte in a *header* would already have failed above or desynced the
    // framing). Poison instead of popping garbage.
    poisoned_ = true;
    return false;
  }
  frame->type = static_cast<FrameType>(static_cast<uint8_t>(header[4]));
  frame->payload.assign(payload, len);
  consumed_ += kFrameHeaderBytes + len;
  // Compact once the consumed prefix dominates, so a long-lived keep-alive
  // connection does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    scan_ -= consumed_;
    consumed_ = 0;
  }
  return true;
}

// --- Value / tuple codecs. --------------------------------------------------

void EncodeValue(const Value& value, WireWriter* w) {
  w->U8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->Bool(value.AsBool());
      break;
    case ValueType::kInt:
      w->I64(value.AsInt());
      break;
    case ValueType::kDouble:
      w->F64(value.AsDouble());
      break;
    case ValueType::kString:
      w->Str(value.AsString());
      break;
  }
}

Result<Value> DecodeValue(WireReader* r) {
  SECO_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value();
    case ValueType::kBool: {
      SECO_ASSIGN_OR_RETURN(bool v, r->Bool());
      return Value(v);
    }
    case ValueType::kInt: {
      SECO_ASSIGN_OR_RETURN(int64_t v, r->I64());
      return Value(v);
    }
    case ValueType::kDouble: {
      SECO_ASSIGN_OR_RETURN(double v, r->F64());
      return Value(v);
    }
    case ValueType::kString: {
      SECO_ASSIGN_OR_RETURN(std::string v, r->Str());
      return Value(std::move(v));
    }
  }
  return Status::InvalidArgument("wire: unknown value type tag " +
                                 std::to_string(tag));
}

void EncodeTuple(const Tuple& tuple, WireWriter* w) {
  w->U32(static_cast<uint32_t>(tuple.num_slots()));
  for (int i = 0; i < tuple.num_slots(); ++i) {
    if (tuple.IsAtomic(i)) {
      w->U8(0);
      EncodeValue(tuple.AtomicAt(i), w);
    } else {
      w->U8(1);
      const RepeatingGroupValue& group = tuple.GroupAt(i);
      w->U32(static_cast<uint32_t>(group.size()));
      for (const GroupInstance& instance : group) {
        w->U32(static_cast<uint32_t>(instance.size()));
        for (const Value& v : instance) EncodeValue(v, w);
      }
    }
  }
}

Result<Tuple> DecodeTuple(WireReader* r) {
  SECO_ASSIGN_OR_RETURN(uint32_t num_slots, r->U32());
  std::vector<TupleSlot> slots;
  slots.reserve(std::min<uint32_t>(num_slots, 1024));
  for (uint32_t i = 0; i < num_slots; ++i) {
    SECO_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
    if (kind == 0) {
      SECO_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
      slots.emplace_back(std::move(v));
    } else if (kind == 1) {
      SECO_ASSIGN_OR_RETURN(uint32_t num_instances, r->U32());
      RepeatingGroupValue group;
      group.reserve(std::min<uint32_t>(num_instances, 1024));
      for (uint32_t g = 0; g < num_instances; ++g) {
        SECO_ASSIGN_OR_RETURN(uint32_t num_values, r->U32());
        GroupInstance instance;
        instance.reserve(std::min<uint32_t>(num_values, 1024));
        for (uint32_t v = 0; v < num_values; ++v) {
          SECO_ASSIGN_OR_RETURN(Value value, DecodeValue(r));
          instance.push_back(std::move(value));
        }
        group.push_back(std::move(instance));
      }
      slots.emplace_back(std::move(group));
    } else {
      return Status::InvalidArgument("wire: unknown tuple slot kind " +
                                     std::to_string(kind));
    }
  }
  return Tuple(std::move(slots));
}

void EncodeStatus(const Status& status, WireWriter* w) {
  w->U8(static_cast<uint8_t>(status.code()));
  w->Str(status.ok() ? std::string() : status.message());
}

Status DecodeStatus(WireReader* r, Status* out) {
  SECO_ASSIGN_OR_RETURN(uint8_t code, r->U8());
  SECO_ASSIGN_OR_RETURN(std::string message, r->Str());
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      *out = Status::OK();
      return Status::OK();
    case StatusCode::kInvalidArgument:
      *out = Status::InvalidArgument(std::move(message));
      return Status::OK();
    case StatusCode::kNotFound:
      *out = Status::NotFound(std::move(message));
      return Status::OK();
    case StatusCode::kAlreadyExists:
      *out = Status::AlreadyExists(std::move(message));
      return Status::OK();
    case StatusCode::kParseError:
      *out = Status::ParseError(std::move(message));
      return Status::OK();
    case StatusCode::kInfeasible:
      *out = Status::Infeasible(std::move(message));
      return Status::OK();
    case StatusCode::kTypeError:
      *out = Status::TypeError(std::move(message));
      return Status::OK();
    case StatusCode::kInternal:
      *out = Status::Internal(std::move(message));
      return Status::OK();
    case StatusCode::kUnsupported:
      *out = Status::Unsupported(std::move(message));
      return Status::OK();
    case StatusCode::kResourceExhausted:
      *out = Status::ResourceExhausted(std::move(message));
      return Status::OK();
    case StatusCode::kUnavailable:
      *out = Status::Unavailable(std::move(message));
      return Status::OK();
    case StatusCode::kDeadlineExceeded:
      *out = Status::DeadlineExceeded(std::move(message));
      return Status::OK();
    case StatusCode::kRejected:
      *out = Status::Rejected(std::move(message));
      return Status::OK();
    case StatusCode::kCancelled:
      *out = Status::Cancelled(std::move(message));
      return Status::OK();
  }
  return Status::InvalidArgument("wire: unknown status code " +
                                 std::to_string(code));
}

void EncodeServiceRequest(const ServiceRequest& request, WireWriter* w) {
  w->U32(static_cast<uint32_t>(request.inputs.size()));
  for (const Value& v : request.inputs) EncodeValue(v, w);
  w->U32(static_cast<uint32_t>(request.chunk_index));
  w->U32(static_cast<uint32_t>(request.attempt));
  w->F64(request.deadline_ms);
}

Result<ServiceRequest> DecodeServiceRequest(WireReader* r) {
  ServiceRequest request;
  SECO_ASSIGN_OR_RETURN(uint32_t num_inputs, r->U32());
  request.inputs.reserve(std::min<uint32_t>(num_inputs, 1024));
  for (uint32_t i = 0; i < num_inputs; ++i) {
    SECO_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    request.inputs.push_back(std::move(v));
  }
  SECO_ASSIGN_OR_RETURN(uint32_t chunk_index, r->U32());
  SECO_ASSIGN_OR_RETURN(uint32_t attempt, r->U32());
  SECO_ASSIGN_OR_RETURN(request.deadline_ms, r->F64());
  request.chunk_index = static_cast<int>(chunk_index);
  request.attempt = static_cast<int>(attempt);
  return request;
}

void EncodeServiceResponse(const ServiceResponse& response, WireWriter* w) {
  w->U32(static_cast<uint32_t>(response.tuples.size()));
  for (const Tuple& t : response.tuples) EncodeTuple(t, w);
  w->U32(static_cast<uint32_t>(response.scores.size()));
  for (double s : response.scores) w->F64(s);
  w->Bool(response.exhausted);
  w->F64(response.latency_ms);
  w->F64(response.fault_overhead_ms);
}

Result<ServiceResponse> DecodeServiceResponse(WireReader* r) {
  ServiceResponse response;
  SECO_ASSIGN_OR_RETURN(uint32_t num_tuples, r->U32());
  response.tuples.reserve(std::min<uint32_t>(num_tuples, 4096));
  for (uint32_t i = 0; i < num_tuples; ++i) {
    SECO_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(r));
    response.tuples.push_back(std::move(t));
  }
  SECO_ASSIGN_OR_RETURN(uint32_t num_scores, r->U32());
  response.scores.reserve(std::min<uint32_t>(num_scores, 4096));
  for (uint32_t i = 0; i < num_scores; ++i) {
    SECO_ASSIGN_OR_RETURN(double s, r->F64());
    response.scores.push_back(s);
  }
  SECO_ASSIGN_OR_RETURN(response.exhausted, r->Bool());
  SECO_ASSIGN_OR_RETURN(response.latency_ms, r->F64());
  SECO_ASSIGN_OR_RETURN(response.fault_overhead_ms, r->F64());
  return response;
}

// --- Query protocol payloads. -----------------------------------------------

std::string EncodeQueryRequest(const QueryRequest& request) {
  WireWriter w;
  w.Str(request.query_text);
  w.U8(static_cast<uint8_t>(request.priority));
  w.F64(request.deadline_ms);
  w.I32(request.k);
  w.I32(request.max_calls);
  w.Bool(request.streaming);
  w.U32(static_cast<uint32_t>(request.input_bindings.size()));
  for (const auto& [name, value] : request.input_bindings) {
    w.Str(name);
    EncodeValue(value, &w);
  }
  return w.Take();
}

Result<QueryRequest> DecodeQueryRequest(const std::string& payload) {
  WireReader r(payload);
  QueryRequest request;
  SECO_ASSIGN_OR_RETURN(request.query_text, r.Str());
  SECO_ASSIGN_OR_RETURN(uint8_t priority, r.U8());
  if (priority >= kNumPriorityClasses) {
    return Status::InvalidArgument("wire: priority class " +
                                   std::to_string(priority) + " out of range");
  }
  request.priority = static_cast<PriorityClass>(priority);
  SECO_ASSIGN_OR_RETURN(request.deadline_ms, r.F64());
  SECO_ASSIGN_OR_RETURN(request.k, r.I32());
  SECO_ASSIGN_OR_RETURN(request.max_calls, r.I32());
  SECO_ASSIGN_OR_RETURN(request.streaming, r.Bool());
  SECO_ASSIGN_OR_RETURN(uint32_t num_bindings, r.U32());
  for (uint32_t i = 0; i < num_bindings; ++i) {
    SECO_ASSIGN_OR_RETURN(std::string name, r.Str());
    SECO_ASSIGN_OR_RETURN(Value value, DecodeValue(&r));
    request.input_bindings.emplace(std::move(name), std::move(value));
  }
  SECO_RETURN_IF_ERROR(r.ExpectEnd());
  return request;
}

// --- Answer body. -----------------------------------------------------------

namespace {

constexpr uint8_t kAnswerBodyVersion = 1;

void EncodeCombination(const Combination& combo, WireWriter* w) {
  w->U32(static_cast<uint32_t>(combo.components.size()));
  for (const Tuple& t : combo.components) EncodeTuple(t, w);
  w->U32(static_cast<uint32_t>(combo.component_scores.size()));
  for (double s : combo.component_scores) w->F64(s);
  w->F64(combo.combined_score);
  w->U32(static_cast<uint32_t>(combo.missing_atoms.size()));
  for (int a : combo.missing_atoms) w->I32(a);
}

Result<Combination> DecodeCombination(WireReader* r) {
  Combination combo;
  SECO_ASSIGN_OR_RETURN(uint32_t num_components, r->U32());
  for (uint32_t i = 0; i < num_components; ++i) {
    SECO_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(r));
    combo.components.push_back(std::move(t));
  }
  SECO_ASSIGN_OR_RETURN(uint32_t num_scores, r->U32());
  for (uint32_t i = 0; i < num_scores; ++i) {
    SECO_ASSIGN_OR_RETURN(double s, r->F64());
    combo.component_scores.push_back(s);
  }
  SECO_ASSIGN_OR_RETURN(combo.combined_score, r->F64());
  SECO_ASSIGN_OR_RETURN(uint32_t num_missing, r->U32());
  for (uint32_t i = 0; i < num_missing; ++i) {
    SECO_ASSIGN_OR_RETURN(int32_t a, r->I32());
    combo.missing_atoms.push_back(a);
  }
  return combo;
}

void EncodeNodeStats(const std::map<int, NodeRuntimeStats>& stats,
                     WireWriter* w) {
  w->U32(static_cast<uint32_t>(stats.size()));
  for (const auto& [node, s] : stats) {
    w->I32(node);
    w->I32(s.calls);
    w->F64(s.latency_ms);
    w->I32(s.tuples_out);
    w->F64(s.finished_at_ms);
    w->I32(s.cache_hits);
  }
}

Status DecodeNodeStats(WireReader* r, std::map<int, NodeRuntimeStats>* stats) {
  SECO_ASSIGN_OR_RETURN(uint32_t count, r->U32());
  for (uint32_t i = 0; i < count; ++i) {
    SECO_ASSIGN_OR_RETURN(int32_t node, r->I32());
    NodeRuntimeStats s;
    SECO_ASSIGN_OR_RETURN(s.calls, r->I32());
    SECO_ASSIGN_OR_RETURN(s.latency_ms, r->F64());
    SECO_ASSIGN_OR_RETURN(s.tuples_out, r->I32());
    SECO_ASSIGN_OR_RETURN(s.finished_at_ms, r->F64());
    SECO_ASSIGN_OR_RETURN(s.cache_hits, r->I32());
    (*stats)[node] = s;
  }
  return Status::OK();
}

void EncodeReliability(const ReliabilityStats& stats, WireWriter* w) {
  w->I64(stats.attempts);
  w->I64(stats.retries);
  w->I64(stats.transient_failures);
  w->I64(stats.deadline_hits);
  w->I64(stats.hedges_launched);
  w->I64(stats.hedges_won);
  w->I64(stats.breaker_short_circuits);
  w->I64(stats.permanent_failures);
  w->F64(stats.backoff_ms);
  w->F64(stats.overhead_ms);
  w->U32(static_cast<uint32_t>(stats.breakers.size()));
  for (const CircuitBreakerState& b : stats.breakers) {
    w->Str(b.interface_name);
    w->U8(static_cast<uint8_t>(b.phase));
    w->I32(b.trips);
    w->I32(b.consecutive_failures);
    w->I64(b.short_circuits);
  }
  w->U32(static_cast<uint32_t>(stats.services_lost.size()));
  for (const ServiceLostEvent& e : stats.services_lost) {
    w->Str(e.interface_name);
    w->U64(e.ordinal);
    w->Str(e.reason);
    w->Bool(e.breaker_open);
  }
}

Status DecodeReliability(WireReader* r, ReliabilityStats* stats) {
  SECO_ASSIGN_OR_RETURN(stats->attempts, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->retries, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->transient_failures, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->deadline_hits, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->hedges_launched, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->hedges_won, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->breaker_short_circuits, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->permanent_failures, r->I64());
  SECO_ASSIGN_OR_RETURN(stats->backoff_ms, r->F64());
  SECO_ASSIGN_OR_RETURN(stats->overhead_ms, r->F64());
  SECO_ASSIGN_OR_RETURN(uint32_t num_breakers, r->U32());
  for (uint32_t i = 0; i < num_breakers; ++i) {
    CircuitBreakerState b;
    SECO_ASSIGN_OR_RETURN(b.interface_name, r->Str());
    SECO_ASSIGN_OR_RETURN(uint8_t phase, r->U8());
    if (phase > static_cast<uint8_t>(BreakerPhase::kHalfOpen)) {
      return Status::InvalidArgument("wire: breaker phase out of range");
    }
    b.phase = static_cast<BreakerPhase>(phase);
    SECO_ASSIGN_OR_RETURN(b.trips, r->I32());
    SECO_ASSIGN_OR_RETURN(b.consecutive_failures, r->I32());
    SECO_ASSIGN_OR_RETURN(b.short_circuits, r->I64());
    stats->breakers.push_back(std::move(b));
  }
  SECO_ASSIGN_OR_RETURN(uint32_t num_lost, r->U32());
  for (uint32_t i = 0; i < num_lost; ++i) {
    ServiceLostEvent e;
    SECO_ASSIGN_OR_RETURN(e.interface_name, r->Str());
    SECO_ASSIGN_OR_RETURN(e.ordinal, r->U64());
    SECO_ASSIGN_OR_RETURN(e.reason, r->Str());
    SECO_ASSIGN_OR_RETURN(e.breaker_open, r->Bool());
    stats->services_lost.push_back(std::move(e));
  }
  return Status::OK();
}

void EncodeDegraded(const std::vector<DegradedStatus>& degraded,
                    WireWriter* w) {
  w->U32(static_cast<uint32_t>(degraded.size()));
  for (const DegradedStatus& d : degraded) {
    w->I32(d.node);
    w->Str(d.service);
    w->I32(d.failed_bindings);
    w->Str(d.reason);
    w->Bool(d.cascaded);
    w->Bool(d.query_deadline);
  }
}

Status DecodeDegraded(WireReader* r, std::vector<DegradedStatus>* degraded) {
  SECO_ASSIGN_OR_RETURN(uint32_t count, r->U32());
  for (uint32_t i = 0; i < count; ++i) {
    DegradedStatus d;
    SECO_ASSIGN_OR_RETURN(d.node, r->I32());
    SECO_ASSIGN_OR_RETURN(d.service, r->Str());
    SECO_ASSIGN_OR_RETURN(d.failed_bindings, r->I32());
    SECO_ASSIGN_OR_RETURN(d.reason, r->Str());
    SECO_ASSIGN_OR_RETURN(d.cascaded, r->Bool());
    SECO_ASSIGN_OR_RETURN(d.query_deadline, r->Bool());
    degraded->push_back(std::move(d));
  }
  return Status::OK();
}

/// Repair telemetry, minus `replan_ms` (wall-clock: replanning is real
/// optimizer time, different on every run).
void EncodeRepair(const RepairStats& repair, WireWriter* w) {
  w->I32(repair.events);
  w->I32(repair.replans);
  w->I64(repair.salvaged_calls);
  w->F64(repair.abandoned_ms);
  w->U32(static_cast<uint32_t>(repair.log.size()));
  for (const RepairEvent& e : repair.log) {
    w->Str(e.lost);
    w->Str(e.replacement);
    w->Str(e.reason);
  }
}

Status DecodeRepair(WireReader* r, RepairStats* repair) {
  SECO_ASSIGN_OR_RETURN(repair->events, r->I32());
  SECO_ASSIGN_OR_RETURN(repair->replans, r->I32());
  SECO_ASSIGN_OR_RETURN(repair->salvaged_calls, r->I64());
  SECO_ASSIGN_OR_RETURN(repair->abandoned_ms, r->F64());
  SECO_ASSIGN_OR_RETURN(uint32_t count, r->U32());
  for (uint32_t i = 0; i < count; ++i) {
    RepairEvent e;
    SECO_ASSIGN_OR_RETURN(e.lost, r->Str());
    SECO_ASSIGN_OR_RETURN(e.replacement, r->Str());
    SECO_ASSIGN_OR_RETURN(e.reason, r->Str());
    repair->log.push_back(std::move(e));
  }
  return Status::OK();
}

void EncodeOpenBreakers(const std::vector<std::string>& names, WireWriter* w) {
  w->U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) w->Str(name);
}

Status DecodeOpenBreakers(WireReader* r, std::vector<std::string>* names) {
  SECO_ASSIGN_OR_RETURN(uint32_t count, r->U32());
  for (uint32_t i = 0; i < count; ++i) {
    SECO_ASSIGN_OR_RETURN(std::string name, r->Str());
    names->push_back(std::move(name));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeAnswerBody(const QueryResponse& response) {
  WireWriter w;
  w.U8(kAnswerBodyVersion);
  w.U8(static_cast<uint8_t>(response.outcome));
  w.U8(static_cast<uint8_t>(response.degradation_level));
  EncodeStatus(response.status, &w);
  w.F64(response.retry_after_ms);
  w.U8(static_cast<uint8_t>(response.priority));
  w.Bool(response.answer_cache_hit);
  w.Bool(response.streamed);

  const bool has_result = response.outcome == ServedOutcome::kCompleted ||
                          response.outcome == ServedOutcome::kDegraded;
  w.Bool(has_result);
  if (!has_result) return w.Take();

  if (response.streamed) {
    const StreamingResult& s = response.streaming;
    w.U32(static_cast<uint32_t>(s.combinations.size()));
    for (const Combination& c : s.combinations) EncodeCombination(c, &w);
    w.I32(s.total_calls);
    w.F64(s.total_latency_ms);
    w.Bool(s.exhausted);
    w.I32(s.cache_hits);
    w.I32(s.cache_misses);
    w.I32(s.speculative_calls);
    w.I32(s.speculative_wasted);
    w.Bool(s.complete);
    EncodeNodeStats(s.node_stats, &w);
    EncodeDegraded(s.degraded, &w);
    EncodeOpenBreakers(s.open_breakers, &w);
    EncodeReliability(s.reliability, &w);
    EncodeRepair(s.repair, &w);
  } else {
    const ExecutionResult& e = response.execution;
    w.U32(static_cast<uint32_t>(e.combinations.size()));
    for (const Combination& c : e.combinations) EncodeCombination(c, &w);
    w.I32(e.total_calls);
    w.F64(e.elapsed_ms);
    w.F64(e.total_latency_ms);
    w.I32(e.total_combinations_produced);
    w.I32(e.cache_hits);
    w.I32(e.cache_misses);
    w.Bool(e.complete);
    EncodeNodeStats(e.node_stats, &w);
    EncodeDegraded(e.degraded, &w);
    EncodeOpenBreakers(e.open_breakers, &w);
    EncodeReliability(e.reliability, &w);
    EncodeRepair(e.repair, &w);
  }
  return w.Take();
}

Result<QueryResponse> DecodeAnswerBody(const std::string& payload) {
  WireReader r(payload);
  SECO_ASSIGN_OR_RETURN(uint8_t version, r.U8());
  if (version != kAnswerBodyVersion) {
    return Status::Unsupported("wire: answer body version " +
                               std::to_string(version));
  }
  QueryResponse response;
  SECO_ASSIGN_OR_RETURN(uint8_t outcome, r.U8());
  if (outcome > static_cast<uint8_t>(ServedOutcome::kCancelled)) {
    return Status::InvalidArgument("wire: outcome out of range");
  }
  response.outcome = static_cast<ServedOutcome>(outcome);
  SECO_ASSIGN_OR_RETURN(uint8_t level, r.U8());
  response.degradation_level = level;
  SECO_RETURN_IF_ERROR(DecodeStatus(&r, &response.status));
  SECO_ASSIGN_OR_RETURN(response.retry_after_ms, r.F64());
  SECO_ASSIGN_OR_RETURN(uint8_t priority, r.U8());
  if (priority >= kNumPriorityClasses) {
    return Status::InvalidArgument("wire: priority class out of range");
  }
  response.priority = static_cast<PriorityClass>(priority);
  SECO_ASSIGN_OR_RETURN(response.answer_cache_hit, r.Bool());
  SECO_ASSIGN_OR_RETURN(response.streamed, r.Bool());

  SECO_ASSIGN_OR_RETURN(bool has_result, r.Bool());
  if (!has_result) {
    SECO_RETURN_IF_ERROR(r.ExpectEnd());
    return response;
  }

  SECO_ASSIGN_OR_RETURN(uint32_t num_combinations, r.U32());
  if (response.streamed) {
    StreamingResult& s = response.streaming;
    for (uint32_t i = 0; i < num_combinations; ++i) {
      SECO_ASSIGN_OR_RETURN(Combination c, DecodeCombination(&r));
      s.combinations.push_back(std::move(c));
    }
    SECO_ASSIGN_OR_RETURN(s.total_calls, r.I32());
    SECO_ASSIGN_OR_RETURN(s.total_latency_ms, r.F64());
    SECO_ASSIGN_OR_RETURN(s.exhausted, r.Bool());
    SECO_ASSIGN_OR_RETURN(s.cache_hits, r.I32());
    SECO_ASSIGN_OR_RETURN(s.cache_misses, r.I32());
    SECO_ASSIGN_OR_RETURN(s.speculative_calls, r.I32());
    SECO_ASSIGN_OR_RETURN(s.speculative_wasted, r.I32());
    SECO_ASSIGN_OR_RETURN(s.complete, r.Bool());
    SECO_RETURN_IF_ERROR(DecodeNodeStats(&r, &s.node_stats));
    SECO_RETURN_IF_ERROR(DecodeDegraded(&r, &s.degraded));
    SECO_RETURN_IF_ERROR(DecodeOpenBreakers(&r, &s.open_breakers));
    SECO_RETURN_IF_ERROR(DecodeReliability(&r, &s.reliability));
    SECO_RETURN_IF_ERROR(DecodeRepair(&r, &s.repair));
    s.degradation_level = response.degradation_level;
  } else {
    ExecutionResult& e = response.execution;
    for (uint32_t i = 0; i < num_combinations; ++i) {
      SECO_ASSIGN_OR_RETURN(Combination c, DecodeCombination(&r));
      e.combinations.push_back(std::move(c));
    }
    SECO_ASSIGN_OR_RETURN(e.total_calls, r.I32());
    SECO_ASSIGN_OR_RETURN(e.elapsed_ms, r.F64());
    SECO_ASSIGN_OR_RETURN(e.total_latency_ms, r.F64());
    SECO_ASSIGN_OR_RETURN(e.total_combinations_produced, r.I32());
    SECO_ASSIGN_OR_RETURN(e.cache_hits, r.I32());
    SECO_ASSIGN_OR_RETURN(e.cache_misses, r.I32());
    SECO_ASSIGN_OR_RETURN(e.complete, r.Bool());
    SECO_RETURN_IF_ERROR(DecodeNodeStats(&r, &e.node_stats));
    SECO_RETURN_IF_ERROR(DecodeDegraded(&r, &e.degraded));
    SECO_RETURN_IF_ERROR(DecodeOpenBreakers(&r, &e.open_breakers));
    SECO_RETURN_IF_ERROR(DecodeReliability(&r, &e.reliability));
    SECO_RETURN_IF_ERROR(DecodeRepair(&r, &e.repair));
    e.degradation_level = response.degradation_level;
  }
  SECO_RETURN_IF_ERROR(r.ExpectEnd());
  return response;
}

std::string AnswerBodyHex(const std::string& body) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(body.size() * 2);
  for (unsigned char c : body) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

}  // namespace seco
