#include "net/chaos.h"

#include <algorithm>
#include <chrono>

namespace seco {

namespace {

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

std::shared_ptr<ChaosPlan> ChaosEngine::PlanConnection(uint64_t ordinal) {
  auto plan = std::make_shared<ChaosPlan>();
  plan->ordinal = ordinal;
  plan->ledger = &ledger_;
  ledger_.connections_planned.fetch_add(1, std::memory_order_relaxed);

  // The whole schedule is a pure function of (seed, ordinal), mirroring
  // FaultModel's RequestOrdinal keying. Every draw below happens whether or
  // not its rate triggers, in a fixed order, so flipping one fault class on
  // never perturbs another class's offsets.
  SplitMix64 rng(options_.seed ^ (ordinal * 0x9E3779B97F4A7C15ULL));
  const uint64_t window =
      options_.fault_window_bytes == 0 ? 1 : options_.fault_window_bytes;

  const double u_refuse = rng.NextDouble();
  const double u_reset = rng.NextDouble();
  const uint64_t off_reset = rng.Uniform(window);
  const double u_corrupt = rng.NextDouble();
  const uint64_t off_corrupt = rng.Uniform(window);
  const uint8_t mask = static_cast<uint8_t>(rng.Uniform(255) + 1);
  const double u_truncate = rng.NextDouble();
  const uint64_t off_truncate = rng.Uniform(window);
  const double u_stall = rng.NextDouble();
  const uint64_t off_stall = rng.Uniform(window);
  const double u_blackhole = rng.NextDouble();
  const uint64_t off_blackhole = rng.Uniform(window);

  if (u_refuse < options_.refuse_rate) {
    plan->refuse = true;
    // Refusal is unconditional once planned: count it here, where the
    // decision is made, so proxy/server/client refusal paths agree.
    ledger_.refusals.fetch_add(1, std::memory_order_relaxed);
  }
  if (u_reset < options_.reset_rate) plan->reset_after = off_reset;
  if (u_corrupt < options_.corrupt_rate) {
    plan->corrupt_at = off_corrupt;
    plan->corrupt_mask = mask;
  }
  if (u_truncate < options_.truncate_rate) plan->truncate_after = off_truncate;
  if (u_stall < options_.stall_rate) {
    plan->stall_at = off_stall;
    plan->stall_ms = options_.stall_ms;
  }
  if (u_blackhole < options_.blackhole_rate) {
    plan->blackhole_after = off_blackhole;
  }
  return plan;
}

Status ChaosBeforeSend(ChaosPlan* plan, uint64_t offset, size_t* want) {
  if (plan == nullptr) return Status::OK();
  if (plan->stall_at != kChaosNever && offset >= plan->stall_at &&
      !plan->stall_tx_done.exchange(true, std::memory_order_relaxed)) {
    plan->ledger->stalls.fetch_add(1, std::memory_order_relaxed);
    SleepMs(plan->stall_ms);
  }
  const uint64_t cut = std::min(plan->reset_after, plan->truncate_after);
  if (cut == kChaosNever) return Status::OK();
  if (offset >= cut) {
    if (plan->reset_after <= plan->truncate_after) {
      if (!plan->reset_fired.exchange(true, std::memory_order_relaxed)) {
        plan->ledger->resets.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::Unavailable("chaos: connection reset at tx offset " +
                                 std::to_string(offset));
    }
    if (!plan->truncate_fired.exchange(true, std::memory_order_relaxed)) {
      plan->ledger->truncations.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Unavailable("chaos: stream truncated at tx offset " +
                               std::to_string(offset));
  }
  // Clamp so the bytes up to the boundary still go out — that is what makes
  // the fault a *half-written frame* rather than a clean miss.
  *want = static_cast<size_t>(
      std::min<uint64_t>(*want, cut - offset));
  return Status::OK();
}

Status ChaosBeforeRecv(ChaosPlan* plan, uint64_t offset, size_t* want,
                       int timeout_ms, bool* eof) {
  if (plan == nullptr) return Status::OK();
  if (plan->stall_at != kChaosNever && offset >= plan->stall_at &&
      !plan->stall_rx_done.exchange(true, std::memory_order_relaxed)) {
    plan->ledger->stalls.fetch_add(1, std::memory_order_relaxed);
    SleepMs(plan->stall_ms);
  }
  if (plan->blackhole_after != kChaosNever &&
      offset >= plan->blackhole_after) {
    if (!plan->blackhole_fired.exchange(true, std::memory_order_relaxed)) {
      plan->ledger->blackholes.fetch_add(1, std::memory_order_relaxed);
    }
    if (timeout_ms >= 0) {
      SleepMs(timeout_ms);
      return Status::DeadlineExceeded(
          "chaos: black hole; recv timed out after " +
          std::to_string(timeout_ms) + " ms");
    }
    // An untimed read must not hang a server thread forever: fail fast.
    return Status::Unavailable("chaos: black hole on untimed read");
  }
  if (plan->reset_after != kChaosNever && offset >= plan->reset_after) {
    if (!plan->reset_fired.exchange(true, std::memory_order_relaxed)) {
      plan->ledger->resets.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Unavailable(
        "chaos: connection reset by peer at rx offset " +
        std::to_string(offset));
  }
  if (plan->truncate_after != kChaosNever &&
      offset >= plan->truncate_after) {
    if (!plan->truncate_fired.exchange(true, std::memory_order_relaxed)) {
      plan->ledger->truncations.fetch_add(1, std::memory_order_relaxed);
    }
    *eof = true;
    return Status::OK();
  }
  const uint64_t cut = std::min({plan->reset_after, plan->truncate_after,
                                 plan->blackhole_after});
  if (cut != kChaosNever) {
    *want = static_cast<size_t>(std::min<uint64_t>(*want, cut - offset));
  }
  return Status::OK();
}

void ChaosAfterRecv(ChaosPlan* plan, uint64_t offset, char* data, size_t n) {
  if (plan == nullptr || plan->corrupt_at == kChaosNever) return;
  if (plan->corrupt_at < offset || plan->corrupt_at >= offset + n) return;
  if (plan->corrupt_fired.exchange(true, std::memory_order_relaxed)) return;
  data[plan->corrupt_at - offset] ^=
      static_cast<char>(plan->corrupt_mask);
  plan->ledger->corruptions.fetch_add(1, std::memory_order_relaxed);
}

Status ChaosProxy::Start(uint16_t port) {
  if (running_.exchange(true, std::memory_order_acq_rel)) {
    return Status::AlreadyExists("chaos proxy already running");
  }
  Status listening = listener_.Listen(port);
  if (!listening.ok()) {
    running_.store(false, std::memory_order_release);
    return listening;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ChaosProxy::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  listener_.Close();
  conns_.ShutdownAll();
  if (acceptor_.joinable()) acceptor_.join();
  conns_.JoinAll();
}

void ChaosProxy::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    Result<Socket> conn = listener_.Accept();
    if (!conn.ok()) break;
    std::shared_ptr<ChaosPlan> plan = engine_.PlanConnection();
    if (plan->refuse) continue;  // drop: the client sees an immediate EOF
    conns_.Launch(std::move(conn.value()), [this, plan](Socket* client) {
      client->AttachChaos(plan);
      PumpPair(client, plan);
    });
  }
}

void ChaosProxy::PumpPair(Socket* client,
                          const std::shared_ptr<ChaosPlan>& plan) {
  Result<Socket> dialed = ConnectTcp(upstream_host_, upstream_port_, 1000);
  if (!dialed.ok()) return;
  Socket upstream = std::move(dialed.value());

  // Both pumps poll with a short timeout so Stop() never waits on a silent
  // peer; chaos (attached to the client-facing socket only) fires inside
  // the Socket calls below, at exact byte offsets.
  std::atomic<bool> done{false};
  std::thread back([&] {
    std::string buf;
    while (running_.load(std::memory_order_acquire) &&
           !done.load(std::memory_order_acquire)) {
      buf.clear();
      Result<size_t> n = upstream.RecvSome(&buf, 65536, 200);
      if (!n.ok()) {
        if (n.status().code() == StatusCode::kDeadlineExceeded) continue;
        break;
      }
      if (n.value() == 0) break;
      if (!client->SendAll(buf).ok()) break;
    }
    client->ShutdownWrite();
  });

  std::string buf;
  while (running_.load(std::memory_order_acquire)) {
    buf.clear();
    Result<size_t> n = client->RecvSome(&buf, 65536, 200);
    if (!n.ok()) {
      // A quiet client is normal; a *black-holed* one never speaks again.
      // Tear the pair down after one poll interval, the way a middlebox
      // eventually drops a silent flow — otherwise a client blocked on an
      // untimed read would hang forever behind this proxy.
      if (n.status().code() == StatusCode::kDeadlineExceeded &&
          !plan->blackhole_fired.load(std::memory_order_acquire)) {
        continue;
      }
      break;
    }
    if (n.value() == 0) break;
    if (!upstream.SendAll(buf).ok()) break;
  }
  done.store(true, std::memory_order_release);
  upstream.ShutdownWrite();
  upstream.ShutdownRead();
  back.join();
}

}  // namespace seco
