#ifndef SECO_NET_SOCKET_H_
#define SECO_NET_SOCKET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/result.h"
#include "net/wire.h"

namespace seco {

struct ChaosPlan;

/// Thin RAII wrappers over POSIX TCP sockets, shared by every `src/net/`
/// component. All IO is blocking with optional `poll`-based receive
/// timeouts; partial reads/writes and EINTR are handled here so the
/// protocol layers above only ever see whole frames.

/// Owns one connected socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        chaos_(std::move(other.chaos_)),
        tx_offset_(std::exchange(other.tx_offset_, 0)),
        rx_offset_(std::exchange(other.rx_offset_, 0)),
        write_timeout_ms_(std::exchange(other.write_timeout_ms_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      chaos_ = std::move(other.chaos_);
      tx_offset_ = std::exchange(other.tx_offset_, 0);
      rx_offset_ = std::exchange(other.rx_offset_, 0);
      write_timeout_ms_ = std::exchange(other.write_timeout_ms_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();
  /// Shuts down the read side, unblocking a peer's or our own blocked
  /// `recv` — the graceful-drain signal for connection threads.
  void ShutdownRead();
  /// Shuts down the write side (sends FIN; peer's recv returns 0).
  void ShutdownWrite();

  /// Writes all of `data`, looping over partial sends. `SIGPIPE` is
  /// suppressed (`MSG_NOSIGNAL`); a closed peer returns a Status instead.
  Status SendAll(const std::string& data);

  /// Reads up to `max_bytes` into `out` (appending). Returns the number of
  /// bytes read; 0 means clean EOF. `timeout_ms < 0` blocks forever;
  /// otherwise a `poll` timeout fails with `kDeadlineExceeded`.
  Result<size_t> RecvSome(std::string* out, size_t max_bytes,
                          int timeout_ms = -1);

  /// Disables Nagle's algorithm — both protocols are request/response, so
  /// coalescing delay is pure added latency.
  void SetNoDelay();

  /// Attaches a deterministic fault schedule (see `net/chaos.h`). Faults
  /// then fire inside `SendAll`/`RecvSome` at exact byte offsets of this
  /// socket's tx/rx streams. Pass nullptr to detach.
  void AttachChaos(std::shared_ptr<ChaosPlan> plan) {
    chaos_ = std::move(plan);
  }

  /// Write-progress deadline: once set (>= 0 ms), `SendAll` fails with
  /// `kDeadlineExceeded` whenever the peer accepts no bytes for that long —
  /// the slow-loris defense. Progress resets the window. < 0 disables.
  void SetWriteTimeout(int timeout_ms) { write_timeout_ms_ = timeout_ms; }

 private:
  int fd_ = -1;
  std::shared_ptr<ChaosPlan> chaos_;
  /// Cumulative bytes sent/received — the chaos offset keys. Each counter
  /// is owned by the single thread driving that direction.
  uint64_t tx_offset_ = 0;
  uint64_t rx_offset_ = 0;
  int write_timeout_ms_ = -1;
};

/// Owns a listening socket bound to 127.0.0.1.
class Listener {
 public:
  Listener() = default;
  ~Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Binds and listens on loopback. `port == 0` picks an ephemeral port;
  /// the chosen port is available from `port()` afterwards.
  Status Listen(uint16_t port, int backlog = 64);

  /// Accepts one connection (blocking). Fails once `Close()` has been
  /// called from another thread.
  Result<Socket> Accept();

  /// Shuts the listening socket down, failing any blocked `Accept` (from
  /// any thread). The descriptor is released on destruction or the next
  /// `Listen`, once the acceptor thread is known to be done with it.
  void Close();

  bool valid() const { return socket_.valid(); }
  uint16_t port() const { return port_; }

 private:
  Socket socket_;
  uint16_t port_ = 0;
};

/// Connects to `host:port`; `timeout_ms < 0` means the OS default.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          int timeout_ms = -1);

/// Sends one framed message.
inline Status SendFrame(Socket* socket, FrameType type,
                        const std::string& payload) {
  return socket->SendAll(EncodeFrame(type, payload));
}

/// Receives frames into `decoder` until one complete frame pops, then
/// returns it. Fails on EOF, malformed framing, or receive timeout
/// (`kDeadlineExceeded`).
Result<Frame> RecvFrame(Socket* socket, FrameDecoder* decoder,
                        int timeout_ms = -1);

}  // namespace seco

#endif  // SECO_NET_SOCKET_H_
