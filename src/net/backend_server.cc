#include "net/backend_server.h"


namespace seco {

void BackendServer::RegisterHandler(
    const std::string& name, std::shared_ptr<ServiceCallHandler> handler) {
  handlers_[name] = std::move(handler);
}

void BackendServer::ExposeRegistry(const ServiceRegistry& registry) {
  for (const std::string& name : registry.interface_names()) {
    auto iface = registry.FindInterface(name);
    if (iface.ok()) RegisterHandler(name, iface.value()->handler_ptr());
  }
}

Status BackendServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("backend server already running");
  }
  SECO_RETURN_IF_ERROR(listener_.Listen(port));
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void BackendServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  listener_.Close();  // fails the blocked Accept in the acceptor thread
  conns_.ShutdownAll();  // unblocks connection recvs and blocked sends
  if (acceptor_.joinable()) acceptor_.join();
  conns_.JoinAll();
}

void BackendServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    Result<Socket> conn = listener_.Accept();
    if (!conn.ok()) break;  // listener closed by Stop (or fatal error)
    conns_.Launch(std::move(conn.value()),
                  [this](Socket* socket) { ServeConnection(socket); });
  }
}

void BackendServer::ServeConnection(Socket* conn) {
  FrameDecoder decoder;

  // Hello handshake: magic + version + role must match before any call is
  // served, so a query client that dials the backend port fails loudly.
  {
    Result<Frame> hello = RecvFrame(conn, &decoder);
    if (!hello.ok() || hello.value().type != FrameType::kHello) return;
    WireReader r(hello.value().payload);
    auto magic = r.U32();
    auto version = r.U16();
    auto role = r.U8();
    std::string problem;
    if (!magic.ok() || magic.value() != kWireMagic) {
      problem = "bad magic in hello";
    } else if (!version.ok() || version.value() != kWireVersion) {
      problem = "unsupported protocol version";
    } else if (!role.ok() ||
               role.value() != static_cast<uint8_t>(WireRole::kBackendClient)) {
      problem = "expected a backend client hello";
    }
    if (!problem.empty()) {
      WireWriter w;
      EncodeStatus(Status::InvalidArgument("backend: " + problem), &w);
      (void)SendFrame(conn, FrameType::kError, w.Take());
      return;
    }
    WireWriter ack;
    ack.U16(kWireVersion);
    if (!SendFrame(conn, FrameType::kHelloAck, ack.Take()).ok()) return;
  }

  while (running_.load(std::memory_order_acquire)) {
    Result<Frame> frame = RecvFrame(conn, &decoder);
    if (!frame.ok()) return;  // peer closed / reset / framing error
    switch (frame.value().type) {
      case FrameType::kCall: {
        std::string reply = HandleCall(frame.value().payload);
        if (!SendFrame(conn, FrameType::kCallReply, reply).ok()) return;
        break;
      }
      case FrameType::kPing: {
        if (!SendFrame(conn, FrameType::kPong, frame.value().payload).ok()) {
          return;
        }
        break;
      }
      case FrameType::kGoodbye:
        return;
      default: {
        WireWriter w;
        EncodeStatus(Status::InvalidArgument(
                         "backend: unexpected frame type " +
                         std::to_string(static_cast<int>(frame.value().type))),
                     &w);
        (void)SendFrame(conn, FrameType::kError, w.Take());
        return;
      }
    }
  }
}

std::string BackendServer::HandleCall(const std::string& payload) {
  WireWriter reply;
  WireReader r(payload);

  uint64_t call_id = 0;
  Status parsed = Status::OK();
  std::string interface_name;
  ServiceRequest request;
  {
    auto id = r.U64();
    if (!id.ok()) {
      parsed = id.status();
    } else {
      call_id = id.value();
      auto name = r.Str();
      if (!name.ok()) {
        parsed = name.status();
      } else {
        interface_name = name.value();
        auto req = DecodeServiceRequest(&r);
        if (!req.ok()) {
          parsed = req.status();
        } else {
          request = std::move(req.value());
          parsed = r.ExpectEnd();
        }
      }
    }
  }

  reply.U64(call_id);
  if (!parsed.ok()) {
    reply.Bool(false);
    EncodeStatus(parsed, &reply);
    return reply.Take();
  }

  auto it = handlers_.find(interface_name);
  if (it == handlers_.end()) {
    reply.Bool(false);
    EncodeStatus(Status::NotFound("backend: no handler registered for '" +
                                  interface_name + "'"),
                 &reply);
    return reply.Take();
  }

  calls_served_.fetch_add(1, std::memory_order_relaxed);
  Result<ServiceResponse> response = it->second->Call(request);
  if (!response.ok()) {
    // Round-trip the handler's own status verbatim: a FaultModel behind
    // this server must look identical to one in-process.
    reply.Bool(false);
    EncodeStatus(response.status(), &reply);
    return reply.Take();
  }
  reply.Bool(true);
  EncodeServiceResponse(response.value(), &reply);
  return reply.Take();
}

}  // namespace seco
