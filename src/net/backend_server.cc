#include "net/backend_server.h"

#include <chrono>
#include <deque>
#include <utility>
#include <vector>

namespace seco {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void BackendServer::RegisterHandler(
    const std::string& name, std::shared_ptr<ServiceCallHandler> handler) {
  handlers_[name] = std::move(handler);
}

void BackendServer::ExposeRegistry(const ServiceRegistry& registry) {
  for (const std::string& name : registry.interface_names()) {
    auto iface = registry.FindInterface(name);
    if (iface.ok()) RegisterHandler(name, iface.value()->handler_ptr());
  }
}

Status BackendServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("backend server already running");
  }
  SECO_RETURN_IF_ERROR(listener_.Listen(port));
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void BackendServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  listener_.Close();  // fails the blocked Accept in the acceptor thread
  conns_.ShutdownAll();  // unblocks connection recvs and blocked sends
  if (acceptor_.joinable()) acceptor_.join();
  conns_.JoinAll();
}

void BackendServer::AcceptLoop() {
  const bool chaotic = options_.chaos.active();
  while (running_.load(std::memory_order_acquire)) {
    Result<Socket> conn = listener_.Accept();
    if (!conn.ok()) break;  // listener closed by Stop (or fatal error)
    if (chaotic) {
      std::shared_ptr<ChaosPlan> plan = chaos_.PlanConnection();
      // Refusal: drop the accepted socket before any byte — the dialing
      // client sees an immediate EOF, the moral equivalent of
      // ECONNREFUSED for a loopback accept we cannot intercept earlier.
      if (plan->refuse) continue;
      conn.value().AttachChaos(std::move(plan));
    }
    conns_.Launch(std::move(conn.value()),
                  [this](Socket* socket) { ServeConnection(socket); });
  }
}

void BackendServer::ServeConnection(Socket* conn) {
  FrameDecoder decoder;

  // Hello handshake: magic + version + role must match before any call is
  // served, so a query client that dials the backend port fails loudly.
  {
    Result<Frame> hello = RecvFrame(conn, &decoder);
    if (!hello.ok() || hello.value().type != FrameType::kHello) return;
    WireReader r(hello.value().payload);
    auto magic = r.U32();
    auto version = r.U16();
    auto role = r.U8();
    std::string problem;
    if (!magic.ok() || magic.value() != kWireMagic) {
      problem = "bad magic in hello";
    } else if (!version.ok() || version.value() != kWireVersion) {
      problem = "unsupported protocol version";
    } else if (!role.ok() ||
               role.value() != static_cast<uint8_t>(WireRole::kBackendClient)) {
      problem = "expected a backend client hello";
    }
    if (!problem.empty()) {
      WireWriter w;
      EncodeStatus(Status::InvalidArgument("backend: " + problem), &w);
      (void)SendFrame(conn, FrameType::kError, w.Take());
      return;
    }
    WireWriter ack;
    ack.U16(kWireVersion);
    if (!SendFrame(conn, FrameType::kHelloAck, ack.Take()).ok()) return;
  }

  // Frames are timestamped the moment they arrive off the socket, THEN
  // served serially. A pipelined burst queued behind a slow call therefore
  // accumulates measurable wait — the clock deadline propagation runs on:
  // a call whose transported budget was consumed while it sat here is
  // answered kDeadlineExceeded without ever invoking its handler.
  std::deque<std::pair<Frame, double>> queue;
  std::string pending;
  while (running_.load(std::memory_order_acquire)) {
    if (queue.empty()) {
      Result<Frame> first = RecvFrame(conn, &decoder);
      if (!first.ok()) return;  // peer closed / reset / framing error
      const double now = NowMs();
      queue.emplace_back(std::move(first.value()), now);
      // Drain every frame that arrived in the same recv burst: they have
      // all been waiting since `now`.
      Frame extra;
      while (decoder.Next(&extra)) queue.emplace_back(std::move(extra), now);
    }
    // Before dispatching (possibly into a slow handler), pull any bytes the
    // kernel has already queued into the frame queue: pipelined calls are
    // timestamped when they reached this server, not when the calls ahead
    // of them finished. Errors here (EOF, faults, framing) are left for the
    // blocking read above to surface once the queue drains.
    while (true) {
      pending.clear();
      Result<size_t> more = conn->RecvSome(&pending, 64 << 10,
                                           /*timeout_ms=*/0);
      if (!more.ok() || more.value() == 0) break;
      if (!decoder.Feed(pending).ok()) break;
      const double now = NowMs();
      Frame extra;
      while (decoder.Next(&extra)) queue.emplace_back(std::move(extra), now);
    }
    // Sweep `kCancel` frames out of the queue before dispatching. A cancel
    // always arrives *behind* the call it names, so the only way it can win
    // is here — while its call is still queued ahead of it. A purged call
    // is answered `kCancelled` immediately (one reply per call, matched by
    // call id, order irrelevant to the client); a cancel whose call is gone
    // already lost the race and is dropped silently.
    // Two passes, because a deque erase invalidates every other outstanding
    // iterator: first strip the cancel frames (the erase-returned iterator
    // is the only one carried forward), then hunt each named call.
    std::vector<uint64_t> cancel_ids;
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->first.type != FrameType::kCancel) {
        ++it;
        continue;
      }
      WireReader cr(it->first.payload);
      auto cancel_id = cr.U64();
      if (cancel_id.ok()) cancel_ids.push_back(cancel_id.value());
      it = queue.erase(it);
    }
    for (uint64_t cancel_id : cancel_ids) {
      for (auto call = queue.begin(); call != queue.end(); ++call) {
        if (call->first.type != FrameType::kCall) continue;
        WireReader idr(call->first.payload);
        auto id = idr.U64();
        if (!id.ok() || id.value() != cancel_id) continue;
        queue.erase(call);
        cancelled_purges_.fetch_add(1, std::memory_order_relaxed);
        WireWriter reply;
        reply.U64(cancel_id);
        reply.Bool(false);
        EncodeStatus(Status::Cancelled("backend: call cancelled by caller"),
                     &reply);
        if (!SendFrame(conn, FrameType::kCallReply, reply.Take()).ok()) {
          return;
        }
        break;
      }
    }
    if (queue.empty()) continue;
    Frame frame = std::move(queue.front().first);
    const double waited_ms = NowMs() - queue.front().second;
    queue.pop_front();
    switch (frame.type) {
      case FrameType::kCall: {
        std::string reply = HandleCall(frame.payload, waited_ms);
        if (!SendFrame(conn, FrameType::kCallReply, reply).ok()) return;
        break;
      }
      case FrameType::kPing: {
        if (!SendFrame(conn, FrameType::kPong, frame.payload).ok()) {
          return;
        }
        break;
      }
      case FrameType::kGoodbye:
        return;
      default: {
        WireWriter w;
        EncodeStatus(Status::InvalidArgument(
                         "backend: unexpected frame type " +
                         std::to_string(static_cast<int>(frame.type))),
                     &w);
        (void)SendFrame(conn, FrameType::kError, w.Take());
        return;
      }
    }
  }
}

std::string BackendServer::HandleCall(const std::string& payload,
                                      double waited_ms) {
  WireWriter reply;
  WireReader r(payload);

  uint64_t call_id = 0;
  Status parsed = Status::OK();
  std::string interface_name;
  ServiceRequest request;
  {
    auto id = r.U64();
    if (!id.ok()) {
      parsed = id.status();
    } else {
      call_id = id.value();
      auto name = r.Str();
      if (!name.ok()) {
        parsed = name.status();
      } else {
        interface_name = name.value();
        auto req = DecodeServiceRequest(&r);
        if (!req.ok()) {
          parsed = req.status();
        } else {
          request = std::move(req.value());
          parsed = r.ExpectEnd();
        }
      }
    }
  }

  reply.U64(call_id);
  if (!parsed.ok()) {
    reply.Bool(false);
    EncodeStatus(parsed, &reply);
    return reply.Take();
  }

  auto it = handlers_.find(interface_name);
  if (it == handlers_.end()) {
    reply.Bool(false);
    EncodeStatus(Status::NotFound("backend: no handler registered for '" +
                                  interface_name + "'"),
                 &reply);
    return reply.Take();
  }

  // Deadline propagation: the caller shipped its remaining budget in the
  // request; if queue wait alone has consumed it, the caller has already
  // timed out (or retried elsewhere) — computing an answer would be pure
  // waste. Reply with the same kDeadlineExceeded the caller's own recv
  // timeout produces, as a handler-level status (round-tripped verbatim,
  // never wire-retried).
  if (request.deadline_ms >= 0.0 && waited_ms > request.deadline_ms) {
    deadline_rejections_.fetch_add(1, std::memory_order_relaxed);
    reply.Bool(false);
    EncodeStatus(
        Status::DeadlineExceeded(
            "backend: call waited " + std::to_string(waited_ms) +
            " ms, over its " + std::to_string(request.deadline_ms) +
            " ms transported budget"),
        &reply);
    return reply.Take();
  }

  calls_served_.fetch_add(1, std::memory_order_relaxed);
  Result<ServiceResponse> response = it->second->Call(request);
  if (!response.ok()) {
    // Round-trip the handler's own status verbatim: a FaultModel behind
    // this server must look identical to one in-process.
    reply.Bool(false);
    EncodeStatus(response.status(), &reply);
    return reply.Take();
  }
  reply.Bool(true);
  EncodeServiceResponse(response.value(), &reply);
  return reply.Take();
}

}  // namespace seco
