#ifndef SECO_NET_CHAOS_H_
#define SECO_NET_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/result.h"
#include "net/conn_registry.h"
#include "net/socket.h"

namespace seco {

/// Deterministic network fault injection (docs/NETWORK.md, "Failure model
/// & chaos testing"). Mirrors the in-process `FaultModel` design: every
/// fault decision is a pure function of (seed, connection ordinal, byte
/// offset), drawn in a fixed order at connection-plan time, so a chaos run
/// is reproducible from its seed alone — independent of thread schedule,
/// recv fragmentation, or wall-clock timing. The shim sits *below* the
/// framing layer, inside `Socket::SendAll`/`RecvSome`, so it exercises the
/// byte stream exactly where real networks fail: mid-frame, mid-header,
/// between any two bytes.

/// Per-direction fault knobs. Rates are per *connection*: each planned
/// connection draws one Bernoulli per fault class, then a byte offset
/// inside `fault_window_bytes` at which the fault fires. All draws happen
/// unconditionally (whether or not the rate triggers), so enabling one
/// fault class never shifts another class's schedule.
struct ChaosOptions {
  uint64_t seed = 0;

  /// Connection is refused at dial/accept time (ECONNREFUSED analogue).
  double refuse_rate = 0.0;
  /// Connection dies (RST analogue) once the offset is crossed, both
  /// directions: sends fail, receives report a reset.
  double reset_rate = 0.0;
  /// One received byte is flipped (checksum-detectable corruption).
  double corrupt_rate = 0.0;
  /// Transmit side stops after the offset mid-frame (half-written frame);
  /// receive side sees a clean EOF at the offset.
  double truncate_rate = 0.0;
  /// One-shot stall of `stall_ms` per direction at the offset.
  double stall_rate = 0.0;
  /// Receive side goes silent at the offset: a timed read burns its full
  /// timeout then reports `kDeadlineExceeded`; an untimed read fails
  /// `kUnavailable` immediately (so a blocking server thread never hangs).
  double blackhole_rate = 0.0;

  double stall_ms = 25.0;
  /// Fault offsets are drawn uniformly in [0, fault_window_bytes): small
  /// enough that faults land inside real handshakes and frames.
  uint32_t fault_window_bytes = 8192;

  bool active() const {
    return refuse_rate > 0.0 || reset_rate > 0.0 || corrupt_rate > 0.0 ||
           truncate_rate > 0.0 || stall_rate > 0.0 || blackhole_rate > 0.0;
  }
};

/// Snapshot of fired faults. Deterministic for a fixed seed and connection
/// count — the "same seed, same schedule" oracle compares these.
struct ChaosStats {
  int64_t connections_planned = 0;
  int64_t refusals = 0;
  int64_t resets = 0;
  int64_t corruptions = 0;
  int64_t truncations = 0;
  int64_t stalls = 0;
  int64_t blackholes = 0;

  int64_t total_faults() const {
    return refusals + resets + corruptions + truncations + stalls +
           blackholes;
  }
  bool operator==(const ChaosStats& o) const {
    return connections_planned == o.connections_planned &&
           refusals == o.refusals && resets == o.resets &&
           corruptions == o.corruptions && truncations == o.truncations &&
           stalls == o.stalls && blackholes == o.blackholes;
  }
  bool operator!=(const ChaosStats& o) const { return !(*this == o); }
};

/// Atomic fault counters shared by every plan of one engine.
class ChaosLedger {
 public:
  std::atomic<int64_t> connections_planned{0};
  std::atomic<int64_t> refusals{0};
  std::atomic<int64_t> resets{0};
  std::atomic<int64_t> corruptions{0};
  std::atomic<int64_t> truncations{0};
  std::atomic<int64_t> stalls{0};
  std::atomic<int64_t> blackholes{0};

  ChaosStats Snapshot() const {
    ChaosStats s;
    s.connections_planned =
        connections_planned.load(std::memory_order_relaxed);
    s.refusals = refusals.load(std::memory_order_relaxed);
    s.resets = resets.load(std::memory_order_relaxed);
    s.corruptions = corruptions.load(std::memory_order_relaxed);
    s.truncations = truncations.load(std::memory_order_relaxed);
    s.stalls = stalls.load(std::memory_order_relaxed);
    s.blackholes = blackholes.load(std::memory_order_relaxed);
    return s;
  }
};

/// Sentinel byte offset: the fault never fires on this connection.
inline constexpr uint64_t kChaosNever = ~0ull;

/// The fault schedule of ONE connection, fixed at plan time. Thresholds are
/// immutable after planning; the `*_fired` flags are one-shot latches so a
/// fault is counted once even when both the reader and writer thread of a
/// connection observe it.
struct ChaosPlan {
  uint64_t ordinal = 0;

  bool refuse = false;
  uint64_t reset_after = kChaosNever;      ///< tx+rx byte offset
  uint64_t corrupt_at = kChaosNever;       ///< rx byte offset
  uint8_t corrupt_mask = 0;
  uint64_t truncate_after = kChaosNever;   ///< tx clamps, rx sees EOF
  uint64_t stall_at = kChaosNever;         ///< one-shot per direction
  double stall_ms = 0.0;
  uint64_t blackhole_after = kChaosNever;  ///< rx goes silent

  std::atomic<bool> reset_fired{false};
  std::atomic<bool> corrupt_fired{false};
  std::atomic<bool> truncate_fired{false};
  std::atomic<bool> stall_tx_done{false};
  std::atomic<bool> stall_rx_done{false};
  std::atomic<bool> blackhole_fired{false};

  ChaosLedger* ledger = nullptr;

  bool any() const {
    return refuse || reset_after != kChaosNever ||
           corrupt_at != kChaosNever || truncate_after != kChaosNever ||
           stall_at != kChaosNever || blackhole_after != kChaosNever;
  }
};

/// Plans fault schedules for a sequence of connections. Connection ordinals
/// are assigned in plan order (dial order for clients, accept order for
/// servers) — serial traffic therefore reproduces the exact same schedule
/// run to run.
class ChaosEngine {
 public:
  explicit ChaosEngine(ChaosOptions options) : options_(options) {}

  /// Plans the next connection (ordinal auto-assigned).
  std::shared_ptr<ChaosPlan> PlanConnection() {
    return PlanConnection(
        next_ordinal_.fetch_add(1, std::memory_order_relaxed));
  }

  /// Plans the connection with an explicit ordinal — the schedule is a pure
  /// function of (seed, ordinal), nothing else.
  std::shared_ptr<ChaosPlan> PlanConnection(uint64_t ordinal);

  const ChaosOptions& options() const { return options_; }
  ChaosStats stats() const { return ledger_.Snapshot(); }

 private:
  const ChaosOptions options_;
  std::atomic<uint64_t> next_ordinal_{0};
  ChaosLedger ledger_;
};

/// Fault hooks called by `Socket`. `offset` is the cumulative byte offset
/// of this direction *before* the pending transfer; each direction's offset
/// is owned by the single thread driving it.
///
/// Before a send of up to `*want` bytes: may clamp `*want` so a mid-buffer
/// threshold is honored exactly, sleep (stall), or fail (reset/truncate at
/// the boundary).
Status ChaosBeforeSend(ChaosPlan* plan, uint64_t offset, size_t* want);
/// Before a receive of up to `*want` bytes: may clamp, sleep, fail, or
/// report EOF (`*eof = true`, truncation). `timeout_ms` shapes the
/// black-hole: timed reads burn the timeout, untimed reads fail fast.
Status ChaosBeforeRecv(ChaosPlan* plan, uint64_t offset, size_t* want,
                       int timeout_ms, bool* eof);
/// After a receive of `n` bytes starting at `offset`: applies the one-shot
/// byte corruption if its offset landed inside this buffer.
void ChaosAfterRecv(ChaosPlan* plan, uint64_t offset, char* data, size_t n);

/// A standalone TCP proxy that forwards bytes verbatim between real
/// daemons while injecting chaos on the client-facing socket — the
/// `seco_shell --chaos-proxy` mode, for e2e runs where both endpoints are
/// separate processes that must stay fault-free themselves.
class ChaosProxy {
 public:
  ChaosProxy(std::string upstream_host, uint16_t upstream_port,
             ChaosOptions options)
      : upstream_host_(std::move(upstream_host)),
        upstream_port_(upstream_port),
        engine_(options) {}
  ~ChaosProxy() { Stop(); }
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  Status Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return listener_.port(); }
  ChaosStats stats() const { return engine_.stats(); }

 private:
  void AcceptLoop();
  void PumpPair(Socket* client, const std::shared_ptr<ChaosPlan>& plan);

  const std::string upstream_host_;
  const uint16_t upstream_port_;
  ChaosEngine engine_;
  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  ConnectionRegistry conns_;
};

}  // namespace seco

#endif  // SECO_NET_CHAOS_H_
