#include "net/net_server.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <unordered_map>
#include <utility>
#include <vector>

namespace seco {

NetServer::NetServer(QueryServer* server, NetServerOptions options)
    : server_(server), options_(options), chaos_(options.chaos) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("net server already running");
  }
  SECO_RETURN_IF_ERROR(listener_.Listen(port));
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  server_->BeginDrain();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  BeginDrain();
  listener_.Close();
  // SHUT_RDWR: readers see EOF and stop pulling, and a writer blocked in
  // send() against a client that stopped reading fails instead of wedging
  // the join below.
  conns_.ShutdownAll();
  if (acceptor_.joinable()) acceptor_.join();
  conns_.JoinAll();
  server_->Drain();
}

void NetServer::AcceptLoop() {
  const bool chaotic = options_.chaos.active();
  while (running_.load(std::memory_order_acquire)) {
    Result<Socket> conn = listener_.Accept();
    if (!conn.ok()) break;
    if (chaotic) {
      std::shared_ptr<ChaosPlan> plan = chaos_.PlanConnection();
      // Refusal: drop the accepted socket before any byte — the dialing
      // client sees an immediate EOF, the loopback equivalent of
      // ECONNREFUSED.
      if (plan->refuse) continue;
      conn.value().AttachChaos(std::move(plan));
    }
    if (options_.write_timeout_ms >= 0) {
      conn.value().SetWriteTimeout(options_.write_timeout_ms);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.Launch(std::move(conn.value()),
                  [this](Socket* socket) { ServeConnection(socket); });
  }
}

namespace {

/// One pipelined item waiting to be written back: a query response, or a
/// control frame (pong, protocol error) the reader wants forwarded. Control
/// frames ride the same FIFO so the writer thread is the ONLY thread that
/// ever touches the socket after the handshake — a pong sent directly from
/// the reader could land between a result header and its body chunks and
/// corrupt the stream for pipelined clients.
struct PendingReply {
  enum class Kind { kQuery, kControlFrame };
  Kind kind = Kind::kQuery;

  // kQuery:
  uint64_t request_id = 0;
  std::future<QueryResponse> future;
  /// Set instead of `future` when the request failed before submission
  /// (malformed payload): the error travels as a kFailed response.
  std::optional<QueryResponse> immediate;

  // kControlFrame:
  FrameType frame_type = FrameType::kPong;
  std::string frame_payload;

  static PendingReply ControlFrame(FrameType type, std::string payload) {
    PendingReply reply;
    reply.kind = Kind::kControlFrame;
    reply.frame_type = type;
    reply.frame_payload = std::move(payload);
    return reply;
  }
};

/// FIFO of in-flight responses shared between a connection's reader (the
/// ServeConnection thread) and its writer thread. Bounded by
/// `pipeline_depth`: a full queue blocks the reader, which stops draining
/// the socket, which backpressures the client through TCP.
class ReplyQueue {
 public:
  explicit ReplyQueue(size_t cap) : cap_(cap) {}

  void Push(PendingReply reply) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return queue_.size() < cap_; });
    queue_.push_back(std::move(reply));
    cv_.notify_all();
  }

  /// Pops the oldest reply; false once the queue is closed *and* empty.
  bool Pop(PendingReply* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    cv_.notify_all();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  const size_t cap_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingReply> queue_;
  bool closed_ = false;
};

/// Per-connection cap on queries admitted into the QueryServer but not yet
/// fully written back. The reader Acquires before submitting, the writer
/// Releases after the response leaves (or is drained on teardown) — so a
/// client that streams queries without reading responses is throttled at
/// the cap instead of filling the executor with work nobody collects.
class InFlightGate {
 public:
  explicit InFlightGate(int cap) : cap_(cap) {}

  void Acquire() {
    if (cap_ <= 0) return;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ < cap_; });
    ++count_;
  }

  void Release() {
    if (cap_ <= 0) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --count_;
    }
    cv_.notify_one();
  }

 private:
  const int cap_;
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

/// Wire request id -> QueryServer submission id for this connection's
/// outstanding queries. The reader inserts at submission and looks up on a
/// `kCancel` frame; the writer erases once the response has left (or been
/// drained). An id surviving to connection teardown is, by construction, a
/// query the client will never collect — `TakeAll` hands the reader the
/// list to force-cancel.
class OutstandingMap {
 public:
  void Insert(uint64_t wire_id, uint64_t server_id) {
    std::lock_guard<std::mutex> lock(mu_);
    map_[wire_id] = server_id;
  }

  /// Server id for a wire id, or 0 when unknown (already answered, never
  /// admitted, or a bogus id — all safe to ignore).
  uint64_t Lookup(uint64_t wire_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(wire_id);
    return it == map_.end() ? 0 : it->second;
  }

  void Erase(uint64_t wire_id) {
    std::lock_guard<std::mutex> lock(mu_);
    map_.erase(wire_id);
  }

  std::vector<uint64_t> TakeAll() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> ids;
    ids.reserve(map_.size());
    for (const auto& [wire_id, server_id] : map_) ids.push_back(server_id);
    map_.clear();
    return ids;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> map_;
};

}  // namespace

void NetServer::ServeConnection(Socket* conn) {
  FrameDecoder decoder;

  // Hello handshake. (Single-threaded until the writer spawns below, so
  // these direct sends cannot interleave with anything.)
  {
    Result<Frame> hello = RecvFrame(conn, &decoder, options_.idle_timeout_ms);
    if (!hello.ok() || hello.value().type != FrameType::kHello) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    WireReader r(hello.value().payload);
    auto magic = r.U32();
    auto version = r.U16();
    auto role = r.U8();
    Status problem = Status::OK();
    if (!magic.ok() || magic.value() != kWireMagic) {
      problem = Status::InvalidArgument("front end: bad magic in hello");
    } else if (!version.ok() || version.value() != kWireVersion) {
      problem =
          Status::Unsupported("front end: unsupported protocol version");
    } else if (!role.ok() ||
               role.value() != static_cast<uint8_t>(WireRole::kQueryClient)) {
      problem =
          Status::InvalidArgument("front end: expected a query client hello");
    } else if (draining_.load(std::memory_order_acquire)) {
      // The wire-level drain refusal: a structured kRejected plus a
      // retry-after, so load generators back off instead of erroring out.
      double retry_after = server_->options().retry_after_ms;
      WireWriter w;
      EncodeStatus(Status::Rejected("front end draining; retry after " +
                                    std::to_string(retry_after) + " ms"),
                   &w);
      w.F64(retry_after);
      (void)SendFrame(conn, FrameType::kError, w.Take());
      return;
    }
    if (!problem.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WireWriter w;
      EncodeStatus(problem, &w);
      (void)SendFrame(conn, FrameType::kError, w.Take());
      return;
    }
    WireWriter ack;
    ack.U16(kWireVersion);
    if (!SendFrame(conn, FrameType::kHelloAck, ack.Take()).ok()) return;
  }

  ReplyQueue replies(static_cast<size_t>(
      options_.pipeline_depth > 0 ? options_.pipeline_depth : 1));
  InFlightGate gate(options_.max_conn_in_flight);
  OutstandingMap outstanding;

  // Writer: pops replies FIFO (request order) and frames them out. From
  // here on it is the only thread writing to the socket; the reader routes
  // pongs and protocol errors through the queue rather than sending them
  // itself, so frames can never interleave mid-response. Waiting on the
  // head future blocks only this connection's writes.
  std::thread writer([this, conn, &replies, &gate, &outstanding] {
    // Classifies send failures so a slow-loris kill (write-progress
    // deadline) is ledgered separately from ordinary disconnects.
    auto send = [this, conn](FrameType type, std::string payload) {
      Status sent = SendFrame(conn, type, std::move(payload));
      if (!sent.ok() &&
          sent.code() == StatusCode::kDeadlineExceeded) {
        write_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      return sent.ok();
    };
    PendingReply reply;
    bool socket_dead = false;
    while (!socket_dead && replies.Pop(&reply)) {
      if (reply.kind == PendingReply::Kind::kControlFrame) {
        if (!send(reply.frame_type, std::move(reply.frame_payload))) {
          socket_dead = true;
        }
        continue;
      }
      QueryResponse response = reply.immediate.has_value()
                                   ? std::move(*reply.immediate)
                                   : reply.future.get();
      // The response is in hand: the query can no longer be cancelled, so
      // drop it from the cancel map before the (possibly slow) write.
      outstanding.Erase(reply.request_id);
      WireStatus wire_status = WireStatusOf(response);
      if (wire_status == WireStatus::kShed && server_->draining()) {
        wire_status = WireStatus::kDraining;
      }
      std::string body = EncodeAnswerBody(response);

      WireWriter header;
      header.U64(reply.request_id);
      header.U8(static_cast<uint8_t>(wire_status));
      header.F64(response.retry_after_ms);
      header.U32(static_cast<uint32_t>(body.size()));
      bool wrote = send(FrameType::kResultHeader, header.Take());
      for (size_t offset = 0; wrote && offset < body.size();
           offset += kBodyChunkBytes) {
        WireWriter chunk;
        chunk.U64(reply.request_id);
        chunk.Bytes(body.data() + offset,
                    std::min<size_t>(kBodyChunkBytes, body.size() - offset));
        wrote = send(FrameType::kResultBody, chunk.Take());
      }
      if (wrote) {
        WireWriter end;
        end.U64(reply.request_id);
        wrote = send(FrameType::kResultEnd, end.Take());
      }
      // The gate slot frees whether or not the bytes landed — the query's
      // trip through the executor is over either way.
      gate.Release();
      if (!wrote) {
        socket_dead = true;
        continue;
      }
      queries_served_.fetch_add(1, std::memory_order_relaxed);
    }
    if (socket_dead) {
      // Unblock a reader mid-recv on this socket: with the write side
      // dead no response can ever be delivered, so parsing further
      // queries is pointless (and a gate-blocked reader would deadlock
      // against a writer that no longer writes).
      conn->ShutdownRead();
    }
    // Keep draining futures even if the socket died: every accepted
    // submission must be consumed so Stop()'s Drain() cannot wedge, and
    // every gate slot must free so the reader can reach its own exit.
    while (replies.Pop(&reply)) {
      if (reply.kind == PendingReply::Kind::kQuery) {
        if (!reply.immediate.has_value()) (void)reply.future.get();
        outstanding.Erase(reply.request_id);
        gate.Release();
      }
    }
  });

  // Reader: pulls frames, submits queries, enqueues their futures.
  while (true) {
    Result<Frame> frame = RecvFrame(conn, &decoder, options_.idle_timeout_ms);
    if (!frame.ok()) {
      if (decoder.poisoned()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        WireWriter w;
        EncodeStatus(frame.status(), &w);
        replies.Push(
            PendingReply::ControlFrame(FrameType::kError, w.Take()));
      }
      break;
    }
    if (frame.value().type == FrameType::kGoodbye) break;
    if (frame.value().type == FrameType::kPing) {
      // The pong rides the reply FIFO behind any queued responses: a
      // liveness probe answered out-of-band could land inside another
      // response's chunk sequence. (It also gives pipelined clients a
      // clean barrier: submit N, receive N, ping.)
      replies.Push(PendingReply::ControlFrame(FrameType::kPong,
                                              frame.value().payload));
      continue;
    }
    if (frame.value().type == FrameType::kCancel) {
      cancels_received_.fetch_add(1, std::memory_order_relaxed);
      WireReader r(frame.value().payload);
      auto wire_id = r.U64();
      if (!wire_id.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      // Fire and forget: if the cancel wins, the already-queued future
      // resolves kCancelled and travels back through the normal reply
      // path, keeping the one-response-per-submit accounting. If it loses
      // (unknown/already-answered id), there is nothing to do.
      uint64_t server_id = outstanding.Lookup(wire_id.value());
      if (server_id != 0) {
        (void)server_->Cancel(server_id, "cancelled by client");
      }
      continue;
    }
    if (frame.value().type != FrameType::kQuery) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WireWriter w;
      EncodeStatus(
          Status::InvalidArgument(
              "front end: unexpected frame type " +
              std::to_string(static_cast<int>(frame.value().type))),
          &w);
      replies.Push(PendingReply::ControlFrame(FrameType::kError, w.Take()));
      break;
    }

    WireReader r(frame.value().payload);
    auto request_id = r.U64();
    if (!request_id.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    size_t consumed = frame.value().payload.size() - r.remaining();
    Result<QueryRequest> request =
        DecodeQueryRequest(frame.value().payload.substr(consumed));

    PendingReply reply;
    reply.request_id = request_id.value();
    // Take a gate slot before the query touches the executor; the writer
    // returns it once the response is fully written (or drained). Blocks
    // here — not in the executor — when the connection is over its cap.
    gate.Acquire();
    if (!request.ok()) {
      // A malformed query payload fails that request, not the connection:
      // the id is known, so the client gets a well-formed kFailed answer.
      QueryResponse failed;
      failed.outcome = ServedOutcome::kFailed;
      failed.status = request.status();
      reply.immediate = std::move(failed);
    } else {
      QueryServer::SubmittedQuery submitted =
          server_->SubmitWithId(std::move(request.value()));
      // id 0 = resolved at submission (shed, draining, warm cache hit):
      // nothing server-side left to cancel, so it stays out of the map.
      if (submitted.id != 0) {
        outstanding.Insert(reply.request_id, submitted.id);
      }
      reply.future = std::move(submitted.future);
    }
    replies.Push(std::move(reply));
  }

  // The client is gone (EOF, reset, goodbye, or framing error): nobody
  // will ever collect the still-outstanding responses, so reclaim their
  // executor resources now instead of letting them run to completion.
  for (uint64_t server_id : outstanding.TakeAll()) {
    if (server_->Cancel(server_id, "client disconnected")) {
      disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  replies.Close();
  writer.join();
}

}  // namespace seco
