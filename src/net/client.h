#ifndef SECO_NET_CLIENT_H_
#define SECO_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "sim/load_generator.h"

namespace seco {

/// One response as it arrived off the wire: the result-header fields plus
/// the reassembled answer body (the canonical `EncodeAnswerBody` bytes —
/// compare these against an in-process run for the equivalence oracle, or
/// `DecodeAnswerBody` them for a structured `QueryResponse`).
struct WireResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kFailed;
  double retry_after_ms = 0.0;
  std::string body;
};

/// Client for the framed query protocol — the wire twin of holding a
/// `QueryServer*`. Supports pipelining: `Submit` any number of requests,
/// then `Receive` responses in the same order. Not thread-safe; use one
/// client per thread (see `DriveLoadOverWire`).
class NetClient {
 public:
  /// Dials the front end and runs the hello handshake. A draining server
  /// refuses here with the structured `kRejected` status off the wire.
  static Result<NetClient> Connect(const std::string& host, uint16_t port,
                                   int timeout_ms = -1);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  /// Sends one query frame tagged `request_id` (client-chosen; echoed in
  /// the response frames).
  Status Submit(uint64_t request_id, const QueryRequest& request);

  /// Reads the next response: header, body chunks, end. Responses arrive
  /// in submission order.
  Result<WireResponse> Receive();

  /// Submit + Receive for the single-outstanding-call case.
  Result<WireResponse> Roundtrip(uint64_t request_id,
                                 const QueryRequest& request);

  /// Abandons an outstanding query (v3 `CANCEL` frame). Fire and forget:
  /// the server still answers the request — `kCancelled` if the cancel won
  /// the race, the natural outcome if it lost — so `Receive` keeps its
  /// one-response-per-submit accounting either way.
  Status Cancel(uint64_t request_id);

  /// Liveness probe: sends a ping and waits for the echoed pong.
  Status Ping(uint64_t cookie);

  /// Announces a clean close and shuts the connection down.
  void Goodbye();

 private:
  NetClient(Socket socket, int timeout_ms)
      : socket_(std::move(socket)), timeout_ms_(timeout_ms) {}

  Socket socket_;
  FrameDecoder decoder_;
  int timeout_ms_ = -1;
};

/// `DriveLoad`, but over loopback TCP: replays a `LoadGenerator` schedule
/// against a `NetServer` and returns the decoded terminal responses in
/// submission order, exactly like the in-process report. Closed loop runs
/// `closed_loop_width` worker connections each keeping one call
/// outstanding; open loop pipelines the whole schedule down one
/// keep-alive connection (responses still arrive in submission order).
struct WireLoadReport {
  /// Decoded responses, submission order. A transport-level failure leaves
  /// a `kFailed` response carrying the socket error.
  std::vector<QueryResponse> responses;
  /// Raw answer bodies, submission order — the oracle's byte-diff input.
  std::vector<std::string> bodies;
  double wall_ms = 0.0;

  int64_t CountOutcome(ServedOutcome outcome) const;
};

WireLoadReport DriveLoadOverWire(const std::string& host, uint16_t port,
                                 const std::vector<LoadItem>& schedule,
                                 const LoadProfile& profile);

}  // namespace seco

#endif  // SECO_NET_CLIENT_H_
