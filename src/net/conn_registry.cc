#include "net/conn_registry.h"

#include <sys/socket.h>
#include <utility>

namespace seco {

bool ConnectionRegistry::Launch(Socket socket,
                                std::function<void(Socket*)> serve) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return false;  // racing a Stop: drop the connection
  ReapLocked();
  slots_.push_back(std::make_unique<Slot>());
  Slot* slot = slots_.back().get();
  slot->fd = socket.fd();
  slot->thread = std::thread(
      [this, slot, serve = std::move(serve)](Socket conn) {
        serve(&conn);
        {
          // Unregister the fd *before* the socket closes: once close()
          // runs, the kernel may hand the same number to a new descriptor,
          // and a concurrent ShutdownAll must not shut that one down.
          std::lock_guard<std::mutex> lock(mu_);
          slot->fd = -1;
        }
        conn.Close();
        std::lock_guard<std::mutex> lock(mu_);
        slot->done = true;
      },
      std::move(socket));
  return true;
}

void ConnectionRegistry::ShutdownAll() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    if (slot->fd >= 0) ::shutdown(slot->fd, SHUT_RDWR);
  }
}

void ConnectionRegistry::JoinAll() {
  std::vector<std::unique_ptr<Slot>> slots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots.swap(slots_);
  }
  // The threads still lock mu_ to clear fd/done on their (heap) slots,
  // which outlive the swap; join without holding it.
  for (const std::unique_ptr<Slot>& slot : slots) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = false;
}

void ConnectionRegistry::ReapLocked() {
  for (size_t i = 0; i < slots_.size();) {
    if (slots_[i]->done) {
      // done is set by the thread's last statement; the join completes as
      // soon as it returns, so holding mu_ here cannot deadlock.
      if (slots_[i]->thread.joinable()) slots_[i]->thread.join();
      slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

}  // namespace seco
