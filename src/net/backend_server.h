#ifndef SECO_NET_BACKEND_SERVER_H_
#define SECO_NET_BACKEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "net/chaos.h"
#include "net/conn_registry.h"
#include "net/socket.h"
#include "service/invocation.h"
#include "service/registry.h"

namespace seco {

/// Backend-server knobs.
struct BackendServerOptions {
  /// Deterministic fault injection on accepted connections (connect
  /// refusal, resets, corruption, stalls — see `net/chaos.h`). Inert by
  /// default.
  ChaosOptions chaos;
};

/// Exposes `ServiceCallHandler`s over a localhost socket — the server half
/// of the drop-in-backend claim (docs/NETWORK.md). A `RemoteServiceHandler`
/// on the other end makes the hop invisible to the engines: requests and
/// responses travel as the bit-exact wire codec, and handler errors
/// round-trip code + message verbatim, so a `FaultModel` behind this server
/// trips retries and breakers exactly as it does in-process.
///
/// Concurrency model: one acceptor thread plus one thread per connection,
/// each serving calls serially; parallelism comes from clients opening
/// several connections (the `RemoteServiceHandler` pools them).
class BackendServer {
 public:
  explicit BackendServer(BackendServerOptions options = {})
      : options_(options), chaos_(options.chaos) {}
  ~BackendServer() { Stop(); }
  BackendServer(const BackendServer&) = delete;
  BackendServer& operator=(const BackendServer&) = delete;

  /// Registers `handler` under `name`. Call before `Start`.
  void RegisterHandler(const std::string& name,
                       std::shared_ptr<ServiceCallHandler> handler);

  /// Registers every interface of `registry` under its interface name —
  /// the one-liner that puts a whole sim substrate behind the wire.
  void ExposeRegistry(const ServiceRegistry& registry);

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see `port()`) and starts the
  /// acceptor thread.
  Status Start(uint16_t port = 0);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Calls served since `Start` (across all connections).
  int64_t calls_served() const {
    return calls_served_.load(std::memory_order_relaxed);
  }

  /// Calls dropped by deadline propagation: their queue wait had already
  /// consumed the caller's transported budget, so no handler ran.
  int64_t deadline_rejections() const {
    return deadline_rejections_.load(std::memory_order_relaxed);
  }

  /// Queued calls purged by a `kCancel` frame (v3) before their handler
  /// ran; each was answered `kCancelled` to keep one-reply-per-call.
  int64_t cancelled_purges() const {
    return cancelled_purges_.load(std::memory_order_relaxed);
  }

  /// Faults fired by this server's chaos engine (zeros when chaos is off).
  ChaosStats chaos_stats() const { return chaos_.stats(); }

 private:
  void AcceptLoop();
  void ServeConnection(Socket* conn);
  /// Handles one kCall frame; returns the kCallReply payload. `waited_ms`
  /// is how long the frame sat queued behind earlier calls on this
  /// connection — the deadline-propagation clock.
  std::string HandleCall(const std::string& payload, double waited_ms);

  std::map<std::string, std::shared_ptr<ServiceCallHandler>> handlers_;
  const BackendServerOptions options_;
  ChaosEngine chaos_;
  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> calls_served_{0};
  std::atomic<int64_t> deadline_rejections_{0};
  std::atomic<int64_t> cancelled_purges_{0};

  ConnectionRegistry conns_;
};

}  // namespace seco

#endif  // SECO_NET_BACKEND_SERVER_H_
