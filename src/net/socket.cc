#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/chaos.h"

namespace seco {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status Socket::SendAll(const std::string& data) {
  if (fd_ < 0) return Status::Unavailable("socket: send on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    size_t want = data.size() - sent;
    if (chaos_) {
      Status fault = ChaosBeforeSend(chaos_.get(), tx_offset_, &want);
      if (!fault.ok()) {
        // Make the fault visible to the peer too: it sees EOF mid-frame,
        // exactly like a real half-closed connection.
        ShutdownWrite();
        return fault;
      }
      // Clamping never yields 0: at the boundary the call above fails
      // instead, so every pass makes progress.
    }
    if (write_timeout_ms_ >= 0) {
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int ready;
      do {
        ready = ::poll(&pfd, 1, write_timeout_ms_);
      } while (ready < 0 && errno == EINTR);
      if (ready < 0) return Status::Unavailable(Errno("socket: poll failed"));
      if (ready == 0) {
        return Status::DeadlineExceeded(
            "socket: write stalled for " +
            std::to_string(write_timeout_ms_) +
            " ms (peer not reading)");
      }
    }
    const int flags =
        MSG_NOSIGNAL | (write_timeout_ms_ >= 0 ? MSG_DONTWAIT : 0);
    ssize_t n = ::send(fd_, data.data() + sent, want, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      // With MSG_DONTWAIT the buffer may have refilled between the poll
      // and the send; loop back to the poll for another progress window.
      if (write_timeout_ms_ >= 0 &&
          (errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;
      }
      return Status::Unavailable(Errno("socket: send failed"));
    }
    sent += static_cast<size_t>(n);
    tx_offset_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(std::string* out, size_t max_bytes,
                                int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("socket: recv on closed socket");
  char buf[16384];
  size_t want = std::min(max_bytes, sizeof(buf));
  if (chaos_) {
    bool eof = false;
    Status fault =
        ChaosBeforeRecv(chaos_.get(), rx_offset_, &want, timeout_ms, &eof);
    SECO_RETURN_IF_ERROR(fault);
    if (eof) return static_cast<size_t>(0);  // truncation: clean EOF
    if (want == 0) want = 1;  // never issue a zero-byte recv
  }
  if (timeout_ms >= 0) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return Status::Unavailable(Errno("socket: poll failed"));
    if (ready == 0) {
      return Status::DeadlineExceeded("socket: recv timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
  }
  ssize_t n;
  do {
    n = ::recv(fd_, buf, want, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Status::Unavailable(Errno("socket: recv failed"));
  if (chaos_ && n > 0) {
    ChaosAfterRecv(chaos_.get(), rx_offset_, buf, static_cast<size_t>(n));
  }
  rx_offset_ += static_cast<uint64_t>(n);
  out->append(buf, static_cast<size_t>(n));
  return static_cast<size_t>(n);
}

void Socket::SetNoDelay() {
  if (fd_ < 0) return;
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status Listener::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket: socket() failed"));
  Socket owned(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Unavailable(Errno("socket: bind to 127.0.0.1:" +
                                     std::to_string(port) + " failed"));
  }
  if (::listen(fd, backlog) < 0) {
    return Status::Unavailable(Errno("socket: listen failed"));
  }
  // Recover the kernel-assigned port when the caller asked for an
  // ephemeral one.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    return Status::Unavailable(Errno("socket: getsockname failed"));
  }
  port_ = ntohs(addr.sin_port);
  socket_ = std::move(owned);
  return Status::OK();
}

Result<Socket> Listener::Accept() {
  if (!socket_.valid()) {
    return Status::Unavailable("socket: accept on closed listener");
  }
  int fd;
  do {
    fd = ::accept(socket_.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::Unavailable(Errno("socket: accept failed"));
  Socket conn(fd);
  conn.SetNoDelay();
  return conn;
}

void Listener::Close() {
  // shutdown() only — it fails a concurrent blocked accept() without
  // writing the fd member an acceptor thread is still reading (close()
  // here would race that read, and could recycle the descriptor number
  // under it). The descriptor itself is released when the Listener is
  // destroyed or rebound by the next Listen().
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          int timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* node = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, node, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("socket: cannot parse IPv4 address '" +
                                   host + "'");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket: socket() failed"));
  Socket conn(fd);

  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::Unavailable(Errno("socket: connect to " + host + ":" +
                                     std::to_string(port) + " failed"));
  }
  (void)timeout_ms;  // loopback connects complete or fail immediately
  conn.SetNoDelay();
  return conn;
}

Result<Frame> RecvFrame(Socket* socket, FrameDecoder* decoder,
                        int timeout_ms) {
  Frame frame;
  while (!decoder->Next(&frame)) {
    // Next() returning false while poisoned means a payload failed its
    // checksum: the stream is corrupt, not merely incomplete. Fail before
    // blocking in recv for bytes that would never complete a frame.
    if (decoder->poisoned()) {
      return Status::Unavailable(
          "socket: frame stream failed checksum (corrupted)");
    }
    std::string bytes;
    SECO_ASSIGN_OR_RETURN(size_t n,
                          socket->RecvSome(&bytes, 65536, timeout_ms));
    if (n == 0) {
      return Status::Unavailable("socket: connection closed by peer");
    }
    SECO_RETURN_IF_ERROR(decoder->Feed(bytes));
  }
  return frame;
}

}  // namespace seco
