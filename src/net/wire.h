#ifndef SECO_NET_WIRE_H_
#define SECO_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/server.h"
#include "service/invocation.h"
#include "service/tuple.h"
#include "service/value.h"

namespace seco {

/// The SeCo wire protocol (docs/NETWORK.md): length-prefixed frames over a
/// byte stream. Every frame is
///
///     [u32 payload length, LE][u8 frame type][u32 payload checksum, LE]
///     [payload bytes]
///
/// The same framing carries both protocols: the *query* protocol between a
/// `NetClient` and a `NetServer` front end, and the *backend* protocol
/// between a `RemoteServiceHandler` and a `BackendServer`. All multi-byte
/// integers are little-endian; doubles travel as their IEEE-754 bit pattern
/// (a u64), so every numeric value round-trips bit-exactly — the foundation
/// of the "wire answers are byte-identical to in-process runs" oracle.
///
/// The checksum (FNV-1a over the payload, v2) closes the silent-corruption
/// hole: a flipped byte anywhere in a payload poisons the decoder instead
/// of decoding into a plausible-but-wrong value, so corruption degrades
/// through the structured `kUnavailable` path like any other stream fault.

/// Protocol constants. The version is negotiated by the Hello/HelloAck
/// exchange that opens every connection.
inline constexpr uint32_t kWireMagic = 0x4F434553;  // "SECO" little-endian
inline constexpr uint16_t kWireVersion = 3;  // v3: CANCEL frame + cancelled status

/// Bytes in one frame header: length + type + checksum.
inline constexpr size_t kFrameHeaderBytes = 9;

/// FNV-1a (32-bit) over a byte span — the frame payload checksum.
uint32_t FrameChecksum(const char* data, size_t size);
inline uint32_t FrameChecksum(const std::string& bytes) {
  return FrameChecksum(bytes.data(), bytes.size());
}

/// Hard ceiling on one frame's payload. A length prefix beyond this is
/// rejected *before* any buffer is sized to it, so a hostile or corrupt
/// 4-byte prefix can never drive an allocation.
inline constexpr uint32_t kMaxFramePayload = 4u << 20;  // 4 MiB

/// Answer bodies larger than this are split across consecutive
/// `kResultBody` frames (chunked transfer; see `NetServer`).
inline constexpr uint32_t kBodyChunkBytes = 256u << 10;  // 256 KiB

/// Frame types. Values are wire-stable.
enum class FrameType : uint8_t {
  // Connection management (both protocols).
  kHello = 1,     ///< client -> server: magic + version + role
  kHelloAck = 2,  ///< server -> client: version
  kError = 7,     ///< protocol error: Status; sender closes afterwards
  kGoodbye = 8,   ///< clean close announcement (no payload)
  kPing = 11,     ///< u64 cookie, echoed back in a kPong
  kPong = 12,

  // Query protocol (NetClient <-> NetServer).
  kQuery = 3,         ///< u64 request id + encoded QueryRequest
  kResultHeader = 4,  ///< u64 id + wire status + retry-after + body length
  kResultBody = 5,    ///< u64 id + the next chunk of the answer body
  kResultEnd = 6,     ///< u64 id: the response is complete

  // Backend protocol (RemoteServiceHandler <-> BackendServer).
  kCall = 9,        ///< u64 call id + interface + encoded ServiceRequest
  kCallReply = 10,  ///< u64 call id + ok flag + (ServiceResponse | Status)

  // Cancellation (both protocols, v3). In the query protocol the id is the
  // client's request id; in the backend protocol it is the call id. Fire and
  // forget: the peer answers with the normal result/reply frame (status
  // `kCancelled` if the cancel won the race, the natural outcome if it
  // lost), never with a dedicated ack.
  kCancel = 13,  ///< u64 id: abandon the identified query/call
};

/// Roles announced in the Hello frame, so a client that dials the wrong
/// port fails with a clear error instead of confusing the two protocols.
enum class WireRole : uint8_t {
  kQueryClient = 0,
  kBackendClient = 1,
};

/// Wire-level status of one query response, carried in the result header so
/// thin clients can react (e.g. back off on `kShed`) without decoding the
/// body. Mirrors `ServedOutcome` one-to-one.
enum class WireStatus : uint8_t {
  kOk = 0,           ///< completed at level 0
  kDegraded = 1,     ///< served under degradation or partial
  kShed = 2,         ///< admission rejected: retry after `retry_after_ms`
  kDeadline = 3,     ///< queue-time or execution deadline expired
  kFailed = 4,       ///< execution error; body's status has details
  kDraining = 5,     ///< server is shutting down: retry elsewhere/later
  kCancelled = 6,    ///< the client abandoned the query (v3)
};

WireStatus WireStatusOf(const QueryResponse& response);
/// Maps a wire status back onto the `ServedOutcome` it mirrors
/// (`kDraining` maps to `kShed`: both are admission-level rejections).
ServedOutcome OutcomeOfWireStatus(WireStatus status);
const char* WireStatusToString(WireStatus status);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Appends primitive values to a byte buffer in wire order.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s);
  void Bytes(const void* data, size_t len);

  const std::string& buffer() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reads over a byte span. Every accessor fails with
/// `kInvalidArgument` instead of reading past the end, so a truncated or
/// hostile payload can never over-read.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<int64_t> I64();
  Result<double> F64();
  Result<bool> Bool();
  /// Strings are limited to the remaining payload, so a corrupt length can
  /// never demand more than the frame actually carries.
  Result<std::string> Str();

  size_t remaining() const { return size_ - pos_; }
  /// Fails unless the payload was consumed exactly — trailing garbage in a
  /// frame is a protocol error, not padding.
  Status ExpectEnd() const;

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Encodes one complete frame (header + payload).
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Incremental frame decoder: feed it arbitrary byte spans (as they arrive
/// from `recv`, in any fragmentation) and poll complete frames out. An
/// oversized length prefix fails immediately — before any payload byte is
/// buffered — and poisons the decoder, mirroring how a connection must be
/// dropped after a framing error. A payload whose checksum does not match
/// its header poisons the decoder at pop time (see `Next`).
class FrameDecoder {
 public:
  /// Appends raw bytes. Returns non-OK on a malformed header (oversized
  /// length or unknown frame type — both visible from the first 5 header
  /// bytes, before any payload is accepted); the decoder then rejects all
  /// further input.
  Status Feed(const char* data, size_t size);
  Status Feed(const std::string& bytes) {
    return Feed(bytes.data(), bytes.size());
  }

  /// Pops the next complete frame into `*frame`; false when no complete
  /// frame is buffered yet. A checksum mismatch poisons the decoder and
  /// returns false — callers must check `poisoned()` to tell corruption
  /// from not-yet-complete (RecvFrame does).
  bool Next(Frame* frame);

  bool poisoned() const { return poisoned_; }
  /// Bytes buffered but not yet consumed as complete frames.
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  /// Offset of the next frame header that has not been validated yet.
  /// Always >= consumed_: headers are validated the moment they are fully
  /// buffered, before their payload is complete enough for Next to pop.
  size_t scan_ = 0;
  bool poisoned_ = false;
};

// --- Value / tuple / service-call codecs (shared by both protocols). -------

void EncodeValue(const Value& value, WireWriter* w);
Result<Value> DecodeValue(WireReader* r);

void EncodeTuple(const Tuple& tuple, WireWriter* w);
Result<Tuple> DecodeTuple(WireReader* r);

void EncodeStatus(const Status& status, WireWriter* w);
/// Decodes into `*out`; the returned Status reports decode problems
/// (truncation, unknown code), not the decoded value.
Status DecodeStatus(WireReader* r, Status* out);

void EncodeServiceRequest(const ServiceRequest& request, WireWriter* w);
Result<ServiceRequest> DecodeServiceRequest(WireReader* r);

void EncodeServiceResponse(const ServiceResponse& response, WireWriter* w);
Result<ServiceResponse> DecodeServiceResponse(WireReader* r);

// --- Query protocol payloads. ----------------------------------------------

/// Encodes the wire-transportable part of a `QueryRequest`: query text,
/// priority, queue deadline, k, call budget, input bindings, and the
/// streaming flag. Per-request reliability/repair overrides and trace
/// collection are not transported (v1): the serving defaults apply, exactly
/// as for an in-process submission that leaves them inert.
std::string EncodeQueryRequest(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequest(const std::string& payload);

/// Serializes the deterministic content of a `QueryResponse` — outcome,
/// status, degradation level, answers, and the simulated-clock telemetry —
/// into the canonical *answer body*. Wall-clock measurements
/// (`wall_clock_ms`, `queue_wait_ms`, `repair.replan_ms`), traces, and the
/// columnar diagnostics are excluded: they vary run to run, everything
/// encoded here is bit-reproducible. The equivalence oracle compares these
/// bodies byte for byte between wire-mode and in-process runs.
std::string EncodeAnswerBody(const QueryResponse& response);
Result<QueryResponse> DecodeAnswerBody(const std::string& payload);

/// Hex rendering of an answer body, one line per response — the diffable
/// form `seco_shell --dump-answers` writes for the CI equivalence check.
std::string AnswerBodyHex(const std::string& body);

}  // namespace seco

#endif  // SECO_NET_WIRE_H_
