#ifndef SECO_PLAN_PLAN_H_
#define SECO_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/bound_query.h"

namespace seco {

/// Node kinds of a query plan DAG (§3.2, Fig. 1): explicit input/output
/// nodes, service invocations (exact or search), parallel-join nodes, and
/// selection nodes for predicates not evaluable through services or
/// connection patterns. Pipe joins have no dedicated node: they are service
/// invocations whose inputs arrive from an upstream node.
enum class PlanNodeKind {
  kInput,
  kOutput,
  kServiceCall,
  kParallelJoin,
  kSelection,
};

const char* PlanNodeKindToString(PlanNodeKind kind);

/// Invocation strategies for joins over search services (§4.3).
enum class JoinInvocation {
  kNestedLoop,  // drain the "step" service first, then the other
  kMergeScan,   // alternate calls, diagonal exploration
};

const char* JoinInvocationToString(JoinInvocation inv);

/// Completion strategies governing tile-processing order (§4.4).
enum class JoinCompletion {
  kRectangular,
  kTriangular,
};

const char* JoinCompletionToString(JoinCompletion comp);

/// Full parameterization of a parallel join's exploration (§4.5).
struct JoinStrategy {
  JoinInvocation invocation = JoinInvocation::kMergeScan;
  JoinCompletion completion = JoinCompletion::kTriangular;
  /// Inter-service call ratio r = ratio_x : ratio_y for merge-scan.
  int ratio_x = 1;
  int ratio_y = 1;

  std::string ToString() const;
};

/// One node of a query plan. Fields are meaningful per `kind`; annotation
/// fields (`t_in`, `t_out`, `est_calls`) are filled by AnnotatePlan to turn
/// the plan into a *fully instantiated* plan (§3.2, Fig. 3).
struct PlanNode {
  int id = -1;
  PlanNodeKind kind = PlanNodeKind::kServiceCall;

  // --- kServiceCall ---
  int atom = -1;  ///< index into BoundQuery::atoms
  std::shared_ptr<ServiceInterface> iface;
  /// Chunked services: fetches issued per input tuple (the fetching factor
  /// F_i of §5.5).
  int fetch_factor = 1;
  /// Keep only the best `keep_per_input` result tuples per input tuple
  /// (<=0: keep all). §5.6 keeps the single best restaurant per theatre.
  int keep_per_input = 0;
  /// Join groups realized by piping values into this call's inputs.
  std::vector<int> pipe_groups;
  /// Selections consumed by binding this call's input attributes
  /// (constants / INPUT variables), indexes into BoundQuery::selections.
  std::vector<int> input_selections;

  // --- kParallelJoin ---
  std::vector<int> join_groups;  ///< groups evaluated at this node
  JoinStrategy strategy;
  /// The node whose output stream both branches share (the stage's common
  /// upstream); joins combine branch results *per upstream tuple*, so
  /// cardinality estimates divide out the shared multiplicity.
  int join_upstream = -1;

  // --- kSelection ---
  std::vector<int> selections;            ///< residual selection predicates
  std::vector<int> residual_join_groups;  ///< join predicates evaluated here

  // --- annotations (fully instantiated plan) ---
  double t_in = 0.0;
  double t_out = 0.0;
  double est_calls = 0.0;  ///< expected number of service invocations

  // --- edges ---
  std::vector<int> inputs;
  std::vector<int> outputs;
};

/// A query plan: a DAG with one input and one output node, orchestrating
/// service invocations and joins (§3.2). The plan owns a copy of the bound
/// query it implements.
class QueryPlan {
 public:
  /// An empty plan (useful as a placeholder before assignment).
  QueryPlan() = default;
  explicit QueryPlan(BoundQuery query) : query_(std::move(query)) {}

  const BoundQuery& query() const { return query_; }
  BoundQuery& mutable_query() { return query_; }

  /// Adds a node; returns its id.
  int AddNode(PlanNode node);
  /// Adds a dataflow arc from `from` to `to`.
  void Connect(int from, int to);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const PlanNode& node(int id) const { return nodes_[id]; }
  PlanNode& mutable_node(int id) { return nodes_[id]; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }

  /// The unique kInput / kOutput nodes (-1 if absent).
  int input_node() const;
  int output_node() const;

  /// Node ids in a topological order; fails if the graph has a cycle.
  Result<std::vector<int>> TopologicalOrder() const;

  /// Structural validation: exactly one input and one output, acyclic,
  /// every non-input node reachable from input, every non-output node
  /// reaching output, service nodes' inputs all covered (by input
  /// selections or pipe groups whose providers are upstream).
  Status Validate() const;

  /// The service-call node for `atom`, or -1.
  int NodeOfAtom(int atom) const;

  /// Human-readable rendering of the (annotated) plan.
  std::string ToString() const;
  /// Graphviz DOT rendering.
  std::string ToDot() const;

 private:
  BoundQuery query_;
  std::vector<PlanNode> nodes_;
};

}  // namespace seco

#endif  // SECO_PLAN_PLAN_H_
