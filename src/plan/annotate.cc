#include "plan/annotate.h"

#include <algorithm>
#include <cmath>

namespace seco {

Result<double> AnnotatePlan(QueryPlan* plan, const AnnotationParams& params) {
  SECO_ASSIGN_OR_RETURN(std::vector<int> order, plan->TopologicalOrder());
  const BoundQuery& query = plan->query();

  double answers = 0.0;
  for (int id : order) {
    PlanNode& node = plan->mutable_node(id);
    // t_in: product of predecessor outputs for joins (candidate pairs);
    // plain sum-of-one-predecessor otherwise.
    if (node.kind == PlanNodeKind::kParallelJoin) {
      // Branches share the upstream stream: combine per upstream tuple.
      double upstream = 1.0;
      if (node.join_upstream >= 0) {
        upstream = std::max(plan->node(node.join_upstream).t_out, 1e-9);
      }
      double candidates = upstream;
      for (int pred : node.inputs) {
        candidates *= plan->node(pred).t_out / upstream;
      }
      if (node.strategy.completion == JoinCompletion::kTriangular) {
        candidates *= 0.5;
      }
      node.t_in = candidates;
    } else {
      double t_in = 0.0;
      for (int pred : node.inputs) t_in += plan->node(pred).t_out;
      if (node.inputs.empty()) t_in = 0.0;
      node.t_in = t_in;
    }

    switch (node.kind) {
      case PlanNodeKind::kInput:
        node.t_out = 1.0;
        break;
      case PlanNodeKind::kServiceCall: {
        const ServiceStats& stats = node.iface->stats();
        bool piped = !node.pipe_groups.empty();
        double bindings = piped ? node.t_in : 1.0;
        double fetches = node.iface->is_chunked() ? node.fetch_factor : 1.0;
        if (node.iface->is_chunked() && stats.avg_matches_per_binding > 0) {
          // The engine stops fetching a binding once the service reports
          // exhaustion, so fetches are bounded by the expected list depth.
          double max_useful = std::ceil(stats.avg_matches_per_binding /
                                        std::max(stats.chunk_size, 1));
          fetches = std::min(fetches, std::max(max_useful, 1.0));
        }
        node.est_calls = bindings * fetches;
        double yield = node.iface->is_chunked()
                           ? static_cast<double>(stats.chunk_size) * node.fetch_factor
                           : stats.avg_tuples_per_call;
        if (node.iface->is_chunked() && stats.avg_matches_per_binding > 0) {
          // Fetching past the expected result-list depth yields nothing.
          yield = std::min(yield, stats.avg_matches_per_binding);
        }
        if (node.keep_per_input > 0) {
          yield = std::min(yield, static_cast<double>(node.keep_per_input));
        }
        double pipe_sel = 1.0;
        for (int g : node.pipe_groups) pipe_sel *= query.joins[g].selectivity;
        node.t_out = node.t_in * pipe_sel * yield;
        break;
      }
      case PlanNodeKind::kSelection: {
        double sel = 1.0;
        for (int s : node.selections) sel *= query.selections[s].selectivity;
        for (int g : node.residual_join_groups) sel *= query.joins[g].selectivity;
        node.t_out = node.t_in * sel;
        break;
      }
      case PlanNodeKind::kParallelJoin: {
        double sel = 1.0;
        for (int g : node.join_groups) sel *= query.joins[g].selectivity;
        node.t_out = node.t_in * sel;
        break;
      }
      case PlanNodeKind::kOutput:
        answers = node.t_in;
        node.t_out = std::min(node.t_in, static_cast<double>(params.k));
        break;
    }
  }
  return answers;
}

}  // namespace seco
