#include "plan/plan.h"

#include <algorithm>
#include <queue>
#include <sstream>

namespace seco {

const char* PlanNodeKindToString(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kInput:
      return "input";
    case PlanNodeKind::kOutput:
      return "output";
    case PlanNodeKind::kServiceCall:
      return "service";
    case PlanNodeKind::kParallelJoin:
      return "join";
    case PlanNodeKind::kSelection:
      return "selection";
  }
  return "?";
}

const char* JoinInvocationToString(JoinInvocation inv) {
  switch (inv) {
    case JoinInvocation::kNestedLoop:
      return "nested-loop";
    case JoinInvocation::kMergeScan:
      return "merge-scan";
  }
  return "?";
}

const char* JoinCompletionToString(JoinCompletion comp) {
  switch (comp) {
    case JoinCompletion::kRectangular:
      return "rectangular";
    case JoinCompletion::kTriangular:
      return "triangular";
  }
  return "?";
}

std::string JoinStrategy::ToString() const {
  std::string out = JoinInvocationToString(invocation);
  out += "/";
  out += JoinCompletionToString(completion);
  if (invocation == JoinInvocation::kMergeScan) {
    out += " r=" + std::to_string(ratio_x) + ":" + std::to_string(ratio_y);
  }
  return out;
}

int QueryPlan::AddNode(PlanNode node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void QueryPlan::Connect(int from, int to) {
  nodes_[from].outputs.push_back(to);
  nodes_[to].inputs.push_back(from);
}

int QueryPlan::input_node() const {
  for (const PlanNode& n : nodes_) {
    if (n.kind == PlanNodeKind::kInput) return n.id;
  }
  return -1;
}

int QueryPlan::output_node() const {
  for (const PlanNode& n : nodes_) {
    if (n.kind == PlanNodeKind::kOutput) return n.id;
  }
  return -1;
}

int QueryPlan::NodeOfAtom(int atom) const {
  for (const PlanNode& n : nodes_) {
    if (n.kind == PlanNodeKind::kServiceCall && n.atom == atom) return n.id;
  }
  return -1;
}

Result<std::vector<int>> QueryPlan::TopologicalOrder() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (const PlanNode& n : nodes_) {
    indegree[n.id] = static_cast<int>(n.inputs.size());
  }
  std::queue<int> ready;
  for (const PlanNode& n : nodes_) {
    if (indegree[n.id] == 0) ready.push(n.id);
  }
  std::vector<int> order;
  while (!ready.empty()) {
    int id = ready.front();
    ready.pop();
    order.push_back(id);
    for (int succ : nodes_[id].outputs) {
      if (--indegree[succ] == 0) ready.push(succ);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::Internal("query plan contains a cycle");
  }
  return order;
}

Status QueryPlan::Validate() const {
  int inputs = 0, outputs = 0;
  for (const PlanNode& n : nodes_) {
    if (n.kind == PlanNodeKind::kInput) ++inputs;
    if (n.kind == PlanNodeKind::kOutput) ++outputs;
  }
  if (inputs != 1 || outputs != 1) {
    return Status::InvalidArgument("plan must have exactly one input and one output node");
  }
  SECO_ASSIGN_OR_RETURN(std::vector<int> order, TopologicalOrder());

  // Reachability from input and to output.
  std::vector<bool> from_input(nodes_.size(), false);
  from_input[input_node()] = true;
  for (int id : order) {
    if (!from_input[id]) continue;
    for (int succ : nodes_[id].outputs) from_input[succ] = true;
  }
  std::vector<bool> to_output(nodes_.size(), false);
  to_output[output_node()] = true;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (!to_output[*it]) continue;
    for (int pred : nodes_[*it].inputs) to_output[pred] = true;
  }
  for (const PlanNode& n : nodes_) {
    if (!from_input[n.id]) {
      return Status::InvalidArgument("node " + std::to_string(n.id) +
                                     " unreachable from input");
    }
    if (!to_output[n.id]) {
      return Status::InvalidArgument("node " + std::to_string(n.id) +
                                     " does not reach output");
    }
  }

  // Upstream relation for pipe-binding checks.
  auto upstream_of = [&](int node_id) {
    std::vector<bool> up(nodes_.size(), false);
    std::queue<int> frontier;
    frontier.push(node_id);
    while (!frontier.empty()) {
      int id = frontier.front();
      frontier.pop();
      for (int pred : nodes_[id].inputs) {
        if (!up[pred]) {
          up[pred] = true;
          frontier.push(pred);
        }
      }
    }
    return up;
  };

  for (const PlanNode& n : nodes_) {
    if (n.kind != PlanNodeKind::kServiceCall) continue;
    if (!n.iface) {
      return Status::InvalidArgument("service node " + std::to_string(n.id) +
                                     " has no interface");
    }
    std::vector<bool> up = upstream_of(n.id);
    // Every input path must be bound by an input selection or a pipe group
    // clause whose other side belongs to an upstream service node.
    for (const AttrPath& in_path : n.iface->pattern().input_paths()) {
      bool covered = false;
      for (int sel_idx : n.input_selections) {
        const BoundSelection& sel = query_.selections[sel_idx];
        if (sel.atom == n.atom && sel.path == in_path &&
            sel.op == Comparator::kEq) {
          covered = true;
        }
      }
      for (int group_idx : n.pipe_groups) {
        for (const JoinClause& clause : query_.joins[group_idx].clauses) {
          int other = -1;
          if (clause.to_atom == n.atom && clause.to_path == in_path) {
            other = clause.from_atom;
          } else if (clause.from_atom == n.atom && clause.from_path == in_path) {
            other = clause.to_atom;
          }
          if (other < 0) continue;
          int other_node = NodeOfAtom(other);
          if (other_node >= 0 && up[other_node]) covered = true;
        }
      }
      if (!covered) {
        return Status::Infeasible(
            "service node " + std::to_string(n.id) + " (" + n.iface->name() +
            ") input " + n.iface->schema().PathToString(in_path) + " is unbound");
      }
    }
  }
  return Status::OK();
}

namespace {

std::string NodeLabel(const QueryPlan& plan, const PlanNode& n) {
  std::ostringstream out;
  switch (n.kind) {
    case PlanNodeKind::kInput:
      out << "INPUT";
      break;
    case PlanNodeKind::kOutput:
      out << "OUTPUT";
      break;
    case PlanNodeKind::kServiceCall: {
      out << n.iface->name() << " ["
          << ServiceKindToString(n.iface->kind());
      if (n.iface->is_chunked()) out << ", chunked";
      out << "]";
      if (n.iface->is_chunked()) out << " F=" << n.fetch_factor;
      if (n.keep_per_input > 0) out << " keep=" << n.keep_per_input;
      break;
    }
    case PlanNodeKind::kParallelJoin: {
      out << "JOIN(" << n.strategy.ToString() << ")";
      for (int g : n.join_groups) {
        const BoundJoinGroup& group = plan.query().joins[g];
        out << " " << (group.pattern_name.empty() ? "pred" : group.pattern_name);
      }
      break;
    }
    case PlanNodeKind::kSelection: {
      out << "SELECT";
      for (int s : n.selections) {
        const BoundSelection& sel = plan.query().selections[s];
        const BoundAtom& atom = plan.query().atoms[sel.atom];
        out << " " << atom.alias << "." << atom.schema->PathToString(sel.path)
            << ComparatorToString(sel.op)
            << (sel.input_var.empty() ? sel.constant.ToString() : sel.input_var);
      }
      for (int g : n.residual_join_groups) {
        const BoundJoinGroup& group = plan.query().joins[g];
        out << " " << (group.pattern_name.empty() ? "join-pred" : group.pattern_name);
      }
      break;
    }
  }
  return out.str();
}

}  // namespace

std::string QueryPlan::ToString() const {
  std::ostringstream out;
  auto order_result = TopologicalOrder();
  std::vector<int> order;
  if (order_result.ok()) {
    order = order_result.value();
  } else {
    for (const PlanNode& n : nodes_) order.push_back(n.id);
  }
  for (int id : order) {
    const PlanNode& n = nodes_[id];
    out << "#" << n.id << " " << NodeLabel(*this, n);
    out << "  t_in=" << n.t_in << " t_out=" << n.t_out;
    if (n.kind == PlanNodeKind::kServiceCall) out << " calls=" << n.est_calls;
    if (!n.outputs.empty()) {
      out << "  ->";
      for (int succ : n.outputs) out << " #" << succ;
    }
    out << "\n";
  }
  return out.str();
}

std::string QueryPlan::ToDot() const {
  std::ostringstream out;
  out << "digraph plan {\n  rankdir=LR;\n";
  for (const PlanNode& n : nodes_) {
    std::string shape = "box";
    if (n.kind == PlanNodeKind::kParallelJoin) shape = "diamond";
    if (n.kind == PlanNodeKind::kInput || n.kind == PlanNodeKind::kOutput) {
      shape = "circle";
    }
    if (n.kind == PlanNodeKind::kSelection) shape = "ellipse";
    out << "  n" << n.id << " [shape=" << shape << ", label=\""
        << NodeLabel(*this, n) << "\\nt_in=" << n.t_in << " t_out=" << n.t_out
        << "\"];\n";
  }
  for (const PlanNode& n : nodes_) {
    for (int succ : n.outputs) {
      out << "  n" << n.id << " -> n" << succ << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace seco
