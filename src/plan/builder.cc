#include "plan/builder.h"

#include <algorithm>

namespace seco {

namespace {

/// True if `group` has an equality clause binding input `path` of `atom`
/// from the other side.
bool ClauseBindsInput(const JoinClause& clause, int atom, const AttrPath& path) {
  if (clause.op != Comparator::kEq) return false;
  return (clause.to_atom == atom && clause.to_path == path) ||
         (clause.from_atom == atom && clause.from_path == path);
}

int OtherAtom(const JoinClause& clause, int atom) {
  return clause.from_atom == atom ? clause.to_atom : clause.from_atom;
}

}  // namespace

Result<QueryPlan> BuildPlan(const BoundQuery& query, const TopologySpec& spec) {
  for (const BoundAtom& atom : query.atoms) {
    if (!atom.iface) {
      return Status::InvalidArgument("atom '" + atom.alias +
                                     "' has no selected interface");
    }
  }
  // Every atom must appear exactly once across stages.
  std::vector<int> seen(query.atoms.size(), 0);
  for (const std::vector<int>& stage : spec.stages) {
    if (stage.empty()) {
      return Status::InvalidArgument("empty stage in topology spec");
    }
    for (int atom : stage) {
      if (atom < 0 || atom >= static_cast<int>(query.atoms.size())) {
        return Status::InvalidArgument("stage references unknown atom");
      }
      if (seen[atom]++) {
        return Status::InvalidArgument("atom '" + query.atoms[atom].alias +
                                       "' appears twice in topology");
      }
    }
  }
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    if (!seen[a]) {
      return Status::InvalidArgument("atom '" + query.atoms[a].alias +
                                     "' missing from topology");
    }
  }

  QueryPlan plan(query);
  PlanNode input;
  input.kind = PlanNodeKind::kInput;
  int frontier = plan.AddNode(input);

  std::vector<bool> placed(query.atoms.size(), false);
  std::vector<bool> group_consumed(query.joins.size(), false);

  for (const std::vector<int>& stage : spec.stages) {
    std::vector<int> branch_ends;
    std::vector<int> stage_pipe_groups;

    for (int atom_idx : stage) {
      const BoundAtom& atom = plan.query().atoms[atom_idx];
      PlanNode call;
      call.kind = PlanNodeKind::kServiceCall;
      call.atom = atom_idx;
      call.iface = atom.iface;
      auto settings_it = spec.atom_settings.find(atom_idx);
      if (settings_it != spec.atom_settings.end()) {
        call.fetch_factor = settings_it->second.fetch_factor;
        call.keep_per_input = settings_it->second.keep_per_input;
      }

      // Input bindings: equality selections on the atom's input paths.
      const AccessPattern& pattern = atom.iface->pattern();
      for (const AttrPath& in_path : pattern.input_paths()) {
        bool bound = false;
        for (size_t s = 0; s < query.selections.size(); ++s) {
          const BoundSelection& sel = query.selections[s];
          if (sel.atom == atom_idx && sel.path == in_path &&
              sel.op == Comparator::kEq) {
            call.input_selections.push_back(static_cast<int>(s));
            bound = true;
            break;
          }
        }
        if (bound) continue;
        // Pipe binding: a join group clause from an already-placed atom.
        for (size_t g = 0; g < query.joins.size(); ++g) {
          bool applies = false;
          for (const JoinClause& clause : query.joins[g].clauses) {
            if (!ClauseBindsInput(clause, atom_idx, in_path)) continue;
            int other = OtherAtom(clause, atom_idx);
            if (other != atom_idx && placed[other]) applies = true;
          }
          if (applies) {
            if (std::find(call.pipe_groups.begin(), call.pipe_groups.end(),
                          static_cast<int>(g)) == call.pipe_groups.end()) {
              call.pipe_groups.push_back(static_cast<int>(g));
              stage_pipe_groups.push_back(static_cast<int>(g));
            }
            bound = true;
          }
        }
        if (!bound) {
          return Status::Infeasible(
              "topology places atom '" + atom.alias + "' before its input " +
              atom.schema->PathToString(in_path) + " can be bound");
        }
      }
      int call_id = plan.AddNode(call);
      plan.Connect(frontier, call_id);
      branch_ends.push_back(call_id);
    }
    for (int g : stage_pipe_groups) group_consumed[g] = true;
    for (int atom_idx : stage) placed[atom_idx] = true;

    int stage_end;
    if (stage.size() > 1) {
      PlanNode join;
      join.kind = PlanNodeKind::kParallelJoin;
      join.strategy = spec.parallel_strategy;
      join.join_upstream = frontier;
      // Evaluate every join group that just became evaluable and was not
      // consumed as a pipe group.
      for (size_t g = 0; g < query.joins.size(); ++g) {
        if (group_consumed[g]) continue;
        bool evaluable = true;
        bool touches_stage = false;
        for (const JoinClause& clause : query.joins[g].clauses) {
          if (!placed[clause.from_atom] || !placed[clause.to_atom]) {
            evaluable = false;
          }
          for (int atom_idx : stage) {
            if (clause.from_atom == atom_idx || clause.to_atom == atom_idx) {
              touches_stage = true;
            }
          }
        }
        if (evaluable && touches_stage) {
          join.join_groups.push_back(static_cast<int>(g));
          group_consumed[g] = true;
        }
      }
      int join_id = plan.AddNode(join);
      for (int end : branch_ends) plan.Connect(end, join_id);
      stage_end = join_id;
    } else {
      stage_end = branch_ends[0];
    }

    // Residual predicates: selections of stage atoms not used as inputs,
    // plus newly-evaluable join groups not yet consumed.
    PlanNode select;
    select.kind = PlanNodeKind::kSelection;
    for (size_t s = 0; s < query.selections.size(); ++s) {
      const BoundSelection& sel = query.selections[s];
      bool in_stage =
          std::find(stage.begin(), stage.end(), sel.atom) != stage.end();
      if (!in_stage) continue;
      bool used_as_input = false;
      for (int end : branch_ends) {
        const PlanNode& call = plan.node(end);
        if (call.kind != PlanNodeKind::kServiceCall) continue;
        if (std::find(call.input_selections.begin(), call.input_selections.end(),
                      static_cast<int>(s)) != call.input_selections.end()) {
          used_as_input = true;
        }
      }
      if (!used_as_input) select.selections.push_back(static_cast<int>(s));
    }
    for (size_t g = 0; g < query.joins.size(); ++g) {
      if (group_consumed[g]) continue;
      bool evaluable = true;
      for (const JoinClause& clause : query.joins[g].clauses) {
        if (!placed[clause.from_atom] || !placed[clause.to_atom]) {
          evaluable = false;
        }
      }
      if (evaluable) {
        select.residual_join_groups.push_back(static_cast<int>(g));
        group_consumed[g] = true;
      }
    }
    if (!select.selections.empty() || !select.residual_join_groups.empty()) {
      int select_id = plan.AddNode(select);
      plan.Connect(stage_end, select_id);
      stage_end = select_id;
    }
    frontier = stage_end;
  }

  PlanNode output;
  output.kind = PlanNodeKind::kOutput;
  int output_id = plan.AddNode(output);
  plan.Connect(frontier, output_id);

  SECO_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Result<QueryPlan> BuildDefaultPlan(const BoundQuery& query) {
  SECO_ASSIGN_OR_RETURN(FeasibilityReport report, CheckFeasibility(query));
  if (!report.feasible) return Status::Infeasible(report.reason);
  TopologySpec spec;
  for (int atom : report.reachable_order) {
    spec.stages.push_back({atom});
  }
  return BuildPlan(query, spec);
}

}  // namespace seco
