#ifndef SECO_PLAN_PLAN_JSON_H_
#define SECO_PLAN_PLAN_JSON_H_

#include <string>

#include "plan/plan.h"

namespace seco {

/// Serializes an (optionally annotated) plan to a self-describing JSON
/// document for external tooling (visualizers, regression diffing):
///
/// ```json
/// {
///   "nodes": [
///     {"id": 0, "kind": "input", "t_in": 0, "t_out": 1, "outputs": [1]},
///     {"id": 1, "kind": "service", "service": "Movie11", "service_kind":
///      "search", "chunked": true, "fetch_factor": 5, "est_calls": 5, ...},
///     {"id": 3, "kind": "join", "strategy": "merge-scan/triangular r=1:1",
///      "join_groups": ["Shows"], ...},
///     ...
///   ]
/// }
/// ```
///
/// Output is deterministic (keys in fixed order) so serialized plans can be
/// compared textually in tests and CI.
std::string PlanToJson(const QueryPlan& plan);

}  // namespace seco

#endif  // SECO_PLAN_PLAN_JSON_H_
