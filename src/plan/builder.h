#ifndef SECO_PLAN_BUILDER_H_
#define SECO_PLAN_BUILDER_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"
#include "query/feasibility.h"

namespace seco {

/// Per-atom instantiation knobs.
struct AtomSettings {
  int fetch_factor = 1;
  int keep_per_input = 0;  // <=0: keep all
  JoinStrategy pipe_strategy;  // exploration for pipe fetches (NL/rect default)
};

/// Declarative description of a plan topology: stages executed in sequence,
/// each stage invoking one or more atoms; a multi-atom stage fans out in
/// parallel and is recombined by a parallel-join node.
///
/// This covers the topology space the chapter's Phase 2 explores: chains of
/// service invocations (pipe joins where access patterns induce I/O
/// dependencies, residual join predicates otherwise) with parallel sections.
struct TopologySpec {
  std::vector<std::vector<int>> stages;  ///< atom indices per stage
  JoinStrategy parallel_strategy;        ///< strategy for parallel-join nodes
  std::map<int, AtomSettings> atom_settings;
};

/// Materializes a plan DAG for `query` following `spec`:
///
///  - every equality selection on an input path of an atom is consumed as an
///    input binding of its service call;
///  - join groups with a clause binding an input of the atom from an
///    already-placed atom become pipe groups of the call (pipe join);
///  - remaining selections of an atom and join groups whose atoms are all
///    placed without a dedicated node become a selection node placed right
///    after the stage (the chapter: "immediately after the service call that
///    makes the predicate evaluable");
///  - a multi-atom stage recombines through a parallel-join node evaluating
///    the join groups that become evaluable at that point.
///
/// The result is validated structurally before being returned.
Result<QueryPlan> BuildPlan(const BoundQuery& query, const TopologySpec& spec);

/// Convenience: a left-deep pipeline in feasibility order (each reachable
/// atom its own stage). A good default and the optimizer's starting point.
Result<QueryPlan> BuildDefaultPlan(const BoundQuery& query);

}  // namespace seco

#endif  // SECO_PLAN_BUILDER_H_
