#include "plan/plan_json.h"

#include <cmath>
#include <sstream>

namespace seco {

namespace {

void AppendEscaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

void AppendNumber(std::ostringstream& out, double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    out << static_cast<long long>(v);
  } else {
    out << v;
  }
}

void AppendIntArray(std::ostringstream& out, const std::vector<int>& values) {
  out << '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << values[i];
  }
  out << ']';
}

}  // namespace

std::string PlanToJson(const QueryPlan& plan) {
  const BoundQuery& query = plan.query();
  std::ostringstream out;
  out << "{\"nodes\":[";
  for (int id = 0; id < plan.num_nodes(); ++id) {
    const PlanNode& node = plan.node(id);
    if (id > 0) out << ',';
    out << "{\"id\":" << node.id << ",\"kind\":";
    AppendEscaped(out, PlanNodeKindToString(node.kind));
    if (node.kind == PlanNodeKind::kServiceCall && node.iface) {
      out << ",\"service\":";
      AppendEscaped(out, node.iface->name());
      out << ",\"service_kind\":";
      AppendEscaped(out, ServiceKindToString(node.iface->kind()));
      out << ",\"chunked\":" << (node.iface->is_chunked() ? "true" : "false");
      out << ",\"fetch_factor\":" << node.fetch_factor;
      if (node.keep_per_input > 0) {
        out << ",\"keep_per_input\":" << node.keep_per_input;
      }
      if (!node.pipe_groups.empty()) {
        out << ",\"pipe_groups\":";
        AppendIntArray(out, node.pipe_groups);
      }
      out << ",\"est_calls\":";
      AppendNumber(out, node.est_calls);
    }
    if (node.kind == PlanNodeKind::kParallelJoin) {
      out << ",\"strategy\":";
      AppendEscaped(out, node.strategy.ToString());
      out << ",\"join_groups\":[";
      for (size_t g = 0; g < node.join_groups.size(); ++g) {
        if (g > 0) out << ',';
        const BoundJoinGroup& group = query.joins[node.join_groups[g]];
        AppendEscaped(out,
                      group.pattern_name.empty() ? "predicate" : group.pattern_name);
      }
      out << ']';
    }
    if (node.kind == PlanNodeKind::kSelection) {
      out << ",\"selections\":" << node.selections.size()
          << ",\"residual_joins\":" << node.residual_join_groups.size();
    }
    out << ",\"t_in\":";
    AppendNumber(out, node.t_in);
    out << ",\"t_out\":";
    AppendNumber(out, node.t_out);
    out << ",\"outputs\":";
    AppendIntArray(out, node.outputs);
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace seco
