#ifndef SECO_PLAN_ANNOTATE_H_
#define SECO_PLAN_ANNOTATE_H_

#include "common/result.h"
#include "plan/plan.h"

namespace seco {

/// Parameters of plan instantiation (§3.2): `k` is the number of answer
/// combinations the user wants.
struct AnnotationParams {
  int k = 10;
};

/// Turns `plan` into a *fully instantiated query plan* by filling t_in,
/// t_out, and est_calls on every node from service statistics, selectivity
/// estimates, fetching factors, and the completion strategies, under the
/// chapter's independence and uniform-distribution assumptions:
///
///  - input:    t_out = 1 (the user injects a single input tuple);
///  - service:  distinct bindings b = (piped ? t_in : 1);
///              calls = b * fetch_factor (chunked) or b (exact);
///              yield = chunk_size * fetch_factor (chunked) or avg
///              cardinality (exact), capped by keep_per_input;
///              t_out = t_in * prod(pipe-group selectivity) * yield;
///  - selection: t_out = t_in * prod(predicate selectivities);
///  - parallel join: t_in = t_left * t_right * (1/2 if triangular);
///              t_out = t_in * prod(join-group selectivities);
///  - output:   t_out = min(t_in, k).
///
/// Returns the estimated number of answer tuples (t_in of the output node).
Result<double> AnnotatePlan(QueryPlan* plan, const AnnotationParams& params = {});

}  // namespace seco

#endif  // SECO_PLAN_ANNOTATE_H_
