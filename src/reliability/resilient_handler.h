#ifndef SECO_RELIABILITY_RESILIENT_HANDLER_H_
#define SECO_RELIABILITY_RESILIENT_HANDLER_H_

#include <memory>
#include <string>
#include <utility>

#include "common/interrupt.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "reliability/circuit_breaker.h"
#include "reliability/policy.h"
#include "service/invocation.h"

namespace seco {

/// Everything a `ResilientHandler` shares with its siblings of the same
/// execution: the policy, the attempt budget, the telemetry ledger, the
/// breaker registry, and (optionally) a pool + interrupt for hedging.
/// All pointed-to objects must outlive the handlers; `budget`, `ledger`,
/// `breakers`, `hedge_pool`, and `interrupt` may each be null.
struct ReliabilityContext {
  ReliabilityPolicy policy;
  CallBudget* budget = nullptr;
  ReliabilityLedger* ledger = nullptr;
  CircuitBreakerRegistry* breakers = nullptr;
  /// Pool for hedged backups. Hedging is skipped when null or when
  /// `policy.hedge_delay_ms < 0`.
  ThreadPool* hedge_pool = nullptr;
  /// Flag triggered (then re-armed) when a hedge race is decided, cutting
  /// short the loser's realtime pacing sleep. Affects wall-clock pacing
  /// only, never responses.
  std::shared_ptr<InterruptFlag> interrupt;
  /// When set, a logical call that exhausts its retries (or dies against an
  /// open breaker) records a `ServiceLostEvent` here before the fault status
  /// is returned — the structured signal the repair layer listens for.
  ServiceLostCollector* lost = nullptr;
  /// Query-level cancellation token. Checked at the top of every retry
  /// round and after every failed attempt: a cancelled call returns
  /// kCancelled immediately — never retried, never backed off, never
  /// hedged, never degraded, never recorded as service loss.
  std::shared_ptr<CancelToken> cancel;
};

/// The reliability decorator: wraps one service's `ServiceCallHandler` with
/// retry/backoff, per-call deadline conversion, circuit breaking, and
/// hedged backup requests, per the shared `ReliabilityContext`.
///
/// Determinism contract (see docs/RELIABILITY.md): the *value* of a
/// successful call — tuples, scores, `latency_ms` — is identical to what
/// the undecorated handler returns for that request identity, because
/// retries change only `ServiceRequest::attempt` and deterministic fault
/// models key success on (identity, attempt). All simulated time the
/// reliability layer adds (backoff, charged deadlines of failed attempts)
/// is accumulated into `ServiceResponse::fault_overhead_ms`, never into
/// `latency_ms`, so the executor's base clock matches the fault-free run.
class ResilientHandler : public ServiceCallHandler {
 public:
  ResilientHandler(std::shared_ptr<ServiceCallHandler> inner,
                   std::string interface_name, ReliabilityContext context);

  /// Runs the retry/hedge loop. Returns the first successful response with
  /// `fault_overhead_ms` set, or: the last fault status once retries are
  /// exhausted (kUnavailable / kDeadlineExceeded — degradable), a
  /// kResourceExhausted status if the attempt budget ran out (never
  /// retried, never degraded), or any other error verbatim.
  Result<ServiceResponse> Call(const ServiceRequest& request) override;

  const std::string& interface_name() const { return name_; }

 private:
  /// One delivery attempt: budget claim, breaker bookkeeping, inner call,
  /// per-call deadline conversion. `*overhead_ms` accumulates charged
  /// deadline time.
  Result<ServiceResponse> AttemptOnce(const ServiceRequest& request,
                                      int attempt, double* overhead_ms);

  /// One possibly-hedged delivery round: primary on the pool, backup inline
  /// after `hedge_delay_ms` real milliseconds, first success wins.
  /// `*attempts_used` reports how many attempt numbers were consumed (1 or
  /// 2) so the retry loop never reuses an attempt number.
  Result<ServiceResponse> HedgedAttempt(const ServiceRequest& request,
                                        int attempt, double* overhead_ms,
                                        int* attempts_used);

  bool hedging_enabled() const {
    return context_.hedge_pool != nullptr &&
           context_.policy.hedge_delay_ms >= 0.0;
  }

  std::shared_ptr<ServiceCallHandler> inner_;
  std::string name_;
  ReliabilityContext context_;
  std::shared_ptr<CircuitBreaker> breaker_;  // null when breaker disabled
};

}  // namespace seco

#endif  // SECO_RELIABILITY_RESILIENT_HANDLER_H_
