#ifndef SECO_RELIABILITY_POLICY_H_
#define SECO_RELIABILITY_POLICY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/status.h"

namespace seco {

/// Capped exponential backoff with deterministic jitter. The jitter for a
/// given (request, attempt) pair is a pure hash — no shared RNG stream — so
/// the simulated milliseconds charged for a retry are bit-identical under
/// any thread schedule.
struct RetryPolicy {
  /// Additional attempts after the first; 0 disables retrying.
  int max_retries = 0;
  /// Backoff before retry i (0-based) is
  /// `min(base * multiplier^i, cap) * (1 ± jitter)`.
  double backoff_base_ms = 50.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 2000.0;
  /// Jitter amplitude as a fraction of the nominal backoff, in [0,1).
  double jitter_fraction = 0.1;
  uint64_t jitter_seed = 0x5EC0;

  /// Simulated milliseconds to back off before retrying attempt
  /// `failed_attempt` of the request identified by `ordinal`.
  double BackoffMs(uint64_t ordinal, int failed_attempt) const {
    double nominal = backoff_base_ms;
    for (int i = 0; i < failed_attempt && nominal < backoff_cap_ms; ++i) {
      nominal *= backoff_multiplier;
    }
    if (nominal > backoff_cap_ms) nominal = backoff_cap_ms;
    SplitMix64 rng(jitter_seed ^ (ordinal * 0x9E3779B97F4A7C15ULL) ^
                   (static_cast<uint64_t>(failed_attempt) * 0xD6E8FEB86659FD93ULL));
    double u = rng.NextDouble();  // [0,1)
    return nominal * (1.0 + jitter_fraction * (2.0 * u - 1.0));
  }
};

/// How an execution should respond to failing services. The default policy
/// is inert (`enabled()` is false): executors then behave exactly as before
/// this layer existed.
struct ReliabilityPolicy {
  RetryPolicy retry;

  /// A successful response whose simulated latency exceeds this is treated
  /// as a timeout: the caller is charged the deadline, the response is
  /// discarded, and the attempt counts as failed. 0 = no per-call deadline.
  double call_deadline_ms = 0.0;

  /// Simulated-clock budget for the whole query; once elapsed simulated
  /// time (including reliability overhead) passes it, remaining service
  /// work is abandoned — degraded to partial answers when `degrade` is set,
  /// an error otherwise. 0 = no query deadline.
  double query_deadline_ms = 0.0;

  /// Consecutive failures of one interface that open its breaker; while
  /// open, calls short-circuit without touching the service. 0 = off.
  int breaker_failure_threshold = 0;
  /// While open, every `breaker_probe_interval`-th short-circuited call is
  /// let through as a probe; a successful probe closes the breaker.
  int breaker_probe_interval = 8;

  /// Real (wall-clock) milliseconds to wait for a primary call before
  /// launching a backup attempt on the thread pool; first success wins.
  /// Negative = hedging off. Hedge outcomes depend on wall-clock timing, so
  /// hedge counters are diagnostic, not deterministic.
  double hedge_delay_ms = -1.0;

  /// When true, a permanently failing service degrades its plan node —
  /// the query completes with partial answers flagged per node — instead
  /// of aborting the whole execution.
  bool degrade = false;

  bool enabled() const {
    return retry.max_retries > 0 || call_deadline_ms > 0.0 ||
           query_deadline_ms > 0.0 || breaker_failure_threshold > 0 ||
           hedge_delay_ms >= 0.0 || degrade;
  }
};

/// Lifecycle phase of a circuit breaker: closed (calls flow), open (calls
/// short-circuit), half-open (open, but the next denied call is due to pass
/// as a probe).
enum class BreakerPhase {
  kClosed,
  kOpen,
  kHalfOpen,
};

const char* BreakerPhaseToString(BreakerPhase phase);

/// Point-in-time state of one interface's breaker, surfaced in
/// `ReliabilityStats` so a tripped breaker is visible even when degradation
/// never fires.
struct CircuitBreakerState {
  std::string interface_name;
  BreakerPhase phase = BreakerPhase::kClosed;
  int trips = 0;                ///< closed→open transitions so far.
  int consecutive_failures = 0;
  int64_t short_circuits = 0;   ///< Calls denied while open.
};

/// A service declared permanently lost during one execution: its handler
/// exhausted retries (or its breaker stayed open). The repair layer turns
/// these into replanning events; without repair they surface as telemetry
/// next to `DegradedStatus`.
struct ServiceLostEvent {
  std::string interface_name;
  uint64_t ordinal = 0;      ///< RequestOrdinal of the first lost request.
  std::string reason;        ///< Final error message.
  bool breaker_open = false; ///< Breaker was open when the loss was declared.
};

/// Thread-safe sink collecting the first `ServiceLostEvent` per interface.
/// Speculative and demand fetches from any thread may record concurrently;
/// only the set of lost *interfaces* is deterministic (which request lost
/// the race is schedule-dependent, so `ordinal`/`reason` are diagnostic).
class ServiceLostCollector {
 public:
  void Record(const ServiceLostEvent& event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.emplace(event.interface_name, event);  // keep the first
  }

  /// Events sorted by interface name.
  std::vector<ServiceLostEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ServiceLostEvent> out;
    out.reserve(events_.size());
    for (const auto& [_, event] : events_) out.push_back(event);
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, ServiceLostEvent> events_;
};

/// Health of one remote backend endpoint, as tracked by a
/// `RemoteBackendClient` (src/net/remote_handler.h). Defined here — not in
/// net/ — so `ReliabilityStats` can carry pool health without a
/// reliability→net dependency.
struct RemoteEndpointHealth {
  std::string endpoint;  ///< "host:port"
  bool evicted = false;
  int consecutive_failures = 0;
  int64_t dials = 0;
  int64_t calls_ok = 0;
  int64_t transport_failures = 0;
  int64_t evictions = 0;  ///< Times this endpoint crossed the threshold.
};

/// Connection-pool and self-healing telemetry of the remote backend path.
/// Wall-clock-dependent (reconnects, evictions and dial contention follow
/// real network timing), so it is *excluded from the wire-encoded answer
/// body* — like `wall_clock_ms` — keeping recovered wire runs byte-identical
/// to fault-free ones.
struct RemotePoolStats {
  int64_t connections_opened = 0;
  int64_t connections_reused = 0;
  int64_t connections_discarded = 0;
  int64_t reconnect_attempts = 0;  ///< Wire-level retries on fresh conns.
  int64_t dial_overflows = 0;      ///< Dials rejected at the dial cap.
  int64_t pings_sent = 0;
  int64_t ping_failures = 0;
  int64_t endpoints_evicted = 0;
  int64_t endpoint_exhaustions = 0;  ///< All-replicas-dead events.
  std::vector<RemoteEndpointHealth> endpoints;

  bool any() const {
    return connections_opened != 0 || connections_reused != 0 ||
           connections_discarded != 0 || reconnect_attempts != 0 ||
           dial_overflows != 0 || pings_sent != 0 || ping_failures != 0 ||
           endpoints_evicted != 0 || endpoint_exhaustions != 0;
  }
};

/// Aggregate reliability telemetry for one execution. Counters are
/// attempt-level and include speculative work, so under concurrency their
/// totals may vary run-to-run; `overhead_ms` is accounted at consumption
/// and is deterministic.
struct ReliabilityStats {
  int64_t attempts = 0;            ///< Delivery attempts issued (incl. hedges).
  int64_t retries = 0;             ///< Re-attempts after a failure.
  int64_t transient_failures = 0;  ///< Attempts that failed with kUnavailable.
  int64_t deadline_hits = 0;       ///< Attempts converted to kDeadlineExceeded.
  int64_t hedges_launched = 0;
  int64_t hedges_won = 0;          ///< Backup finished before the primary.
  int64_t breaker_short_circuits = 0;
  int64_t permanent_failures = 0;  ///< Logical calls that exhausted retries.
  /// Simulated ms spent backing off between attempts (diagnostic).
  double backoff_ms = 0.0;
  /// Simulated ms of reliability overhead (backoff + charged deadlines) on
  /// *consumed* responses; deterministic. Kept out of the base simulated
  /// clock so a recovered run matches the fault-free run bit-for-bit.
  double overhead_ms = 0.0;

  /// Per-interface breaker state at the end of the execution (only
  /// interfaces that were actually called appear). Diagnostic.
  std::vector<CircuitBreakerState> breakers;

  /// Services declared permanently lost, one entry per interface.
  std::vector<ServiceLostEvent> services_lost;

  /// Remote-backend pool health (filled by the shell when a
  /// `RemoteBackendClient` is in play; empty otherwise). NOT wire-encoded —
  /// see `RemotePoolStats`.
  RemotePoolStats remote;

  bool any() const {
    return attempts != 0 || retries != 0 || transient_failures != 0 ||
           deadline_hits != 0 || hedges_launched != 0 ||
           breaker_short_circuits != 0 || permanent_failures != 0;
  }
};

/// Why a plan node returned no (or partial) data. Surfaced per degraded
/// node in `ExecutionResult` / `StreamingResult`.
struct DegradedStatus {
  int node = -1;             ///< Plan node id.
  std::string service;       ///< Interface name of the failing service.
  int failed_bindings = 0;   ///< Input bindings whose fetches failed.
  std::string reason;        ///< Last error message observed.
  /// True when every failure at this node was inherited — piped inputs
  /// missing because an upstream service degraded — rather than the node's
  /// own service misbehaving. Cascaded nodes are not repair candidates:
  /// fixing the upstream fixes them.
  bool cascaded = false;
  /// True when the node was abandoned because the query deadline elapsed.
  /// Deadline degradations are not service losses, so they never trigger
  /// failover either.
  bool query_deadline = false;
};

/// True for error codes that mean "the service misbehaved" — the codes the
/// reliability layer may degrade on. Everything else (bad plan, bad data,
/// exhausted budget, caller cancellation) still aborts: in particular
/// kCancelled is *not* a fault — a cancelled call is never retried, never
/// degraded into a partial answer, and never recorded as service loss
/// (docs/RELIABILITY.md, "Cancellation vs. deadline vs. rejection").
inline bool IsFaultStatus(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Thread-safe attempt budget shared by every handler of one execution.
/// Each delivery attempt — first try, retry, or hedge, demand or
/// speculative — claims one unit, so a retry storm can never exceed the
/// query's `max_calls` no matter how many threads are fetching.
class CallBudget {
 public:
  /// `max_calls < 0` means unlimited. `cancel` (optional) closes the
  /// budget the moment the query is cancelled: no further claims succeed,
  /// so retry storms and speculative fetches racing the cancel cannot
  /// issue new work.
  explicit CallBudget(int64_t max_calls,
                      std::shared_ptr<CancelToken> cancel = nullptr)
      : max_(max_calls), cancel_(std::move(cancel)) {}

  bool TryClaim() {
    if (cancel_ != nullptr && cancel_->cancelled()) return false;
    if (max_ < 0) {
      used_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    int64_t cur = used_.load(std::memory_order_relaxed);
    while (cur < max_) {
      if (used_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// True when a claim failure means "cancelled" rather than "exhausted" —
  /// callers surface kCancelled instead of kResourceExhausted.
  bool closed_by_cancel() const {
    return cancel_ != nullptr && cancel_->cancelled();
  }

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t max_calls() const { return max_; }

 private:
  int64_t max_;
  std::shared_ptr<CancelToken> cancel_;
  std::atomic<int64_t> used_{0};
};

/// Atomic counterpart of `ReliabilityStats`, written concurrently by
/// resilient handlers on any thread and snapshotted once at the end of an
/// execution.
class ReliabilityLedger {
 public:
  std::atomic<int64_t> attempts{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> transient_failures{0};
  std::atomic<int64_t> deadline_hits{0};
  std::atomic<int64_t> hedges_launched{0};
  std::atomic<int64_t> hedges_won{0};
  std::atomic<int64_t> breaker_short_circuits{0};
  std::atomic<int64_t> permanent_failures{0};

  void AddBackoffMs(double ms) {
    double cur = backoff_ms_.load(std::memory_order_relaxed);
    while (!backoff_ms_.compare_exchange_weak(cur, cur + ms,
                                              std::memory_order_relaxed)) {
    }
  }

  /// Counter snapshot; `overhead_ms` is filled in by the executor from
  /// consumed responses.
  ReliabilityStats Snapshot() const {
    ReliabilityStats s;
    s.attempts = attempts.load(std::memory_order_relaxed);
    s.retries = retries.load(std::memory_order_relaxed);
    s.transient_failures = transient_failures.load(std::memory_order_relaxed);
    s.deadline_hits = deadline_hits.load(std::memory_order_relaxed);
    s.hedges_launched = hedges_launched.load(std::memory_order_relaxed);
    s.hedges_won = hedges_won.load(std::memory_order_relaxed);
    s.breaker_short_circuits =
        breaker_short_circuits.load(std::memory_order_relaxed);
    s.permanent_failures = permanent_failures.load(std::memory_order_relaxed);
    s.backoff_ms = backoff_ms_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<double> backoff_ms_{0.0};
};

}  // namespace seco

#endif  // SECO_RELIABILITY_POLICY_H_
