#include "reliability/resilient_handler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace seco {

namespace {

/// Shared state of one hedged round. Owned jointly by the caller and the
/// pool job via shared_ptr, so an abandoned loser can finish after the
/// caller has returned (it is drained at pool teardown at the latest).
struct HedgeState {
  /// 0 = primary still queued, 1 = a pool worker claimed it, 2 = the caller
  /// stole it to run inline. Whoever wins the CAS from 0 executes the call;
  /// the other side must not.
  std::atomic<int> primary_claim{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<ServiceResponse> result{Status::Internal("hedge primary pending")};
};

}  // namespace

ResilientHandler::ResilientHandler(std::shared_ptr<ServiceCallHandler> inner,
                                   std::string interface_name,
                                   ReliabilityContext context)
    : inner_(std::move(inner)),
      name_(std::move(interface_name)),
      context_(std::move(context)) {
  if (context_.breakers != nullptr &&
      context_.policy.breaker_failure_threshold > 0) {
    breaker_ = context_.breakers->GetOrCreate(name_);
  }
}

Result<ServiceResponse> ResilientHandler::AttemptOnce(
    const ServiceRequest& request, int attempt, double* overhead_ms) {
  if (context_.cancel != nullptr && context_.cancel->cancelled()) {
    return context_.cancel->ToStatus();
  }
  if (context_.budget != nullptr && !context_.budget->TryClaim()) {
    if (context_.budget->closed_by_cancel()) {
      return Status::Cancelled("call to '" + name_ +
                               "' abandoned: query cancelled");
    }
    return Status::ResourceExhausted("call budget exhausted while calling '" +
                                     name_ + "'");
  }
  if (context_.ledger != nullptr) {
    context_.ledger->attempts.fetch_add(1, std::memory_order_relaxed);
  }
  ServiceRequest attempt_req = request;
  attempt_req.attempt = attempt;
  Result<ServiceResponse> res = inner_->Call(attempt_req);
  if (!res.ok()) return res;
  ServiceResponse resp = std::move(res).value();
  double deadline = context_.policy.call_deadline_ms;
  if (deadline > 0.0 && resp.latency_ms > deadline) {
    // The caller waited the full deadline before abandoning the attempt;
    // charge that waiting as reliability overhead, not base latency.
    *overhead_ms += deadline;
    return Status::DeadlineExceeded("call to '" + name_ + "' exceeded " +
                                    std::to_string(deadline) + " ms deadline");
  }
  return resp;
}

Result<ServiceResponse> ResilientHandler::HedgedAttempt(
    const ServiceRequest& request, int attempt, double* overhead_ms,
    int* attempts_used) {
  *attempts_used = 1;
  if (context_.cancel != nullptr && context_.cancel->cancelled()) {
    return context_.cancel->ToStatus();
  }
  if (context_.budget != nullptr && !context_.budget->TryClaim()) {
    if (context_.budget->closed_by_cancel()) {
      return Status::Cancelled("call to '" + name_ +
                               "' abandoned: query cancelled");
    }
    return Status::ResourceExhausted("call budget exhausted while calling '" +
                                     name_ + "'");
  }
  ReliabilityLedger* ledger = context_.ledger;
  if (ledger != nullptr) ledger->attempts.fetch_add(1, std::memory_order_relaxed);

  auto state = std::make_shared<HedgeState>();
  ServiceRequest primary_req = request;
  primary_req.attempt = attempt;
  // Capture the inner handler by shared_ptr so the job stays valid even if
  // this wrapper is destroyed before the pool drains.
  std::shared_ptr<ServiceCallHandler> inner = inner_;
  context_.hedge_pool->Submit([state, inner, primary_req] {
    int expected = 0;
    if (!state->primary_claim.compare_exchange_strong(expected, 1)) {
      return;  // the caller stole this attempt and ran it inline
    }
    Result<ServiceResponse> r = inner->Call(primary_req);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result = std::move(r);
      state->done = true;
    }
    state->cv.notify_all();
  });

  auto finish = [this, overhead_ms](Result<ServiceResponse> res)
      -> Result<ServiceResponse> {
    if (!res.ok()) return res;
    ServiceResponse resp = std::move(res).value();
    double deadline = context_.policy.call_deadline_ms;
    if (deadline > 0.0 && resp.latency_ms > deadline) {
      *overhead_ms += deadline;
      return Status::DeadlineExceeded("call to '" + name_ + "' exceeded " +
                                      std::to_string(deadline) +
                                      " ms deadline");
    }
    return resp;
  };

  // Settle for the primary: steal it if still queued (never block on queue
  // position), otherwise wait for the worker that is physically running it.
  auto await_primary = [&]() -> Result<ServiceResponse> {
    int expected = 0;
    if (state->primary_claim.compare_exchange_strong(expected, 2)) {
      Result<ServiceResponse> r = inner_->Call(primary_req);
      return finish(std::move(r));
    }
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
    return finish(std::move(state->result));
  };

  {
    std::unique_lock<std::mutex> lock(state->mu);
    bool primary_done = state->cv.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            context_.policy.hedge_delay_ms),
        [&] { return state->done; });
    if (primary_done) return finish(std::move(state->result));
  }

  // The primary is slow; race a backup attempt inline.
  if (ledger != nullptr) {
    ledger->hedges_launched.fetch_add(1, std::memory_order_relaxed);
  }
  if (context_.budget != nullptr && !context_.budget->TryClaim()) {
    return await_primary();  // no budget for a backup
  }
  *attempts_used = 2;
  if (ledger != nullptr) ledger->attempts.fetch_add(1, std::memory_order_relaxed);
  ServiceRequest backup_req = request;
  backup_req.attempt = attempt + 1;
  Result<ServiceResponse> backup = inner_->Call(backup_req);
  if (backup.ok()) {
    bool primary_pending;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      primary_pending = !state->done;
    }
    if (primary_pending) {
      if (ledger != nullptr) {
        ledger->hedges_won.fetch_add(1, std::memory_order_relaxed);
      }
      if (context_.interrupt != nullptr) {
        // Wake the losing primary out of its realtime pacing sleep, then
        // re-arm the flag. A stray early wakeup of some other pacing sleep
        // is benign: interruption never changes a response.
        context_.interrupt->Trigger();
        context_.interrupt->Reset();
      }
    }
    return finish(std::move(backup));
  }
  // Backup failed; the primary's verdict decides this round.
  return await_primary();
}

Result<ServiceResponse> ResilientHandler::Call(const ServiceRequest& request) {
  const ReliabilityPolicy& policy = context_.policy;
  ReliabilityLedger* ledger = context_.ledger;
  uint64_t ordinal = RequestOrdinal(request);
  double overhead_ms = 0.0;
  Status last_error = Status::Unavailable("no attempt made against '" + name_ +
                                          "'");
  const int max_attempts = policy.retry.max_retries + 1;
  int attempt = 0;
  while (attempt < max_attempts) {
    if (context_.cancel != nullptr && context_.cancel->cancelled()) {
      // Cancelled before this round started: abort without claiming
      // budget, opening breakers, or recording loss.
      return context_.cancel->ToStatus();
    }
    if (breaker_ != nullptr && !breaker_->AllowCall()) {
      if (ledger != nullptr) {
        ledger->breaker_short_circuits.fetch_add(1, std::memory_order_relaxed);
      }
      last_error =
          Status::Unavailable("circuit breaker open for '" + name_ + "'");
      break;  // the breaker has already seen repeated failures: fail fast
    }
    int attempts_used = 1;
    Result<ServiceResponse> res =
        hedging_enabled()
            ? HedgedAttempt(request, attempt, &overhead_ms, &attempts_used)
            : AttemptOnce(request, attempt, &overhead_ms);
    if (res.ok()) {
      if (breaker_ != nullptr) breaker_->RecordSuccess();
      ServiceResponse resp = std::move(res).value();
      resp.fault_overhead_ms += overhead_ms;
      return resp;
    }
    Status s = res.status();
    if (s.code() == StatusCode::kResourceExhausted) {
      return s;  // budget exhaustion aborts: never retried, never degraded
    }
    if (s.code() == StatusCode::kCancelled) {
      return s;  // cancellation aborts: never retried, never degraded
    }
    if (breaker_ != nullptr) breaker_->RecordFailure();
    if (ledger != nullptr) {
      if (s.code() == StatusCode::kUnavailable) {
        ledger->transient_failures.fetch_add(1, std::memory_order_relaxed);
      } else if (s.code() == StatusCode::kDeadlineExceeded) {
        ledger->deadline_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    last_error = std::move(s);
    attempt += attempts_used;
    if (attempt >= max_attempts) break;
    double backoff = policy.retry.BackoffMs(ordinal, attempt - 1);
    overhead_ms += backoff;
    if (ledger != nullptr) {
      ledger->retries.fetch_add(1, std::memory_order_relaxed);
      ledger->AddBackoffMs(backoff);
    }
  }
  if (ledger != nullptr) {
    ledger->permanent_failures.fetch_add(1, std::memory_order_relaxed);
  }
  if (context_.lost != nullptr && IsFaultStatus(last_error)) {
    ServiceLostEvent event;
    event.interface_name = name_;
    event.ordinal = ordinal;
    event.reason = last_error.message();
    event.breaker_open = breaker_ != nullptr && breaker_->open();
    context_.lost->Record(event);
  }
  return last_error;
}

}  // namespace seco
