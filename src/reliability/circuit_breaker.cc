#include "reliability/circuit_breaker.h"

namespace seco {

std::shared_ptr<CircuitBreaker> CircuitBreakerRegistry::GetOrCreate(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(name);
  if (it != breakers_.end()) return it->second;
  auto breaker =
      std::make_shared<CircuitBreaker>(failure_threshold_, probe_interval_);
  breakers_.emplace(name, breaker);
  return breaker;
}

std::vector<std::string> CircuitBreakerRegistry::OpenBreakers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> open;
  for (const auto& [name, breaker] : breakers_) {
    if (breaker->open()) open.push_back(name);
  }
  return open;
}

int CircuitBreakerRegistry::OpenCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int open = 0;
  for (const auto& [name, breaker] : breakers_) {
    if (breaker->open()) ++open;
  }
  return open;
}

std::vector<CircuitBreakerState> CircuitBreakerRegistry::States() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CircuitBreakerState> out;
  out.reserve(breakers_.size());
  for (const auto& [name, breaker] : breakers_) {
    out.push_back(breaker->State(name));  // breakers_ is sorted by name
  }
  return out;
}

const char* BreakerPhaseToString(BreakerPhase phase) {
  switch (phase) {
    case BreakerPhase::kClosed:
      return "closed";
    case BreakerPhase::kOpen:
      return "open";
    case BreakerPhase::kHalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace seco
