#ifndef SECO_RELIABILITY_CIRCUIT_BREAKER_H_
#define SECO_RELIABILITY_CIRCUIT_BREAKER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "reliability/policy.h"

namespace seco {

/// A count-based circuit breaker guarding one service interface.
///
/// `failure_threshold` consecutive failures open the breaker; while open,
/// calls are denied without touching the service, except that every
/// `probe_interval`-th denied call is let through as a probe. A successful
/// call (probe or otherwise) closes the breaker and resets the failure run.
///
/// Count-based rather than time-based on purpose: the repository's clock is
/// simulated, and counting keeps behaviour independent of wall-clock
/// scheduling. Under concurrency the *order* of successes and failures from
/// different threads is schedule-dependent, so breaker state is diagnostic,
/// not part of the determinism contract.
class CircuitBreaker {
 public:
  CircuitBreaker(int failure_threshold, int probe_interval)
      : failure_threshold_(failure_threshold),
        probe_interval_(probe_interval < 1 ? 1 : probe_interval) {}

  /// True if the caller may attempt the service now; false to short-circuit.
  bool AllowCall() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_) return true;
    if (++denied_since_probe_ >= probe_interval_) {
      denied_since_probe_ = 0;
      probing_ = true;  // half-open until the probe reports back
      return true;
    }
    ++short_circuits_;
    return false;
  }

  void RecordSuccess() {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    denied_since_probe_ = 0;
    open_ = false;
    probing_ = false;
  }

  void RecordFailure() {
    std::lock_guard<std::mutex> lock(mu_);
    probing_ = false;
    if (failure_threshold_ <= 0) return;
    if (++consecutive_failures_ >= failure_threshold_ && !open_) {
      open_ = true;
      ++trips_;
    }
  }

  bool open() const {
    std::lock_guard<std::mutex> lock(mu_);
    return open_;
  }

  /// Snapshot for `ReliabilityStats.breakers`.
  CircuitBreakerState State(const std::string& interface_name) const {
    std::lock_guard<std::mutex> lock(mu_);
    CircuitBreakerState s;
    s.interface_name = interface_name;
    s.phase = !open_ ? BreakerPhase::kClosed
                     : (probing_ ? BreakerPhase::kHalfOpen : BreakerPhase::kOpen);
    s.trips = trips_;
    s.consecutive_failures = consecutive_failures_;
    s.short_circuits = short_circuits_;
    return s;
  }

 private:
  mutable std::mutex mu_;
  int failure_threshold_;
  int probe_interval_;
  int consecutive_failures_ = 0;
  int denied_since_probe_ = 0;
  int trips_ = 0;
  int64_t short_circuits_ = 0;
  bool open_ = false;
  bool probing_ = false;  // an admitted probe is in flight
};

/// One breaker per interface name, shared by all handlers of an execution
/// (and across executions if the caller reuses the registry).
class CircuitBreakerRegistry {
 public:
  CircuitBreakerRegistry(int failure_threshold, int probe_interval)
      : failure_threshold_(failure_threshold),
        probe_interval_(probe_interval) {}

  std::shared_ptr<CircuitBreaker> GetOrCreate(const std::string& name);

  /// Names of interfaces whose breaker is currently open.
  std::vector<std::string> OpenBreakers() const;

  /// Number of currently open breakers. Cheap enough to poll: this is the
  /// per-interface health signal the serving layer's degradation ladder
  /// reads when the registry is shared across queries (docs/SERVER.md).
  int OpenCount() const;

  /// State of every breaker, sorted by interface name.
  std::vector<CircuitBreakerState> States() const;

 private:
  int failure_threshold_;
  int probe_interval_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<CircuitBreaker>> breakers_;
};

}  // namespace seco

#endif  // SECO_RELIABILITY_CIRCUIT_BREAKER_H_
