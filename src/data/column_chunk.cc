#include "data/column_chunk.h"

#include <cmath>
#include <cstring>

namespace seco {

namespace {

/// Largest magnitude at which every int64 converts to double exactly; above
/// it, distinct ints can collide after conversion, so int-vs-double columns
/// must fall back rather than compare canonical double bits.
constexpr int64_t kMaxExactInt = int64_t{1} << 53;

/// Canonical bit pattern of a double for equality-by-bits: -0.0 folds into
/// +0.0 (they compare equal as doubles but differ in bits). NaNs are never
/// canonicalized — columns containing them are marked not f64_valid.
int64_t CanonicalBits(double d) {
  if (d == 0.0) d = 0.0;  // -0.0 == 0.0 is true, so this folds the sign out
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

bool NumericFamily(KeyFamily f) {
  return f == KeyFamily::kInt || f == KeyFamily::kNumeric;
}

/// Folds one value's type into the running family of a column; kFallback is
/// terminal (nulls, or a family mix that Compare would reject / that has no
/// shared canonical encoding).
KeyFamily MergeFamily(KeyFamily so_far, ValueType t) {
  switch (t) {
    case ValueType::kInt:
      if (so_far == KeyFamily::kInt || so_far == KeyFamily::kNumeric) {
        return so_far;
      }
      return KeyFamily::kFallback;
    case ValueType::kDouble:
      if (NumericFamily(so_far)) return KeyFamily::kNumeric;
      return KeyFamily::kFallback;
    case ValueType::kString:
      return so_far == KeyFamily::kString ? so_far : KeyFamily::kFallback;
    case ValueType::kBool:
      return so_far == KeyFamily::kBool ? so_far : KeyFamily::kFallback;
    case ValueType::kNull:
      return KeyFamily::kFallback;
  }
  return KeyFamily::kFallback;
}

KeyFamily InitialFamily(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return KeyFamily::kInt;
    case ValueType::kDouble:
      return KeyFamily::kNumeric;
    case ValueType::kString:
      return KeyFamily::kString;
    case ValueType::kBool:
      return KeyFamily::kBool;
    case ValueType::kNull:
      return KeyFamily::kFallback;
  }
  return KeyFamily::kFallback;
}

}  // namespace

std::optional<PairMode> ComparablePairMode(const KeyColumn& a,
                                           const KeyColumn& b) {
  if (a.family == KeyFamily::kFallback || b.family == KeyFamily::kFallback) {
    return std::nullopt;
  }
  if (a.family == b.family) {
    switch (a.family) {
      case KeyFamily::kInt:
      case KeyFamily::kBool:
        return PairMode::kI64;
      case KeyFamily::kNumeric:
        if (a.f64_valid && b.f64_valid) return PairMode::kF64Bits;
        return std::nullopt;
      case KeyFamily::kString:
        return PairMode::kDict;
      case KeyFamily::kFallback:
        return std::nullopt;
    }
  }
  // Cross-family: only int-vs-numeric is comparable (via exact double
  // bits). Anything else would raise a type error per pair in the scalar
  // semantics, which the scalar path must surface.
  if (NumericFamily(a.family) && NumericFamily(b.family) && a.f64_valid &&
      b.f64_valid) {
    return PairMode::kF64Bits;
  }
  return std::nullopt;
}

std::optional<ScalarKey> CanonicalScalarKey(const Value& v,
                                            KeyDictionary* dict) {
  ScalarKey key;
  switch (v.type()) {
    case ValueType::kInt: {
      int64_t i = v.AsInt();
      key.family = KeyFamily::kInt;
      key.i64 = i;
      key.f64_valid = i <= kMaxExactInt && i >= -kMaxExactInt;
      if (key.f64_valid) key.f64_bits = CanonicalBits(static_cast<double>(i));
      return key;
    }
    case ValueType::kDouble: {
      double d = v.AsDouble();
      key.family = KeyFamily::kNumeric;
      key.f64_valid = !std::isnan(d);
      if (key.f64_valid) key.f64_bits = CanonicalBits(d);
      return key;
    }
    case ValueType::kString: {
      if (dict == nullptr) return std::nullopt;
      std::optional<uint32_t> code = dict->Intern(v.AsString());
      if (!code.has_value()) return std::nullopt;
      key.family = KeyFamily::kString;
      key.code = *code;
      return key;
    }
    case ValueType::kBool:
      key.family = KeyFamily::kBool;
      key.i64 = v.AsBool() ? 1 : 0;
      return key;
    case ValueType::kNull:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<PairMode> ComparableScalarMode(const ScalarKey& k,
                                             const KeyColumn& col) {
  KeyColumn probe;
  probe.family = k.family;
  probe.f64_valid = k.f64_valid;
  return ComparablePairMode(probe, col);
}

void ScalarKeyBatch::Add(const std::optional<ScalarKey>& k) {
  if (!k.has_value()) {
    valid = false;
    return;
  }
  if (!valid) return;
  if (!any) {
    any = true;
    family = k->family;
  } else if (family != k->family) {
    bool numeric_mix =
        (family == KeyFamily::kInt || family == KeyFamily::kNumeric) &&
        (k->family == KeyFamily::kInt || k->family == KeyFamily::kNumeric);
    if (!numeric_mix) {
      valid = false;
      return;
    }
    family = KeyFamily::kNumeric;
  }
  // Each representation stays aligned with the batch only while every key
  // feeds it; the first key that can't drops that representation for good.
  if (k->family == KeyFamily::kInt || k->family == KeyFamily::kBool) {
    if (i64_ok) i64.push_back(k->i64);
  } else {
    i64_ok = false;
  }
  if (k->family != KeyFamily::kString && k->f64_valid) {
    if (f64_ok) f64_bits.push_back(k->f64_bits);
  } else {
    f64_ok = false;
  }
  codes.push_back(k->code);
}

KeyColumn ScalarKeyBatch::View() const {
  KeyColumn c;
  c.family = (valid && any) ? family : KeyFamily::kFallback;
  if ((c.family == KeyFamily::kInt || c.family == KeyFamily::kBool) &&
      !i64_ok) {
    c.family = KeyFamily::kFallback;
  }
  c.i64 = i64_ok ? i64.data() : nullptr;
  c.f64_bits = f64_ok ? f64_bits.data() : nullptr;
  c.f64_valid = f64_ok;
  c.codes = codes.data();
  c.size = codes.size();
  return c;
}

ColumnChunk ColumnChunk::Decode(const std::vector<Tuple>& tuples,
                                const std::vector<double>& scores,
                                const AttrPath& key_path,
                                KeyDictionary* dict) {
  ColumnChunk out;
  size_t n = tuples.size();
  out.num_rows_ = n;

  double* score_col = out.arena_.Allocate<double>(n);
  int32_t* row_ids = out.arena_.Allocate<int32_t>(n);
  for (size_t i = 0; i < n; ++i) {
    score_col[i] = i < scores.size() ? scores[i] : 0.0;
    row_ids[i] = static_cast<int32_t>(i);
  }
  out.scores_ = score_col;
  out.row_ids_ = row_ids;
  out.key_.size = n;
  out.key_.family = KeyFamily::kFallback;
  if (n == 0) return out;

  // Pass 1: classify. The whole column must land in one kernel-comparable
  // family; repeating-group keys keep their existential semantics and stay
  // on the scalar path.
  KeyFamily family = KeyFamily::kFallback;
  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = tuples[i];
    if (key_path.is_sub_attribute() || key_path.attr_index < 0 ||
        key_path.attr_index >= t.num_slots() ||
        !t.IsAtomic(key_path.attr_index)) {
      return out;
    }
    ValueType vt = t.AtomicAt(key_path.attr_index).type();
    family = i == 0 ? InitialFamily(vt) : MergeFamily(family, vt);
    if (family == KeyFamily::kFallback) return out;
  }

  // Pass 2: fill the canonical arrays for the family.
  switch (family) {
    case KeyFamily::kInt: {
      int64_t* i64 = out.arena_.Allocate<int64_t>(n);
      int64_t* bits = out.arena_.Allocate<int64_t>(n);
      bool exact = true;
      for (size_t i = 0; i < n; ++i) {
        int64_t v = tuples[i].AtomicAt(key_path.attr_index).AsInt();
        i64[i] = v;
        exact = exact && v <= kMaxExactInt && v >= -kMaxExactInt;
        if (exact) bits[i] = CanonicalBits(static_cast<double>(v));
      }
      out.key_.i64 = i64;
      out.key_.f64_valid = exact;
      if (exact) out.key_.f64_bits = bits;
      break;
    }
    case KeyFamily::kNumeric: {
      int64_t* bits = out.arena_.Allocate<int64_t>(n);
      bool valid = true;
      for (size_t i = 0; i < n; ++i) {
        const Value& v = tuples[i].AtomicAt(key_path.attr_index);
        if (v.type() == ValueType::kInt) {
          int64_t iv = v.AsInt();
          valid = valid && iv <= kMaxExactInt && iv >= -kMaxExactInt;
          if (valid) bits[i] = CanonicalBits(static_cast<double>(iv));
        } else {
          double d = v.AsDouble();
          valid = valid && !std::isnan(d);
          if (valid) bits[i] = CanonicalBits(d);
        }
      }
      if (!valid) return out;  // NaN or inexact int: scalar path
      out.key_.f64_valid = true;
      out.key_.f64_bits = bits;
      break;
    }
    case KeyFamily::kString: {
      if (dict == nullptr) return out;
      uint32_t* codes = out.arena_.Allocate<uint32_t>(n);
      for (size_t i = 0; i < n; ++i) {
        std::optional<uint32_t> code =
            dict->Intern(tuples[i].AtomicAt(key_path.attr_index).AsString());
        if (!code.has_value()) return out;  // dictionary overflow
        codes[i] = *code;
      }
      out.key_.codes = codes;
      break;
    }
    case KeyFamily::kBool: {
      int64_t* i64 = out.arena_.Allocate<int64_t>(n);
      for (size_t i = 0; i < n; ++i) {
        i64[i] = tuples[i].AtomicAt(key_path.attr_index).AsBool() ? 1 : 0;
      }
      out.key_.i64 = i64;
      break;
    }
    case KeyFamily::kFallback:
      return out;
  }
  out.key_.family = family;
  return out;
}

}  // namespace seco
