#ifndef SECO_DATA_KERNELS_H_
#define SECO_DATA_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace seco {
namespace simd {

/// The kernel implementations compiled into this binary. Scalar is always
/// present and is the reference: every SIMD variant must produce the exact
/// same output in the exact same order, so dispatch is invisible to results.
enum class Kernel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* KernelName(Kernel k);

/// The kernel calls dispatch to right now: the best ISA the CPU supports
/// among those compiled in, unless overridden by `SetKernelOverride` or the
/// `SECO_SIMD` environment variable ("off"/"scalar", "sse2", "avx2").
Kernel ActiveKernel();

/// Forces dispatch to a specific kernel (tests and benches compare variants
/// in-process). Requests for a kernel that is not compiled in or not
/// supported by the CPU degrade to the best available one. nullopt restores
/// automatic detection.
void SetKernelOverride(std::optional<Kernel> k);

/// True if the AVX2 kernel translation unit was compiled in and the CPU
/// supports it (the override may still route around it).
bool Avx2Available();

/// One matching (row-of-a, row-of-b) pair.
struct RowPair {
  int32_t a;
  int32_t b;
};

/// Appends every (i, j) with a[i] == b[j] to `out`, i-major with j ascending
/// — the order of the scalar nested loop. Returns pairs appended.
size_t MatchEqPairsI64(const int64_t* a, size_t na, const int64_t* b,
                       size_t nb, std::vector<RowPair>* out);
size_t MatchEqPairsU32(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, std::vector<RowPair>* out);

/// Appends every j with b[j] == key to `out`, ascending. Returns matches.
size_t MatchKeyI64(int64_t key, const int64_t* b, size_t nb,
                   std::vector<int32_t>* out);
size_t MatchKeyU32(uint32_t key, const uint32_t* b, size_t nb,
                   std::vector<int32_t>* out);

/// out[i] = wa * a[i] + wb * b[i], computed as two multiplies and an add in
/// every variant (never an FMA), so the bits match the executors' scalar
/// `wx * sx + wy * sy` expression exactly.
void CombineScores(double wa, const double* a, double wb, const double* b,
                   size_t n, double* out);

/// out[i] = wa * a + wb * b[i]; the broadcast form used where one side of
/// the combination is a single tuple (pipe joins, top-k new-tuple scans).
void CombineScores1(double wa, double a, double wb, const double* b, size_t n,
                    double* out);

/// out[i] = (a[i] == b[i]) ? 1 : 0 — elementwise equality of two aligned
/// key columns (the materializing engine's row-filter form).
void EqualMaskI64(const int64_t* a, const int64_t* b, size_t n, uint8_t* out);
void EqualMaskU32(const uint32_t* a, const uint32_t* b, size_t n,
                  uint8_t* out);

}  // namespace simd
}  // namespace seco

#endif  // SECO_DATA_KERNELS_H_
