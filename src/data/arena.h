#ifndef SECO_DATA_ARENA_H_
#define SECO_DATA_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace seco {

/// A bump allocator backing one decoded column chunk. Allocations live until
/// the arena is destroyed — there is no per-object free, which is exactly the
/// lifetime of a chunk's columns: decoded once at admission, dropped with the
/// owning `ColumnChunk`. Blocks grow geometrically so a chunk of any size
/// costs O(log size) mallocs.
class Arena {
 public:
  explicit Arena(size_t first_block_bytes = 4096)
      : next_block_bytes_(first_block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` objects of trivially destructible T.
  /// The arena never runs destructors, so non-trivial types are forbidden.
  template <typename T>
  T* Allocate(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    if (n == 0) return nullptr;
    size_t bytes = n * sizeof(T);
    uintptr_t p = (cursor_ + alignof(T) - 1) & ~(uintptr_t{alignof(T)} - 1);
    if (p + bytes > limit_) {
      NewBlock(bytes + alignof(T));
      p = (cursor_ + alignof(T) - 1) & ~(uintptr_t{alignof(T)} - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<T*>(p);
  }

  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  void NewBlock(size_t min_bytes) {
    size_t size = next_block_bytes_;
    while (size < min_bytes) size *= 2;
    next_block_bytes_ = size * 2;
    blocks_.push_back(std::make_unique<char[]>(size));
    cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + size;
    bytes_allocated_ += size;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t next_block_bytes_;
  size_t bytes_allocated_ = 0;
};

}  // namespace seco

#endif  // SECO_DATA_ARENA_H_
