#ifndef SECO_DATA_KERNELS_INTERNAL_H_
#define SECO_DATA_KERNELS_INTERNAL_H_

#include "data/kernels.h"

namespace seco {
namespace simd {

/// The per-ISA function table dispatch indexes into. Shared between
/// kernels.cc (scalar + SSE2 + dispatch) and kernels_avx2.cc (the only TU
/// built with -mavx2, so AVX2 code never leaks into baseline code paths).
struct KernelTable {
  size_t (*match_eq_pairs_i64)(const int64_t*, size_t, const int64_t*, size_t,
                               std::vector<RowPair>*);
  size_t (*match_eq_pairs_u32)(const uint32_t*, size_t, const uint32_t*,
                               size_t, std::vector<RowPair>*);
  size_t (*match_key_i64)(int64_t, const int64_t*, size_t,
                          std::vector<int32_t>*);
  size_t (*match_key_u32)(uint32_t, const uint32_t*, size_t,
                          std::vector<int32_t>*);
  void (*combine_scores)(double, const double*, double, const double*, size_t,
                         double*);
  void (*combine_scores1)(double, double, double, const double*, size_t,
                          double*);
  void (*equal_mask_i64)(const int64_t*, const int64_t*, size_t, uint8_t*);
  void (*equal_mask_u32)(const uint32_t*, const uint32_t*, size_t, uint8_t*);
};

#if defined(SECO_HAVE_AVX2_TU)
/// Defined in kernels_avx2.cc.
extern const KernelTable kAvx2Table;
#endif

}  // namespace simd
}  // namespace seco

#endif  // SECO_DATA_KERNELS_INTERNAL_H_
