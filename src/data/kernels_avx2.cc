// AVX2 variants of the columnar kernels. This is the only translation unit
// compiled with -mavx2 (see src/data/CMakeLists.txt); it is reached solely
// through the dispatch table, after __builtin_cpu_supports("avx2") verified
// the ISA at runtime. Note: -mfma is deliberately absent and score
// combination uses explicit mul+mul+add, so floating-point results are
// bit-identical to the scalar reference.

#include "data/kernels_internal.h"

#if !defined(SECO_HAVE_AVX2_TU)
#error "kernels_avx2.cc must be compiled with SECO_HAVE_AVX2_TU defined"
#endif

#include <immintrin.h>

namespace seco {
namespace simd {

namespace {

size_t Avx2MatchEqPairsI64(const int64_t* a, size_t na, const int64_t* b,
                           size_t nb, std::vector<RowPair>* out) {
  size_t found = 0;
  for (size_t i = 0; i < na; ++i) {
    __m256i va = _mm256_set1_epi64x(a[i]);
    size_t j = 0;
    for (; j + 4 <= nb; j += 4) {
      __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      int m = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)));
      while (m != 0) {
        int bit = __builtin_ctz(m);
        out->push_back(RowPair{static_cast<int32_t>(i),
                               static_cast<int32_t>(j + bit)});
        ++found;
        m &= m - 1;
      }
    }
    for (; j < nb; ++j) {
      if (b[j] == a[i]) {
        out->push_back(
            RowPair{static_cast<int32_t>(i), static_cast<int32_t>(j)});
        ++found;
      }
    }
  }
  return found;
}

size_t Avx2MatchEqPairsU32(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, std::vector<RowPair>* out) {
  size_t found = 0;
  for (size_t i = 0; i < na; ++i) {
    __m256i va = _mm256_set1_epi32(static_cast<int32_t>(a[i]));
    size_t j = 0;
    for (; j + 8 <= nb; j += 8) {
      __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      int m = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
      while (m != 0) {
        int bit = __builtin_ctz(m);
        out->push_back(RowPair{static_cast<int32_t>(i),
                               static_cast<int32_t>(j + bit)});
        ++found;
        m &= m - 1;
      }
    }
    for (; j < nb; ++j) {
      if (b[j] == a[i]) {
        out->push_back(
            RowPair{static_cast<int32_t>(i), static_cast<int32_t>(j)});
        ++found;
      }
    }
  }
  return found;
}

size_t Avx2MatchKeyI64(int64_t key, const int64_t* b, size_t nb,
                       std::vector<int32_t>* out) {
  size_t found = 0;
  __m256i vk = _mm256_set1_epi64x(key);
  size_t j = 0;
  for (; j + 4 <= nb; j += 4) {
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    int m =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(vk, vb)));
    while (m != 0) {
      int bit = __builtin_ctz(m);
      out->push_back(static_cast<int32_t>(j + bit));
      ++found;
      m &= m - 1;
    }
  }
  for (; j < nb; ++j) {
    if (b[j] == key) {
      out->push_back(static_cast<int32_t>(j));
      ++found;
    }
  }
  return found;
}

size_t Avx2MatchKeyU32(uint32_t key, const uint32_t* b, size_t nb,
                       std::vector<int32_t>* out) {
  size_t found = 0;
  __m256i vk = _mm256_set1_epi32(static_cast<int32_t>(key));
  size_t j = 0;
  for (; j + 8 <= nb; j += 8) {
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    int m =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(vk, vb)));
    while (m != 0) {
      int bit = __builtin_ctz(m);
      out->push_back(static_cast<int32_t>(j + bit));
      ++found;
      m &= m - 1;
    }
  }
  for (; j < nb; ++j) {
    if (b[j] == key) {
      out->push_back(static_cast<int32_t>(j));
      ++found;
    }
  }
  return found;
}

void Avx2CombineScores(double wa, const double* a, double wb, const double* b,
                       size_t n, double* out) {
  __m256d vwa = _mm256_set1_pd(wa);
  __m256d vwb = _mm256_set1_pd(wb);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d va = _mm256_mul_pd(vwa, _mm256_loadu_pd(a + i));
    __m256d vb = _mm256_mul_pd(vwb, _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(va, vb));
  }
  for (; i < n; ++i) {
    out[i] = wa * a[i] + wb * b[i];
  }
}

void Avx2CombineScores1(double wa, double a, double wb, const double* b,
                        size_t n, double* out) {
  __m256d vwaa = _mm256_mul_pd(_mm256_set1_pd(wa), _mm256_set1_pd(a));
  __m256d vwb = _mm256_set1_pd(wb);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vb = _mm256_mul_pd(vwb, _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(vwaa, vb));
  }
  for (; i < n; ++i) {
    out[i] = wa * a + wb * b[i];
  }
}

void Avx2EqualMaskI64(const int64_t* a, const int64_t* b, size_t n,
                      uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    int m =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)));
    for (int lane = 0; lane < 4; ++lane) {
      out[i + lane] = static_cast<uint8_t>((m >> lane) & 1);
    }
  }
  for (; i < n; ++i) {
    out[i] = a[i] == b[i] ? 1 : 0;
  }
}

void Avx2EqualMaskU32(const uint32_t* a, const uint32_t* b, size_t n,
                      uint8_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    int m =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
    for (int lane = 0; lane < 8; ++lane) {
      out[i + lane] = static_cast<uint8_t>((m >> lane) & 1);
    }
  }
  for (; i < n; ++i) {
    out[i] = a[i] == b[i] ? 1 : 0;
  }
}

}  // namespace

const KernelTable kAvx2Table = {
    &Avx2MatchEqPairsI64, &Avx2MatchEqPairsU32, &Avx2MatchKeyI64,
    &Avx2MatchKeyU32,     &Avx2CombineScores,   &Avx2CombineScores1,
    &Avx2EqualMaskI64,    &Avx2EqualMaskU32,
};

}  // namespace simd
}  // namespace seco
