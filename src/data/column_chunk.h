#ifndef SECO_DATA_COLUMN_CHUNK_H_
#define SECO_DATA_COLUMN_CHUNK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/arena.h"
#include "data/kernels.h"
#include "service/schema.h"
#include "service/tuple.h"

namespace seco {

/// Interns join-key strings into dense uint32 codes so string equality
/// becomes integer equality. Codes are only comparable within ONE dictionary,
/// so the two sides of a join must share an instance (the executor owns it).
/// A full dictionary stops interning; affected chunks fall back to the
/// scalar predicate path — never to wrong answers.
class KeyDictionary {
 public:
  explicit KeyDictionary(size_t capacity = size_t{1} << 16)
      : capacity_(capacity) {}

  /// The code for `s`, interning it if new; nullopt once the dictionary is
  /// at capacity and `s` is unseen.
  std::optional<uint32_t> Intern(const std::string& s) {
    auto it = codes_.find(s);
    if (it != codes_.end()) return it->second;
    if (codes_.size() >= capacity_) {
      overflowed_ = true;
      return std::nullopt;
    }
    uint32_t code = static_cast<uint32_t>(codes_.size());
    codes_.emplace(s, code);
    return code;
  }

  size_t size() const { return codes_.size(); }
  bool overflowed() const { return overflowed_; }

 private:
  std::unordered_map<std::string, uint32_t> codes_;
  size_t capacity_;
  bool overflowed_ = false;
};

/// The dynamic type family of a decoded key column. Kernels only compare
/// columns whose families make `Value::Compare(kEq, ...)` equivalent to an
/// integer comparison of the canonical encodings; anything else (nulls,
/// repeating groups, mixed families, NaN, huge ints next to doubles,
/// dictionary overflow) is `kFallback` and takes the scalar predicate.
enum class KeyFamily : uint8_t {
  kInt = 0,   // every key is kInt
  kNumeric,   // kInt/kDouble mix; comparable via canonical double bits
  kString,    // every key is kString, interned in the shared dictionary
  kBool,      // every key is kBool, stored as 0/1 in i64
  kFallback,  // not kernel-comparable; use the scalar path
};

/// One decoded key column. Array validity by family:
///   kInt     -> i64 always; f64_bits iff f64_valid (all |v| <= 2^53)
///   kNumeric -> f64_bits iff f64_valid (no NaN, ints exactly representable)
///   kString  -> codes
///   kBool    -> i64 (0/1)
/// All arrays live in the owning ColumnChunk's arena.
struct KeyColumn {
  KeyFamily family = KeyFamily::kFallback;
  const int64_t* i64 = nullptr;
  const int64_t* f64_bits = nullptr;
  const uint32_t* codes = nullptr;
  bool f64_valid = false;
  size_t size = 0;
};

/// Which canonical arrays a kernel should compare for a pair of columns.
enum class PairMode : uint8_t { kI64, kF64Bits, kDict };

/// The kernel mode under which comparing `a`'s and `b`'s canonical arrays is
/// *exactly* `Value::Compare(kEq)` per row pair — including the property
/// that no row pair could produce a type error. nullopt: scalar path.
/// kDict requires both columns' codes to come from one shared dictionary;
/// that is the caller's contract, not checked here.
std::optional<PairMode> ComparablePairMode(const KeyColumn& a,
                                           const KeyColumn& b);

/// The canonical encoding of a single join-key value, for key-vs-column
/// scans (pipe joins, streaming joins, top-k incremental buffers).
struct ScalarKey {
  KeyFamily family = KeyFamily::kFallback;
  int64_t i64 = 0;
  int64_t f64_bits = 0;
  uint32_t code = 0;
  bool f64_valid = false;
};

/// Canonicalizes one Value; nullopt when the value is not kernel-encodable
/// (null, or a new string once `dict` is full).
std::optional<ScalarKey> CanonicalScalarKey(const Value& v,
                                            KeyDictionary* dict);

/// Kernel mode for matching `k` against column `col`; nullopt: scalar path.
std::optional<PairMode> ComparableScalarMode(const ScalarKey& k,
                                             const KeyColumn& col);

/// Accumulates canonical scalar keys into contiguous arrays so a batch of
/// heterogeneous rows (streaming partials, top-k buffers) can serve as the
/// haystack of a key-scan kernel. Any non-encodable key poisons the batch:
/// `View()` then reports kFallback and callers take the scalar path.
struct ScalarKeyBatch {
  bool valid = true;
  bool any = false;
  KeyFamily family = KeyFamily::kFallback;
  bool i64_ok = true;  // i64 array aligned with every key so far
  bool f64_ok = true;  // f64_bits array aligned and NaN/precision-clean
  std::vector<int64_t> i64;
  std::vector<int64_t> f64_bits;
  std::vector<uint32_t> codes;

  void Clear() { *this = ScalarKeyBatch(); }
  void Add(const std::optional<ScalarKey>& k);
  /// A KeyColumn view over the accumulated keys, for pair-mode checks and
  /// kernel scans. Arrays stay valid until the next Add/Clear.
  KeyColumn View() const;
};

/// A service chunk decoded once, at admission, into flat columns: the
/// canonicalized join-key column, the score column padded with 0.0 exactly
/// as the executors pad missing scores, and a row-id column mapping each
/// column row back to the owning Tuple for answer materialization. All
/// storage lives in a per-chunk bump arena; the views stay valid for the
/// lifetime of the ColumnChunk and never outlive the source's tuple storage.
class ColumnChunk {
 public:
  ColumnChunk() = default;
  ColumnChunk(ColumnChunk&&) = default;
  ColumnChunk& operator=(ColumnChunk&&) = default;

  /// Decodes `tuples`/`scores` (a `Chunk`'s payload) with the join key at
  /// `key_path`. String keys intern into `dict` (may be null: string keys
  /// then fall back). Never fails: undecodable keys yield a kFallback
  /// column; scores and row ids are always materialized.
  static ColumnChunk Decode(const std::vector<Tuple>& tuples,
                            const std::vector<double>& scores,
                            const AttrPath& key_path, KeyDictionary* dict);

  const KeyColumn& key() const { return key_; }
  /// `scores()[i]` is the executors' `i < scores.size() ? scores[i] : 0.0`.
  const double* scores() const { return scores_; }
  /// `row_ids()[i]` indexes the owning chunk's `tuples` vector.
  const int32_t* row_ids() const { return row_ids_; }
  size_t num_rows() const { return num_rows_; }
  bool key_fallback() const { return key_.family == KeyFamily::kFallback; }

 private:
  Arena arena_;
  KeyColumn key_;
  const double* scores_ = nullptr;
  const int32_t* row_ids_ = nullptr;
  size_t num_rows_ = 0;
};

/// Per-run columnar execution counters, merged up into `JoinExecution` /
/// `StreamingResult` and printed by seco_shell.
struct ColumnarStats {
  long long chunks_decoded = 0;
  /// Chunks whose key column is kFallback (scalar predicate still correct).
  long long decode_fallbacks = 0;
  /// Batches (tiles / buffer scans / row blocks) routed through a kernel
  /// vs. taken by the scalar tree-walk path.
  long long kernel_batches = 0;
  long long scalar_batches = 0;
  /// Candidate rows compared in each mode (tile: |X| * |Y|).
  long long kernel_rows = 0;
  long long scalar_rows = 0;
  /// Wall time spent inside kernel batches, for rows/sec reporting.
  double kernel_ns = 0.0;

  void Merge(const ColumnarStats& o) {
    chunks_decoded += o.chunks_decoded;
    decode_fallbacks += o.decode_fallbacks;
    kernel_batches += o.kernel_batches;
    scalar_batches += o.scalar_batches;
    kernel_rows += o.kernel_rows;
    scalar_rows += o.scalar_rows;
    kernel_ns += o.kernel_ns;
  }

  double KernelRowsPerSec() const {
    if (kernel_ns <= 0.0) return 0.0;
    return static_cast<double>(kernel_rows) * 1e9 / kernel_ns;
  }
};

/// Identifies the join-key attribute on each side of a binary join, opting
/// that executor into the columnar fast path. The executor's predicate MUST
/// be equality of exactly these two attributes (`Value::Compare(kEq)`
/// semantics): kernels replace the predicate only on chunks proven
/// equivalent, and everything else falls back to calling it.
struct ColumnJoinSpec {
  AttrPath x;
  AttrPath y;
};

}  // namespace seco

#endif  // SECO_DATA_COLUMN_CHUNK_H_
