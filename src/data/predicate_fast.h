#ifndef SECO_DATA_PREDICATE_FAST_H_
#define SECO_DATA_PREDICATE_FAST_H_

#include "common/result.h"
#include "query/bound_query.h"
#include "service/tuple.h"

namespace seco {

/// True iff every clause of `group` joins atomic paths between the group's
/// two endpoint atoms. For such groups the oracle's InstanceSearch has zero
/// repeating groups to enumerate, so `EvalAtomicJoinGroup` below is exactly
/// equivalent to `SatisfiesJoinGroup` — minus the per-call allocations
/// (atom vector, std::function, assignment map).
inline bool JoinGroupAllAtomic(const BoundJoinGroup& group) {
  if (group.clauses.empty()) return true;
  int from_atom = group.clauses[0].from_atom;
  int to_atom = group.clauses[0].to_atom;
  for (const JoinClause& c : group.clauses) {
    if (c.from_path.is_sub_attribute() || c.to_path.is_sub_attribute()) {
      return false;
    }
    if ((c.from_atom != from_atom && c.from_atom != to_atom) ||
        (c.to_atom != from_atom && c.to_atom != to_atom)) {
      return false;
    }
  }
  return true;
}

/// Evaluates an all-atomic join group (`JoinGroupAllAtomic` must hold):
/// the clauses are conjoined over direct attribute values, with the same
/// comparison results and error statuses as the oracle.
inline Result<bool> EvalAtomicJoinGroup(const BoundJoinGroup& group,
                                        const Tuple& from_tuple,
                                        const Tuple& to_tuple) {
  if (group.clauses.empty()) return true;
  int from_atom = group.clauses[0].from_atom;
  for (const JoinClause& c : group.clauses) {
    const Tuple& lhs = c.from_atom == from_atom ? from_tuple : to_tuple;
    const Tuple& rhs = c.to_atom == from_atom ? from_tuple : to_tuple;
    SECO_ASSIGN_OR_RETURN(
        bool ok, lhs.ValueAt(c.from_path).Compare(c.op, rhs.ValueAt(c.to_path)));
    if (!ok) return false;
  }
  return true;
}

/// True iff the group is one atomic-path equality clause — the shape the
/// columnar kernels accelerate end to end.
inline bool IsAtomicEqJoinGroup(const BoundJoinGroup& group) {
  return group.clauses.size() == 1 &&
         group.clauses[0].op == Comparator::kEq && JoinGroupAllAtomic(group);
}

}  // namespace seco

#endif  // SECO_DATA_PREDICATE_FAST_H_
