#include "data/kernels_internal.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace seco {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. Compiled unconditionally; every SIMD variant is
// checked against these bit-for-bit by tests/columnar_kernels_test.cc.
// ---------------------------------------------------------------------------

size_t ScalarMatchEqPairsI64(const int64_t* a, size_t na, const int64_t* b,
                             size_t nb, std::vector<RowPair>* out) {
  size_t found = 0;
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      if (a[i] == b[j]) {
        out->push_back(
            RowPair{static_cast<int32_t>(i), static_cast<int32_t>(j)});
        ++found;
      }
    }
  }
  return found;
}

size_t ScalarMatchEqPairsU32(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb, std::vector<RowPair>* out) {
  size_t found = 0;
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      if (a[i] == b[j]) {
        out->push_back(
            RowPair{static_cast<int32_t>(i), static_cast<int32_t>(j)});
        ++found;
      }
    }
  }
  return found;
}

size_t ScalarMatchKeyI64(int64_t key, const int64_t* b, size_t nb,
                         std::vector<int32_t>* out) {
  size_t found = 0;
  for (size_t j = 0; j < nb; ++j) {
    if (b[j] == key) {
      out->push_back(static_cast<int32_t>(j));
      ++found;
    }
  }
  return found;
}

size_t ScalarMatchKeyU32(uint32_t key, const uint32_t* b, size_t nb,
                         std::vector<int32_t>* out) {
  size_t found = 0;
  for (size_t j = 0; j < nb; ++j) {
    if (b[j] == key) {
      out->push_back(static_cast<int32_t>(j));
      ++found;
    }
  }
  return found;
}

void ScalarCombineScores(double wa, const double* a, double wb,
                         const double* b, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = wa * a[i] + wb * b[i];
  }
}

void ScalarCombineScores1(double wa, double a, double wb, const double* b,
                          size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = wa * a + wb * b[i];
  }
}

void ScalarEqualMaskI64(const int64_t* a, const int64_t* b, size_t n,
                        uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] == b[i] ? 1 : 0;
  }
}

void ScalarEqualMaskU32(const uint32_t* a, const uint32_t* b, size_t n,
                        uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] == b[i] ? 1 : 0;
  }
}

constexpr KernelTable kScalarTable = {
    &ScalarMatchEqPairsI64, &ScalarMatchEqPairsU32, &ScalarMatchKeyI64,
    &ScalarMatchKeyU32,     &ScalarCombineScores,   &ScalarCombineScores1,
    &ScalarEqualMaskI64,    &ScalarEqualMaskU32,
};

// ---------------------------------------------------------------------------
// SSE2 kernels. SSE2 is part of the x86-64 baseline, so these compile
// whenever the target is x86-64 — no extra flags, no separate TU.
// ---------------------------------------------------------------------------
#if defined(__SSE2__)

/// 64-bit lane equality without SSE4.1's cmpeq_epi64: compare 32-bit halves,
/// then AND each half with its partner so a lane is all-ones iff both halves
/// matched.
inline __m128i CmpEq64(__m128i a, __m128i b) {
  __m128i t = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(t, _mm_shuffle_epi32(t, _MM_SHUFFLE(2, 3, 0, 1)));
}

size_t Sse2MatchKeyI64(int64_t key, const int64_t* b, size_t nb,
                       std::vector<int32_t>* out) {
  size_t found = 0;
  __m128i vk = _mm_set1_epi64x(key);
  size_t j = 0;
  for (; j + 2 <= nb; j += 2) {
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    int m = _mm_movemask_pd(_mm_castsi128_pd(CmpEq64(vk, vb)));
    while (m != 0) {
      int bit = __builtin_ctz(m);
      out->push_back(static_cast<int32_t>(j + bit));
      ++found;
      m &= m - 1;
    }
  }
  for (; j < nb; ++j) {
    if (b[j] == key) {
      out->push_back(static_cast<int32_t>(j));
      ++found;
    }
  }
  return found;
}

size_t Sse2MatchKeyU32(uint32_t key, const uint32_t* b, size_t nb,
                       std::vector<int32_t>* out) {
  size_t found = 0;
  __m128i vk = _mm_set1_epi32(static_cast<int32_t>(key));
  size_t j = 0;
  for (; j + 4 <= nb; j += 4) {
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    int m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(vk, vb)));
    while (m != 0) {
      int bit = __builtin_ctz(m);
      out->push_back(static_cast<int32_t>(j + bit));
      ++found;
      m &= m - 1;
    }
  }
  for (; j < nb; ++j) {
    if (b[j] == key) {
      out->push_back(static_cast<int32_t>(j));
      ++found;
    }
  }
  return found;
}

size_t Sse2MatchEqPairsI64(const int64_t* a, size_t na, const int64_t* b,
                           size_t nb, std::vector<RowPair>* out) {
  size_t found = 0;
  for (size_t i = 0; i < na; ++i) {
    __m128i va = _mm_set1_epi64x(a[i]);
    size_t j = 0;
    for (; j + 2 <= nb; j += 2) {
      __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      int m = _mm_movemask_pd(_mm_castsi128_pd(CmpEq64(va, vb)));
      while (m != 0) {
        int bit = __builtin_ctz(m);
        out->push_back(RowPair{static_cast<int32_t>(i),
                               static_cast<int32_t>(j + bit)});
        ++found;
        m &= m - 1;
      }
    }
    for (; j < nb; ++j) {
      if (b[j] == a[i]) {
        out->push_back(
            RowPair{static_cast<int32_t>(i), static_cast<int32_t>(j)});
        ++found;
      }
    }
  }
  return found;
}

size_t Sse2MatchEqPairsU32(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, std::vector<RowPair>* out) {
  size_t found = 0;
  for (size_t i = 0; i < na; ++i) {
    __m128i va = _mm_set1_epi32(static_cast<int32_t>(a[i]));
    size_t j = 0;
    for (; j + 4 <= nb; j += 4) {
      __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      int m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb)));
      while (m != 0) {
        int bit = __builtin_ctz(m);
        out->push_back(RowPair{static_cast<int32_t>(i),
                               static_cast<int32_t>(j + bit)});
        ++found;
        m &= m - 1;
      }
    }
    for (; j < nb; ++j) {
      if (b[j] == a[i]) {
        out->push_back(
            RowPair{static_cast<int32_t>(i), static_cast<int32_t>(j)});
        ++found;
      }
    }
  }
  return found;
}

void Sse2CombineScores(double wa, const double* a, double wb, const double* b,
                       size_t n, double* out) {
  __m128d vwa = _mm_set1_pd(wa);
  __m128d vwb = _mm_set1_pd(wb);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d va = _mm_mul_pd(vwa, _mm_loadu_pd(a + i));
    __m128d vb = _mm_mul_pd(vwb, _mm_loadu_pd(b + i));
    _mm_storeu_pd(out + i, _mm_add_pd(va, vb));
  }
  for (; i < n; ++i) {
    out[i] = wa * a[i] + wb * b[i];
  }
}

void Sse2CombineScores1(double wa, double a, double wb, const double* b,
                        size_t n, double* out) {
  __m128d vwaa = _mm_mul_pd(_mm_set1_pd(wa), _mm_set1_pd(a));
  __m128d vwb = _mm_set1_pd(wb);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d vb = _mm_mul_pd(vwb, _mm_loadu_pd(b + i));
    _mm_storeu_pd(out + i, _mm_add_pd(vwaa, vb));
  }
  for (; i < n; ++i) {
    out[i] = wa * a + wb * b[i];
  }
}

void Sse2EqualMaskI64(const int64_t* a, const int64_t* b, size_t n,
                      uint8_t* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    int m = _mm_movemask_pd(_mm_castsi128_pd(CmpEq64(va, vb)));
    out[i] = static_cast<uint8_t>(m & 1);
    out[i + 1] = static_cast<uint8_t>((m >> 1) & 1);
  }
  for (; i < n; ++i) {
    out[i] = a[i] == b[i] ? 1 : 0;
  }
}

void Sse2EqualMaskU32(const uint32_t* a, const uint32_t* b, size_t n,
                      uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    int m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb)));
    for (int lane = 0; lane < 4; ++lane) {
      out[i + lane] = static_cast<uint8_t>((m >> lane) & 1);
    }
  }
  for (; i < n; ++i) {
    out[i] = a[i] == b[i] ? 1 : 0;
  }
}

constexpr KernelTable kSse2Table = {
    &Sse2MatchEqPairsI64, &Sse2MatchEqPairsU32, &Sse2MatchKeyI64,
    &Sse2MatchKeyU32,     &Sse2CombineScores,   &Sse2CombineScores1,
    &Sse2EqualMaskI64,    &Sse2EqualMaskU32,
};
#define SECO_HAVE_SSE2_TABLE 1
#endif  // __SSE2__

bool CpuHasAvx2() {
#if defined(SECO_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// Clamps a requested kernel to what this binary + CPU can actually run.
Kernel Clamp(Kernel want) {
  if (want == Kernel::kAvx2 && !CpuHasAvx2()) want = Kernel::kSse2;
#if !defined(SECO_HAVE_SSE2_TABLE)
  if (want == Kernel::kSse2) want = Kernel::kScalar;
#endif
  return want;
}

Kernel DetectKernel() {
#if defined(SECO_SIMD_DISABLED)
  return Kernel::kScalar;
#else
  const char* env = std::getenv("SECO_SIMD");
  if (env != nullptr) {
    std::string v(env);
    if (v == "off" || v == "0" || v == "scalar") return Kernel::kScalar;
    if (v == "sse2") return Clamp(Kernel::kSse2);
    if (v == "avx2") return Clamp(Kernel::kAvx2);
  }
  return Clamp(Kernel::kAvx2);
#endif
}

std::atomic<int> g_override{-1};

const KernelTable* TableFor(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return &kScalarTable;
    case Kernel::kSse2:
#if defined(SECO_HAVE_SSE2_TABLE)
      return &kSse2Table;
#else
      return &kScalarTable;
#endif
    case Kernel::kAvx2:
#if defined(SECO_HAVE_AVX2_TU)
      return &kAvx2Table;
#else
      break;
#endif
  }
  return &kScalarTable;
}

const KernelTable* ActiveTable() { return TableFor(ActiveKernel()); }

}  // namespace

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSse2:
      return "sse2";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

Kernel ActiveKernel() {
  int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return Clamp(static_cast<Kernel>(forced));
  static const Kernel detected = DetectKernel();
  return detected;
}

void SetKernelOverride(std::optional<Kernel> k) {
  g_override.store(k.has_value() ? static_cast<int>(*k) : -1,
                   std::memory_order_relaxed);
}

bool Avx2Available() {
#if defined(SECO_SIMD_DISABLED)
  return false;
#else
  return CpuHasAvx2();
#endif
}

size_t MatchEqPairsI64(const int64_t* a, size_t na, const int64_t* b,
                       size_t nb, std::vector<RowPair>* out) {
  return ActiveTable()->match_eq_pairs_i64(a, na, b, nb, out);
}

size_t MatchEqPairsU32(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, std::vector<RowPair>* out) {
  return ActiveTable()->match_eq_pairs_u32(a, na, b, nb, out);
}

size_t MatchKeyI64(int64_t key, const int64_t* b, size_t nb,
                   std::vector<int32_t>* out) {
  return ActiveTable()->match_key_i64(key, b, nb, out);
}

size_t MatchKeyU32(uint32_t key, const uint32_t* b, size_t nb,
                   std::vector<int32_t>* out) {
  return ActiveTable()->match_key_u32(key, b, nb, out);
}

void CombineScores(double wa, const double* a, double wb, const double* b,
                   size_t n, double* out) {
  ActiveTable()->combine_scores(wa, a, wb, b, n, out);
}

void CombineScores1(double wa, double a, double wb, const double* b, size_t n,
                    double* out) {
  ActiveTable()->combine_scores1(wa, a, wb, b, n, out);
}

void EqualMaskI64(const int64_t* a, const int64_t* b, size_t n, uint8_t* out) {
  ActiveTable()->equal_mask_i64(a, b, n, out);
}

void EqualMaskU32(const uint32_t* a, const uint32_t* b, size_t n,
                  uint8_t* out) {
  ActiveTable()->equal_mask_u32(a, b, n, out);
}

}  // namespace simd
}  // namespace seco
