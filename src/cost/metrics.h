#ifndef SECO_COST_METRICS_H_
#define SECO_COST_METRICS_H_

#include <string>

#include "common/result.h"
#include "plan/plan.h"

namespace seco {

/// The cost metrics of §5.1. All are monotonic: extending a partial plan
/// (more nodes, more fetches) never decreases its cost, which is what the
/// branch-and-bound pruning step relies on (§5.2).
enum class CostMetricKind {
  /// Expected elapsed time to the k-th answer: the slowest input-to-output
  /// path, where a service node contributes (expected calls) x (latency) and
  /// in-memory operators contribute ~0.
  kExecutionTime,
  /// Sum of per-operator costs: service calls priced at their per-call
  /// charge plus (optionally) join CPU priced per candidate pair.
  kSumCost,
  /// Request-response special case of sum cost: only service invocation
  /// charges, no operator execution costs.
  kRequestResponse,
  /// Further simplification: every invocation costs 1 (counts calls). The
  /// relevant metric when network transfer dominates.
  kCallCount,
  /// Execution time of the slowest service in the plan (Srivastava et al.'s
  /// WSMS metric; suited to pipelined continuous queries, not to k-answer
  /// search plans).
  kBottleneck,
  /// Time to the first output tuple: slowest path counting one call per
  /// service node.
  kTimeToScreen,
};

const char* CostMetricKindToString(CostMetricKind kind);

/// Knobs of the sum-cost metric.
struct CostParams {
  /// CPU price charged per candidate pair examined by a parallel join
  /// (kSumCost only; 0 recovers the request-response special case).
  double join_cpu_cost_per_candidate = 0.0;
};

/// Simulated elapsed milliseconds a service node spends issuing its
/// expected calls back to back.
double NodeElapsedMs(const PlanNode& node);

/// Computes the cost of a *fully instantiated* (annotated) plan under
/// `kind`. Plans must have been through AnnotatePlan first; costs of plans
/// with unannotated nodes are meaningless.
Result<double> PlanCost(const QueryPlan& plan, CostMetricKind kind,
                        const CostParams& params = {});

/// True for metrics measured in (simulated) milliseconds.
bool MetricIsTimeBased(CostMetricKind kind);

}  // namespace seco

#endif  // SECO_COST_METRICS_H_
