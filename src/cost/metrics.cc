#include "cost/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace seco {

const char* CostMetricKindToString(CostMetricKind kind) {
  switch (kind) {
    case CostMetricKind::kExecutionTime:
      return "execution-time";
    case CostMetricKind::kSumCost:
      return "sum-cost";
    case CostMetricKind::kRequestResponse:
      return "request-response";
    case CostMetricKind::kCallCount:
      return "call-count";
    case CostMetricKind::kBottleneck:
      return "bottleneck";
    case CostMetricKind::kTimeToScreen:
      return "time-to-screen";
  }
  return "?";
}

bool MetricIsTimeBased(CostMetricKind kind) {
  return kind == CostMetricKind::kExecutionTime ||
         kind == CostMetricKind::kBottleneck ||
         kind == CostMetricKind::kTimeToScreen;
}

double NodeElapsedMs(const PlanNode& node) {
  if (node.kind != PlanNodeKind::kServiceCall || !node.iface) return 0.0;
  return node.est_calls * node.iface->stats().latency_ms;
}

namespace {

/// Longest input-to-output path with per-node weights.
Result<double> SlowestPath(const QueryPlan& plan,
                           const std::vector<double>& node_weight) {
  SECO_ASSIGN_OR_RETURN(std::vector<int> order, plan.TopologicalOrder());
  std::vector<double> dist(plan.num_nodes(), 0.0);
  double result = 0.0;
  for (int id : order) {
    const PlanNode& node = plan.node(id);
    double best_pred = 0.0;
    for (int pred : node.inputs) best_pred = std::max(best_pred, dist[pred]);
    dist[id] = best_pred + node_weight[id];
    if (node.kind == PlanNodeKind::kOutput) result = dist[id];
  }
  return result;
}

}  // namespace

Result<double> PlanCost(const QueryPlan& plan, CostMetricKind kind,
                        const CostParams& params) {
  switch (kind) {
    case CostMetricKind::kExecutionTime: {
      std::vector<double> weights(plan.num_nodes(), 0.0);
      for (const PlanNode& n : plan.nodes()) weights[n.id] = NodeElapsedMs(n);
      return SlowestPath(plan, weights);
    }
    case CostMetricKind::kTimeToScreen: {
      // One call per service node suffices for the first tuple.
      std::vector<double> weights(plan.num_nodes(), 0.0);
      for (const PlanNode& n : plan.nodes()) {
        if (n.kind == PlanNodeKind::kServiceCall && n.iface) {
          weights[n.id] = std::min(n.est_calls, 1.0) * n.iface->stats().latency_ms;
        }
      }
      return SlowestPath(plan, weights);
    }
    case CostMetricKind::kBottleneck: {
      double worst = 0.0;
      for (const PlanNode& n : plan.nodes()) {
        worst = std::max(worst, NodeElapsedMs(n));
      }
      return worst;
    }
    case CostMetricKind::kSumCost:
    case CostMetricKind::kRequestResponse:
    case CostMetricKind::kCallCount: {
      double total = 0.0;
      for (const PlanNode& n : plan.nodes()) {
        if (n.kind == PlanNodeKind::kServiceCall && n.iface) {
          double per_call = kind == CostMetricKind::kCallCount
                                ? 1.0
                                : n.iface->stats().cost_per_call;
          total += n.est_calls * per_call;
        }
        if (kind == CostMetricKind::kSumCost &&
            n.kind == PlanNodeKind::kParallelJoin) {
          total += params.join_cpu_cost_per_candidate * n.t_in;
        }
      }
      return total;
    }
  }
  return Status::InvalidArgument("unknown cost metric");
}

}  // namespace seco
