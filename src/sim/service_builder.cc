#include "sim/service_builder.h"

namespace seco {

SimServiceBuilder& SimServiceBuilder::Replica(const BuiltService& source) {
  schema_ = source.interface->schema_ptr();
  pattern_override_ = source.interface->pattern();
  adornments_.clear();
  kind_ = source.interface->kind();
  stats_ = source.interface->stats();
  seed_ = source.backend->seed();
  rows_ = source.backend->rows();
  quality_ = source.backend->quality();
  return *this;
}

Result<BuiltService> SimServiceBuilder::Build() {
  if (!schema_) {
    return Status::InvalidArgument("service '" + name_ + "' has no schema");
  }
  AccessPattern pattern;
  if (adornments_.empty() && pattern_override_.has_value()) {
    pattern = *pattern_override_;
  } else {
    SECO_ASSIGN_OR_RETURN(pattern, AccessPattern::Create(*schema_, adornments_));
  }
  if (kind_ == ServiceKind::kSearch) {
    stats_.chunked = true;
    if (stats_.decay == ScoreDecay::kNone) stats_.decay = ScoreDecay::kLinear;
  }
  auto backend = std::make_shared<SimulatedService>(
      schema_, pattern, kind_, stats_, std::move(rows_), std::move(quality_),
      seed_);
  if (fault_profile_.active()) backend->set_fault_profile(fault_profile_);
  auto iface = std::make_shared<ServiceInterface>(name_, schema_, pattern, kind_,
                                                  stats_, backend);
  return BuiltService{std::move(iface), std::move(backend)};
}

Result<BuiltService> SimServiceBuilder::BuildInto(ServiceRegistry& registry,
                                                  const std::string& mart_name) {
  SECO_ASSIGN_OR_RETURN(BuiltService built, Build());
  SECO_RETURN_IF_ERROR(registry.RegisterInterface(built.interface, mart_name));
  return built;
}

}  // namespace seco
