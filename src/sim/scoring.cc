#include "sim/scoring.h"

#include <algorithm>

namespace seco {

double ScoreAtPosition(ScoreDecay decay, int position, int total,
                       int chunk_size, int step_h, double step_high,
                       double step_low) {
  if (total <= 0) total = 1;
  position = std::clamp(position, 0, total - 1);
  // Use total-1 as the denominator so that the last tuple reaches the floor
  // and the first always scores 1.0 for progressive models.
  double denom = std::max(total - 1, 1);
  double frac = static_cast<double>(position) / denom;
  switch (decay) {
    case ScoreDecay::kNone:
      return 1.0;
    case ScoreDecay::kStep:
      return position < step_h * std::max(chunk_size, 1) ? step_high : step_low;
    case ScoreDecay::kLinear:
    case ScoreDecay::kOpaque:
      return 1.0 - frac;
    case ScoreDecay::kQuadratic:
      return (1.0 - frac) * (1.0 - frac);
  }
  return 0.0;
}

double ScoreAtPosition(const ServiceStats& stats, int position, int total) {
  return ScoreAtPosition(stats.decay, position, total, stats.chunk_size,
                         stats.step_h, stats.step_high, stats.step_low);
}

}  // namespace seco
