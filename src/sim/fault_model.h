#ifndef SECO_SIM_FAULT_MODEL_H_
#define SECO_SIM_FAULT_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/result.h"
#include "service/invocation.h"

namespace seco {

/// Knobs describing how a simulated service misbehaves. All draws are keyed
/// on the *request identity* (see `RequestOrdinal`) plus the attempt number,
/// never on arrival order, so injected faults are bit-reproducible under any
/// thread schedule — the same contract `LatencyModel` provides for latency.
struct FaultProfile {
  /// Fraction of logical requests that fail transiently, in [0,1].
  double transient_rate = 0.0;
  /// A transiently failing request fails its first `transient_attempts`
  /// delivery attempts and succeeds from then on; retrying at least this
  /// many times therefore always recovers.
  int transient_attempts = 1;

  /// Fraction of logical requests whose latency spikes (timeout-style
  /// slowness), in [0,1].
  double spike_rate = 0.0;
  /// A spiking request is slow for its first `spike_attempts` attempts.
  int spike_attempts = 1;
  /// Multiplier applied to the base latency of a spiking attempt.
  double spike_factor = 8.0;

  /// When true every call fails: the service is permanently down.
  bool permanent_outage = false;

  /// Salt for the per-request draws, mixed with the request ordinal.
  uint64_t seed = 0;

  bool active() const {
    return transient_rate > 0.0 || spike_rate > 0.0 || permanent_outage;
  }
};

/// Deterministic fault decisions for one service. Analogous to
/// `LatencyModel`: stateless, so whether a given (request, attempt) pair
/// fails depends only on its identity, never on how concurrent calls
/// interleave.
class FaultModel {
 public:
  explicit FaultModel(FaultProfile profile) : profile_(profile) {}

  const FaultProfile& profile() const { return profile_; }
  bool active() const { return profile_.active(); }
  bool permanent_outage() const { return profile_.permanent_outage; }

  /// True if this request identity is one of the `transient_rate` fraction
  /// that fails its first `transient_attempts` attempts.
  bool TransientlyStricken(uint64_t ordinal) const {
    return Draw(ordinal, 0x7472616E73ULL) < profile_.transient_rate;
  }

  /// True if attempt `attempt` of this request should fail transiently.
  bool ShouldFailTransiently(uint64_t ordinal, int attempt) const {
    return TransientlyStricken(ordinal) && attempt < profile_.transient_attempts;
  }

  /// Latency multiplier for attempt `attempt` of this request: the spike
  /// factor while the request is stricken and the attempt is early, 1
  /// otherwise.
  double LatencyFactor(uint64_t ordinal, int attempt) const {
    if (Draw(ordinal, 0x7370696B65ULL) < profile_.spike_rate &&
        attempt < profile_.spike_attempts) {
      return profile_.spike_factor;
    }
    return 1.0;
  }

  /// The error a failing attempt returns, or OK if this attempt goes
  /// through. Transient failures model a refused connection: the caller
  /// learns immediately, so no simulated latency is charged.
  Status FaultFor(uint64_t ordinal, int attempt) const {
    if (profile_.permanent_outage) {
      return Status::Unavailable("service is down (permanent outage)");
    }
    if (ShouldFailTransiently(ordinal, attempt)) {
      return Status::Unavailable("transient fault on attempt " +
                                 std::to_string(attempt));
    }
    return Status::OK();
  }

 private:
  /// Uniform [0,1) draw keyed on (seed, ordinal, stream). Separate streams
  /// keep the transient and spike populations independent.
  double Draw(uint64_t ordinal, uint64_t stream) const {
    SplitMix64 rng(profile_.seed ^ stream ^ (ordinal * 0x9E3779B97F4A7C15ULL));
    return rng.NextDouble();
  }

  FaultProfile profile_;
};

/// Decorator injecting `FaultModel` faults in front of any handler.
/// Replaces the former `FlakyHandler`, whose arrival-order counter made the
/// set of failing calls schedule-dependent under concurrency; here the
/// failing set is a pure function of request identity.
class FaultInjectingHandler : public ServiceCallHandler {
 public:
  FaultInjectingHandler(std::shared_ptr<ServiceCallHandler> inner,
                        FaultProfile profile)
      : inner_(std::move(inner)), model_(profile) {}

  Result<ServiceResponse> Call(const ServiceRequest& request) override {
    uint64_t ordinal = RequestOrdinal(request);
    Status fault = model_.FaultFor(ordinal, request.attempt);
    if (!fault.ok()) return fault;
    SECO_ASSIGN_OR_RETURN(ServiceResponse resp, inner_->Call(request));
    resp.latency_ms *= model_.LatencyFactor(ordinal, request.attempt);
    return resp;
  }

  const FaultModel& model() const { return model_; }

 private:
  std::shared_ptr<ServiceCallHandler> inner_;
  FaultModel model_;
};

}  // namespace seco

#endif  // SECO_SIM_FAULT_MODEL_H_
