#ifndef SECO_SIM_LOAD_GENERATOR_H_
#define SECO_SIM_LOAD_GENERATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "server/server.h"
#include "service/tuple.h"

namespace seco {

/// Parameters of one deterministic load run against a `QueryServer`. The
/// whole schedule — arrival times, priority classes, per-query k — is a
/// pure function of `seed`, so overload experiments replay exactly.
struct LoadProfile {
  uint64_t seed = 1;
  int num_queries = 64;
  /// Probability that a query is interactive (the rest are batch).
  double interactive_fraction = 0.7;
  /// Mean of the exponential interarrival gap (open-loop pacing).
  double mean_interarrival_ms = 5.0;
  /// Arrivals per burst. 0 = Poisson arrivals; n > 0 = groups of n queries
  /// arriving together, with an exponential gap between groups.
  int burst_size = 0;
  /// Closed-loop concurrency: keep exactly this many queries outstanding,
  /// submitting the next as the oldest resolves (arrival times are then
  /// ignored). 0 = open loop: submit on schedule regardless of completions
  /// — offered load is independent of capacity, which is what overloads the
  /// server.
  int closed_loop_width = 0;
  /// Open loop only: > 0 paces submissions in real time, sleeping
  /// `gap * realtime_factor` between arrivals. 0 submits back to back.
  double realtime_factor = 0.0;
  /// Per-query answer count, drawn uniformly from [k_min, k_max].
  int k_min = 5;
  int k_max = 15;
  int max_calls = 10000;
  /// Queue-time deadline attached to every request (0 = class default).
  double queue_deadline_ms = 0.0;
  /// Run queries through the streaming engine instead of materializing.
  bool streaming = false;
  /// Fraction of requests whose cache identity repeats (answer-cache warm
  /// pool). 1.0 = every request is the same cacheable identity (the
  /// default, and the historical behaviour); at f < 1, a (1-f) share of
  /// requests get a unique call budget, which enters the answer-cache
  /// signature without changing what executes — deterministic cache-miss
  /// traffic for warm-vs-cold experiments.
  double overlap_fraction = 1.0;
  /// Fraction of requests the client abandons (cancels) after
  /// `abandon_after_ms`. Drawn from its own seed stream, so turning it on
  /// leaves every other request property of the schedule bit-identical.
  /// 0 = never abandon.
  double abandon_fraction = 0.0;
  /// How long after submission an abandoned request's cancel fires, in
  /// real milliseconds.
  double abandon_after_ms = 1.0;
};

/// One scheduled arrival.
struct LoadItem {
  double arrival_ms = 0.0;
  QueryRequest request;
  /// The client walks away from this request `abandon_after_ms` after
  /// submitting it (`QueryServer::Cancel`; the response still arrives,
  /// as `kCancelled` if the cancel won its race).
  bool abandon = false;
  double abandon_after_ms = 0.0;
};

/// Expands a profile into a reproducible arrival schedule for one query
/// template (all requests share the query text and inputs; class, k, and
/// timing vary per the profile's seed).
class LoadGenerator {
 public:
  LoadGenerator(LoadProfile profile, std::string query_text,
                std::map<std::string, Value> input_bindings)
      : profile_(profile),
        query_text_(std::move(query_text)),
        input_bindings_(std::move(input_bindings)) {}

  const LoadProfile& profile() const { return profile_; }

  std::vector<LoadItem> Schedule() const;

 private:
  LoadProfile profile_;
  std::string query_text_;
  std::map<std::string, Value> input_bindings_;
};

/// The outcome of driving one schedule: terminal responses in submission
/// order, plus the measured wall clock of the whole run.
struct LoadReport {
  std::vector<QueryResponse> responses;
  double wall_ms = 0.0;

  int64_t CountOutcome(ServedOutcome outcome) const;
};

/// Submits `schedule` to `server` per the profile's loop discipline and
/// waits for every response. Open loop offers load on schedule (the
/// overload case); closed loop throttles to `closed_loop_width` outstanding
/// queries (the capacity-probe case).
LoadReport DriveLoad(QueryServer* server, const std::vector<LoadItem>& schedule,
                     const LoadProfile& profile);

/// Named profiles surfaced by the shell's `--serve --load=<name>` flag:
/// "light" (below capacity), "overload" (open loop at >= 3x capacity),
/// "burst" (synchronized arrival groups), "cachestress" (closed-loop
/// high-overlap repeats for the answer-cache soak), and "serial" (width-1
/// closed loop — the byte-exact wire-equivalence leg, docs/NETWORK.md).
/// nullopt for unknown names.
std::optional<LoadProfile> LoadProfileByName(const std::string& name);

}  // namespace seco

#endif  // SECO_SIM_LOAD_GENERATOR_H_
