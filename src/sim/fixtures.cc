#include "sim/fixtures.h"

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace seco {

namespace {

constexpr const char* kGenres[] = {"action", "comedy", "drama",
                                   "thriller", "scifi", "animation"};
constexpr const char* kCountries[] = {"Italy", "USA", "France"};
constexpr const char* kCategories[] = {"romantic", "pizza", "sushi", "vegan"};

Value Str(const std::string& s) { return Value(s); }

}  // namespace

Result<BuiltService> AddReplica(Scenario* scenario,
                                const std::string& interface_name,
                                const std::string& replica_name) {
  ServiceRegistry& reg = *scenario->registry;
  SECO_ASSIGN_OR_RETURN(std::shared_ptr<ServiceInterface> iface,
                        reg.FindInterface(interface_name));
  auto backend_it = scenario->backends.find(interface_name);
  if (backend_it == scenario->backends.end()) {
    return Status::NotFound("no backend for interface '" + interface_name + "'");
  }
  BuiltService source{iface, backend_it->second};
  SECO_ASSIGN_OR_RETURN(
      BuiltService replica,
      SimServiceBuilder(replica_name).Replica(source).BuildInto(
          reg, reg.MartOfInterface(interface_name)));
  scenario->backends[replica_name] = replica.backend;
  return replica;
}

Result<Scenario> MakeMovieScenario(const MovieScenarioParams& params) {
  SplitMix64 rng(params.seed);
  Scenario scenario;
  scenario.registry = std::make_shared<ServiceRegistry>();
  ServiceRegistry& reg = *scenario.registry;

  const std::string user_address = "Addr0";
  const std::string user_city = "Milano";
  const std::string user_country = "Italy";
  const std::string queried_genre = "action";
  const std::string queried_category = "romantic";
  const std::string queried_date = "2009-05-01";

  // ---- Movie mart & Movie11 interface -----------------------------------
  auto movie_schema = std::make_shared<ServiceSchema>(
      "Movie",
      std::vector<AttributeDef>{
          AttributeDef::Atomic("Title", ValueType::kString),
          AttributeDef::Atomic("Director", ValueType::kString),
          AttributeDef::Atomic("Score", ValueType::kDouble),
          AttributeDef::Atomic("Year", ValueType::kInt),
          AttributeDef::RepeatingGroup("Genres", {{"Genre", ValueType::kString}}),
          AttributeDef::Atomic("Language", ValueType::kString),
          AttributeDef::RepeatingGroup("Openings",
                                       {{"Country", ValueType::kString},
                                        {"Date", ValueType::kString}}),
          AttributeDef::RepeatingGroup("Actor", {{"Name", ValueType::kString}}),
      });
  SECO_RETURN_IF_ERROR(
      reg.RegisterMart(std::make_shared<ServiceMart>("Movie", movie_schema)));

  SimServiceBuilder movie_builder("Movie11");
  movie_builder.Schema(movie_schema->attributes())
      .Pattern({{"Title", Adornment::kOutput},
                {"Director", Adornment::kOutput},
                {"Score", Adornment::kRanked},
                {"Year", Adornment::kOutput},
                {"Genres.Genre", Adornment::kInput},
                {"Language", Adornment::kOutput},
                {"Openings.Country", Adornment::kInput},
                {"Openings.Date", Adornment::kOutput},
                {"Actor.Name", Adornment::kOutput}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x11);
  ServiceStats movie_stats;
  movie_stats.chunk_size = params.movie_chunk_size;
  movie_stats.latency_ms = params.movie_latency_ms;
  movie_stats.cost_per_call = 1.0;
  movie_stats.decay = params.movie_decay;
  movie_stats.step_h = 2;
  movie_stats.avg_matches_per_binding = params.matching_movies;
  movie_builder.Stats(movie_stats);

  std::vector<std::string> movie_titles;
  std::vector<Tuple> movie_rows;
  std::vector<double> movie_qualities;
  for (int i = 0; i < params.num_movies; ++i) {
    std::string title = "Movie" + std::to_string(i);
    movie_titles.push_back(title);
    bool matching = i < params.matching_movies;

    RepeatingGroupValue genres;
    genres.push_back({Str(matching ? queried_genre
                                   : kGenres[1 + rng.Uniform(5)])});
    if (rng.NextDouble() < 0.4) {
      genres.push_back({Str(kGenres[rng.Uniform(6)])});
    }

    RepeatingGroupValue openings;
    if (matching) {
      // Opens in the queried country at a date after the queried one; the
      // single-instance semantics requires country and date in one instance.
      openings.push_back({Str(user_country),
                          Str("2009-06-" + std::to_string(1 + rng.Uniform(28)))});
    } else {
      openings.push_back({Str(kCountries[1 + rng.Uniform(2)]),
                          Str("2009-03-" + std::to_string(1 + rng.Uniform(28)))});
    }
    if (rng.NextDouble() < 0.3) {
      openings.push_back({Str(kCountries[rng.Uniform(3)]),
                          Str("2009-04-" + std::to_string(1 + rng.Uniform(28)))});
    }

    RepeatingGroupValue actors;
    actors.push_back({Str("Actor" + std::to_string(rng.Uniform(60)))});

    double score = 1.0 - static_cast<double>(i) / params.num_movies;
    Tuple row(std::vector<TupleSlot>{
        Value(title), Value("Director" + std::to_string(rng.Uniform(80))),
        Value(score), Value(static_cast<int64_t>(2000 + rng.Uniform(10))),
        genres, Value("en"), openings, actors});
    movie_rows.push_back(std::move(row));
    movie_qualities.push_back(score);
  }
  for (size_t r = 0; r < movie_rows.size(); ++r) {
    movie_builder.AddRow(movie_rows[r], movie_qualities[r]);
  }
  SECO_ASSIGN_OR_RETURN(BuiltService movie, movie_builder.BuildInto(reg, "Movie"));
  scenario.backends["Movie11"] = movie.backend;

  // Movie12: an alternative interface of the Movie mart keyed by Title
  // (a lookup access pattern), giving the optimizer's Phase 1 a real
  // choice and enabling pipe joins from Theatre's repeating group.
  SimServiceBuilder movie12_builder("Movie12");
  movie12_builder.Schema(movie_schema->attributes())
      .Pattern({{"Title", Adornment::kInput},
                {"Director", Adornment::kOutput},
                {"Score", Adornment::kRanked},
                {"Year", Adornment::kOutput},
                {"Genres.Genre", Adornment::kOutput},
                {"Language", Adornment::kOutput},
                {"Openings.Country", Adornment::kOutput},
                {"Openings.Date", Adornment::kOutput},
                {"Actor.Name", Adornment::kOutput}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x12);
  ServiceStats movie12_stats = movie_stats;
  movie12_stats.chunk_size = 5;
  movie12_stats.latency_ms = params.movie_latency_ms * 0.6;  // lookups are fast
  movie12_stats.avg_matches_per_binding = 1.0;  // titles are unique
  movie12_builder.Stats(movie12_stats);
  for (size_t r = 0; r < movie_rows.size(); ++r) {
    movie12_builder.AddRow(movie_rows[r], movie_qualities[r]);
  }
  SECO_ASSIGN_OR_RETURN(BuiltService movie12,
                        movie12_builder.BuildInto(reg, "Movie"));
  scenario.backends["Movie12"] = movie12.backend;

  // ---- Theatre mart & Theatre11 ------------------------------------------
  auto theatre_schema = std::make_shared<ServiceSchema>(
      "Theatre",
      std::vector<AttributeDef>{
          AttributeDef::Atomic("Name", ValueType::kString),
          AttributeDef::Atomic("UAddress", ValueType::kString),
          AttributeDef::Atomic("UCity", ValueType::kString),
          AttributeDef::Atomic("UCountry", ValueType::kString),
          AttributeDef::Atomic("TAddress", ValueType::kString),
          AttributeDef::Atomic("TCity", ValueType::kString),
          AttributeDef::Atomic("TCountry", ValueType::kString),
          AttributeDef::Atomic("TPhone", ValueType::kString),
          AttributeDef::Atomic("Distance", ValueType::kDouble),
          AttributeDef::RepeatingGroup("Movie",
                                       {{"Title", ValueType::kString},
                                        {"StartTimes", ValueType::kString},
                                        {"Duration", ValueType::kInt}}),
      });
  SECO_RETURN_IF_ERROR(
      reg.RegisterMart(std::make_shared<ServiceMart>("Theatre", theatre_schema)));

  SimServiceBuilder theatre_builder("Theatre11");
  theatre_builder.Schema(theatre_schema->attributes())
      .Pattern({{"Name", Adornment::kOutput},
                {"UAddress", Adornment::kInput},
                {"UCity", Adornment::kInput},
                {"UCountry", Adornment::kInput},
                {"TAddress", Adornment::kOutput},
                {"TCity", Adornment::kOutput},
                {"TCountry", Adornment::kOutput},
                {"TPhone", Adornment::kOutput},
                {"Distance", Adornment::kRanked},
                {"Movie.Title", Adornment::kOutput},
                {"Movie.StartTimes", Adornment::kOutput},
                {"Movie.Duration", Adornment::kOutput}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x22);
  ServiceStats theatre_stats;
  theatre_stats.chunk_size = params.theatre_chunk_size;
  theatre_stats.latency_ms = params.theatre_latency_ms;
  theatre_stats.cost_per_call = 1.0;
  theatre_stats.decay = params.theatre_decay;
  theatre_stats.avg_matches_per_binding = params.num_theatres;
  theatre_builder.Stats(theatre_stats);

  int movies_per_theatre = std::max(
      1, static_cast<int>(params.shows_selectivity * params.num_movies));
  std::vector<std::string> theatre_addresses;
  for (int t = 0; t < params.num_theatres; ++t) {
    std::string taddr = "TAddr" + std::to_string(t);
    theatre_addresses.push_back(taddr);
    RepeatingGroupValue shown;
    // Sample distinct movie titles uniformly: realizes P(shown) ~ 2%.
    std::vector<int> picks;
    while (static_cast<int>(picks.size()) < movies_per_theatre) {
      int m = static_cast<int>(rng.Uniform(params.num_movies));
      if (std::find(picks.begin(), picks.end(), m) == picks.end()) {
        picks.push_back(m);
      }
    }
    for (int m : picks) {
      shown.push_back({Str(movie_titles[m]), Str("20:30"),
                       Value(static_cast<int64_t>(90 + rng.Uniform(60)))});
    }
    double distance = 0.3 + 0.25 * t + rng.NextDouble() * 0.1;
    Tuple row(std::vector<TupleSlot>{
        Value("Cinema" + std::to_string(t)), Value(user_address),
        Value(user_city), Value(user_country), Value(taddr), Value(user_city),
        Value(user_country), Value("+39-02-" + std::to_string(1000 + t)),
        Value(distance), shown});
    theatre_builder.AddRow(std::move(row), -distance);
  }
  SECO_ASSIGN_OR_RETURN(BuiltService theatre,
                        theatre_builder.BuildInto(reg, "Theatre"));
  scenario.backends["Theatre11"] = theatre.backend;

  // ---- Restaurant mart & Restaurant11 -------------------------------------
  auto restaurant_schema = std::make_shared<ServiceSchema>(
      "Restaurant",
      std::vector<AttributeDef>{
          AttributeDef::Atomic("Name", ValueType::kString),
          AttributeDef::Atomic("UAddress", ValueType::kString),
          AttributeDef::Atomic("UCity", ValueType::kString),
          AttributeDef::Atomic("UCountry", ValueType::kString),
          AttributeDef::Atomic("RAddress", ValueType::kString),
          AttributeDef::Atomic("RCity", ValueType::kString),
          AttributeDef::Atomic("RCountry", ValueType::kString),
          AttributeDef::Atomic("Phone", ValueType::kString),
          AttributeDef::Atomic("Url", ValueType::kString),
          AttributeDef::Atomic("Rating", ValueType::kDouble),
          AttributeDef::RepeatingGroup("Category", {{"Name", ValueType::kString}}),
      });
  SECO_RETURN_IF_ERROR(reg.RegisterMart(
      std::make_shared<ServiceMart>("Restaurant", restaurant_schema)));

  SimServiceBuilder restaurant_builder("Restaurant11");
  restaurant_builder.Schema(restaurant_schema->attributes())
      .Pattern({{"Name", Adornment::kOutput},
                {"UAddress", Adornment::kInput},
                {"UCity", Adornment::kInput},
                {"UCountry", Adornment::kInput},
                {"RAddress", Adornment::kOutput},
                {"RCity", Adornment::kOutput},
                {"RCountry", Adornment::kOutput},
                {"Phone", Adornment::kOutput},
                {"Url", Adornment::kOutput},
                {"Rating", Adornment::kRanked},
                {"Category.Name", Adornment::kInput}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x33);
  ServiceStats restaurant_stats;
  restaurant_stats.chunk_size = params.restaurant_chunk_size;
  restaurant_stats.latency_ms = params.restaurant_latency_ms;
  restaurant_stats.cost_per_call = 1.0;
  restaurant_stats.decay = ScoreDecay::kLinear;
  // Given a theatre that has nearby restaurants (the 40% pipe selectivity),
  // the generator creates 1-3 of them: expected depth ~2 per binding.
  restaurant_stats.avg_matches_per_binding = 2.0;
  restaurant_builder.Stats(restaurant_stats);

  int restaurant_id = 0;
  for (const std::string& taddr : theatre_addresses) {
    // With probability dinner_selectivity the theatre has nearby restaurants
    // (for any category: the selectivity is modelled at address level).
    if (rng.NextDouble() >= params.dinner_selectivity) continue;
    int count = 1 + static_cast<int>(rng.Uniform(3));
    for (int r = 0; r < count; ++r) {
      RepeatingGroupValue cats;
      for (const char* c : kCategories) cats.push_back({Str(c)});
      double rating = 2.5 + rng.NextDouble() * 2.5;
      Tuple row(std::vector<TupleSlot>{
          Value("Rest" + std::to_string(restaurant_id)), Value(taddr),
          Value(user_city), Value(user_country), Value(taddr), Value(user_city),
          Value(user_country), Value("+39-02-" + std::to_string(5000 + restaurant_id)),
          Value("http://rest" + std::to_string(restaurant_id) + ".example"),
          Value(rating), cats});
      restaurant_builder.AddRow(std::move(row), rating);
      ++restaurant_id;
    }
  }
  SECO_ASSIGN_OR_RETURN(BuiltService restaurant,
                        restaurant_builder.BuildInto(reg, "Restaurant"));
  scenario.backends["Restaurant11"] = restaurant.backend;

  // ---- Connection patterns -------------------------------------------------
  auto shows = std::make_shared<ConnectionPattern>(
      "Shows", "Movie", "Theatre",
      std::vector<ConnectionClause>{{"Title", Comparator::kEq, "Movie.Title"}});
  shows->set_selectivity(params.shows_selectivity);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(shows));

  auto dinner = std::make_shared<ConnectionPattern>(
      "DinnerPlace", "Theatre", "Restaurant",
      std::vector<ConnectionClause>{
          {"TAddress", Comparator::kEq, "UAddress"},
          {"TCity", Comparator::kEq, "UCity"},
          {"TCountry", Comparator::kEq, "UCountry"}});
  dinner->set_selectivity(params.dinner_selectivity);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(dinner));

  // ---- Canonical query + inputs -------------------------------------------
  scenario.inputs = {{"INPUT1", Str(queried_genre)},
                     {"INPUT2", Str(user_country)},
                     {"INPUT3", Str(queried_date)},
                     {"INPUT4", Str(user_address)},
                     {"INPUT5", Str(user_city)},
                     {"INPUT6", Str(queried_category)}};
  scenario.query_text =
      "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
      "where Shows(M, T) and DinnerPlace(T, R) "
      "and M.Genres.Genre = INPUT1 and M.Openings.Country = INPUT2 "
      "and M.Openings.Date > INPUT3 "
      "and T.UAddress = INPUT4 and T.UCity = INPUT5 and T.UCountry = INPUT2 "
      "and R.Category.Name = INPUT6 "
      "rank by (0.3, 0.5, 0.2)";
  return scenario;
}

Result<Scenario> MakeConferenceScenario(const ConferenceScenarioParams& params) {
  SplitMix64 rng(params.seed);
  Scenario scenario;
  scenario.registry = std::make_shared<ServiceRegistry>();
  ServiceRegistry& reg = *scenario.registry;

  std::vector<std::string> cities;
  for (int c = 0; c < params.num_cities; ++c) {
    cities.push_back("City" + std::to_string(c));
  }

  // ---- Conference (exact, proliferative: ~20 tuples per call) -------------
  auto conf_schema = std::make_shared<ServiceSchema>(
      "Conference", std::vector<AttributeDef>{
                        AttributeDef::Atomic("Area", ValueType::kString),
                        AttributeDef::Atomic("Name", ValueType::kString),
                        AttributeDef::Atomic("City", ValueType::kString),
                        AttributeDef::Atomic("Date", ValueType::kString),
                    });
  SECO_RETURN_IF_ERROR(
      reg.RegisterMart(std::make_shared<ServiceMart>("Conference", conf_schema)));
  SimServiceBuilder conf_builder("Conference1");
  conf_builder.Schema(conf_schema->attributes())
      .Pattern({{"Area", Adornment::kInput},
                {"Name", Adornment::kOutput},
                {"City", Adornment::kOutput},
                {"Date", Adornment::kOutput}})
      .Kind(ServiceKind::kExact)
      .Seed(params.seed ^ 0x44);
  ServiceStats conf_stats;
  conf_stats.avg_tuples_per_call = params.num_conferences;
  conf_stats.latency_ms = params.conference_latency_ms;
  conf_stats.cost_per_call = 1.0;
  conf_builder.Stats(conf_stats);
  std::vector<std::pair<std::string, std::string>> conf_city_date;
  for (int i = 0; i < params.num_conferences; ++i) {
    std::string city = cities[rng.Uniform(cities.size())];
    std::string date = "2009-07-" + std::to_string(1 + rng.Uniform(28));
    conf_city_date.emplace_back(city, date);
    conf_builder.AddRow(Tuple(std::vector<TupleSlot>{
        Value("databases"), Value("Conf" + std::to_string(i)), Value(city),
        Value(date)}));
  }
  SECO_ASSIGN_OR_RETURN(BuiltService conf, conf_builder.BuildInto(reg, "Conference"));
  scenario.backends["Conference1"] = conf.backend;

  // ---- Weather (exact; selective in context via AvgTemp > 26) -------------
  auto weather_schema = std::make_shared<ServiceSchema>(
      "Weather", std::vector<AttributeDef>{
                     AttributeDef::Atomic("City", ValueType::kString),
                     AttributeDef::Atomic("Date", ValueType::kString),
                     AttributeDef::Atomic("AvgTemp", ValueType::kDouble),
                 });
  SECO_RETURN_IF_ERROR(
      reg.RegisterMart(std::make_shared<ServiceMart>("Weather", weather_schema)));
  SimServiceBuilder weather_builder("Weather1");
  weather_builder.Schema(weather_schema->attributes())
      .Pattern({{"City", Adornment::kInput},
                {"Date", Adornment::kInput},
                {"AvgTemp", Adornment::kOutput}})
      .Kind(ServiceKind::kExact)
      .Seed(params.seed ^ 0x55);
  ServiceStats weather_stats;
  weather_stats.avg_tuples_per_call = 1.0;
  weather_stats.latency_ms = params.weather_latency_ms;
  weather_stats.cost_per_call = 0.5;
  weather_builder.Stats(weather_stats);
  for (const auto& [city, date] : conf_city_date) {
    double temp = rng.NextDouble() < params.warm_fraction
                      ? 26.5 + rng.NextDouble() * 8.0
                      : 12.0 + rng.NextDouble() * 13.0;
    weather_builder.AddRow(
        Tuple(std::vector<TupleSlot>{Value(city), Value(date), Value(temp)}));
  }
  SECO_ASSIGN_OR_RETURN(BuiltService weather,
                        weather_builder.BuildInto(reg, "Weather"));
  scenario.backends["Weather1"] = weather.backend;

  // ---- Flight (search, ranked by price ascending) -------------------------
  auto flight_schema = std::make_shared<ServiceSchema>(
      "Flight", std::vector<AttributeDef>{
                    AttributeDef::Atomic("To", ValueType::kString),
                    AttributeDef::Atomic("Airline", ValueType::kString),
                    AttributeDef::Atomic("Price", ValueType::kDouble),
                });
  SECO_RETURN_IF_ERROR(
      reg.RegisterMart(std::make_shared<ServiceMart>("Flight", flight_schema)));
  SimServiceBuilder flight_builder("Flight1");
  flight_builder.Schema(flight_schema->attributes())
      .Pattern({{"To", Adornment::kInput},
                {"Airline", Adornment::kOutput},
                {"Price", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x66);
  ServiceStats flight_stats;
  flight_stats.chunk_size = params.flight_chunk_size;
  flight_stats.latency_ms = params.flight_latency_ms;
  flight_stats.cost_per_call = 2.0;
  flight_stats.decay = ScoreDecay::kQuadratic;
  flight_stats.avg_matches_per_binding = params.flights_per_city;
  flight_builder.Stats(flight_stats);
  for (const std::string& city : cities) {
    for (int f = 0; f < params.flights_per_city; ++f) {
      double price = 80.0 + rng.NextDouble() * 400.0;
      flight_builder.AddRow(
          Tuple(std::vector<TupleSlot>{
              Value(city), Value("Airline" + std::to_string(rng.Uniform(8))),
              Value(price)}),
          -price);
    }
  }
  SECO_ASSIGN_OR_RETURN(BuiltService flight, flight_builder.BuildInto(reg, "Flight"));
  scenario.backends["Flight1"] = flight.backend;

  // ---- Hotel (search, ranked by stars) -------------------------------------
  auto hotel_schema = std::make_shared<ServiceSchema>(
      "Hotel", std::vector<AttributeDef>{
                   AttributeDef::Atomic("City", ValueType::kString),
                   AttributeDef::Atomic("Name", ValueType::kString),
                   AttributeDef::Atomic("Stars", ValueType::kDouble),
                   AttributeDef::Atomic("Price", ValueType::kDouble),
               });
  SECO_RETURN_IF_ERROR(
      reg.RegisterMart(std::make_shared<ServiceMart>("Hotel", hotel_schema)));
  SimServiceBuilder hotel_builder("Hotel1");
  hotel_builder.Schema(hotel_schema->attributes())
      .Pattern({{"City", Adornment::kInput},
                {"Name", Adornment::kOutput},
                {"Stars", Adornment::kRanked},
                {"Price", Adornment::kOutput}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x77);
  ServiceStats hotel_stats;
  hotel_stats.chunk_size = params.hotel_chunk_size;
  hotel_stats.latency_ms = params.hotel_latency_ms;
  hotel_stats.cost_per_call = 1.5;
  hotel_stats.decay = ScoreDecay::kLinear;
  hotel_stats.avg_matches_per_binding = params.hotels_per_city;
  hotel_builder.Stats(hotel_stats);
  int hotel_id = 0;
  for (const std::string& city : cities) {
    for (int h = 0; h < params.hotels_per_city; ++h) {
      double stars = 1.0 + rng.NextDouble() * 4.0;
      hotel_builder.AddRow(
          Tuple(std::vector<TupleSlot>{
              Value(city), Value("Hotel" + std::to_string(hotel_id++)),
              Value(stars), Value(50.0 + stars * 40.0 + rng.NextDouble() * 30.0)}),
          stars);
    }
  }
  SECO_ASSIGN_OR_RETURN(BuiltService hotel, hotel_builder.BuildInto(reg, "Hotel"));
  scenario.backends["Hotel1"] = hotel.backend;

  // ---- Connection patterns --------------------------------------------------
  auto held_in = std::make_shared<ConnectionPattern>(
      "CheckWeather", "Conference", "Weather",
      std::vector<ConnectionClause>{{"City", Comparator::kEq, "City"},
                                    {"Date", Comparator::kEq, "Date"}});
  // Every conference city/date has a weather report: the join itself is
  // lossless; the warm_fraction shrinkage comes from the AvgTemp selection.
  held_in->set_selectivity(1.0);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(held_in));
  auto fly_to = std::make_shared<ConnectionPattern>(
      "FlyTo", "Conference", "Flight",
      std::vector<ConnectionClause>{{"City", Comparator::kEq, "To"}});
  fly_to->set_selectivity(1.0);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(fly_to));
  auto stay_at = std::make_shared<ConnectionPattern>(
      "StayAt", "Conference", "Hotel",
      std::vector<ConnectionClause>{{"City", Comparator::kEq, "City"}});
  stay_at->set_selectivity(1.0);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(stay_at));
  auto same_city = std::make_shared<ConnectionPattern>(
      "SameCity", "Flight", "Hotel",
      std::vector<ConnectionClause>{{"To", Comparator::kEq, "City"}});
  same_city->set_selectivity(1.0 / params.num_cities);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(same_city));

  scenario.inputs = {{"INPUT1", Value("databases")}, {"INPUT2", Value(26.0)}};
  scenario.query_text =
      "select Conference1 as C, Weather1 as W, Flight1 as F, Hotel1 as H "
      "where CheckWeather(C, W) and FlyTo(C, F) and StayAt(C, H) "
      "and SameCity(F, H) "
      "and C.Area = INPUT1 and W.AvgTemp > INPUT2 "
      "rank by (0.0, 0.0, 0.5, 0.5)";
  return scenario;
}

Result<Scenario> MakeDoctorScenario(const DoctorScenarioParams& params) {
  SplitMix64 rng(params.seed);
  Scenario scenario;
  scenario.registry = std::make_shared<ServiceRegistry>();
  ServiceRegistry& reg = *scenario.registry;

  const std::string user_city = "Milano";
  const std::string queried_specialty = "insomnia";
  const std::string queried_plan = "PlanA";

  std::vector<std::string> hospitals;
  for (int h = 0; h < params.num_hospitals; ++h) {
    hospitals.push_back("Hospital" + std::to_string(h));
  }

  // ---- Doctor (search: by specialty, ranked by rating) --------------------
  auto doctor_schema = std::make_shared<ServiceSchema>(
      "Doctor", std::vector<AttributeDef>{
                    AttributeDef::Atomic("Specialty", ValueType::kString),
                    AttributeDef::Atomic("Name", ValueType::kString),
                    AttributeDef::Atomic("HospitalName", ValueType::kString),
                    AttributeDef::Atomic("Rating", ValueType::kDouble),
                });
  SECO_RETURN_IF_ERROR(
      reg.RegisterMart(std::make_shared<ServiceMart>("Doctor", doctor_schema)));
  SimServiceBuilder doctor_builder("Doctor1");
  doctor_builder.Schema(doctor_schema->attributes())
      .Pattern({{"Specialty", Adornment::kInput},
                {"Name", Adornment::kOutput},
                {"HospitalName", Adornment::kOutput},
                {"Rating", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x88);
  ServiceStats doctor_stats;
  doctor_stats.chunk_size = params.doctor_chunk_size;
  doctor_stats.latency_ms = 110.0;
  doctor_stats.cost_per_call = 1.0;
  doctor_stats.decay = ScoreDecay::kLinear;
  doctor_stats.avg_matches_per_binding = params.doctors_per_specialty;
  doctor_builder.Stats(doctor_stats);
  const char* specialties[] = {"insomnia", "cardiology", "allergy"};
  for (const char* specialty : specialties) {
    for (int d = 0; d < params.doctors_per_specialty; ++d) {
      double rating = 1.0 - static_cast<double>(d) / params.doctors_per_specialty;
      doctor_builder.AddRow(
          Tuple({Value(specialty),
                 Value(std::string("Dr") + specialty[0] + std::to_string(d)),
                 Value(hospitals[rng.Uniform(hospitals.size())]),
                 Value(rating)}),
          rating);
    }
  }
  SECO_ASSIGN_OR_RETURN(BuiltService doctor, doctor_builder.BuildInto(reg, "Doctor"));
  scenario.backends["Doctor1"] = doctor.backend;

  // ---- Hospital (search: by city, ranked by quality) ----------------------
  auto hospital_schema = std::make_shared<ServiceSchema>(
      "Hospital", std::vector<AttributeDef>{
                      AttributeDef::Atomic("City", ValueType::kString),
                      AttributeDef::Atomic("Name", ValueType::kString),
                      AttributeDef::Atomic("Quality", ValueType::kDouble),
                  });
  SECO_RETURN_IF_ERROR(reg.RegisterMart(
      std::make_shared<ServiceMart>("Hospital", hospital_schema)));
  SimServiceBuilder hospital_builder("Hospital1");
  hospital_builder.Schema(hospital_schema->attributes())
      .Pattern({{"City", Adornment::kInput},
                {"Name", Adornment::kOutput},
                {"Quality", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch)
      .Seed(params.seed ^ 0x99);
  ServiceStats hospital_stats;
  hospital_stats.chunk_size = params.hospital_chunk_size;
  hospital_stats.latency_ms = 90.0;
  hospital_stats.cost_per_call = 1.0;
  hospital_stats.decay = ScoreDecay::kQuadratic;
  hospital_stats.avg_matches_per_binding = params.num_hospitals;
  hospital_builder.Stats(hospital_stats);
  for (int h = 0; h < params.num_hospitals; ++h) {
    double quality = 1.0 - static_cast<double>(h) / params.num_hospitals;
    hospital_builder.AddRow(
        Tuple({Value(user_city), Value(hospitals[h]), Value(quality)}), quality);
  }
  SECO_ASSIGN_OR_RETURN(BuiltService hospital,
                        hospital_builder.BuildInto(reg, "Hospital"));
  scenario.backends["Hospital1"] = hospital.backend;

  // ---- Insurance (exact lookup: hospital -> coverage flag) ----------------
  auto insurance_schema = std::make_shared<ServiceSchema>(
      "Insurance", std::vector<AttributeDef>{
                       AttributeDef::Atomic("HospitalName", ValueType::kString),
                       AttributeDef::Atomic("Plan", ValueType::kString),
                       AttributeDef::Atomic("Covered", ValueType::kBool),
                   });
  SECO_RETURN_IF_ERROR(reg.RegisterMart(
      std::make_shared<ServiceMart>("Insurance", insurance_schema)));
  SimServiceBuilder insurance_builder("Insurance1");
  insurance_builder.Schema(insurance_schema->attributes())
      .Pattern({{"HospitalName", Adornment::kInput},
                {"Plan", Adornment::kInput},
                {"Covered", Adornment::kOutput}})
      .Kind(ServiceKind::kExact)
      .Seed(params.seed ^ 0xAA);
  ServiceStats insurance_stats;
  insurance_stats.avg_tuples_per_call = 1.0;
  insurance_stats.latency_ms = 40.0;
  insurance_stats.cost_per_call = 0.2;
  insurance_builder.Stats(insurance_stats);
  for (const std::string& name : hospitals) {
    bool covered = rng.NextDouble() < params.coverage_fraction;
    insurance_builder.AddRow(
        Tuple({Value(name), Value(queried_plan), Value(covered)}));
  }
  SECO_ASSIGN_OR_RETURN(BuiltService insurance,
                        insurance_builder.BuildInto(reg, "Insurance"));
  scenario.backends["Insurance1"] = insurance.backend;

  // ---- Connection patterns -------------------------------------------------
  auto works_at = std::make_shared<ConnectionPattern>(
      "WorksAt", "Doctor", "Hospital",
      std::vector<ConnectionClause>{{"HospitalName", Comparator::kEq, "Name"}});
  works_at->set_selectivity(1.0 / params.num_hospitals);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(works_at));
  auto covered_by = std::make_shared<ConnectionPattern>(
      "CoveredBy", "Hospital", "Insurance",
      std::vector<ConnectionClause>{{"Name", Comparator::kEq, "HospitalName"}});
  covered_by->set_selectivity(1.0);
  SECO_RETURN_IF_ERROR(reg.RegisterConnectionPattern(covered_by));

  scenario.inputs = {{"INPUT1", Value(queried_specialty)},
                     {"INPUT2", Value(user_city)},
                     {"INPUT3", Value(queried_plan)}};
  scenario.query_text =
      "select Doctor1 as D, Hospital1 as H, Insurance1 as I "
      "where WorksAt(D, H) and CoveredBy(H, I) "
      "and D.Specialty = INPUT1 and H.City = INPUT2 and I.Plan = INPUT3 "
      "and I.Covered = true "
      "rank by (0.6, 0.4, 0.0)";
  return scenario;
}

Result<SyntheticPair> MakeSyntheticPair(const SyntheticPairParams& params) {
  SplitMix64 rng(params.seed);
  ZipfSampler zipf(static_cast<uint64_t>(params.key_domain), params.key_skew);
  auto make = [&](const char* name, int rows, int chunk, ScoreDecay decay,
                  int step_h, double latency,
                  uint64_t salt) -> Result<BuiltService> {
    SimServiceBuilder builder(name);
    builder
        .Schema({AttributeDef::Atomic("Key", ValueType::kInt),
                 AttributeDef::Atomic("Val", ValueType::kString),
                 AttributeDef::Atomic("Relevance", ValueType::kDouble)})
        .Pattern({{"Key", Adornment::kOutput},
                  {"Val", Adornment::kOutput},
                  {"Relevance", Adornment::kRanked}})
        .Kind(ServiceKind::kSearch)
        .Seed(params.seed ^ salt);
    ServiceStats stats;
    stats.chunk_size = chunk;
    stats.latency_ms = latency;
    stats.cost_per_call = 1.0;
    stats.decay = decay;
    stats.step_h = step_h;
    builder.Stats(stats);
    for (int i = 0; i < rows; ++i) {
      double quality = 1.0 - static_cast<double>(i) / rows;
      int64_t key = params.key_skew > 0.0
                        ? static_cast<int64_t>(zipf.Sample(rng))
                        : static_cast<int64_t>(rng.Uniform(params.key_domain));
      builder.AddRow(
          Tuple(std::vector<TupleSlot>{
              Value(key), Value(std::string(name) + "#" + std::to_string(i)),
              Value(quality)}),
          quality);
    }
    return builder.Build();
  };
  SECO_ASSIGN_OR_RETURN(BuiltService x,
                        make("SX", params.rows_x, params.chunk_x, params.decay_x,
                             params.step_h_x, params.latency_x_ms, 0xA1));
  SECO_ASSIGN_OR_RETURN(BuiltService y,
                        make("SY", params.rows_y, params.chunk_y, params.decay_y,
                             params.step_h_y, params.latency_y_ms, 0xB2));
  return SyntheticPair{std::move(x), std::move(y)};
}

}  // namespace seco
