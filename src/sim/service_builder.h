#ifndef SECO_SIM_SERVICE_BUILDER_H_
#define SECO_SIM_SERVICE_BUILDER_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "service/registry.h"
#include "service/service_interface.h"
#include "sim/simulated_service.h"

namespace seco {

/// A service interface together with the simulated backend that serves it;
/// the backend pointer allows tests and the oracle to inspect raw rows and
/// call counts.
struct BuiltService {
  std::shared_ptr<ServiceInterface> interface;
  std::shared_ptr<SimulatedService> backend;
};

/// Fluent builder assembling a simulated service and its interface in one
/// go. Used by fixtures, tests, and examples.
class SimServiceBuilder {
 public:
  explicit SimServiceBuilder(std::string name) : name_(std::move(name)) {}

  SimServiceBuilder& Schema(std::vector<AttributeDef> attributes) {
    schema_ = std::make_shared<ServiceSchema>(name_, std::move(attributes));
    return *this;
  }
  SimServiceBuilder& Pattern(
      std::vector<std::pair<std::string, Adornment>> adornments) {
    adornments_ = std::move(adornments);
    pattern_override_.reset();
    return *this;
  }
  SimServiceBuilder& Kind(ServiceKind kind) {
    kind_ = kind;
    return *this;
  }
  SimServiceBuilder& Stats(ServiceStats stats) {
    stats_ = stats;
    return *this;
  }
  SimServiceBuilder& Seed(uint64_t seed) {
    seed_ = seed;
    return *this;
  }
  /// Deterministic fault injection for the backend (see `FaultModel`).
  SimServiceBuilder& Faults(FaultProfile profile) {
    fault_profile_ = profile;
    return *this;
  }
  /// Appends a row; `quality` orders rows for ranked services (higher first).
  SimServiceBuilder& AddRow(Tuple row, double quality = 0.0) {
    rows_.push_back(std::move(row));
    quality_.push_back(quality);
    return *this;
  }

  /// Clones `source` into this builder: schema (shared), access pattern,
  /// kind, stats, seed, rows, and quality — a replica serving the same data
  /// under this builder's name. Call further setters afterwards to vary the
  /// copy (different `Pattern`, chunk size via `Stats`, `Faults`, `Seed`).
  /// The registry treats same-mart interfaces with the same schema signature
  /// as failover alternatives (`ServiceRegistry::AlternativesFor`).
  SimServiceBuilder& Replica(const BuiltService& source);

  /// Builds the interface + backend pair.
  Result<BuiltService> Build();

  /// Builds and registers into `registry` (optionally under a mart).
  Result<BuiltService> BuildInto(ServiceRegistry& registry,
                                 const std::string& mart_name = "");

 private:
  std::string name_;
  std::shared_ptr<const ServiceSchema> schema_;
  std::vector<std::pair<std::string, Adornment>> adornments_;
  std::optional<AccessPattern> pattern_override_;  // set by Replica()
  ServiceKind kind_ = ServiceKind::kExact;
  ServiceStats stats_;
  uint64_t seed_ = 42;
  FaultProfile fault_profile_;
  std::vector<Tuple> rows_;
  std::vector<double> quality_;
};

}  // namespace seco

#endif  // SECO_SIM_SERVICE_BUILDER_H_
