#include "sim/load_generator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"

namespace seco {

std::vector<LoadItem> LoadGenerator::Schedule() const {
  std::vector<LoadItem> schedule;
  schedule.reserve(std::max(0, profile_.num_queries));
  SplitMix64 arrivals(profile_.seed ^ 0xA5C1E7D3B2F49817ULL);
  SplitMix64 classes(profile_.seed ^ 0x1B56C4E9D8A73F02ULL);
  SplitMix64 ks(profile_.seed ^ 0x7E2D9F4C1A8B5E63ULL);
  SplitMix64 overlap(profile_.seed ^ 0x3C6EF372FE94F82AULL);
  SplitMix64 abandons(profile_.seed ^ 0x9D4C2B8E6F1A3750ULL);

  double now_ms = 0.0;
  for (int i = 0; i < profile_.num_queries; ++i) {
    bool new_group =
        profile_.burst_size <= 0 || i % profile_.burst_size == 0;
    if (i > 0 && new_group) {
      // Exponential gap; 1 - u keeps the argument of log strictly positive.
      double u = arrivals.NextDouble();
      now_ms += -profile_.mean_interarrival_ms * std::log(1.0 - u);
    }

    LoadItem item;
    item.arrival_ms = now_ms;
    item.request.query_text = query_text_;
    item.request.input_bindings = input_bindings_;
    item.request.priority = classes.NextDouble() < profile_.interactive_fraction
                                ? PriorityClass::kInteractive
                                : PriorityClass::kBatch;
    int k_lo = std::max(1, profile_.k_min);
    int k_hi = std::max(k_lo, profile_.k_max);
    item.request.k = static_cast<int>(ks.UniformRange(k_lo, k_hi));
    item.request.max_calls = profile_.max_calls;
    // Non-overlapping requests get a unique call budget: it perturbs the
    // answer-cache signature but not execution (budgets this large are
    // never exhausted), so cache-off runs are unaffected. The draw happens
    // unconditionally to keep the other streams' values stable across
    // overlap settings.
    double miss_draw = overlap.NextDouble();
    if (miss_draw >= profile_.overlap_fraction) {
      item.request.max_calls = profile_.max_calls + 1 + i;
    }
    item.request.deadline_ms = profile_.queue_deadline_ms;
    item.request.streaming = profile_.streaming;
    // Abandonment rides its own stream (drawn unconditionally, like the
    // overlap draw): flipping `abandon_fraction` changes which requests are
    // walked away from, never what they ask for.
    item.abandon = abandons.NextDouble() < profile_.abandon_fraction;
    item.abandon_after_ms = profile_.abandon_after_ms;
    schedule.push_back(std::move(item));
  }
  return schedule;
}

int64_t LoadReport::CountOutcome(ServedOutcome outcome) const {
  return std::count_if(
      responses.begin(), responses.end(),
      [outcome](const QueryResponse& r) { return r.outcome == outcome; });
}

namespace {

/// Fires `QueryServer::Cancel` for abandoned requests on their client-side
/// timers — one worker thread over a deadline heap, so a storm of
/// abandonments costs one thread, not one per request. A cancel whose query
/// already resolved is a harmless no-op, so teardown simply drops whatever
/// is still pending.
class Abandoner {
 public:
  explicit Abandoner(QueryServer* server) : server_(server) {
    worker_ = std::thread([this] { Run(); });
  }

  ~Abandoner() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void Arm(uint64_t id, double delay_ms) {
    const auto when = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              std::max(0.0, delay_ms)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      heap_.push(Entry{when, id});
    }
    cv_.notify_all();
  }

 private:
  struct Entry {
    std::chrono::steady_clock::time_point when;
    uint64_t id = 0;
    bool operator>(const Entry& other) const { return when > other.when; }
  };

  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (heap_.empty()) {
        if (done_) return;
        cv_.wait(lock, [this] { return done_ || !heap_.empty(); });
        continue;
      }
      const auto next = heap_.top().when;
      if (std::chrono::steady_clock::now() < next) {
        cv_.wait_until(lock, next);  // re-armed earlier entries re-loop
        continue;
      }
      std::vector<uint64_t> due;
      const auto now = std::chrono::steady_clock::now();
      while (!heap_.empty() && heap_.top().when <= now) {
        due.push_back(heap_.top().id);
        heap_.pop();
      }
      lock.unlock();
      for (uint64_t id : due) (void)server_->Cancel(id, "abandoned by client");
      lock.lock();
    }
  }

  QueryServer* const server_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  bool done_ = false;
  std::thread worker_;
};

}  // namespace

LoadReport DriveLoad(QueryServer* server,
                     const std::vector<LoadItem>& schedule,
                     const LoadProfile& profile) {
  LoadReport report;
  report.responses.resize(schedule.size());
  auto start = std::chrono::steady_clock::now();

  // Only spin the canceller thread up when something will use it.
  std::optional<Abandoner> abandoner;
  for (const LoadItem& item : schedule) {
    if (item.abandon) {
      abandoner.emplace(server);
      break;
    }
  }
  auto submit = [&](const LoadItem& item) {
    QueryServer::SubmittedQuery submitted =
        server->SubmitWithId(item.request);
    // id 0 = already resolved at submission; nothing to abandon.
    if (item.abandon && submitted.id != 0 && abandoner.has_value()) {
      abandoner->Arm(submitted.id, item.abandon_after_ms);
    }
    return std::move(submitted.future);
  };

  if (profile.closed_loop_width > 0) {
    // Closed loop: a sliding window of outstanding queries. The next query
    // is submitted only after the oldest outstanding one resolves, so the
    // offered load tracks the server's own pace.
    std::deque<std::pair<size_t, std::future<QueryResponse>>> outstanding;
    for (size_t i = 0; i < schedule.size(); ++i) {
      if (static_cast<int>(outstanding.size()) >= profile.closed_loop_width) {
        auto [index, future] = std::move(outstanding.front());
        outstanding.pop_front();
        report.responses[index] = future.get();
      }
      outstanding.emplace_back(i, submit(schedule[i]));
    }
    while (!outstanding.empty()) {
      auto [index, future] = std::move(outstanding.front());
      outstanding.pop_front();
      report.responses[index] = future.get();
    }
  } else {
    // Open loop: submit on schedule no matter how the server keeps up —
    // the discipline that actually overloads it.
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(schedule.size());
    double last_arrival = 0.0;
    for (const LoadItem& item : schedule) {
      if (profile.realtime_factor > 0.0 && item.arrival_ms > last_arrival) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            (item.arrival_ms - last_arrival) * profile.realtime_factor));
      }
      last_arrival = item.arrival_ms;
      futures.push_back(submit(item));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      report.responses[i] = futures[i].get();
    }
  }

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return report;
}

std::optional<LoadProfile> LoadProfileByName(const std::string& name) {
  LoadProfile profile;
  if (name == "light") {
    // Below capacity: closed loop narrower than the default admission
    // window, so nothing queues long and nothing sheds.
    profile.num_queries = 32;
    profile.closed_loop_width = 2;
    profile.interactive_fraction = 0.75;
    return profile;
  }
  if (name == "overload") {
    // Open loop, back to back: offered load is bounded only by submission
    // speed — far past any configured capacity.
    profile.num_queries = 160;
    profile.closed_loop_width = 0;
    profile.mean_interarrival_ms = 0.0;
    profile.interactive_fraction = 0.5;
    return profile;
  }
  if (name == "burst") {
    // Synchronized arrival groups with quiet gaps: exercises shedding and
    // recovery in alternation.
    profile.num_queries = 96;
    profile.closed_loop_width = 0;
    profile.burst_size = 16;
    profile.mean_interarrival_ms = 40.0;
    profile.realtime_factor = 1.0;
    profile.interactive_fraction = 0.5;
    return profile;
  }
  if (name == "serial") {
    // One query outstanding at a time: with the ladder off, every answer
    // is independent of timing, so a serial run is the byte-exact
    // equivalence leg for wire-vs-in-process diffs (docs/NETWORK.md).
    profile.num_queries = 24;
    profile.closed_loop_width = 1;
    profile.interactive_fraction = 0.75;
    return profile;
  }
  if (name == "cachestress") {
    // High-overlap repeats in a moderate closed loop: most requests share a
    // cache identity, so with the answer cache on the run is dominated by
    // warm probes and single-flight coordination — the memo table's
    // contended paths — while the off-cache run replays identical work.
    profile.num_queries = 192;
    profile.closed_loop_width = 8;
    profile.interactive_fraction = 0.6;
    profile.k_min = 6;
    profile.k_max = 6;
    profile.overlap_fraction = 0.9;
    return profile;
  }
  return std::nullopt;
}

}  // namespace seco
