#ifndef SECO_SIM_SIMULATED_SERVICE_H_
#define SECO_SIM_SIMULATED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/interrupt.h"
#include "common/random.h"
#include "service/access_pattern.h"
#include "sim/fault_model.h"
#include "service/invocation.h"
#include "service/schema.h"
#include "service/service_interface.h"
#include "service/tuple.h"

namespace seco {

/// Deterministic per-call latency: `base_ms` plus bounded jitter derived by
/// hashing (seed, call ordinal). Stateless — unlike the earlier shared-RNG
/// stream, a call's latency depends only on its identity, never on how
/// calls from concurrent threads interleave, so simulated timings are
/// bit-reproducible under any schedule.
class LatencyModel {
 public:
  LatencyModel(double base_ms, double jitter_fraction, uint64_t seed)
      : base_ms_(base_ms), jitter_fraction_(jitter_fraction), seed_(seed) {}

  /// Latency of the call identified by `ordinal`. The sim layer uses a
  /// stable hash of the request (inputs + chunk index) as the ordinal, so
  /// identical requests always cost the same simulated time.
  double LatencyForOrdinal(uint64_t ordinal) const {
    SplitMix64 rng(seed_ ^ (ordinal * 0x9E3779B97F4A7C15ULL));
    double u = rng.NextDouble();  // [0,1)
    return base_ms_ * (1.0 + jitter_fraction_ * (2.0 * u - 1.0));
  }

 private:
  double base_ms_;
  double jitter_fraction_;
  uint64_t seed_;
};

/// An in-process stand-in for a remote search/exact service (substitution
/// for the paper's live web services; see DESIGN.md).
///
/// Holds a materialized relation. On each call it selects the rows whose
/// input-path values match the request bindings (existentially for repeating
/// groups), orders them by the row's intrinsic quality, assigns scores from
/// the declared decay model, and returns the requested chunk. Exact services
/// return the whole matching set (or its `chunk_index`-th chunk when
/// chunked) without scores.
class SimulatedService : public ServiceCallHandler {
 public:
  /// `quality[i]` ranks row i (higher = more relevant); if empty, row order
  /// is used as the ranking.
  SimulatedService(std::shared_ptr<const ServiceSchema> schema,
                   AccessPattern pattern, ServiceKind kind, ServiceStats stats,
                   std::vector<Tuple> rows, std::vector<double> quality,
                   uint64_t seed);

  Result<ServiceResponse> Call(const ServiceRequest& request) override;

  /// Backdoor for the semantics oracle and tests: all rows, unranked.
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Row quality weights as given at construction (may be empty); replicas
  /// built via `SimServiceBuilder::Replica` copy these so the clone ranks
  /// rows identically.
  const std::vector<double>& quality() const { return quality_; }

  /// Determinism seed for latency jitter and default fault keying.
  uint64_t seed() const { return seed_; }

  /// Matching rows in rank order with assigned scores (no chunking); the
  /// oracle uses this to compute reference top-k answers.
  Result<ServiceResponse> FullScan(const std::vector<Value>& inputs) const;

  /// Number of Call() invocations served so far. Thread-safe.
  int64_t call_count() const {
    return call_count_.load(std::memory_order_relaxed);
  }
  void ResetCallCount() { call_count_.store(0, std::memory_order_relaxed); }

  /// Makes the service *opaque*: results stay in ranking order but no
  /// scores are returned (§3.1 footnote 3 / §4.1 "opaque rankings").
  /// Configure before issuing concurrent calls.
  void set_hide_scores(bool hide) { hide_scores_ = hide; }

  /// When > 0, every Call() actually blocks for `latency_ms * factor`
  /// milliseconds of real wall-clock time, turning the simulated latency
  /// into observable I/O-style waiting (benchmarks use small factors so a
  /// 140 ms simulated call sleeps ~3 ms). 0 = pure simulation, no sleeping.
  /// Configure before issuing concurrent calls.
  void set_realtime_factor(double factor) { realtime_factor_ = factor; }

  /// Makes the realtime-mode pacing sleep interruptible: a triggered flag
  /// ends the sleep immediately so executors tearing down (budget
  /// exhaustion, early k) never wait out speculative calls still in flight.
  /// The interrupted call still returns its full response — only the
  /// blocking is cut short. Configure before issuing concurrent calls.
  void set_interrupt(std::shared_ptr<InterruptFlag> interrupt) {
    interrupt_ = std::move(interrupt);
  }

  /// Injects deterministic faults (see `FaultModel`): transient errors and
  /// outages fail the call, latency spikes inflate `latency_ms` (and the
  /// realtime sleep). If `profile.seed` is 0 the service's own seed is used,
  /// so distinct services strike distinct request sets by default.
  /// Configure before issuing concurrent calls.
  void set_fault_profile(FaultProfile profile) {
    if (profile.seed == 0) profile.seed = seed_;
    faults_ = FaultModel(profile);
  }
  const FaultModel& fault_model() const { return faults_; }

 private:
  Result<std::vector<int>> MatchingRowIndices(
      const std::vector<Value>& inputs) const;

  std::shared_ptr<const ServiceSchema> schema_;
  AccessPattern pattern_;
  ServiceKind kind_;
  ServiceStats stats_;
  std::vector<Tuple> rows_;
  std::vector<double> quality_;
  std::vector<int> rank_order_;  // row indices sorted by quality desc
  LatencyModel latency_;
  uint64_t seed_;
  FaultModel faults_{FaultProfile{}};
  std::atomic<int64_t> call_count_{0};
  bool hide_scores_ = false;
  double realtime_factor_ = 0.0;
  std::shared_ptr<InterruptFlag> interrupt_;  // may be null
};

}  // namespace seco

#endif  // SECO_SIM_SIMULATED_SERVICE_H_
