#ifndef SECO_SIM_SCORING_H_
#define SECO_SIM_SCORING_H_

#include "service/service_interface.h"

namespace seco {

/// Computes the score of the tuple at 0-based `position` out of `total`
/// ranked tuples, under the given decay model (§4.1). Scores are in [0,1]
/// and non-increasing in `position`:
///  - kStep: `high` for the first `step_h * chunk_size` tuples, `low` after;
///  - kLinear: 1 - position/total;
///  - kQuadratic: (1 - position/total)^2;
///  - kOpaque: same values as kLinear (the function exists but is hidden
///    from the optimizer, which is modelled at the ServiceInterface level);
///  - kNone: constant 1.0 (unranked).
double ScoreAtPosition(ScoreDecay decay, int position, int total,
                       int chunk_size, int step_h, double step_high,
                       double step_low);

/// Convenience overload reading the model from `stats`.
double ScoreAtPosition(const ServiceStats& stats, int position, int total);

}  // namespace seco

#endif  // SECO_SIM_SCORING_H_
