#include "sim/simulated_service.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>

#include "sim/scoring.h"

namespace seco {

SimulatedService::SimulatedService(std::shared_ptr<const ServiceSchema> schema,
                                   AccessPattern pattern, ServiceKind kind,
                                   ServiceStats stats, std::vector<Tuple> rows,
                                   std::vector<double> quality, uint64_t seed)
    : schema_(std::move(schema)),
      pattern_(std::move(pattern)),
      kind_(kind),
      stats_(stats),
      rows_(std::move(rows)),
      quality_(std::move(quality)),
      latency_(stats.latency_ms, /*jitter_fraction=*/0.2, seed),
      seed_(seed) {
  rank_order_.resize(rows_.size());
  std::iota(rank_order_.begin(), rank_order_.end(), 0);
  if (!quality_.empty()) {
    std::stable_sort(rank_order_.begin(), rank_order_.end(), [this](int a, int b) {
      return quality_[a] > quality_[b];
    });
  }
}

Result<std::vector<int>> SimulatedService::MatchingRowIndices(
    const std::vector<Value>& inputs) const {
  const std::vector<AttrPath>& in_paths = pattern_.input_paths();
  if (inputs.size() != in_paths.size()) {
    return Status::InvalidArgument(
        "service expects " + std::to_string(in_paths.size()) + " inputs, got " +
        std::to_string(inputs.size()));
  }
  std::vector<int> out;
  for (int row_idx : rank_order_) {
    const Tuple& row = rows_[row_idx];
    bool match = true;
    for (size_t i = 0; i < in_paths.size(); ++i) {
      // A row matches an input binding if some candidate value at the path
      // equals the bound value (existential over repeating-group instances).
      bool any = false;
      Status status = Status::OK();
      row.ForEachCandidateAt(in_paths[i], [&](const Value& v) {
        Result<bool> eq = v.Compare(Comparator::kEq, inputs[i]);
        if (!eq.ok()) {
          status = eq.status();
          return false;
        }
        if (eq.value()) any = true;
        return !any;
      });
      SECO_RETURN_IF_ERROR(status);
      if (!any) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(row_idx);
  }
  return out;
}

Result<ServiceResponse> SimulatedService::FullScan(
    const std::vector<Value>& inputs) const {
  SECO_ASSIGN_OR_RETURN(std::vector<int> matches, MatchingRowIndices(inputs));
  ServiceResponse resp;
  int total = static_cast<int>(matches.size());
  for (int pos = 0; pos < total; ++pos) {
    resp.tuples.push_back(rows_[matches[pos]]);
    if (kind_ == ServiceKind::kSearch) {
      resp.scores.push_back(ScoreAtPosition(stats_, pos, total));
    }
  }
  resp.exhausted = true;
  resp.latency_ms = 0.0;
  return resp;
}

Result<ServiceResponse> SimulatedService::Call(const ServiceRequest& request) {
  call_count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t ordinal = RequestOrdinal(request);
  if (faults_.active()) {
    // Failed attempts cost no simulated time: transient errors model a
    // refused connection, and an outage is discovered immediately.
    Status fault = faults_.FaultFor(ordinal, request.attempt);
    if (!fault.ok()) return fault;
  }
  SECO_ASSIGN_OR_RETURN(std::vector<int> matches,
                        MatchingRowIndices(request.inputs));
  ServiceResponse resp;
  resp.latency_ms = latency_.LatencyForOrdinal(ordinal);
  if (faults_.active()) {
    resp.latency_ms *= faults_.LatencyFactor(ordinal, request.attempt);
  }
  if (realtime_factor_ > 0.0) {
    // Model the remote round-trip as real blocking so concurrent executors
    // can overlap calls on the wall clock. An interrupt flag cuts the
    // blocking short (never the response) when the executor is tearing down.
    std::chrono::duration<double, std::milli> pause(resp.latency_ms *
                                                    realtime_factor_);
    if (interrupt_ != nullptr) {
      interrupt_->SleepFor(pause);
    } else {
      std::this_thread::sleep_for(pause);
    }
  }
  int total = static_cast<int>(matches.size());

  int begin = 0, end = total;
  if (stats_.chunked || kind_ == ServiceKind::kSearch) {
    int chunk = std::max(stats_.chunk_size, 1);
    begin = request.chunk_index * chunk;
    end = std::min(begin + chunk, total);
    resp.exhausted = end >= total;
  } else {
    if (request.chunk_index > 0) {
      // Non-chunked service: only chunk 0 exists.
      resp.exhausted = true;
      return resp;
    }
    resp.exhausted = true;
  }
  for (int pos = begin; pos < end; ++pos) {
    resp.tuples.push_back(rows_[matches[pos]]);
    if (kind_ == ServiceKind::kSearch && !hide_scores_) {
      resp.scores.push_back(ScoreAtPosition(stats_, pos, total));
    }
  }
  return resp;
}

}  // namespace seco
