#ifndef SECO_SIM_FIXTURES_H_
#define SECO_SIM_FIXTURES_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "service/registry.h"
#include "sim/service_builder.h"

namespace seco {

/// Parameters for the Movie/Theatre/Restaurant running example (§3.1, §5.6).
struct MovieScenarioParams {
  uint64_t seed = 20090401;
  int num_movies = 400;
  /// Movies that match the queried genre+country (>= 100 so that the
  /// paper's 5 fetches x chunk 20 are available).
  int matching_movies = 150;
  int num_theatres = 40;
  int movie_chunk_size = 20;     // chapter: chunks of 20 movies
  int theatre_chunk_size = 5;    // chapter: chunks of size 5
  int restaurant_chunk_size = 5;
  /// P(a given movie is shown in a given theatre) — chapter: 2%.
  double shows_selectivity = 0.02;
  /// P(a theatre has a close restaurant) — chapter: 40%.
  double dinner_selectivity = 0.40;
  ScoreDecay movie_decay = ScoreDecay::kLinear;
  ScoreDecay theatre_decay = ScoreDecay::kLinear;
  double movie_latency_ms = 140.0;
  double theatre_latency_ms = 90.0;
  double restaurant_latency_ms = 110.0;
};

/// A fully assembled scenario: registry with marts/interfaces/connection
/// patterns, the backends for introspection, and the INPUT bindings that
/// make the canonical query run.
struct Scenario {
  std::shared_ptr<ServiceRegistry> registry;
  std::map<std::string, std::shared_ptr<SimulatedService>> backends;
  std::map<std::string, Value> inputs;
  /// The canonical query text for this scenario, in SeCo query syntax.
  std::string query_text;
};

/// Registers a replica of `interface_name` (an existing interface of
/// `scenario`) named `replica_name` under the same mart: same schema, access
/// pattern, kind, stats, seed, and data, served by a fresh backend. The new
/// backend is added to `scenario->backends`. Use the returned builder output
/// (or mutate the backend) to give the replica a different fault profile
/// before running; `ServiceRegistry::AlternativesFor(interface_name)` will
/// list it as a failover candidate.
Result<BuiltService> AddReplica(Scenario* scenario,
                                const std::string& interface_name,
                                const std::string& replica_name);

/// Builds the chapter's running example: marts Movie/Theatre/Restaurant,
/// interfaces Movie11/Theatre11/Restaurant11 with the §5.6 adornments,
/// connection patterns Shows (2%) and DinnerPlace (40%), and synthetic data
/// realizing those selectivities.
///
/// Faithfulness notes: (1) the chapter adorns Movie1.Openings.Date as input
/// but then filters it with '>', which its own feasibility rule (equality
/// binding) does not cover — we adorn Date as output and apply the date
/// filter as a selection node; (2) the chapter's query writes
/// `T.Category.Name` although Category belongs to Restaurant — we attach it
/// to R. Both deviations are documented here and in DESIGN.md.
Result<Scenario> MakeMovieScenario(const MovieScenarioParams& params = {});

/// Parameters for the Conference/Weather/Flight/Hotel plan of Figs. 2-3.
struct ConferenceScenarioParams {
  uint64_t seed = 20090315;
  int num_conferences = 20;  // chapter: Conference produces 20 on average
  int num_cities = 12;
  int flights_per_city = 25;
  int hotels_per_city = 25;
  int flight_chunk_size = 5;
  int hotel_chunk_size = 5;
  /// Fraction of (city, date) pairs whose average temperature exceeds the
  /// 26C threshold, making Weather selective in the context of the query.
  double warm_fraction = 0.35;
  double conference_latency_ms = 120.0;
  double weather_latency_ms = 60.0;
  double flight_latency_ms = 200.0;
  double hotel_latency_ms = 150.0;
};

/// Builds the Fig. 2/3 example: exact proliferative Conference, exact
/// Weather (selective in context via AvgTemp > 26), search services Flight
/// and Hotel joined by a merge-scan parallel join.
Result<Scenario> MakeConferenceScenario(const ConferenceScenarioParams& params = {});

/// Parameters of the "best doctor to cure insomnia in a nearby hospital"
/// scenario — the canonical multi-domain question of the ICDE'09 Search
/// Computing vision paper that this chapter's framework answers.
struct DoctorScenarioParams {
  uint64_t seed = 20090512;
  int num_hospitals = 15;
  int doctors_per_specialty = 60;
  int doctor_chunk_size = 5;
  int hospital_chunk_size = 5;
  /// Fraction of hospitals covered by the queried insurance plan (makes the
  /// exact Insurance service selective in context).
  double coverage_fraction = 0.5;
};

/// Two parallel search services — Doctor (by specialty, ranked by rating)
/// and Hospital (by city, ranked by quality) — joined on the hospital name
/// (connection pattern WorksAt), plus an exact Insurance lookup piped from
/// the hospital (pattern CoveredBy) whose Covered flag is filtered by a
/// selection.
Result<Scenario> MakeDoctorScenario(const DoctorScenarioParams& params = {});

/// Parameters for a controllable pair of search services used by the join
/// method experiments (§4): keys drawn uniformly from a domain of size
/// `key_domain` give join selectivity 1/key_domain.
struct SyntheticPairParams {
  uint64_t seed = 7;
  int rows_x = 200;
  int rows_y = 200;
  int chunk_x = 10;
  int chunk_y = 10;
  int key_domain = 50;
  /// Zipf skew of the key distribution (0 = uniform). Skewed keys violate
  /// the uniform-value assumption of the §3.2 cost model: a few hot keys
  /// carry most matches.
  double key_skew = 0.0;
  ScoreDecay decay_x = ScoreDecay::kLinear;
  ScoreDecay decay_y = ScoreDecay::kLinear;
  int step_h_x = 2;
  int step_h_y = 2;
  double latency_x_ms = 100.0;
  double latency_y_ms = 100.0;
};

/// Two ranked search services SX/SY over {Key:int, Val:string} with no
/// input attributes, for direct exercise of join methods.
struct SyntheticPair {
  BuiltService x;
  BuiltService y;
};

Result<SyntheticPair> MakeSyntheticPair(const SyntheticPairParams& params = {});

}  // namespace seco

#endif  // SECO_SIM_FIXTURES_H_
