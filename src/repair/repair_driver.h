#ifndef SECO_REPAIR_REPAIR_DRIVER_H_
#define SECO_REPAIR_REPAIR_DRIVER_H_

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"
#include "repair/plan_repairer.h"
#include "repair/repair.h"

namespace seco {

/// The run-repair-rerun loop shared by both engines. `R` is the engine's
/// result type and must expose `degraded` (vector of `DegradedStatus`),
/// `complete`, `cache_hits`, and a `RepairStats repair` member.
///
/// - `run(plan)` executes one round with degradation forced on and the
///   shared `ServiceCallCache` attached, so an abandoned round's chunks are
///   salvaged by the next round as cache hits.
/// - `warm(result, plan)` reports per-interface calls materialized in the
///   cache by that round (charged calls + hits it replayed itself).
/// - `clock(result)` is the round's simulated clock, logged as
///   `abandoned_ms` for rounds that get replanned away.
///
/// Determinism: a round's degraded set derives from the seeded fault model
/// via deterministic request ordinals, so the lost-service set — and hence
/// every replanning decision — is identical at any `{num_threads,
/// prefetch_depth}`. Replanning time is wall-clock and goes to
/// `RepairStats.replan_ms` only.
template <typename R, typename RunFn, typename WarmFn, typename ClockFn>
Result<R> RunWithRepair(const QueryPlan& plan, const RepairOptions& options,
                        const RunFn& run, const WarmFn& warm,
                        const ClockFn& clock) {
  if (options.registry == nullptr) {
    return Status::InvalidArgument(
        "repair policy '" + std::string(RepairPolicyToString(options.policy)) +
        "' requires RepairOptions::registry");
  }
  PlanRepairer repairer(*options.registry, options.optimizer);
  RepairStats stats;
  std::set<std::string> dead;
  QueryPlan current = plan;

  for (int round = 0;; ++round) {
    SECO_ASSIGN_OR_RETURN(R result, run(current));

    // Services lost *by this round's own faults*: direct (non-cascaded,
    // non-deadline) degradations not already written off. Deterministic —
    // unlike the ServiceLostCollector, which also sees speculative fetches.
    std::vector<std::string> lost;
    for (const DegradedStatus& d : result.degraded) {
      if (d.cascaded || d.query_deadline) continue;
      if (d.service.empty() || dead.count(d.service) > 0) continue;
      lost.push_back(d.service);
    }
    std::sort(lost.begin(), lost.end());
    lost.erase(std::unique(lost.begin(), lost.end()), lost.end());

    const bool out_of_rounds = round >= options.max_rounds;
    if (lost.empty() || out_of_rounds) {
      stats.salvaged_calls = round > 0 ? result.cache_hits : 0;
      if (options.policy == RepairPolicy::kFailover && !result.complete) {
        std::string detail = out_of_rounds && !lost.empty()
                                 ? "repair rounds exhausted"
                                 : "plan still degraded after repair";
        return Status::Unavailable("failover repair failed: " + detail);
      }
      result.repair = std::move(stats);
      return result;
    }

    stats.events += static_cast<int>(lost.size());
    stats.abandoned_ms += clock(result);
    std::map<std::string, int64_t> warm_calls = warm(result, current);
    for (const std::string& name : lost) dead.insert(name);

    auto t0 = std::chrono::steady_clock::now();
    Result<RepairedPlan> repaired =
        repairer.Repair(current, lost, dead, warm_calls);
    stats.replan_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (!repaired.ok()) {
      if (options.policy == RepairPolicy::kFailover) {
        return repaired.status();
      }
      // failover_then_degrade: the round we already ran *is* the degraded
      // answer; keep it and log why no repair happened.
      for (const std::string& name : lost) {
        stats.log.push_back({name, "", repaired.status().message()});
      }
      stats.salvaged_calls = round > 0 ? result.cache_hits : 0;
      result.repair = std::move(stats);
      return result;
    }

    RepairedPlan rp = std::move(repaired).value();
    ++stats.replans;
    for (const ReplicaChoice& choice : rp.choices) {
      stats.log.push_back({choice.lost, choice.replacement, "failover"});
    }
    for (const std::string& name : rp.unrepaired) {
      stats.log.push_back({name, "", "no feasible replica"});
    }
    if (options.policy == RepairPolicy::kFailover && !rp.unrepaired.empty()) {
      std::string names;
      for (const std::string& name : rp.unrepaired) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      return Status::Unavailable("no feasible replica for: " + names);
    }
    current = std::move(rp.plan);
  }
}

}  // namespace seco

#endif  // SECO_REPAIR_REPAIR_DRIVER_H_
