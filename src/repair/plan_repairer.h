#ifndef SECO_REPAIR_PLAN_REPAIRER_H_
#define SECO_REPAIR_PLAN_REPAIRER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "repair/repair.h"
#include "service/registry.h"

namespace seco {

/// One accepted substitution: `lost` replanned onto `replacement`.
struct ReplicaChoice {
  std::string lost;
  std::string replacement;
  /// Optimizer cost of the full repaired plan under this substitution.
  double cost = 0.0;
  /// Estimated cost already paid for by cached chunks (see
  /// `PlanRepairer::Repair`); used only to rank candidate replicas.
  double salvage_credit = 0.0;
};

/// Outcome of a repair: the re-optimized plan plus what was (not) replaced.
struct RepairedPlan {
  QueryPlan plan;
  double cost = 0.0;
  std::vector<ReplicaChoice> choices;
  /// Lost interfaces for which no feasible replica exists; the caller
  /// decides whether they degrade or fail the query.
  std::vector<std::string> unrepaired;
};

/// Replans a partially executed query around permanently lost services.
///
/// For every lost interface the repairer consults the registry for replicas
/// (`AlternativesFor`: same mart, same logical signature), checks that the
/// substituted query stays feasible (`CheckFeasibility` — a replica with a
/// different access pattern may need different piping), and re-runs the full
/// branch-and-bound optimizer so topology and join strategies (pipe vs
/// parallel) are re-derived, not patched. Among several feasible replicas it
/// prefers the lowest `cost - salvage_credit`, where the credit prices the
/// chunks the abandoned run already materialized into the shared
/// `ServiceCallCache` at zero (surviving services' prefixes replay as cache
/// hits, so their estimated calls are free up to the warm-call count).
///
/// The repairer is deliberately execution-free: it never touches caches or
/// backends, so it cannot perturb the determinism of the runs around it.
class PlanRepairer {
 public:
  PlanRepairer(const ServiceRegistry& registry, OptimizerOptions options)
      : registry_(registry), options_(options) {}

  /// Repairs `failed` (whose execution degraded) by substituting replicas
  /// for `lost` interfaces. `dead` is every interface declared lost so far
  /// (across rounds) — never chosen as a replacement. `warm_calls` maps
  /// interface name -> calls already materialized in the shared cache.
  ///
  /// Fails with kNotFound when not a single lost interface could be
  /// replaced; otherwise returns the re-optimized plan with per-interface
  /// outcomes.
  Result<RepairedPlan> Repair(
      const QueryPlan& failed, const std::vector<std::string>& lost,
      const std::set<std::string>& dead,
      const std::map<std::string, int64_t>& warm_calls) const;

 private:
  /// Estimated cost of `plan` already covered by cached chunks.
  double SalvageCredit(const QueryPlan& plan,
                       const std::map<std::string, int64_t>& warm_calls) const;

  const ServiceRegistry& registry_;
  OptimizerOptions options_;
};

}  // namespace seco

#endif  // SECO_REPAIR_PLAN_REPAIRER_H_
