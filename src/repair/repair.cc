#include "repair/repair.h"

namespace seco {

const char* RepairPolicyToString(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kOff:
      return "off";
    case RepairPolicy::kDegrade:
      return "degrade";
    case RepairPolicy::kFailover:
      return "failover";
    case RepairPolicy::kFailoverThenDegrade:
      return "failover_then_degrade";
  }
  return "?";
}

Result<RepairPolicy> ParseRepairPolicy(const std::string& text) {
  if (text == "off") return RepairPolicy::kOff;
  if (text == "degrade") return RepairPolicy::kDegrade;
  if (text == "failover") return RepairPolicy::kFailover;
  if (text == "failover_then_degrade") {
    return RepairPolicy::kFailoverThenDegrade;
  }
  return Status::InvalidArgument(
      "unknown repair policy '" + text +
      "' (expected off|degrade|failover|failover_then_degrade)");
}

}  // namespace seco
