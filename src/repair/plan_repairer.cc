#include "repair/plan_repairer.h"

#include <algorithm>
#include <memory>

#include "query/feasibility.h"

namespace seco {

namespace {

void Substitute(BoundQuery* query, int atom_index,
                const std::shared_ptr<ServiceInterface>& iface) {
  BoundAtom& atom = query->atoms[atom_index];
  atom.iface = iface;
  atom.service_name = iface->name();
  atom.schema = iface->schema_ptr();
  atom.candidates.clear();
}

bool AllResolved(const BoundQuery& query) {
  for (const BoundAtom& atom : query.atoms) {
    if (atom.iface == nullptr) return false;
  }
  return true;
}

}  // namespace

double PlanRepairer::SalvageCredit(
    const QueryPlan& plan,
    const std::map<std::string, int64_t>& warm_calls) const {
  double credit = 0.0;
  for (const PlanNode& node : plan.nodes()) {
    if (node.kind != PlanNodeKind::kServiceCall || node.iface == nullptr) {
      continue;
    }
    auto it = warm_calls.find(node.iface->name());
    if (it == warm_calls.end()) continue;
    double covered = std::min(node.est_calls, static_cast<double>(it->second));
    if (covered <= 0.0) continue;
    double unit;
    switch (options_.metric) {
      case CostMetricKind::kSumCost:
      case CostMetricKind::kRequestResponse:
        unit = node.iface->stats().cost_per_call;
        break;
      case CostMetricKind::kCallCount:
        unit = 1.0;
        break;
      default:  // time-based metrics
        unit = node.iface->stats().latency_ms;
        break;
    }
    credit += covered * unit;
  }
  return credit;
}

Result<RepairedPlan> PlanRepairer::Repair(
    const QueryPlan& failed, const std::vector<std::string>& lost,
    const std::set<std::string>& dead,
    const std::map<std::string, int64_t>& warm_calls) const {
  BoundQuery query = failed.query();

  // Pin every atom to the interface the failed plan actually executed, so
  // re-optimization starts from the Phase-1 choices that were in effect
  // (mart-level atoms would otherwise be re-opened arbitrarily).
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    int node_id = failed.NodeOfAtom(static_cast<int>(i));
    if (node_id < 0) continue;
    const PlanNode& node = failed.node(node_id);
    if (node.iface != nullptr) {
      Substitute(&query, static_cast<int>(i), node.iface);
    }
  }

  // A dead interface must never re-enter through a candidate list.
  for (BoundAtom& atom : query.atoms) {
    atom.candidates.erase(
        std::remove_if(atom.candidates.begin(), atom.candidates.end(),
                       [&dead](const std::shared_ptr<ServiceInterface>& c) {
                         return dead.count(c->name()) > 0;
                       }),
        atom.candidates.end());
  }

  const std::set<std::string> lost_set(lost.begin(), lost.end());
  RepairedPlan repaired;

  for (size_t i = 0; i < query.atoms.size(); ++i) {
    const BoundAtom& atom = query.atoms[i];
    if (atom.iface == nullptr || lost_set.count(atom.iface->name()) == 0) {
      continue;
    }
    const std::string lost_name = atom.iface->name();

    bool found = false;
    ReplicaChoice best;
    std::shared_ptr<ServiceInterface> best_iface;
    for (const std::shared_ptr<ServiceInterface>& alt :
         registry_.AlternativesFor(lost_name)) {
      if (dead.count(alt->name()) > 0) continue;
      BoundQuery trial = query;
      Substitute(&trial, static_cast<int>(i), alt);
      if (AllResolved(trial)) {
        Result<FeasibilityReport> feas = CheckFeasibility(trial);
        if (!feas.ok() || !feas.value().feasible) continue;
      }
      Result<OptimizationResult> opt = Optimizer(options_).Optimize(trial);
      if (!opt.ok()) continue;
      double credit = SalvageCredit(opt.value().plan, warm_calls);
      double score = opt.value().cost - credit;
      // Strict '<' keeps the earlier (registration-order) replica on ties.
      if (!found || score < best.cost - best.salvage_credit) {
        found = true;
        best.lost = lost_name;
        best.replacement = alt->name();
        best.cost = opt.value().cost;
        best.salvage_credit = credit;
        best_iface = alt;
      }
    }

    if (found) {
      Substitute(&query, static_cast<int>(i), best_iface);
      repaired.choices.push_back(std::move(best));
    } else {
      repaired.unrepaired.push_back(lost_name);
    }
  }

  if (repaired.choices.empty()) {
    std::string names;
    for (const std::string& name : lost) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    return Status::NotFound("no feasible replica for lost service(s): " +
                            names);
  }

  SECO_ASSIGN_OR_RETURN(OptimizationResult final_plan,
                        Optimizer(options_).Optimize(query));
  repaired.plan = std::move(final_plan.plan);
  repaired.cost = final_plan.cost;
  return repaired;
}

}  // namespace seco
